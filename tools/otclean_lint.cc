// otclean_lint — the repo-specific static checker run in CI (and as a CTest
// entry), enforcing invariants no generic tool knows about:
//
//   raw-thread    no `std::thread` outside src/linalg/ — kernel work must go
//                 through the shared ThreadPool (a bypassed pool changes the
//                 chunk decomposition and breaks bit-identity guarantees).
//   raw-mutex     no raw `std::mutex` / `std::lock_guard` / `std::unique_lock`
//                 / `std::condition_variable` outside
//                 common/thread_annotations.h — locking must go through the
//                 annotated Mutex/MutexLock/CondVar wrappers or clang's
//                 -Wthread-safety analysis cannot see it.
//   stdio         no `std::cout` / `printf` / `fprintf(stdout` in src/
//                 library code — a library that writes to stdout corrupts the
//                 CLI's machine-readable output; diagnostics go to stderr or
//                 the logging layer.
//   ffp-contract  every SIMD translation unit (src/linalg/simd*.cc) must be
//                 compiled with -ffp-contract=off in CMakeLists.txt — the
//                 cross-tier bit-identity contract pins one rounded multiply
//                 + one rounded add per element, which implicit FMA
//                 contraction would silently break.
//   headers       every public header under src/ carries the canonical
//                 include guard (OTCLEAN_<PATH>_H_) and is reachable from the
//                 umbrella header src/otclean/otclean.h, unless marked
//                 `// otclean-lint: internal-header`.
//   naked-value   no `.value()` on a Result/optional without a visible
//                 `ok()` / `has_value()` check or OTCLEAN_ASSIGN_OR_RETURN /
//                 OTCLEAN_CHECK_OK* macro within the preceding lines — under
//                 NDEBUG an unchecked access is silent UB, not an assert.
//
// Suppression: a finding on line N of rule R is suppressed when line N or
// line N-1 contains `otclean-lint: allow(R)` (with a justification, please).
// Headers excluded from the umbrella on purpose carry
// `// otclean-lint: internal-header` instead.
//
// Usage:
//   otclean_lint [--repo-root DIR] [--rules r1,r2,...] [--list-rules]
//
// Exit status: 0 when clean, 1 when any finding survives, 2 on usage or I/O
// errors. Findings print as `file:line: [rule] message`, one per line.
//
// Deliberately a standalone, dependency-free TU (no otclean library link):
// the linter must build and run even when the library itself does not.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // repo-relative
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string rel_path;              // forward-slash, repo-relative
  std::vector<std::string> lines;    // raw, as on disk
  std::vector<std::string> code;     // lines with comments blanked out
};

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> rules = {
      "raw-thread", "raw-mutex", "stdio", "ffp-contract", "headers",
      "naked-value"};
  return rules;
}

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `token` occurs in `line` as a standalone token (not embedded in
/// a longer identifier on either side).
bool ContainsToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Blanks // and /* */ comments so token scans do not fire on prose.
/// String literals are not tracked — good enough for a repo linter over a
/// codebase that does not put lock types in strings.
std::vector<std::string> StripComments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& raw : lines) {
    std::string code;
    code.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (in_block) {
        if (raw.compare(i, 2, "*/") == 0) {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (raw.compare(i, 2, "//") == 0) break;  // rest of line is comment
      if (raw.compare(i, 2, "/*") == 0) {
        in_block = true;
        i += 2;
        continue;
      }
      code.push_back(raw[i]);
      ++i;
    }
    out.push_back(std::move(code));
  }
  return out;
}

/// Line-level suppression: `otclean-lint: allow(rule)` on the finding's line
/// or the line directly above it.
bool Suppressed(const SourceFile& f, size_t line_index,
                const std::string& rule) {
  const std::string needle = "otclean-lint: allow(" + rule + ")";
  if (f.lines[line_index].find(needle) != std::string::npos) return true;
  if (line_index > 0 &&
      f.lines[line_index - 1].find(needle) != std::string::npos) {
    return true;
  }
  return false;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ------------------------------------------------------------------- rules --

void CheckRawThread(const SourceFile& f, std::vector<Finding>* findings) {
  if (HasPrefix(f.rel_path, "src/linalg/")) return;  // the pool's home
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (!ContainsToken(f.code[i], "std::thread")) continue;
    if (Suppressed(f, i, "raw-thread")) continue;
    findings->push_back(
        {f.rel_path, i + 1, "raw-thread",
         "raw std::thread outside src/linalg/ — dispatch kernel work on the "
         "shared linalg::ThreadPool (bypassing it breaks the bit-identity "
         "contract); executor-style threads need an explicit "
         "otclean-lint: allow(raw-thread) justification"});
  }
}

void CheckRawMutex(const SourceFile& f, std::vector<Finding>* findings) {
  if (f.rel_path == "src/common/thread_annotations.h") return;  // the wrapper
  static const char* kTokens[] = {
      "std::mutex",          "std::recursive_mutex", "std::timed_mutex",
      "std::shared_mutex",   "std::lock_guard",      "std::unique_lock",
      "std::scoped_lock",    "std::condition_variable",
      "std::condition_variable_any"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const char* token : kTokens) {
      if (!ContainsToken(f.code[i], token)) continue;
      if (Suppressed(f, i, "raw-mutex")) continue;
      findings->push_back(
          {f.rel_path, i + 1, "raw-mutex",
           std::string(token) +
               " outside common/thread_annotations.h — lock through the "
               "annotated Mutex/MutexLock/CondVar wrappers so clang "
               "-Wthread-safety can check the discipline"});
    }
  }
}

void CheckStdio(const SourceFile& f, std::vector<Finding>* findings) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const bool cout = ContainsToken(line, "std::cout");
    const bool bare_printf = ContainsToken(line, "printf") &&
                             line.find("fprintf") == std::string::npos &&
                             line.find("snprintf") == std::string::npos &&
                             line.find("sprintf") == std::string::npos;
    const bool fprintf_stdout = line.find("fprintf(stdout") !=
                                    std::string::npos ||
                                line.find("fprintf( stdout") !=
                                    std::string::npos;
    if (!cout && !bare_printf && !fprintf_stdout) continue;
    if (Suppressed(f, i, "stdio")) continue;
    findings->push_back(
        {f.rel_path, i + 1, "stdio",
         "stdout I/O in library code — src/ must not write to stdout (the "
         "CLI's machine-readable output owns it); use stderr or the logging "
         "layer"});
  }
}

void CheckNakedValue(const SourceFile& f, std::vector<Finding>* findings) {
  constexpr size_t kLookback = 12;
  for (size_t i = 0; i < f.code.size(); ++i) {
    if (f.code[i].find(".value()") == std::string::npos) continue;
    bool guarded = false;
    const size_t first = i >= kLookback ? i - kLookback : 0;
    for (size_t j = first; j <= i && !guarded; ++j) {
      const std::string& ctx = f.code[j];
      guarded = ctx.find("ok()") != std::string::npos ||
                ctx.find("has_value()") != std::string::npos ||
                ctx.find("OTCLEAN_ASSIGN_OR_RETURN") != std::string::npos ||
                ctx.find("OTCLEAN_CHECK_OK") != std::string::npos;
    }
    if (guarded) continue;
    if (Suppressed(f, i, "naked-value")) continue;
    findings->push_back(
        {f.rel_path, i + 1, "naked-value",
         "naked .value() with no visible ok()/has_value() check or "
         "OTCLEAN_ASSIGN_OR_RETURN / OTCLEAN_CHECK_OK_AND_ASSIGN in the "
         "preceding lines — an unchecked access is UB under NDEBUG, not an "
         "assert"});
  }
}

/// Expected include guard for a header at src-relative path `rel`, e.g.
/// "core/solve_cache.h" -> "OTCLEAN_CORE_SOLVE_CACHE_H_". The umbrella
/// header is grandfathered as OTCLEAN_OTCLEAN_H_ (its name predates the
/// path-derived convention and is baked into every client).
std::string ExpectedGuard(const std::string& rel) {
  if (rel == "otclean/otclean.h") return "OTCLEAN_OTCLEAN_H_";
  std::string guard = "OTCLEAN_";
  for (char c : rel) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(c >= 'a' && c <= 'z' ? c - 'a' + 'A' : c));
    }
  }
  guard.push_back('_');
  return guard;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

void CheckHeaders(const std::vector<SourceFile>& headers,
                  std::vector<Finding>* findings) {
  // 1. Canonical include guards.
  for (const SourceFile& f : headers) {
    const std::string rel = f.rel_path.substr(4);  // drop "src/"
    const std::string expected = ExpectedGuard(rel);
    std::string ifndef_name, define_name;
    size_t ifndef_line = 0;
    for (size_t i = 0; i < f.code.size(); ++i) {
      const std::string line = Trim(f.code[i]);
      if (line.empty()) continue;
      if (HasPrefix(line, "#ifndef ")) {
        ifndef_name = Trim(line.substr(8));
        ifndef_line = i + 1;
        for (size_t j = i + 1; j < f.code.size(); ++j) {
          const std::string next = Trim(f.code[j]);
          if (next.empty()) continue;
          if (HasPrefix(next, "#define ")) define_name = Trim(next.substr(8));
          break;
        }
      }
      break;  // only the first non-blank code line may open the guard
    }
    if (ifndef_name != expected || define_name != expected) {
      findings->push_back(
          {f.rel_path, ifndef_line == 0 ? 1 : ifndef_line, "headers",
           "include guard must be `#ifndef " + expected + "` / `#define " +
               expected + "` as the first directives (found ifndef=\"" +
               ifndef_name + "\", define=\"" + define_name + "\")"});
    }
  }

  // 2. Umbrella reachability: walk quoted includes from otclean/otclean.h.
  std::map<std::string, const SourceFile*> by_rel;  // src-relative -> file
  for (const SourceFile& f : headers) by_rel[f.rel_path.substr(4)] = &f;
  std::set<std::string> reached;
  std::vector<std::string> stack = {"otclean/otclean.h"};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    if (!reached.insert(cur).second) continue;
    auto it = by_rel.find(cur);
    if (it == by_rel.end()) continue;
    for (const std::string& line : it->second->code) {
      const std::string t = Trim(line);
      if (!HasPrefix(t, "#include \"")) continue;
      const size_t close = t.find('"', 10);
      if (close == std::string::npos) continue;
      stack.push_back(t.substr(10, close - 10));
    }
  }
  if (by_rel.find("otclean/otclean.h") == by_rel.end()) {
    findings->push_back({"src/otclean/otclean.h", 1, "headers",
                         "umbrella header src/otclean/otclean.h is missing"});
  }
  for (const SourceFile& f : headers) {
    const std::string rel = f.rel_path.substr(4);
    if (reached.count(rel) != 0) continue;
    bool internal = false;
    for (const std::string& line : f.lines) {
      if (line.find("otclean-lint: internal-header") != std::string::npos) {
        internal = true;
        break;
      }
    }
    if (internal) continue;
    findings->push_back(
        {f.rel_path, 1, "headers",
         "public header not reachable from the umbrella header "
         "src/otclean/otclean.h — add it to the umbrella's includes or mark "
         "it `// otclean-lint: internal-header` with a reason"});
  }
}

/// Collects the source files named by `set_source_files_properties(...)`
/// statements whose COMPILE_OPTIONS contain -ffp-contract=off, then demands
/// every SIMD TU is covered.
void CheckFfpContract(const fs::path& repo_root,
                      const std::vector<std::string>& simd_tus,
                      std::vector<Finding>* findings) {
  std::ifstream in(repo_root / "CMakeLists.txt");
  if (!in) {
    findings->push_back({"CMakeLists.txt", 1, "ffp-contract",
                         "CMakeLists.txt not found at the repo root"});
    return;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string cmake = ss.str();

  // Expand simple `set(NAME value...)` variables so flags carried via
  // ${OTCLEAN_SIMD_BASE_OPTIONS}-style indirection are still seen. Two
  // passes cover one level of nesting, which is all the build uses.
  std::map<std::string, std::string> cmake_vars;
  size_t set_pos = 0;
  while ((set_pos = cmake.find("set(", set_pos)) != std::string::npos) {
    if (set_pos > 0 && IsWordChar(cmake[set_pos - 1])) {
      set_pos += 4;  // set_source_files_properties, set_tests_properties, ...
      continue;
    }
    const size_t open = set_pos + 3;
    size_t depth = 1, end = open + 1;
    while (end < cmake.size() && depth > 0) {
      if (cmake[end] == '(') ++depth;
      if (cmake[end] == ')') --depth;
      ++end;
    }
    const std::string body = cmake.substr(open + 1, end - open - 2);
    const size_t name_end = body.find_first_of(" \t\r\n");
    if (name_end != std::string::npos) {
      cmake_vars[Trim(body.substr(0, name_end))] = body.substr(name_end + 1);
    }
    set_pos = end;
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [name, value] : cmake_vars) {
      const std::string ref = "${" + name + "}";
      size_t at = 0;
      while ((at = cmake.find(ref, at)) != std::string::npos) {
        cmake.replace(at, ref.size(), value);
        at += value.size();
      }
    }
  }

  std::set<std::string> covered;
  size_t pos = 0;
  while ((pos = cmake.find("set_source_files_properties", pos)) !=
         std::string::npos) {
    const size_t open = cmake.find('(', pos);
    if (open == std::string::npos) break;
    size_t depth = 1, end = open + 1;
    while (end < cmake.size() && depth > 0) {
      if (cmake[end] == '(') ++depth;
      if (cmake[end] == ')') --depth;
      ++end;
    }
    const std::string stmt = cmake.substr(open + 1, end - open - 2);
    if (stmt.find("ffp-contract=off") != std::string::npos) {
      for (const std::string& tu : simd_tus) {
        if (stmt.find(tu) != std::string::npos) covered.insert(tu);
      }
    }
    pos = end;
  }
  for (const std::string& tu : simd_tus) {
    if (covered.count(tu) != 0) continue;
    findings->push_back(
        {"CMakeLists.txt", 1, "ffp-contract",
         "SIMD translation unit " + tu +
             " is not compiled with -ffp-contract=off (required: the "
             "cross-tier bit-identity contract forbids implicit FMA "
             "contraction) — add it to a set_source_files_properties "
             "COMPILE_OPTIONS carrying the flag"});
  }
}

// ---------------------------------------------------------------- scanning --

bool LoadFile(const fs::path& abs, const std::string& rel, SourceFile* out) {
  std::ifstream in(abs);
  if (!in) return false;
  out->rel_path = rel;
  out->lines.clear();
  std::string line;
  while (std::getline(in, line)) out->lines.push_back(line);
  out->code = StripComments(out->lines);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--repo-root DIR] [--rules r1,r2,...] "
               "[--list-rules]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo_root = fs::current_path();
  std::set<std::string> active(AllRules().begin(), AllRules().end());
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      repo_root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      active.clear();
      std::stringstream ss(argv[++i]);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (std::find(AllRules().begin(), AllRules().end(), rule) ==
            AllRules().end()) {
          std::fprintf(stderr, "otclean_lint: unknown rule \"%s\"\n",
                       rule.c_str());
          return 2;
        }
        active.insert(rule);
      }
    } else if (arg == "--list-rules") {
      for (const std::string& rule : AllRules()) {
        std::fprintf(stderr, "%s\n", rule.c_str());
      }
      return 0;
    } else {
      return Usage(argv[0]);
    }
  }

  const fs::path src_root = repo_root / "src";
  if (!fs::exists(src_root)) {
    std::fprintf(stderr, "otclean_lint: no src/ under %s\n",
                 repo_root.string().c_str());
    return 2;
  }

  std::vector<SourceFile> sources;  // every .h/.cc under src/
  std::vector<std::string> simd_tus;
  for (auto it = fs::recursive_directory_iterator(src_root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    const std::string rel =
        fs::relative(it->path(), repo_root).generic_string();
    SourceFile f;
    if (!LoadFile(it->path(), rel, &f)) {
      std::fprintf(stderr, "otclean_lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    const std::string name = it->path().filename().string();
    if (HasPrefix(rel, "src/linalg/") && HasPrefix(name, "simd") &&
        ext == ".cc") {
      simd_tus.push_back(rel);
    }
    sources.push_back(std::move(f));
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  std::sort(simd_tus.begin(), simd_tus.end());

  std::vector<Finding> findings;
  std::vector<SourceFile> headers;
  for (const SourceFile& f : sources) {
    if (HasSuffix(f.rel_path, ".h")) headers.push_back(f);
    if (active.count("raw-thread")) CheckRawThread(f, &findings);
    if (active.count("raw-mutex")) CheckRawMutex(f, &findings);
    if (active.count("stdio")) CheckStdio(f, &findings);
    if (active.count("naked-value")) CheckNakedValue(f, &findings);
  }
  if (active.count("headers")) CheckHeaders(headers, &findings);
  if (active.count("ffp-contract")) {
    CheckFfpContract(repo_root, simd_tus, &findings);
  }

  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "otclean_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
