// otclean — command-line data cleaner for conditional independence
// violations.
//
// Usage (single job):
//   otclean --input data.csv --output repaired.csv
//           --x sex --y marital-status --z occupation,age [options]
//
// Usage (batch; serve many repairs off one process):
//   otclean --batch manifest.txt [--jobs N] [options as defaults]
//
// Options:
//   --input PATH           input CSV (header row required)
//   --output PATH          output CSV (default: stdout)
//   --x COLS --y COLS      constraint sides (comma-separated column names)
//   --z COLS               conditioning set (optional)
//   --solver NAME          optimizer (default fast):
//                            fast        Sinkhorn + KL-NMF (Section 4.2)
//                            qclp        alternating exact LPs (Section 4.1)
//                            capuchin-ic Capuchin independent coupling
//                            capuchin-mf Capuchin per-slice rank-1 NMF
//                            capmaxsat   Capuchin MaxSAT tuple add/remove
//   --epsilon F            entropic regularization (default 0.08)
//   --lambda F             marginal relaxation (default 80)
//   --threads N            Sinkhorn kernel threads (default 0 = all cores);
//                          in batch mode also the shared pool's lane count
//   --truncation F         sparse-kernel cutoff: drop K entries below F
//                          (default 0 = dense kernel; fast solver only)
//   --log-domain           iterate Sinkhorn on log-potentials (stable at
//                          small --epsilon / huge penalty costs; composes
//                          with --truncation; fast solver only — the qclp
//                          solver never iterates Sinkhorn and rejects the
//                          flag with InvalidArgument instead of silently
//                          ignoring it)
//   --precision f32|f64    kernel storage precision (default f64): f32
//                          halves kernel memory traffic, accumulates in
//                          double, and keeps the f64 plan structure
//                          (fast solver only)
//   --epsilon-schedule INIT[,DECAY[,STAGETOL[,STAGEITERS]]]
//                          ε-annealing: warm the first solve through a
//                          sequence of larger-ε stages starting at INIT,
//                          multiplying by DECAY (default 0.5) down to
//                          --epsilon; each stage runs to STAGETOL
//                          (default 1e-4) or STAGEITERS (default 500)
//                          iterations (fast solver only)
//   --map                  deterministic MAP repairs instead of sampling
//   --seed N               RNG seed (default 42)
//   --report               print CMI / cost diagnostics to stderr
//   --deadline-ms N        wall-clock budget per job, in milliseconds; a
//                          solve past it aborts cleanly with
//                          DeadlineExceeded (in batch mode the clock
//                          starts at admission, so queue wait counts)
//   --retries N            on retryable solve failures (non-convergence,
//                          linear-domain scaling blow-ups) retry up to N
//                          more times with safer settings: log-domain
//                          first, then doubled epsilon (default 0 = fail
//                          on the first attempt; fast solver only)
//
// Batch mode:
//   --batch PATH           manifest with one job per line; '#' starts a
//                          comment. Each line is whitespace-separated
//                          key=value tokens: input= x= y= are required
//                          (per line, or via the --input/--x/--y
//                          command-line defaults); output= and name= are
//                          per-line only; z= and any option key (solver=
//                          epsilon= lambda= threads= truncation=
//                          log-domain=0|1 precision= epsilon-schedule=
//                          map=0|1 seed= deadline-ms= retries=) override
//                          the command-line defaults for that job.
//   --jobs N               concurrent repair jobs (default 0 = all cores).
//                          All jobs share ONE kernel thread pool; per-job
//                          results are bit-identical to --jobs 1.
//   --cache-bytes N        byte budget of the batch's shared solve cache
//                          (default 256 MiB): jobs repeating a (cost, ε,
//                          truncation) share one built kernel —
//                          bit-identical to rebuilding it per job.
//   --no-cache             run the batch cache-less.
//   --cache-warm           also warm-start repeated solves from cached
//                          potentials (fewer Sinkhorn iterations at equal
//                          tolerance, but results are no longer
//                          bit-identical run to run — see README).
//   --max-queued N         admission bound on the scheduler's pending
//                          queue (default 0 = unbounded). The CLI hands
//                          the scheduler whole batches with backpressure,
//                          so this only changes pacing, never results.
//
// In batch mode each job's RepairOptions::seed is derived from seed= mixed
// with the job's 0-based position among the manifest's JOBS — comment and
// blank lines don't count (core::DeriveJobSeed) — so a batch is
// reproducible end to end and independent of completion order.
//
// Fault injection (testing/CI only): set OTCLEAN_FAULTS=SITE@N[+][,...]
// to arm the deterministic fault harness (core/fault_injector.h) — SITE in
// {alloc, kernel-nan, worker-delay, cache-insert}, failing the site's Nth
// visit (every visit from the Nth with a trailing '+'). Injected failures
// surface as clean non-zero exits with the Status printed, never crashes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "otclean/otclean.h"

using namespace otclean;

namespace {

struct CliArgs {
  std::map<std::string, std::string> named;
  bool map_repair = false;
  bool report = false;
  bool log_domain = false;
  bool no_cache = false;
  bool cache_warm = false;
};

CliArgs ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--map") {
      args.map_repair = true;
    } else if (a == "--log-domain") {
      args.log_domain = true;
    } else if (a == "--report") {
      args.report = true;
    } else if (a == "--no-cache") {
      args.no_cache = true;
    } else if (a == "--cache-warm") {
      args.cache_warm = true;
    } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.named[a.substr(2)] = argv[++i];
    }
  }
  return args;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "otclean: %s\n", message.c_str());
  return 1;
}

/// The empty line layer single-job mode passes to KvLookup (which holds
/// references, so the empty map must outlive it).
const std::map<std::string, std::string> kNoLine;

/// Layered key lookup: a manifest line's key=value tokens override the
/// command-line --key values, which override the built-in default. Single
/// mode passes an empty line layer, so both modes parse one way.
class KvLookup {
 public:
  KvLookup(const std::map<std::string, std::string>& line,
           const std::map<std::string, std::string>& global)
      : line_(line), global_(global) {}

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    if (const auto it = line_.find(key); it != line_.end()) return it->second;
    if (const auto it = global_.find(key); it != global_.end()) {
      return it->second;
    }
    return fallback;
  }

  bool Has(const std::string& key) const {
    return line_.count(key) > 0 || global_.count(key) > 0;
  }

 private:
  const std::map<std::string, std::string>& line_;
  const std::map<std::string, std::string>& global_;
};

Result<bool> ParseBool(const std::string& s, bool fallback) {
  if (s.empty()) return fallback;
  if (s == "1" || s == "true") return true;
  if (s == "0" || s == "false") return false;
  return Status::InvalidArgument("expected 0/1/true/false, got '" + s + "'");
}

/// Builds the RepairOptions both modes share. Boolean command-line flags
/// (--map, --log-domain) arrive as defaults; manifest lines may override
/// them with map=0|1 / log-domain=0|1.
Result<core::RepairOptions> BuildRepairOptions(const KvLookup& kv,
                                               bool default_map,
                                               bool default_log_domain) {
  core::RepairOptions options;
  const std::string solver = kv.Get("solver", "fast");
  if (solver == "qclp") {
    options.solver = core::Solver::kQclp;
  } else if (solver == "capuchin-ic") {
    options.solver = core::Solver::kCapuchinIC;
  } else if (solver == "capuchin-mf") {
    options.solver = core::Solver::kCapuchinMF;
  } else if (solver == "capmaxsat") {
    options.solver = core::Solver::kCapMaxSat;
  } else if (solver != "fast") {
    return Status::InvalidArgument(
        "unknown solver '" + solver +
        "' (use fast, qclp, capuchin-ic, capuchin-mf or capmaxsat)");
  }
  OTCLEAN_ASSIGN_OR_RETURN(const bool map_repair,
                           ParseBool(kv.Get("map"), default_map));
  options.sample_repair = !map_repair;
  auto eps = ParseDouble(kv.Get("epsilon", "0.08"));
  if (!eps.ok()) return Status::InvalidArgument("bad epsilon");
  options.fast.epsilon = *eps;
  auto lam = ParseDouble(kv.Get("lambda", "80"));
  if (!lam.ok()) return Status::InvalidArgument("bad lambda");
  options.fast.lambda = *lam;
  auto seed = ParseInt(kv.Get("seed", "42"));
  if (!seed.ok()) return Status::InvalidArgument("bad seed");
  options.seed = static_cast<uint64_t>(*seed);
  auto threads = ParseInt(kv.Get("threads", "0"));
  if (!threads.ok() || *threads < 0) {
    return Status::InvalidArgument("bad threads");
  }
  options.fast.num_threads = static_cast<size_t>(*threads);
  options.qclp.num_threads = static_cast<size_t>(*threads);
  auto cutoff = ParseDouble(kv.Get("truncation", "0"));
  if (!cutoff.ok() || *cutoff < 0.0) {
    return Status::InvalidArgument("bad truncation");
  }
  options.fast.kernel_truncation = *cutoff;
  OTCLEAN_ASSIGN_OR_RETURN(const bool log_domain,
                           ParseBool(kv.Get("log-domain"), default_log_domain));
  options.fast.log_domain = log_domain;
  options.qclp.log_domain = log_domain;
  const std::string precision = kv.Get("precision", "f64");
  if (precision == "f32") {
    options.fast.precision = linalg::Precision::kFloat32;
  } else if (precision != "f64") {
    return Status::InvalidArgument("unknown precision '" + precision +
                                   "' (use f32 or f64)");
  }
  if (const std::string sched = kv.Get("epsilon-schedule"); !sched.empty()) {
    const std::vector<std::string> parts = SplitString(sched, ',');
    if (parts.empty() || parts.size() > 4) {
      return Status::InvalidArgument(
          "bad epsilon-schedule (expected INIT[,DECAY[,STAGETOL"
          "[,STAGEITERS]]])");
    }
    auto init = ParseDouble(parts[0]);
    if (!init.ok()) return Status::InvalidArgument("bad epsilon-schedule INIT");
    options.fast.epsilon_schedule.initial_epsilon = *init;
    if (parts.size() > 1) {
      auto decay = ParseDouble(parts[1]);
      if (!decay.ok()) {
        return Status::InvalidArgument("bad epsilon-schedule DECAY");
      }
      options.fast.epsilon_schedule.decay = *decay;
    }
    if (parts.size() > 2) {
      auto tol = ParseDouble(parts[2]);
      if (!tol.ok()) {
        return Status::InvalidArgument("bad epsilon-schedule STAGETOL");
      }
      options.fast.epsilon_schedule.stage_tolerance = *tol;
    }
    if (parts.size() > 3) {
      auto iters = ParseInt(parts[3]);
      if (!iters.ok() || *iters <= 0) {
        return Status::InvalidArgument("bad epsilon-schedule STAGEITERS");
      }
      options.fast.epsilon_schedule.stage_max_iterations =
          static_cast<size_t>(*iters);
    }
  }
  auto retries = ParseInt(kv.Get("retries", "0"));
  if (!retries.ok() || *retries < 0) {
    return Status::InvalidArgument("bad retries");
  }
  options.retry.max_attempts = static_cast<size_t>(*retries) + 1;
  options.fast.restrict_columns_to_active = true;
  options.fast.max_outer_iterations = 60;
  options.fast.max_sinkhorn_iterations = 1000;
  return options;
}

/// Parses the layered deadline-ms key: unset/empty means no deadline
/// (returns 0); anything else must be a positive integer.
Result<int64_t> ParseDeadlineMillis(const KvLookup& kv) {
  const std::string d = kv.Get("deadline-ms");
  if (d.empty()) return int64_t{0};
  auto ms = ParseInt(d);
  if (!ms.ok() || *ms <= 0) {
    return Status::InvalidArgument("bad deadline-ms (positive milliseconds)");
  }
  return static_cast<int64_t>(*ms);
}

Result<core::CiConstraint> BuildConstraint(const KvLookup& kv) {
  const std::string x = kv.Get("x"), y = kv.Get("y"), z = kv.Get("z");
  if (x.empty() || y.empty()) {
    return Status::InvalidArgument("x= and y= columns are required");
  }
  return core::CiConstraint(SplitString(x, ','), SplitString(y, ','),
                            z.empty() ? std::vector<std::string>{}
                                      : SplitString(z, ','));
}

void PrintReport(const core::CiConstraint& constraint,
                 const core::RepairReport& report) {
  const std::string kernel_note =
      report.kernel_nnz > 0
          ? " [kernel nnz " + std::to_string(report.kernel_nnz) + "]"
          : "";
  std::fprintf(stderr,
               "constraint %s\n  CMI: %.6f -> %.6f (target %.2e)\n"
               "  transport cost: %.6f; outer iterations: %zu%s\n"
               "  plan storage: %s, %zu entries (%.1f KiB)%s\n"
               "  sinkhorn domain: %s; kernel precision: %s\n"
               "  simd: %s (override with OTCLEAN_SIMD=scalar|avx2|"
               "avx512|neon)\n",
               constraint.ToString().c_str(), report.initial_cmi,
               report.final_cmi, report.target_cmi, report.transport_cost,
               report.outer_iterations,
               report.converged ? "" : " (iteration cap)",
               report.plan_sparse ? "sparse (CSR)" : "dense", report.plan_nnz,
               static_cast<double>(report.plan_memory_bytes) / 1024.0,
               kernel_note.c_str(), report.sinkhorn_domain, report.precision,
               report.simd_isa);
  if (!report.anneal_stages.empty()) {
    std::string stages;
    size_t stage_iterations = 0;
    for (const auto& s : report.anneal_stages) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%s%.3g:%zu", stages.empty() ? "" : " ",
                    s.epsilon, s.iterations);
      stages += buf;
      stage_iterations += s.iterations;
    }
    std::fprintf(stderr,
                 "  epsilon annealing: %zu stages [eps:iters %s], "
                 "%zu stage iterations\n",
                 report.anneal_stages.size(), stages.c_str(),
                 stage_iterations);
  }
  if (report.cache_kernel_hits + report.cache_kernel_misses > 0) {
    std::string warm_note;
    if (report.cache_warm_started) {
      warm_note = ", warm-started (saved " +
                  std::to_string(report.cache_warm_iterations_saved) +
                  " sinkhorn iterations)";
    }
    std::fprintf(stderr, "  solve cache: kernel %s%s\n",
                 report.cache_kernel_hits > 0 ? "hit" : "miss",
                 warm_note.c_str());
  }
  if (report.retry_attempts > 0) {
    std::fprintf(stderr, "  termination: %s after %zu fallback attempt(s)\n"
                 "    %s\n",
                 report.termination, report.retry_attempts,
                 report.recovery.c_str());
  }
}

/// The per-job status cell of the batch summary: ok jobs report their
/// RepairReport termination ("ok" / "retried-ok"), failures name the two
/// robustness outcomes and lump the rest as FAILED (the Status follows).
const char* TerminationLabel(const Result<core::RepairReport>& r) {
  if (r.ok()) return r->termination;
  switch (r.status().code()) {
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline";
    default:
      return "FAILED";
  }
}

/// Canonicalizes a manifest input path so spellings like ./a.csv and
/// a.csv dedupe to one table-cache slot. A path realpath cannot resolve
/// (missing file) falls back to its raw spelling — ReadCsv will report
/// the real error.
std::string CanonicalPath(const std::string& path) {
  char* resolved = ::realpath(path.c_str(), nullptr);
  if (resolved == nullptr) return path;
  std::string out(resolved);
  std::free(resolved);
  return out;
}

// ------------------------------------------------------------ batch mode --

int RunBatch(const CliArgs& args, const std::string& manifest_path,
             core::FaultInjector* faults) {
  if (args.named.count("output")) {
    // A global --output would either overwrite one file per job or be
    // ignored for lines without output= — both silent data loss. Refuse.
    return Fail("--output is not valid with --batch; give each manifest "
                "line its own output=PATH");
  }
  std::ifstream manifest(manifest_path);
  if (!manifest) return Fail("cannot open --batch manifest " + manifest_path);

  size_t cache_bytes = 256ull << 20;  // default: 256 MiB shared solve cache
  if (args.no_cache) {
    if (args.named.count("cache-bytes")) {
      return Fail("--no-cache and --cache-bytes are mutually exclusive");
    }
    if (args.cache_warm) {
      return Fail("--cache-warm needs the cache; drop --no-cache");
    }
    cache_bytes = 0;
  } else if (args.named.count("cache-bytes")) {
    auto n = ParseInt(args.named.at("cache-bytes"));
    if (!n.ok() || *n <= 0) return Fail("bad --cache-bytes");
    cache_bytes = static_cast<size_t>(*n);
  }

  // Tables are cached by canonical path: many jobs over one dataset load
  // it once and share the in-memory table (jobs never mutate their input),
  // and ./a.csv vs a.csv dedupe to one slot.
  std::map<std::string, dataset::Table> tables;
  size_t table_hits = 0, table_misses = 0;
  std::vector<core::RepairJob> jobs;
  std::vector<std::string> outputs;  ///< per job; empty = don't write.
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    std::istringstream tokens{line};
    std::string token;
    std::map<std::string, std::string> kv_line;
    bool comment = false;
    while (!comment && tokens >> token) {  // >> splits on any whitespace
      if (token.front() == '#') {
        comment = true;
        break;
      }
      const size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Fail("manifest line " + std::to_string(line_no) +
                    ": expected key=value tokens, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      // The key set is closed; a typo'd key (log_domain=, eps=) must not
      // silently run the job with defaults.
      static const std::set<std::string> kKnownKeys{
          "input", "x", "y", "z", "output", "name", "solver",
          "epsilon", "lambda", "seed", "threads", "truncation",
          "log-domain", "precision", "epsilon-schedule", "map",
          "deadline-ms", "retries"};
      if (!kKnownKeys.count(key)) {
        return Fail("manifest line " + std::to_string(line_no) +
                    ": unknown key '" + key + "'");
      }
      kv_line[key] = token.substr(eq + 1);
    }
    if (kv_line.empty()) continue;  // blank or comment-only line
    const KvLookup kv(kv_line, args.named);
    const std::string at = " (manifest line " + std::to_string(line_no) + ")";

    const std::string input = kv.Get("input");
    if (input.empty()) return Fail("input= is required" + at);
    const std::string canonical = CanonicalPath(input);
    auto table_slot = tables.find(canonical);
    if (table_slot == tables.end()) {
      ++table_misses;
      auto table = dataset::ReadCsv(input);
      if (!table.ok()) return Fail(table.status().ToString() + at);
      table_slot =
          tables.emplace(canonical, std::move(table).value()).first;
    } else {
      ++table_hits;
    }

    core::RepairJob job;
    // std::map never moves its values, so the pointer stays valid while
    // later lines grow the cache.
    job.table = &table_slot->second;
    auto constraint = BuildConstraint(kv);
    if (!constraint.ok()) return Fail(constraint.status().ToString() + at);
    auto options = BuildRepairOptions(kv, args.map_repair, args.log_domain);
    if (!options.ok()) return Fail(options.status().ToString() + at);
    job.options = std::move(options).value();
    job.options.fast.cache_warm_start = args.cache_warm;
    auto deadline_ms = ParseDeadlineMillis(kv);
    if (!deadline_ms.ok()) return Fail(deadline_ms.status().ToString() + at);
    if (*deadline_ms > 0) {
      job.deadline_seconds = static_cast<double>(*deadline_ms) / 1000.0;
    }
    job.name = kv_line.count("name") ? kv_line["name"]
                                     : constraint->ToString();
    job.constraints = {std::move(constraint).value()};
    // output= is per-line only (no global fallback; see the check above),
    // and must be unique: two jobs writing one path would silently leave
    // only the later job's repair on disk.
    const std::string output = kv_line.count("output") ? kv_line["output"]
                                                       : "";
    if (!output.empty()) {
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (outputs[i] == output) {
          return Fail("manifest line " + std::to_string(line_no) +
                      ": output=" + output + " is already written by job " +
                      std::to_string(i));
        }
      }
    }
    outputs.push_back(output);
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return Fail("--batch manifest has no jobs");

  core::RepairSchedulerOptions sched;
  if (const std::string j = KvLookup(kNoLine, args.named).Get("jobs"); !j.empty()) {
    auto n = ParseInt(j);
    if (!n.ok() || *n < 0) return Fail("bad --jobs");
    sched.max_concurrent_jobs = static_cast<size_t>(*n);
  }
  if (const std::string t = KvLookup(kNoLine, args.named).Get("threads");
      !t.empty()) {
    auto n = ParseInt(t);
    if (!n.ok() || *n < 0) return Fail("bad --threads");
    sched.pool_threads = static_cast<size_t>(*n);
  }
  if (const std::string q = KvLookup(kNoLine, args.named).Get("max-queued");
      !q.empty()) {
    auto n = ParseInt(q);
    if (!n.ok() || *n <= 0) return Fail("bad --max-queued (positive bound)");
    sched.max_queued_jobs = static_cast<size_t>(*n);
  }
  sched.fault_injector = faults;

  sched.cache_bytes = cache_bytes;

  core::RepairScheduler scheduler(sched);
  if (core::SolveCache* cache = scheduler.shared_cache()) {
    // Fold the table-cache traffic of the manifest parse into the shared
    // cache's stats, so --report and the summary have one reuse ledger.
    for (size_t i = 0; i < table_hits; ++i) cache->RecordTableLookup(true);
    for (size_t i = 0; i < table_misses; ++i) {
      cache->RecordTableLookup(false);
    }
  }
  const core::BatchReport report = scheduler.Run(jobs);

  bool ok = true;
  std::printf("%-4s %-36s %-11s %-20s %-10s\n", "job", "label", "status",
              "cmi", "cost");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Result<core::RepairReport>& r = report.jobs[i];
    if (!r.ok()) {
      ok = false;
      std::printf("%-4zu %-36s %-11s %s\n", i, jobs[i].name.c_str(),
                  TerminationLabel(r), r.status().ToString().c_str());
      continue;
    }
    char cmi[32];
    std::snprintf(cmi, sizeof cmi, "%.4f -> %.4f", r->initial_cmi,
                  r->final_cmi);
    std::printf("%-4zu %-36s %-11s %-20s %-10.4f\n", i, jobs[i].name.c_str(),
                TerminationLabel(r), cmi, r->transport_cost);
    if (args.report) PrintReport(jobs[i].constraints.front(), *r);
    if (!outputs[i].empty()) {
      if (auto s = dataset::WriteCsv(r->repaired, outputs[i]); !s.ok()) {
        ok = false;
        std::fprintf(stderr, "otclean: job %zu: %s\n", i,
                     s.ToString().c_str());
      }
    }
  }
  std::printf(
      "# batch: %zu jobs (%zu failed) in %.2fs — %.2f jobs/s; "
      "%zu sinkhorn iterations; peak plan %.1f KiB\n",
      report.jobs.size(), report.failed_jobs, report.wall_seconds,
      report.jobs_per_second, report.total_sinkhorn_iterations,
      static_cast<double>(report.peak_plan_bytes) / 1024.0);
  if (report.cancelled_jobs + report.deadline_exceeded_jobs +
          report.retried_jobs > 0) {
    std::printf(
        "# terminations: %zu cancelled, %zu deadline-exceeded, "
        "%zu retried-ok\n",
        report.cancelled_jobs, report.deadline_exceeded_jobs,
        report.retried_jobs);
  }
  if (core::SolveCache* cache = scheduler.shared_cache()) {
    // Absolute stats, not the batch delta: this scheduler ran exactly one
    // batch, and only Stats() includes the table lookups recorded above.
    const core::SolveCacheStats c = cache->Stats();
    std::printf(
        "# cache: kernels %zu hit / %zu miss; warm starts %zu "
        "(%zu sinkhorn iterations saved); tables %zu hit / %zu miss; "
        "%.1f MiB cached, %zu evictions\n",
        c.kernel_hits, c.kernel_misses, c.warm_hits,
        c.warm_iterations_saved, c.table_hits, c.table_misses,
        static_cast<double>(c.bytes_cached) / (1024.0 * 1024.0),
        c.evictions);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = ParseArgs(argc, argv);
  const KvLookup kv(kNoLine, args.named);

  // The fault harness outlives both modes; armed only when the env var is
  // set (testing/CI), costs nothing otherwise.
  static core::FaultInjector fault_injector;
  core::FaultInjector* faults = nullptr;
  if (const char* spec = std::getenv("OTCLEAN_FAULTS");
      spec != nullptr && spec[0] != '\0') {
    if (Status s = core::FaultInjector::Parse(spec, &fault_injector);
        !s.ok()) {
      return Fail(s.ToString());
    }
    fault_injector.InstallPoolDelayHook();
    faults = &fault_injector;
  }

  if (const std::string manifest = kv.Get("batch"); !manifest.empty()) {
    return RunBatch(args, manifest, faults);
  }

  if (args.no_cache || args.cache_warm || args.named.count("cache-bytes") ||
      args.named.count("max-queued")) {
    // Silently accepting them would imply single-job runs are cached.
    return Fail(
        "--cache-bytes/--no-cache/--cache-warm/--max-queued apply to "
        "--batch only (a single job has nothing to share a cache or an "
        "admission queue with)");
  }

  const std::string input = kv.Get("input");
  if (input.empty() || kv.Get("x").empty() || kv.Get("y").empty()) {
    std::fprintf(stderr,
                 "usage: otclean --input data.csv --x COLS --y COLS "
                 "[--z COLS] [--output out.csv] "
                 "[--solver fast|qclp|capuchin-ic|capuchin-mf|capmaxsat] "
                 "[--epsilon F] [--lambda F] [--threads N] [--truncation F] "
                 "[--log-domain] [--precision f32|f64] "
                 "[--epsilon-schedule INIT[,DECAY[,STAGETOL[,STAGEITERS]]]] "
                 "[--map] [--seed N] [--report] [--deadline-ms N] "
                 "[--retries N]\n"
                 "       otclean --batch manifest.txt [--jobs N] "
                 "[option defaults]\n");
    return 2;
  }

  auto table = dataset::ReadCsv(input);
  if (!table.ok()) return Fail(table.status().ToString());

  auto constraint = BuildConstraint(kv);
  if (!constraint.ok()) return Fail(constraint.status().ToString());
  auto options = BuildRepairOptions(kv, args.map_repair, args.log_domain);
  if (!options.ok()) return Fail(options.status().ToString());
  auto deadline_ms = ParseDeadlineMillis(kv);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status().ToString());
  if (*deadline_ms > 0) {
    // One deadline, every solver family: whichever path --solver picked
    // polls the same budget.
    const Deadline deadline = Deadline::AfterMillis(*deadline_ms);
    options->fast.deadline = deadline;
    options->qclp.deadline = deadline;
    options->fairness.deadline = deadline;
  }
  options->fast.fault_injector = faults;

  const auto report = core::RepairTable(*table, *constraint, *options);
  if (!report.ok()) return Fail(report.status().ToString());

  if (args.report) PrintReport(*constraint, *report);

  const std::string output = kv.Get("output");
  if (output.empty()) {
    std::cout << dataset::ToCsvString(report->repaired);
  } else {
    if (auto s = dataset::WriteCsv(report->repaired, output); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  return 0;
}
