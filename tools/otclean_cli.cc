// otclean — command-line data cleaner for conditional independence
// violations.
//
// Usage:
//   otclean --input data.csv --output repaired.csv
//           --x sex --y marital-status --z occupation,age [options]
//
// Options:
//   --input PATH           input CSV (header row required)
//   --output PATH          output CSV (default: stdout)
//   --x COLS --y COLS      constraint sides (comma-separated column names)
//   --z COLS               conditioning set (optional)
//   --solver fast|qclp     optimizer (default fast)
//   --epsilon F            entropic regularization (default 0.08)
//   --lambda F             marginal relaxation (default 80)
//   --threads N            Sinkhorn kernel threads (default 0 = all cores)
//   --truncation F         sparse-kernel cutoff: drop K entries below F
//                          (default 0 = dense kernel; fast solver only)
//   --log-domain           iterate Sinkhorn on log-potentials (stable at
//                          small --epsilon / huge penalty costs; composes
//                          with --truncation; fast solver only)
//   --map                  deterministic MAP repairs instead of sampling
//   --seed N               RNG seed (default 42)
//   --report               print CMI / cost diagnostics to stderr

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/string_util.h"
#include "otclean/otclean.h"

using namespace otclean;

namespace {

struct CliArgs {
  std::map<std::string, std::string> named;
  bool map_repair = false;
  bool report = false;
  bool log_domain = false;
};

CliArgs ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--map") {
      args.map_repair = true;
    } else if (a == "--log-domain") {
      args.log_domain = true;
    } else if (a == "--report") {
      args.report = true;
    } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
      args.named[a.substr(2)] = argv[++i];
    }
  }
  return args;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "otclean: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = ParseArgs(argc, argv);
  const auto get = [&](const std::string& key,
                       const std::string& fallback = "") {
    const auto it = args.named.find(key);
    return it == args.named.end() ? fallback : it->second;
  };

  const std::string input = get("input");
  if (input.empty() || get("x").empty() || get("y").empty()) {
    std::fprintf(stderr,
                 "usage: otclean --input data.csv --x COLS --y COLS "
                 "[--z COLS] [--output out.csv] [--solver fast|qclp] "
                 "[--epsilon F] [--lambda F] [--threads N] [--truncation F] "
                 "[--log-domain] [--map] [--seed N] [--report]\n");
    return 2;
  }

  auto table = dataset::ReadCsv(input);
  if (!table.ok()) return Fail(table.status().ToString());

  const core::CiConstraint constraint(SplitString(get("x"), ','),
                                      SplitString(get("y"), ','),
                                      get("z").empty()
                                          ? std::vector<std::string>{}
                                          : SplitString(get("z"), ','));

  core::RepairOptions options;
  options.sample_repair = !args.map_repair;
  const std::string solver = get("solver", "fast");
  if (solver == "qclp") {
    options.solver = core::Solver::kQclp;
  } else if (solver != "fast") {
    return Fail("unknown solver '" + solver + "' (use fast or qclp)");
  }
  if (auto eps = ParseDouble(get("epsilon", "0.08")); eps.ok()) {
    options.fast.epsilon = *eps;
  } else {
    return Fail("bad --epsilon");
  }
  if (auto lam = ParseDouble(get("lambda", "80")); lam.ok()) {
    options.fast.lambda = *lam;
  } else {
    return Fail("bad --lambda");
  }
  if (auto seed = ParseInt(get("seed", "42")); seed.ok()) {
    options.seed = static_cast<uint64_t>(*seed);
  } else {
    return Fail("bad --seed");
  }
  if (auto threads = ParseInt(get("threads", "0")); threads.ok() &&
                                                    *threads >= 0) {
    options.fast.num_threads = static_cast<size_t>(*threads);
    options.qclp.num_threads = static_cast<size_t>(*threads);
  } else {
    return Fail("bad --threads");
  }
  if (auto cutoff = ParseDouble(get("truncation", "0")); cutoff.ok() &&
                                                         *cutoff >= 0.0) {
    options.fast.kernel_truncation = *cutoff;
  } else {
    return Fail("bad --truncation");
  }
  options.fast.log_domain = args.log_domain;
  options.qclp.log_domain = args.log_domain;
  options.fast.restrict_columns_to_active = true;
  options.fast.max_outer_iterations = 60;
  options.fast.max_sinkhorn_iterations = 1000;

  const auto report = core::RepairTable(*table, constraint, options);
  if (!report.ok()) return Fail(report.status().ToString());

  if (args.report) {
    const std::string kernel_note =
        report->kernel_nnz > 0
            ? " [kernel nnz " + std::to_string(report->kernel_nnz) + "]"
            : "";
    std::fprintf(stderr,
                 "constraint %s\n  CMI: %.6f -> %.6f (target %.2e)\n"
                 "  transport cost: %.6f; outer iterations: %zu%s\n"
                 "  plan storage: %s, %zu entries (%.1f KiB)%s\n"
                 "  sinkhorn domain: %s\n"
                 "  simd: %s (override with OTCLEAN_SIMD=scalar|avx2|"
                 "avx512|neon)\n",
                 constraint.ToString().c_str(), report->initial_cmi,
                 report->final_cmi, report->target_cmi,
                 report->transport_cost, report->outer_iterations,
                 report->converged ? "" : " (iteration cap)",
                 report->plan_sparse ? "sparse (CSR)" : "dense",
                 report->plan_nnz,
                 static_cast<double>(report->plan_memory_bytes) / 1024.0,
                 kernel_note.c_str(), report->sinkhorn_domain,
                 report->simd_isa);
  }

  const std::string output = get("output");
  if (output.empty()) {
    std::cout << dataset::ToCsvString(report->repaired);
  } else {
    if (auto s = dataset::WriteCsv(report->repaired, output); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  return 0;
}
