#ifndef OTCLEAN_OTCLEAN_H_
#define OTCLEAN_OTCLEAN_H_

/// Umbrella header for the OTClean library: data repair under conditional
/// independence constraints via optimal transport (Pirhadi et al., SIGMOD
/// 2024). Include this for the public API; individual module headers are
/// also self-contained.

#include "cleaning/baran_style.h"
#include "cleaning/distortion.h"
#include "cleaning/gain_style.h"
#include "cleaning/hyperimpute_style.h"
#include "cleaning/imputer.h"
#include "cleaning/missingness.h"
#include "cleaning/noise.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/ci_constraint.h"
#include "core/diagnostics.h"
#include "core/fast_otclean.h"
#include "core/qclp_cleaner.h"
#include "core/repair.h"
#include "dataset/csv.h"
#include "dataset/discretize.h"
#include "dataset/numeric.h"
#include "dataset/schema.h"
#include "dataset/table.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"
#include "fairness/cap_maxsat.h"
#include "fairness/capuchin.h"
#include "fairness/maxsat.h"
#include "fairness/metrics.h"
#include "metric/mlkr.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ot/cost.h"
#include "ot/exact.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"

#endif  // OTCLEAN_OTCLEAN_H_
