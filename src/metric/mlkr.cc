#include "metric/mlkr.h"

#include <cmath>

#include "ml/features.h"

namespace otclean::metric {

namespace {

/// Leave-one-out kernel regression loss and gradient w.r.t. the diagonal
/// weights, over a row subsample.
double LossAndGradient(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y,
                       const std::vector<double>& w,
                       std::vector<double>* grad) {
  const size_t n = x.size();
  const size_t d = w.size();
  std::fill(grad->begin(), grad->end(), 0.0);

  // Precompute squared differences per pair lazily; n is capped, so the
  // O(n²d) pass is fine.
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Kernel weights to all j != i.
    std::vector<double> k(n, 0.0);
    double ksum = 0.0, kysum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double dist2 = 0.0;
      for (size_t a = 0; a < d; ++a) {
        const double diff = x[i][a] - x[j][a];
        dist2 += w[a] * w[a] * diff * diff;
      }
      k[j] = std::exp(-dist2);
      ksum += k[j];
      kysum += k[j] * y[j];
    }
    if (ksum <= 1e-300) continue;
    const double yhat = kysum / ksum;
    const double err = yhat - y[i];
    loss += err * err;

    // d loss / d w_a = 2 err · d yhat / d w_a, with
    // d k_ij / d w_a = k_ij · (−2 w_a diff²).
    for (size_t j = 0; j < n; ++j) {
      if (j == i || k[j] <= 0.0) continue;
      const double dyhat_dk = (y[j] - yhat) / ksum;
      for (size_t a = 0; a < d; ++a) {
        const double diff = x[i][a] - x[j][a];
        const double dk = k[j] * (-2.0 * w[a] * diff * diff);
        (*grad)[a] += 2.0 * err * dyhat_dk * dk;
      }
    }
  }
  return loss / static_cast<double>(n);
}

}  // namespace

Result<MlkrResult> LearnMlkrWeights(const dataset::Table& table,
                                    size_t label_col,
                                    const std::vector<size_t>& feature_cols,
                                    const MlkrOptions& options) {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           ml::BinaryLabels(table, label_col));
  if (feature_cols.empty()) {
    return Status::InvalidArgument("LearnMlkrWeights: no feature columns");
  }

  // Subsample complete rows.
  Rng rng(options.seed);
  std::vector<size_t> candidates;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool complete = true;
    for (size_t c : feature_cols) {
      if (table.IsMissing(r, c)) {
        complete = false;
        break;
      }
    }
    if (complete) candidates.push_back(r);
  }
  if (candidates.size() < 4) {
    return Status::InvalidArgument("LearnMlkrWeights: too few complete rows");
  }
  if (candidates.size() > options.max_rows) {
    const std::vector<size_t> perm = rng.Permutation(candidates.size());
    std::vector<size_t> sub;
    sub.reserve(options.max_rows);
    for (size_t i = 0; i < options.max_rows; ++i) {
      sub.push_back(candidates[perm[i]]);
    }
    candidates = std::move(sub);
  }

  const size_t n = candidates.size();
  const size_t d = feature_cols.size();
  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = candidates[i];
    for (size_t a = 0; a < d; ++a) {
      x[i][a] = static_cast<double>(table.Value(r, feature_cols[a]));
    }
    y[i] = static_cast<double>(labels[r]);
  }
  // Scale features to unit stddev so initial weights are comparable.
  for (size_t a = 0; a < d; ++a) {
    double mean = 0.0, m2 = 0.0;
    for (size_t i = 0; i < n; ++i) mean += x[i][a];
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) m2 += (x[i][a] - mean) * (x[i][a] - mean);
    const double sd = std::sqrt(m2 / static_cast<double>(n));
    if (sd > 1e-9) {
      for (size_t i = 0; i < n; ++i) x[i][a] = (x[i][a] - mean) / sd;
    }
  }

  MlkrResult result;
  std::vector<double> w(d, 0.5);
  std::vector<double> grad(d, 0.0);
  result.initial_loss = LossAndGradient(x, y, w, &grad);
  double loss = result.initial_loss;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    loss = LossAndGradient(x, y, w, &grad);
    const double lr =
        options.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t a = 0; a < d; ++a) {
      w[a] -= lr * grad[a];
      if (w[a] < 1e-3) w[a] = 1e-3;  // keep the metric non-degenerate
    }
  }
  result.final_loss = loss;
  result.weights = std::move(w);
  return result;
}

}  // namespace otclean::metric
