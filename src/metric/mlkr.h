#ifndef OTCLEAN_METRIC_MLKR_H_
#define OTCLEAN_METRIC_MLKR_H_

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"

namespace otclean::metric {

/// Diagonal Metric Learning for Kernel Regression (Weinberger & Tesauro,
/// AISTATS'07) — the supervised metric behind the paper's C2 cost function.
///
/// Learns per-attribute weights w minimizing the leave-one-out kernel
/// regression error of the (binary) label:
///   ŷ_i = Σ_{j≠i} k_ij y_j / Σ_{j≠i} k_ij,   k_ij = exp(−Σ_a w_a²(x_ia−x_ja)²)
/// by gradient descent on w. We restrict the metric to a diagonal matrix
/// (per-attribute scaling), which is what the weighted-Euclidean OT cost
/// consumes; see DESIGN.md for the substitution note.
struct MlkrOptions {
  size_t max_rows = 250;   ///< subsample cap (the objective is O(n²)).
  size_t epochs = 60;
  double learning_rate = 0.05;
  uint64_t seed = 31;
};

struct MlkrResult {
  std::vector<double> weights;  ///< per feature column, non-negative.
  double initial_loss = 0.0;
  double final_loss = 0.0;
};

/// Learns weights for `feature_cols` against the binary label in
/// `label_col`.
Result<MlkrResult> LearnMlkrWeights(const dataset::Table& table,
                                    size_t label_col,
                                    const std::vector<size_t>& feature_cols,
                                    const MlkrOptions& options = {});

}  // namespace otclean::metric

#endif  // OTCLEAN_METRIC_MLKR_H_
