#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/solve_cache.h"
#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"
#include "linalg/transport_kernel_f32.h"

namespace otclean::ot {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Guards the scaling vectors against overflow and junk. Kernels with a
/// large dynamic range (e.g. costs that effectively forbid some moves) can
/// push u or v past the double range over many iterations; an infinite
/// scaling entry then zeroes the opposite vector and silently drains the
/// plan — +inf (and any overflow past 1e150) clamps to 1e150 to keep
/// u·K·v finite. A NaN (a 0/0 — no mass demanded, none reachable) or a
/// negative entry means "no mass" and collapses to 0: mapping it to the
/// clamp CEILING, as this function once did, inflated u·K·v and
/// transport_cost with mass that never existed.
void ClampScaling(linalg::Vector& s) {
  constexpr double kMax = 1e150;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::isnan(s[i]) || s[i] < 0.0) {
      s[i] = 0.0;
    } else if (s[i] > kMax) {
      s[i] = kMax;
    }
  }
}

/// Relaxed update exponent λ/(λ+ε) (Frogner et al., Prop 4.2; the paper's
/// Eq. 5 exponent ρλ/(ρλ+1) with ρ = 1/ε). 1 in classic (hard-marginal)
/// mode.
double RelaxedExponent(const SinkhornOptions& options) {
  return options.relaxed ? options.lambda / (options.lambda + options.epsilon)
                         : 1.0;
}

/// THE convergence loop — every solver variant (dense, sparse, relaxed,
/// linear- or log-domain) runs this one loop and differs only in its
/// half-iteration updates and change metric. `row_update(v, new_u)` writes
/// the next row potential from the current column potential (including any
/// relaxed exponent and clamping); `col_update(new_u, new_v)` the
/// converse; `delta(a, b)` measures the max-change between successive
/// potentials.
/// A non-OK return means the solve was aborted by `options.cancel_token`
/// or `options.deadline` — the stop is checked once per iteration, before
/// the half-updates, so an abort never leaves a half-applied iteration
/// and a completed loop is bit-identical to one run without the checks.
/// The caller's ScopedStopFlag (installed around this loop) additionally
/// lets pooled kernel dispatches drain mid-iteration once a token fires.
template <typename RowUpdate, typename ColUpdate, typename Delta>
Status RunScalingLoop(linalg::Vector& u, linalg::Vector& v,
                      const SinkhornOptions& options, const char* where,
                      size_t& iterations, bool& converged,
                      RowUpdate&& row_update, ColUpdate&& col_update,
                      Delta&& delta) {
  linalg::Vector new_u(u.size()), new_v(v.size());
  for (size_t it = 0; it < options.max_iterations; ++it) {
    OTCLEAN_RETURN_NOT_OK(
        CheckStop(options.cancel_token, options.deadline, where));
    row_update(v, new_u);
    col_update(new_u, new_v);
    const double du = delta(new_u, u);
    const double dv = delta(new_v, v);
    std::swap(u, new_u);
    std::swap(v, new_v);
    iterations = it + 1;
    if (du <= options.tolerance && dv <= options.tolerance) {
      converged = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

/// Max-change between successive LOG-potential vectors. Two −inf entries
/// are an unchanged "no mass" state (Δ = 0 for that coordinate), but a
/// potential flipping between finite and −inf — mass appearing or
/// disappearing under relaxed mode — is a real, infinite change: it must
/// read as Δ = ∞, never be skipped, or the loop reports convergence in
/// the very iteration the support changed.
double LogPotentialDelta(const linalg::Vector& a, const linalg::Vector& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;  // equal finites, and −inf vs −inf
    const double di = std::fabs(a[i] - b[i]);
    if (!std::isfinite(di)) {
      return std::numeric_limits<double>::infinity();
    }
    d = std::max(d, di);
  }
  return d;
}

/// ln with log(0) := −inf (the log-domain "no mass" marker; note this is
/// NOT Vector::CwiseLogSafe, whose 0 ↦ 0 convention serves entropy sums).
double LogOrNegInf(double x) {
  return x > 0.0 ? std::log(x) : kNegInf;
}

Status ValidateMarginals(const char* where, const linalg::Vector& p,
                         const linalg::Vector& q) {
  for (size_t i = 0; i < p.size(); ++i) {
    if (!std::isfinite(p[i]) || p[i] < 0.0) {
      return Status::InvalidArgument(
          std::string(where) + ": source marginal p[" + std::to_string(i) +
          "] = " + std::to_string(p[i]) + " (entries must be finite and >= 0)");
    }
  }
  for (size_t j = 0; j < q.size(); ++j) {
    if (!std::isfinite(q[j]) || q[j] < 0.0) {
      return Status::InvalidArgument(
          std::string(where) + ": target marginal q[" + std::to_string(j) +
          "] = " + std::to_string(q[j]) + " (entries must be finite and >= 0)");
    }
  }
  return Status::OK();
}

/// Warm starts either match the problem exactly or are an error — a
/// silently ignored warm vector cold-starts the solve, which an outer
/// loop (FastOTClean) would never notice beyond mysteriously slow
/// convergence.
Status ValidateWarmStart(const char* where, const linalg::Vector* warm_u,
                         size_t rows, const linalg::Vector* warm_v,
                         size_t cols) {
  if (warm_u != nullptr && warm_u->size() != rows) {
    return Status::InvalidArgument(
        std::string(where) + ": warm_u has size " +
        std::to_string(warm_u->size()) + " but the problem has " +
        std::to_string(rows) + " rows (pass null to cold-start)");
  }
  if (warm_v != nullptr && warm_v->size() != cols) {
    return Status::InvalidArgument(
        std::string(where) + ": warm_v has size " +
        std::to_string(warm_v->size()) + " but the problem has " +
        std::to_string(cols) + " columns (pass null to cold-start)");
  }
  return Status::OK();
}

/// Generous upper bound on annealing stages — a schedule whose geometric
/// decay needs more than this many stages to reach the final ε (decay
/// pathologically close to 1, or an absurd initial/final ratio) is a
/// configuration error, not a workload.
constexpr size_t kMaxAnnealStages = 64;

Status ValidateSchedule(const char* where, const SinkhornOptions& options) {
  const EpsilonSchedule& s = options.epsilon_schedule;
  if (!s.enabled()) return Status::OK();
  if (!(s.initial_epsilon > options.epsilon)) {
    return Status::InvalidArgument(
        std::string(where) + ": epsilon_schedule.initial_epsilon (" +
        std::to_string(s.initial_epsilon) +
        ") must exceed the final epsilon (" + std::to_string(options.epsilon) +
        ") — annealing runs from easy (large ε) to sharp (small ε)");
  }
  if (!(s.decay > 0.0 && s.decay < 1.0)) {
    return Status::InvalidArgument(
        std::string(where) + ": epsilon_schedule.decay = " +
        std::to_string(s.decay) + " must lie in (0, 1)");
  }
  if (!(s.stage_tolerance > 0.0)) {
    return Status::InvalidArgument(
        std::string(where) + ": epsilon_schedule.stage_tolerance must be > 0");
  }
  if (s.stage_max_iterations == 0) {
    return Status::InvalidArgument(
        std::string(where) +
        ": epsilon_schedule.stage_max_iterations must be positive");
  }
  size_t stages = 0;
  for (double e = s.initial_epsilon; e > options.epsilon;
       e = std::max(options.epsilon, e * s.decay)) {
    if (++stages > kMaxAnnealStages) {
      return Status::InvalidArgument(
          std::string(where) + ": epsilon_schedule would run more than " +
          std::to_string(kMaxAnnealStages) +
          " stages — use a smaller decay or initial_epsilon");
    }
  }
  return Status::OK();
}

Status ValidateInputs(const char* where, const linalg::CostProvider& cost,
                      const linalg::Vector& p, const linalg::Vector& q,
                      const SinkhornOptions& options) {
  if (p.size() != cost.rows() || q.size() != cost.cols()) {
    return Status::InvalidArgument(std::string(where) +
                                   ": marginal dimension mismatch");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(std::string(where) +
                                   ": epsilon must be positive");
  }
  // max_iterations == 0 silently returned the cold-start potentials as a
  // "converged: false" result — an all-ones plan scaling that looks like a
  // solve. tolerance <= 0 (or NaN) can never be met, so every run burned
  // the full iteration budget and reported failure. Both are caller bugs;
  // reject them loudly.
  if (options.max_iterations == 0) {
    return Status::InvalidArgument(
        std::string(where) +
        ": max_iterations must be positive (a 0-iteration run would return "
        "the unsolved cold-start scalings)");
  }
  if (!(options.tolerance > 0.0)) {
    return Status::InvalidArgument(
        std::string(where) + ": tolerance = " +
        std::to_string(options.tolerance) +
        " can never be reached (it must be a positive number)");
  }
  if (Status s = ValidateSchedule(where, options); !s.ok()) return s;
  if (Status s = ValidateMarginals(where, p, q); !s.ok()) return s;
  return ValidateFiniteCosts(where, cost);
}

}  // namespace

// A NaN or ±inf cost entry propagates through the kernel into a NaN (or
// silently empty) plan; reject it up front, naming the offending entry.
// For function-backed providers this is a second full evaluation pass on
// top of the kernel build's — accepted deliberately: it runs once per
// solve (the iterations dominate), and checking inside the truncated
// kernel build instead would miss NaN entries entirely (NaN ≥ cutoff is
// false, so they are silently truncated away rather than caught).
Status ValidateFiniteCosts(const char* where,
                           const linalg::CostProvider& cost) {
  const size_t rows = cost.rows();
  const size_t cols = cost.cols();
  const auto fail = [&](size_t r, size_t c, double v) {
    return Status::InvalidArgument(
        std::string(where) + ": cost(" + std::to_string(r) + ", " +
        std::to_string(c) + ") = " + std::to_string(v) +
        " is not finite; costs must be finite (use a large finite penalty "
        "for forbidden moves)");
  };
  if (const linalg::Matrix* dense = cost.AsMatrix()) {
    const double* data = dense->data().data();
    for (size_t i = 0; i < dense->size(); ++i) {
      if (!std::isfinite(data[i])) return fail(i / cols, i % cols, data[i]);
    }
    return Status::OK();
  }
  std::vector<double> tile(std::min(cols, linalg::kCostStreamTileCols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c0 = 0; c0 < cols; c0 += tile.size()) {
      const size_t c1 = std::min(cols, c0 + tile.size());
      cost.Fill(r, c0, c1, tile.data());
      for (size_t c = c0; c < c1; ++c) {
        if (!std::isfinite(tile[c - c0])) return fail(r, c, tile[c - c0]);
      }
    }
  }
  return Status::OK();
}

namespace {

/// Per-solve view of the cross-request cache: resolves the key once,
/// no-ops throughout when the cache is absent or the fingerprint is 0.
/// One instance serves all four kernel-building paths (dense/sparse ×
/// linear/log) — the key's log_domain/sparse flags come from the options
/// and cutoff.
struct CacheSession {
  core::SolveCache* cache = nullptr;
  core::SolveCacheKey key;
  std::optional<core::CachedWarmStart> stored;
  bool warm_used = false;
  bool use_warm_store = false;

  CacheSession(const SinkhornOptions& options, size_t rows, size_t cols,
               double cutoff) {
    if (options.solve_cache == nullptr) return;
    key = core::MakeSolveCacheKey(options.cache_cost_fingerprint, rows, cols,
                                  options.epsilon, cutoff, options.log_domain,
                                  /*salt=*/0, options.precision);
    if (!key.valid()) return;
    cache = options.solve_cache;
    use_warm_store = options.cache_warm_start;
  }

  bool active() const { return cache != nullptr; }

  std::optional<core::CachedKernel> Find() {
    return active() ? cache->FindKernel(key) : std::nullopt;
  }

  void Publish(core::CachedKernel built) {
    if (active()) cache->InsertKernel(key, std::move(built));
  }

  /// Redirects null warm pointers at the stored potentials (caller's
  /// explicit warm vectors always win; stored sizes must match exactly —
  /// else cold-start fallback).
  void MaybeWarm(const linalg::Vector*& warm_u,
                 const linalg::Vector*& warm_v) {
    if (!active() || !use_warm_store) return;
    if (warm_u != nullptr || warm_v != nullptr) return;
    stored = cache->FindWarmStart(key);
    if (!stored) return;
    if (stored->u.size() != key.rows || stored->v.size() != key.cols) {
      stored.reset();
      return;
    }
    warm_u = &stored->u;
    warm_v = &stored->v;
    warm_used = true;
  }

  /// Persists converged potentials and credits iteration savings against
  /// the key's cold baseline. Diverged runs store nothing — their
  /// potentials would poison later warm starts.
  void Finish(const linalg::Vector& u, const linalg::Vector& v,
              size_t iterations, bool converged) {
    if (!active() || !use_warm_store || !converged) return;
    cache->StoreWarmStart(key, u, v, iterations);
    if (warm_used && stored->cold_iterations > iterations) {
      cache->RecordWarmSavings(stored->cold_iterations - iterations);
    }
  }
};

/// Lifts linear-domain warm-start scalings into log-potentials when
/// present (the public RunSinkhorn/RunSinkhornSparse APIs speak linear u/v
/// even in log-domain mode, so warm starts round-trip between domains).
void WarmLogPotentials(const linalg::Vector* warm, size_t size,
                       std::optional<linalg::Vector>& out) {
  if (warm == nullptr) return;
  out.emplace(size);
  for (size_t i = 0; i < size; ++i) (*out)[i] = LogOrNegInf((*warm)[i]);
}

/// Shared tail of both log-domain entry points: linear-domain u/v from
/// the converged log-potentials.
void ExpPotentials(const linalg::Vector& lp, linalg::Vector& out) {
  out = linalg::Vector(lp.size());
  for (size_t i = 0; i < lp.size(); ++i) {
    out[i] = lp[i] == kNegInf ? 0.0 : std::exp(lp[i]);
  }
  ClampScaling(out);
}

/// Potential carry-over between annealing stages: u ≈ e^{f/ε} for a dual
/// potential f that varies slowly with ε, so the stage-(k+1) start is
/// u^{ε_k/ε_{k+1}}. Zeros ("no mass") stay zero; the exponent exceeds 1
/// (ε shrinks), so clamp the blow-up exactly as the engine loop would.
void RescalePotentials(linalg::Vector& s, double ratio) {
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = s[i] > 0.0 ? std::pow(s[i], ratio) : 0.0;
  }
  ClampScaling(s);
}

/// Annealing applies only when nobody supplied a better start: explicit
/// warm vectors and warm-store hits are already warm. Call after
/// CacheSession::MaybeWarm so store hits have claimed the pointers.
bool ShouldAnneal(const SinkhornOptions& options, const linalg::Vector* warm_u,
                  const linalg::Vector* warm_v) {
  return options.epsilon_schedule.enabled() && warm_u == nullptr &&
         warm_v == nullptr;
}

/// One annealing stage: build (or fetch from the solve cache) the kernel
/// at the stage ε and run the engine loop at the schedule's loose
/// tolerance, updating the linear-domain potentials in place. The stage
/// honors log_domain and precision exactly as the final solve will, so
/// its warm start is shaped by the same arithmetic; no plan or transport
/// cost is ever materialized — stages exist only to move potentials.
Result<EpsilonAnnealStage> RunAnnealStage(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& stage_options,
    bool sparse, double cutoff, linalg::Vector& u, linalg::Vector& v,
    linalg::ThreadPool* pool) {
  const bool f32 = stage_options.precision == linalg::Precision::kFloat32;
  const size_t threads = stage_options.num_threads;
  const double eps = stage_options.epsilon;
  CacheSession session(stage_options, cost.rows(), cost.cols(),
                       sparse ? cutoff : 0.0);
  EpsilonAnnealStage stage;
  stage.epsilon = eps;

  // No per-stage support check: a stage ε exceeds the final ε, so its
  // truncated kept-set is a superset of the final kernel's — the final
  // solve's check governs. An emptied stage row merely yields a zero
  // potential there, which the final solve overwrites or rejects.
  if (stage_options.log_domain) {
    std::unique_ptr<const linalg::LogTransportKernel> kernel;
    if (sparse && f32) {
      std::shared_ptr<const linalg::SparseKernelStorageF32> shared;
      if (auto hit = session.Find()) shared = hit->sparse_f32;
      if (shared != nullptr) {
        kernel = std::make_unique<linalg::SparseLogTransportKernelF32>(
            std::move(shared), threads, pool);
      } else {
        auto built_kernel = linalg::SparseLogTransportKernelF32::FromCost(
            cost, eps, cutoff, threads, pool);
        core::CachedKernel built;
        built.sparse_f32 = built_kernel.shared_storage();
        session.Publish(std::move(built));
        kernel = std::make_unique<linalg::SparseLogTransportKernelF32>(
            std::move(built_kernel));
      }
    } else if (sparse) {
      std::shared_ptr<const linalg::SparseKernelStorage> shared;
      if (auto hit = session.Find()) shared = hit->sparse;
      if (shared != nullptr) {
        kernel = std::make_unique<linalg::SparseLogTransportKernel>(
            std::move(shared), threads, pool);
      } else {
        auto built_kernel = linalg::SparseLogTransportKernel::FromCost(
            cost, eps, cutoff, threads, pool);
        core::CachedKernel built;
        built.sparse = built_kernel.shared_storage();
        session.Publish(std::move(built));
        kernel = std::make_unique<linalg::SparseLogTransportKernel>(
            std::move(built_kernel));
      }
    } else if (f32) {
      std::shared_ptr<const linalg::DenseKernelStorageF32> shared;
      if (auto hit = session.Find()) shared = hit->dense_f32;
      if (shared != nullptr) {
        kernel = std::make_unique<linalg::DenseLogTransportKernelF32>(
            std::move(shared), threads, pool);
      } else {
        auto built_kernel = linalg::DenseLogTransportKernelF32::FromCost(
            cost, eps, threads, pool);
        core::CachedKernel built;
        built.dense_f32 = built_kernel.shared_storage();
        session.Publish(std::move(built));
        kernel = std::make_unique<linalg::DenseLogTransportKernelF32>(
            std::move(built_kernel));
      }
    } else {
      std::shared_ptr<const linalg::Matrix> shared;
      if (auto hit = session.Find()) shared = hit->dense;
      if (shared != nullptr) {
        kernel = std::make_unique<linalg::DenseLogTransportKernel>(
            std::move(shared), threads, pool);
      } else {
        auto built_kernel = linalg::DenseLogTransportKernel::FromCost(
            cost, eps, threads, pool);
        core::CachedKernel built;
        built.dense = built_kernel.shared_log_kernel();
        session.Publish(std::move(built));
        kernel = std::make_unique<linalg::DenseLogTransportKernel>(
            std::move(built_kernel));
      }
    }
    std::optional<linalg::Vector> lu, lv;
    WarmLogPotentials(&u, u.size(), lu);
    WarmLogPotentials(&v, v.size(), lv);
    OTCLEAN_ASSIGN_OR_RETURN(
        SinkhornLogScaling scaling,
        RunSinkhornLogScaling(*kernel, p, q, stage_options, &*lu, &*lv));
    ExpPotentials(scaling.lu, u);
    ExpPotentials(scaling.lv, v);
    stage.iterations = scaling.iterations;
    stage.converged = scaling.converged;
    return stage;
  }

  // Dense linear kernels build from an in-memory cost; a function-backed
  // provider on the dense path falls back to a cutoff-0 sparse kernel
  // (same support, streamed build) so the stage never materializes the
  // cost matrix.
  const linalg::Matrix* dense_cost = cost.AsMatrix();
  const bool use_sparse = sparse || dense_cost == nullptr;
  const double stage_cutoff = sparse ? cutoff : 0.0;
  std::unique_ptr<const linalg::TransportKernel> kernel;
  if (use_sparse && f32) {
    std::shared_ptr<const linalg::SparseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->sparse_f32;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::SparseTransportKernelF32>(
          std::move(shared), threads, pool);
    } else {
      auto built_kernel = linalg::SparseTransportKernelF32::FromCost(
          cost, eps, stage_cutoff, threads, pool);
      core::CachedKernel built;
      built.sparse_f32 = built_kernel.shared_storage();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::SparseTransportKernelF32>(
          std::move(built_kernel));
    }
  } else if (use_sparse) {
    std::shared_ptr<const linalg::SparseKernelStorage> shared;
    if (auto hit = session.Find()) shared = hit->sparse;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::SparseTransportKernel>(
          std::move(shared), threads, pool);
    } else {
      auto built_kernel = linalg::SparseTransportKernel::FromCost(
          cost, eps, stage_cutoff, threads, pool);
      core::CachedKernel built;
      built.sparse = built_kernel.shared_storage();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::SparseTransportKernel>(
          std::move(built_kernel));
    }
  } else if (f32) {
    std::shared_ptr<const linalg::DenseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->dense_f32;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseTransportKernelF32>(
          std::move(shared), threads, pool);
    } else {
      auto built_kernel = linalg::DenseTransportKernelF32::FromCost(
          *dense_cost, eps, threads, pool);
      core::CachedKernel built;
      built.dense_f32 = built_kernel.shared_storage();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseTransportKernelF32>(
          std::move(built_kernel));
    }
  } else {
    std::shared_ptr<const linalg::Matrix> shared;
    if (auto hit = session.Find()) shared = hit->dense;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseTransportKernel>(
          std::move(shared), threads, pool);
    } else {
      auto built_kernel = linalg::DenseTransportKernel::FromCost(
          *dense_cost, eps, threads, pool);
      core::CachedKernel built;
      built.dense = built_kernel.shared_kernel();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseTransportKernel>(
          std::move(built_kernel));
    }
  }
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornScaling scaling,
      RunSinkhornScaling(*kernel, p, q, stage_options, &u, &v));
  u = std::move(scaling.u);
  v = std::move(scaling.v);
  stage.iterations = scaling.iterations;
  stage.converged = scaling.converged;
  return stage;
}

/// Log-domain dense solve: a thin client of RunSinkhornLogScaling over a
/// DenseLogTransportKernel — the same engine loop, SIMD'd streamed-LSE
/// primitives, and thread pool as every other variant (this replaces the
/// seed's one-off loop that re-read the cost matrix twice per iteration).
Result<SinkhornResult> RunSinkhornLogDomain(const linalg::Matrix& cost,
                                            const linalg::Vector& p,
                                            const linalg::Vector& q,
                                            const SinkhornOptions& options,
                                            const linalg::Vector* warm_u,
                                            const linalg::Vector* warm_v,
                                            linalg::ThreadPool* pool) {
  CacheSession session(options, cost.rows(), cost.cols(), /*cutoff=*/0.0);
  session.MaybeWarm(warm_u, warm_v);
  EpsilonAnnealWarmStart anneal;
  if (ShouldAnneal(options, warm_u, warm_v)) {
    OTCLEAN_ASSIGN_OR_RETURN(
        anneal,
        RunSinkhornAnnealed(linalg::MatrixCostProvider(cost), p, q, options,
                            /*sparse=*/false, /*cutoff=*/0.0, pool));
    warm_u = &anneal.u;
    warm_v = &anneal.v;
  }
  std::unique_ptr<const linalg::LogTransportKernel> kernel;
  if (options.precision == linalg::Precision::kFloat32) {
    std::shared_ptr<const linalg::DenseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->dense_f32;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseLogTransportKernelF32>(
          std::move(shared), options.num_threads, pool);
    } else {
      auto built_kernel = linalg::DenseLogTransportKernelF32::FromCost(
          cost, options.epsilon, options.num_threads, pool);
      core::CachedKernel built;
      built.dense_f32 = built_kernel.shared_storage();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseLogTransportKernelF32>(
          std::move(built_kernel));
    }
  } else {
    std::shared_ptr<const linalg::Matrix> shared;
    if (auto hit = session.Find()) shared = hit->dense;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseLogTransportKernel>(
          std::move(shared), options.num_threads, pool);
    } else {
      auto built_kernel = linalg::DenseLogTransportKernel::FromCost(
          cost, options.epsilon, options.num_threads, pool);
      core::CachedKernel built;
      built.dense = built_kernel.shared_log_kernel();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseLogTransportKernel>(
          std::move(built_kernel));
    }
  }
  std::optional<linalg::Vector> warm_lu, warm_lv;
  WarmLogPotentials(warm_u, cost.rows(), warm_lu);
  WarmLogPotentials(warm_v, cost.cols(), warm_lv);
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornLogScaling scaling,
      RunSinkhornLogScaling(*kernel, p, q, options,
                            warm_lu ? &*warm_lu : nullptr,
                            warm_lv ? &*warm_lv : nullptr));

  SinkhornResult result;
  result.plan = kernel->ScaleToPlan(scaling.lu, scaling.lv);
  result.transport_cost =
      kernel->TransportCost(linalg::MatrixCostProvider(cost), scaling.lu,
                            scaling.lv);
  ExpPotentials(scaling.lu, result.u);
  ExpPotentials(scaling.lv, result.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  result.anneal_stages = std::move(anneal.stages);
  session.Finish(result.u, result.v, result.iterations, result.converged);
  return result;
}

}  // namespace

Result<SinkhornScaling> RunSinkhornScaling(
    const linalg::TransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_u, const linalg::Vector* warm_v) {
  const size_t m = kernel.rows();
  const size_t n = kernel.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument(
        "RunSinkhornScaling: marginal dimension mismatch");
  }
  if (Status s = ValidateMarginals("RunSinkhornScaling", p, q); !s.ok()) {
    return s;
  }
  if (Status s = ValidateWarmStart("RunSinkhornScaling", warm_u, m, warm_v, n);
      !s.ok()) {
    return s;
  }
  SinkhornScaling out;
  out.u = warm_u != nullptr ? *warm_u : linalg::Vector::Ones(m);
  out.v = warm_v != nullptr ? *warm_v : linalg::Vector::Ones(n);

  const double exponent = RelaxedExponent(options);
  linalg::Vector kv(m), ktu(n);
  // Element-wise into the loop's preallocated buffer — the equivalent of
  // CwiseQuotientSafe (x/0 := 0) + CwisePow (zeros preserved) +
  // ClampScaling, without per-half-iteration allocations. Same policy as
  // ClampScaling: overflow to the ceiling, NaN/negative to no-mass 0.
  auto scale = [&](const linalg::Vector& marginal, const linalg::Vector& denom,
                   linalg::Vector& next) {
    constexpr double kMax = 1e150;
    for (size_t i = 0; i < next.size(); ++i) {
      double s = denom[i] != 0.0 ? marginal[i] / denom[i] : 0.0;
      if (exponent != 1.0) s = s > 0.0 ? std::pow(s, exponent) : 0.0;
      if (std::isnan(s) || s < 0.0) {
        s = 0.0;
      } else if (s > kMax) {
        s = kMax;
      }
      next[i] = s;
    }
  };

  // While the loop runs, pooled kernel dispatches observe the token too:
  // a fired token drains in-flight Apply/ApplyTranspose dispatches without
  // touching their chunk decomposition.
  linalg::ThreadPool::ScopedStopFlag stop_scope(
      options.cancel_token != nullptr ? options.cancel_token->flag()
                                      : nullptr);
  OTCLEAN_RETURN_NOT_OK(RunScalingLoop(
      out.u, out.v, options, "RunSinkhornScaling", out.iterations,
      out.converged,
      /*row_update=*/
      [&](const linalg::Vector& v, linalg::Vector& next_u) {
        kernel.Apply(v, kv);
        scale(p, kv, next_u);
      },
      /*col_update=*/
      [&](const linalg::Vector& u, linalg::Vector& next_v) {
        kernel.ApplyTranspose(u, ktu);
        scale(q, ktu, next_v);
      },
      /*delta=*/
      [](const linalg::Vector& a, const linalg::Vector& b) {
        return (a - b).NormInf();
      }));
  return out;
}

Result<SinkhornLogScaling> RunSinkhornLogScaling(
    const linalg::LogTransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_lu, const linalg::Vector* warm_lv) {
  const size_t m = kernel.rows();
  const size_t n = kernel.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument(
        "RunSinkhornLogScaling: marginal dimension mismatch");
  }
  if (Status s = ValidateMarginals("RunSinkhornLogScaling", p, q); !s.ok()) {
    return s;
  }
  if (Status s = ValidateWarmStart("RunSinkhornLogScaling", warm_lu, m,
                                   warm_lv, n);
      !s.ok()) {
    return s;
  }
  linalg::Vector log_p(m), log_q(n);
  for (size_t i = 0; i < m; ++i) log_p[i] = LogOrNegInf(p[i]);
  for (size_t j = 0; j < n; ++j) log_q[j] = LogOrNegInf(q[j]);

  SinkhornLogScaling out;
  out.lu = warm_lu != nullptr ? *warm_lu : linalg::Vector(m, 0.0);
  out.lv = warm_lv != nullptr ? *warm_lv : linalg::Vector(n, 0.0);

  const double exponent = RelaxedExponent(options);
  linalg::Vector lse_rows(m), lse_cols(n);
  linalg::ThreadPool::ScopedStopFlag stop_scope(
      options.cancel_token != nullptr ? options.cancel_token->flag()
                                      : nullptr);
  OTCLEAN_RETURN_NOT_OK(RunScalingLoop(
      out.lu, out.lv, options, "RunSinkhornLogScaling", out.iterations,
      out.converged,
      // Log-domain half-iterations: lu_i = λ'·(log p_i − log(K·v)_i) with
      // the LSE streamed by the kernel; p_i = 0 (or an unreachable row)
      // keeps lu_i = −inf, matching the linear-domain 0/0 := 0 convention.
      /*row_update=*/
      [&](const linalg::Vector& lvv, linalg::Vector& next_lu) {
        kernel.LogApply(lvv, lse_rows);
        for (size_t i = 0; i < m; ++i) {
          next_lu[i] = (log_p[i] == kNegInf || lse_rows[i] == kNegInf)
                           ? kNegInf
                           : exponent * (log_p[i] - lse_rows[i]);
        }
      },
      /*col_update=*/
      [&](const linalg::Vector& luu, linalg::Vector& next_lv) {
        kernel.LogApplyTranspose(luu, lse_cols);
        for (size_t j = 0; j < n; ++j) {
          next_lv[j] = (log_q[j] == kNegInf || lse_cols[j] == kNegInf)
                           ? kNegInf
                           : exponent * (log_q[j] - lse_cols[j]);
        }
      },
      /*delta=*/LogPotentialDelta));
  return out;
}

Result<SinkhornResult> RunSinkhorn(const linalg::Matrix& cost,
                                   const linalg::Vector& p,
                                   const linalg::Vector& q,
                                   const SinkhornOptions& options,
                                   const linalg::Vector* warm_u,
                                   const linalg::Vector* warm_v) {
  if (Status s = ValidateInputs("RunSinkhorn", linalg::MatrixCostProvider(cost),
                                p, q, options);
      !s.ok()) {
    return s;
  }
  if (Status s = ValidateWarmStart("RunSinkhorn", warm_u, cost.rows(), warm_v,
                                   cost.cols());
      !s.ok()) {
    return s;
  }
  // Entry stop check: an already-fired token / expired deadline aborts
  // before any kernel is built (or fetched and pinned from the cache).
  OTCLEAN_RETURN_NOT_OK(
      CheckStop(options.cancel_token, options.deadline, "RunSinkhorn"));
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);
  if (options.log_domain) {
    return RunSinkhornLogDomain(cost, p, q, options, warm_u, warm_v, pool);
  }

  CacheSession session(options, cost.rows(), cost.cols(), /*cutoff=*/0.0);
  session.MaybeWarm(warm_u, warm_v);
  EpsilonAnnealWarmStart anneal;
  if (ShouldAnneal(options, warm_u, warm_v)) {
    OTCLEAN_ASSIGN_OR_RETURN(
        anneal,
        RunSinkhornAnnealed(linalg::MatrixCostProvider(cost), p, q, options,
                            /*sparse=*/false, /*cutoff=*/0.0, pool));
    warm_u = &anneal.u;
    warm_v = &anneal.v;
  }
  std::unique_ptr<const linalg::TransportKernel> kernel;
  if (options.precision == linalg::Precision::kFloat32) {
    std::shared_ptr<const linalg::DenseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->dense_f32;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseTransportKernelF32>(
          std::move(shared), options.num_threads, pool);
    } else {
      auto built_kernel = linalg::DenseTransportKernelF32::FromCost(
          cost, options.epsilon, options.num_threads, pool);
      core::CachedKernel built;
      built.dense_f32 = built_kernel.shared_storage();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseTransportKernelF32>(
          std::move(built_kernel));
    }
  } else {
    std::shared_ptr<const linalg::Matrix> shared;
    if (auto hit = session.Find()) shared = hit->dense;
    if (shared != nullptr) {
      kernel = std::make_unique<linalg::DenseTransportKernel>(
          std::move(shared), options.num_threads, pool);
    } else {
      auto built_kernel = linalg::DenseTransportKernel::FromCost(
          cost, options.epsilon, options.num_threads, pool);
      core::CachedKernel built;
      built.dense = built_kernel.shared_kernel();
      session.Publish(std::move(built));
      kernel = std::make_unique<linalg::DenseTransportKernel>(
          std::move(built_kernel));
    }
  }
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornScaling scaling,
      RunSinkhornScaling(*kernel, p, q, options, warm_u, warm_v));

  SinkhornResult result;
  result.plan = kernel->ScaleToPlan(scaling.u, scaling.v);
  result.transport_cost = kernel->TransportCost(cost, scaling.u, scaling.v);
  result.u = std::move(scaling.u);
  result.v = std::move(scaling.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  result.anneal_stages = std::move(anneal.stages);
  session.Finish(result.u, result.v, result.iterations, result.converged);
  return result;
}

Status CheckTruncatedKernelSupport(const linalg::SparseMatrix& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where) {
  const auto& row_ptr = kernel.row_ptr();
  if (p != nullptr) {
    for (size_t r = 0; r < kernel.rows(); ++r) {
      if ((*p)[r] > 0.0 && row_ptr[r + 1] == row_ptr[r]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel row " +
            std::to_string(r) + " which carries source mass " +
            std::to_string((*p)[r]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  if (q != nullptr) {
    std::vector<bool> col_nonempty(kernel.cols(), false);
    for (size_t c : kernel.col_index()) col_nonempty[c] = true;
    for (size_t c = 0; c < kernel.cols(); ++c) {
      if ((*q)[c] > 0.0 && !col_nonempty[c]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel column " +
            std::to_string(c) + " which carries target mass " +
            std::to_string((*q)[c]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  return Status::OK();
}

Status CheckTruncatedKernelSupport(const linalg::SparseKernelStorageF32& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where) {
  if (p != nullptr) {
    for (size_t r = 0; r < kernel.rows; ++r) {
      if ((*p)[r] > 0.0 && kernel.row_ptr[r + 1] == kernel.row_ptr[r]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel row " +
            std::to_string(r) + " which carries source mass " +
            std::to_string((*p)[r]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  if (q != nullptr) {
    for (size_t c = 0; c < kernel.cols; ++c) {
      if ((*q)[c] > 0.0 && kernel.col_ptr[c + 1] == kernel.col_ptr[c]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel column " +
            std::to_string(c) + " which carries target mass " +
            std::to_string((*q)[c]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  return Status::OK();
}

Result<EpsilonAnnealWarmStart> RunSinkhornAnnealed(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options, bool sparse,
    double cutoff, linalg::ThreadPool* pool) {
  const EpsilonSchedule& sched = options.epsilon_schedule;
  if (!sched.enabled()) {
    return Status::InvalidArgument(
        "RunSinkhornAnnealed: epsilon_schedule is disabled "
        "(initial_epsilon == 0) — there are no stages to run");
  }
  if (Status s = ValidateSchedule("RunSinkhornAnnealed", options); !s.ok()) {
    return s;
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(
        "RunSinkhornAnnealed: epsilon must be positive");
  }
  if (p.size() != cost.rows() || q.size() != cost.cols()) {
    return Status::InvalidArgument(
        "RunSinkhornAnnealed: marginal dimension mismatch");
  }
  if (Status s = ValidateMarginals("RunSinkhornAnnealed", p, q); !s.ok()) {
    return s;
  }
  std::optional<linalg::ThreadPool> owned_pool;
  if (pool == nullptr) {
    pool = linalg::ResolveSolvePool(options.thread_pool, options.num_threads,
                                    owned_pool);
  }

  EpsilonAnnealWarmStart out;
  out.u = linalg::Vector::Ones(cost.rows());
  out.v = linalg::Vector::Ones(cost.cols());
  double eps = sched.initial_epsilon;
  while (eps > options.epsilon) {
    // Per-stage stop check; the stage options copy below also carries the
    // token/deadline into the stage's own engine loop.
    OTCLEAN_RETURN_NOT_OK(CheckStop(options.cancel_token, options.deadline,
                                    "RunSinkhornAnnealed"));
    SinkhornOptions stage_options = options;
    stage_options.epsilon = eps;
    stage_options.tolerance = sched.stage_tolerance;
    stage_options.max_iterations = sched.stage_max_iterations;
    // Stage kernels get their own cache entries (the key carries the
    // stage ε), but the warm-start tier stays final-ε only: stage
    // potentials are deliberately half-baked.
    stage_options.cache_warm_start = false;
    stage_options.epsilon_schedule = EpsilonSchedule{};
    OTCLEAN_ASSIGN_OR_RETURN(
        EpsilonAnnealStage stage,
        RunAnnealStage(cost, p, q, stage_options, sparse, cutoff, out.u,
                       out.v, pool));
    out.stages.push_back(stage);
    const double next = std::max(options.epsilon, eps * sched.decay);
    RescalePotentials(out.u, eps / next);
    RescalePotentials(out.v, eps / next);
    eps = next;
  }
  return out;
}

double PlanEntropy(const linalg::Matrix& plan) {
  double h = 0.0;
  for (double v : plan.data()) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

namespace {

/// Shared tail of the sparse linear branches (f64 and f32 kernels):
/// engine loop + CSR plan + streamed cost + warm-store bookkeeping.
template <typename Kernel>
Result<SparseSinkhornResult> FinishSparseLinear(
    const Kernel& kernel, const linalg::CostProvider& cost,
    const linalg::Vector& p, const linalg::Vector& q,
    const SinkhornOptions& options, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v, CacheSession& session) {
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornScaling scaling,
      RunSinkhornScaling(kernel, p, q, options, warm_u, warm_v));
  SparseSinkhornResult result;
  result.plan = kernel.ScaleToPlanSparse(scaling.u, scaling.v);
  result.transport_cost = kernel.TransportCost(cost, scaling.u, scaling.v);
  result.u = std::move(scaling.u);
  result.v = std::move(scaling.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  session.Finish(result.u, result.v, result.iterations, result.converged);
  return result;
}

/// Log twin: lifts linear warm starts to log-potentials and exps the
/// converged potentials back.
template <typename Kernel>
Result<SparseSinkhornResult> FinishSparseLog(
    const Kernel& kernel, const linalg::CostProvider& cost,
    const linalg::Vector& p, const linalg::Vector& q,
    const SinkhornOptions& options, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v, CacheSession& session) {
  std::optional<linalg::Vector> warm_lu, warm_lv;
  WarmLogPotentials(warm_u, cost.rows(), warm_lu);
  WarmLogPotentials(warm_v, cost.cols(), warm_lv);
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornLogScaling scaling,
      RunSinkhornLogScaling(kernel, p, q, options,
                            warm_lu ? &*warm_lu : nullptr,
                            warm_lv ? &*warm_lv : nullptr));
  SparseSinkhornResult result;
  result.plan = kernel.ScaleToPlanSparse(scaling.lu, scaling.lv);
  result.transport_cost = kernel.TransportCost(cost, scaling.lu, scaling.lv);
  ExpPotentials(scaling.lu, result.u);
  ExpPotentials(scaling.lv, result.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  session.Finish(result.u, result.v, result.iterations, result.converged);
  return result;
}

}  // namespace

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v) {
  if (Status s = ValidateInputs("RunSinkhornSparse", cost, p, q, options);
      !s.ok()) {
    return s;
  }
  if (kernel_cutoff < 0.0) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: kernel_cutoff must be >= 0");
  }
  if (Status s = ValidateWarmStart("RunSinkhornSparse", warm_u, cost.rows(),
                                   warm_v, cost.cols());
      !s.ok()) {
    return s;
  }
  OTCLEAN_RETURN_NOT_OK(
      CheckStop(options.cancel_token, options.deadline, "RunSinkhornSparse"));

  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  // Hard-marginal mode must reach every row and column carrying mass.
  // Relaxed mode only soft-matches the target marginal, so an unreachable
  // column legitimately ends up under-served — check rows only (stranded
  // *source* mass silently degrades repairs to the identity either way).
  // Linear and log-domain kernels share one kept-set, so the check is the
  // same for both.
  const linalg::Vector* q_check = options.relaxed ? nullptr : &q;

  CacheSession session(options, cost.rows(), cost.cols(), kernel_cutoff);
  session.MaybeWarm(warm_u, warm_v);
  EpsilonAnnealWarmStart anneal;
  if (ShouldAnneal(options, warm_u, warm_v)) {
    OTCLEAN_ASSIGN_OR_RETURN(
        anneal, RunSinkhornAnnealed(cost, p, q, options, /*sparse=*/true,
                                    kernel_cutoff, pool));
    warm_u = &anneal.u;
    warm_v = &anneal.v;
  }

  const bool f32 = options.precision == linalg::Precision::kFloat32;
  SparseSinkhornResult result;
  if (options.log_domain && f32) {
    std::shared_ptr<const linalg::SparseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->sparse_f32;
    const bool kernel_hit = shared != nullptr;
    const linalg::SparseLogTransportKernelF32 kernel =
        kernel_hit
            ? linalg::SparseLogTransportKernelF32(std::move(shared),
                                                  options.num_threads, pool)
            : linalg::SparseLogTransportKernelF32::FromCost(
                  cost, options.epsilon, kernel_cutoff, options.num_threads,
                  pool);
    if (!kernel_hit) {
      core::CachedKernel built;
      built.sparse_f32 = kernel.shared_storage();
      session.Publish(std::move(built));
    }
    // Support depends on p/q, not just the kernel — re-check on hits too.
    if (Status s = CheckTruncatedKernelSupport(*kernel.shared_storage(), &p,
                                               q_check, "RunSinkhornSparse");
        !s.ok()) {
      return s;
    }
    OTCLEAN_ASSIGN_OR_RETURN(
        result, FinishSparseLog(kernel, cost, p, q, options, warm_u, warm_v,
                                session));
  } else if (options.log_domain) {
    std::shared_ptr<const linalg::SparseKernelStorage> shared;
    if (auto hit = session.Find()) shared = hit->sparse;
    const bool kernel_hit = shared != nullptr;
    const linalg::SparseLogTransportKernel kernel =
        kernel_hit
            ? linalg::SparseLogTransportKernel(std::move(shared),
                                               options.num_threads, pool)
            : linalg::SparseLogTransportKernel::FromCost(
                  cost, options.epsilon, kernel_cutoff, options.num_threads,
                  pool);
    if (!kernel_hit) {
      core::CachedKernel built;
      built.sparse = kernel.shared_storage();
      session.Publish(std::move(built));
    }
    // Support depends on p/q, not just the kernel — re-check on hits too.
    if (Status s = CheckTruncatedKernelSupport(kernel.log_kernel(), &p,
                                               q_check, "RunSinkhornSparse");
        !s.ok()) {
      return s;
    }
    OTCLEAN_ASSIGN_OR_RETURN(
        result, FinishSparseLog(kernel, cost, p, q, options, warm_u, warm_v,
                                session));
  } else if (f32) {
    std::shared_ptr<const linalg::SparseKernelStorageF32> shared;
    if (auto hit = session.Find()) shared = hit->sparse_f32;
    const bool kernel_hit = shared != nullptr;
    const linalg::SparseTransportKernelF32 kernel =
        kernel_hit ? linalg::SparseTransportKernelF32(std::move(shared),
                                                      options.num_threads,
                                                      pool)
                   : linalg::SparseTransportKernelF32::FromCost(
                         cost, options.epsilon, kernel_cutoff,
                         options.num_threads, pool);
    if (!kernel_hit) {
      core::CachedKernel built;
      built.sparse_f32 = kernel.shared_storage();
      session.Publish(std::move(built));
    }
    if (Status s = CheckTruncatedKernelSupport(*kernel.shared_storage(), &p,
                                               q_check, "RunSinkhornSparse");
        !s.ok()) {
      return s;
    }
    OTCLEAN_ASSIGN_OR_RETURN(
        result, FinishSparseLinear(kernel, cost, p, q, options, warm_u,
                                   warm_v, session));
  } else {
    std::shared_ptr<const linalg::SparseKernelStorage> shared;
    if (auto hit = session.Find()) shared = hit->sparse;
    const bool kernel_hit = shared != nullptr;
    const linalg::SparseTransportKernel kernel =
        kernel_hit ? linalg::SparseTransportKernel(std::move(shared),
                                                   options.num_threads, pool)
                   : linalg::SparseTransportKernel::FromCost(
                         cost, options.epsilon, kernel_cutoff,
                         options.num_threads, pool);
    if (!kernel_hit) {
      core::CachedKernel built;
      built.sparse = kernel.shared_storage();
      session.Publish(std::move(built));
    }
    if (Status s = CheckTruncatedKernelSupport(kernel.kernel(), &p, q_check,
                                               "RunSinkhornSparse");
        !s.ok()) {
      return s;
    }
    OTCLEAN_ASSIGN_OR_RETURN(
        result, FinishSparseLinear(kernel, cost, p, q, options, warm_u,
                                   warm_v, session));
  }
  result.anneal_stages = std::move(anneal.stages);
  return result;
}

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v) {
  return RunSinkhornSparse(linalg::MatrixCostProvider(cost), p, q, options,
                           kernel_cutoff, warm_u, warm_v);
}

}  // namespace otclean::ot
