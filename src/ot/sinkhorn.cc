#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"

namespace otclean::ot {

namespace {

/// Guards the scaling vectors against overflow. Kernels with a large
/// dynamic range (e.g. costs that effectively forbid some moves) can push
/// u or v past the double range over many iterations; an infinite scaling
/// entry then zeroes the opposite vector and silently drains the plan.
/// Clamping at 1e150 keeps u·K·v finite without affecting normal runs.
void ClampScaling(linalg::Vector& s) {
  constexpr double kMax = 1e150;
  for (size_t i = 0; i < s.size(); ++i) {
    if (!std::isfinite(s[i]) || s[i] > kMax) s[i] = kMax;
  }
}

/// Relaxed update exponent λ/(λ+ε) (Frogner et al., Prop 4.2; the paper's
/// Eq. 5 exponent ρλ/(ρλ+1) with ρ = 1/ε). 1 in classic (hard-marginal)
/// mode.
double RelaxedExponent(const SinkhornOptions& options) {
  return options.relaxed ? options.lambda / (options.lambda + options.epsilon)
                         : 1.0;
}

/// THE convergence loop — every solver variant (dense, sparse, relaxed,
/// log-domain) runs this one loop and differs only in its half-iteration
/// updates and change metric. `row_update(v, new_u)` writes the next row
/// potential from the current column potential (including any relaxed
/// exponent and clamping); `col_update(new_u, new_v)` the converse;
/// `delta(a, b)` measures the max-change between successive potentials.
template <typename RowUpdate, typename ColUpdate, typename Delta>
void RunScalingLoop(linalg::Vector& u, linalg::Vector& v,
                    const SinkhornOptions& options, size_t& iterations,
                    bool& converged, RowUpdate&& row_update,
                    ColUpdate&& col_update, Delta&& delta) {
  linalg::Vector new_u(u.size()), new_v(v.size());
  for (size_t it = 0; it < options.max_iterations; ++it) {
    row_update(v, new_u);
    col_update(new_u, new_v);
    const double du = delta(new_u, u);
    const double dv = delta(new_v, v);
    std::swap(u, new_u);
    std::swap(v, new_v);
    iterations = it + 1;
    if (du <= options.tolerance && dv <= options.tolerance) {
      converged = true;
      return;
    }
  }
}

/// Log-domain variant: iterates log-potentials lu, lv with log(K·v)_i
/// computed by a streaming log-sum-exp over −C_ij/ε + lv_j. Entries with
/// p_i = 0 (or q_j = 0) keep lu_i = −inf, matching the linear-domain
/// 0/0 := 0 convention.
Result<SinkhornResult> RunSinkhornLogDomain(const linalg::Matrix& cost,
                                            const linalg::Vector& p,
                                            const linalg::Vector& q,
                                            const SinkhornOptions& options,
                                            const linalg::Vector* warm_u,
                                            const linalg::Vector* warm_v,
                                            linalg::ThreadPool* pool) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  const double eps = options.epsilon;
  const double exponent = RelaxedExponent(options);
  const size_t threads = linalg::ResolveThreadCount(options.num_threads);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto safe_log = [](double x) {
    return x > 0.0 ? std::log(x) : -std::numeric_limits<double>::infinity();
  };
  linalg::Vector log_p(m), log_q(n);
  for (size_t i = 0; i < m; ++i) log_p[i] = safe_log(p[i]);
  for (size_t j = 0; j < n; ++j) log_q[j] = safe_log(q[j]);

  linalg::Vector lu(m, 0.0), lv(n, 0.0);
  if (warm_u != nullptr && warm_u->size() == m) {
    for (size_t i = 0; i < m; ++i) lu[i] = safe_log((*warm_u)[i]);
  }
  if (warm_v != nullptr && warm_v->size() == n) {
    for (size_t j = 0; j < n; ++j) lv[j] = safe_log((*warm_v)[j]);
  }

  // lse over j of (lv_j − C_ij/ε), per row i (and the transpose for lv).
  // Each output row/column is owned by one worker — deterministic.
  linalg::Vector lse(std::max(m, n));
  auto lse_rows = [&](const linalg::Vector& lvv) {
    linalg::ParallelFor(
        m, threads,
        [&](size_t i0, size_t i1) {
          for (size_t i = i0; i < i1; ++i) {
            double mx = kNegInf;
            for (size_t j = 0; j < n; ++j) {
              const double t = lvv[j] - cost(i, j) / eps;
              if (t > mx) mx = t;
            }
            if (mx == kNegInf) {
              lse[i] = kNegInf;
              continue;
            }
            double s = 0.0;
            for (size_t j = 0; j < n; ++j) {
              s += std::exp(lvv[j] - cost(i, j) / eps - mx);
            }
            lse[i] = mx + std::log(s);
          }
        },
        linalg::GrainForWork(n), pool);
  };
  auto lse_cols = [&](const linalg::Vector& luu) {
    linalg::ParallelFor(
        n, threads,
        [&](size_t j0, size_t j1) {
          for (size_t j = j0; j < j1; ++j) {
            double mx = kNegInf;
            for (size_t i = 0; i < m; ++i) {
              const double t = luu[i] - cost(i, j) / eps;
              if (t > mx) mx = t;
            }
            if (mx == kNegInf) {
              lse[j] = kNegInf;
              continue;
            }
            double s = 0.0;
            for (size_t i = 0; i < m; ++i) {
              s += std::exp(luu[i] - cost(i, j) / eps - mx);
            }
            lse[j] = mx + std::log(s);
          }
        },
        linalg::GrainForWork(m), pool);
  };

  SinkhornResult result;
  RunScalingLoop(
      lu, lv, options, result.iterations, result.converged,
      /*row_update=*/
      [&](const linalg::Vector& lvv, linalg::Vector& out) {
        lse_rows(lvv);
        for (size_t i = 0; i < m; ++i) {
          out[i] = (log_p[i] == kNegInf || lse[i] == kNegInf)
                       ? kNegInf
                       : exponent * (log_p[i] - lse[i]);
        }
      },
      /*col_update=*/
      [&](const linalg::Vector& luu, linalg::Vector& out) {
        lse_cols(luu);
        for (size_t j = 0; j < n; ++j) {
          out[j] = (log_q[j] == kNegInf || lse[j] == kNegInf)
                       ? kNegInf
                       : exponent * (log_q[j] - lse[j]);
        }
      },
      /*delta=*/
      [](const linalg::Vector& a, const linalg::Vector& b) {
        double d = 0.0;
        for (size_t i = 0; i < a.size(); ++i) {
          const double di = std::fabs(a[i] - b[i]);
          if (std::isfinite(di)) d = std::max(d, di);
        }
        return d;
      });

  result.plan = linalg::Matrix(m, n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (lu[i] == kNegInf) continue;
    for (size_t j = 0; j < n; ++j) {
      if (lv[j] == kNegInf) continue;
      result.plan(i, j) = std::exp(lu[i] + lv[j] - cost(i, j) / eps);
    }
  }
  result.u = linalg::Vector(m);
  result.v = linalg::Vector(n);
  for (size_t i = 0; i < m; ++i) {
    result.u[i] = lu[i] == kNegInf ? 0.0 : std::exp(lu[i]);
  }
  for (size_t j = 0; j < n; ++j) {
    result.v[j] = lv[j] == kNegInf ? 0.0 : std::exp(lv[j]);
  }
  ClampScaling(result.u);
  ClampScaling(result.v);
  result.transport_cost = cost.FrobeniusDot(result.plan);
  return result;
}

Status ValidateInputs(const char* where, size_t cost_rows, size_t cost_cols,
                      const linalg::Vector& p, const linalg::Vector& q,
                      const SinkhornOptions& options) {
  if (p.size() != cost_rows || q.size() != cost_cols) {
    return Status::InvalidArgument(std::string(where) +
                                   ": marginal dimension mismatch");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(std::string(where) +
                                   ": epsilon must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<SinkhornScaling> RunSinkhornScaling(
    const linalg::TransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_u, const linalg::Vector* warm_v) {
  const size_t m = kernel.rows();
  const size_t n = kernel.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument(
        "RunSinkhornScaling: marginal dimension mismatch");
  }
  SinkhornScaling out;
  out.u = (warm_u != nullptr && warm_u->size() == m) ? *warm_u
                                                     : linalg::Vector::Ones(m);
  out.v = (warm_v != nullptr && warm_v->size() == n) ? *warm_v
                                                     : linalg::Vector::Ones(n);

  const double exponent = RelaxedExponent(options);
  linalg::Vector kv(m), ktu(n);
  // Element-wise into the loop's preallocated buffer — the equivalent of
  // CwiseQuotientSafe (x/0 := 0) + CwisePow (zeros preserved) +
  // ClampScaling, without per-half-iteration allocations.
  auto scale = [&](const linalg::Vector& marginal, const linalg::Vector& denom,
                   linalg::Vector& next) {
    constexpr double kMax = 1e150;
    for (size_t i = 0; i < next.size(); ++i) {
      double s = denom[i] != 0.0 ? marginal[i] / denom[i] : 0.0;
      if (exponent != 1.0) s = s > 0.0 ? std::pow(s, exponent) : 0.0;
      if (!std::isfinite(s) || s > kMax) s = kMax;
      next[i] = s;
    }
  };

  RunScalingLoop(
      out.u, out.v, options, out.iterations, out.converged,
      /*row_update=*/
      [&](const linalg::Vector& v, linalg::Vector& next_u) {
        kernel.Apply(v, kv);
        scale(p, kv, next_u);
      },
      /*col_update=*/
      [&](const linalg::Vector& u, linalg::Vector& next_v) {
        kernel.ApplyTranspose(u, ktu);
        scale(q, ktu, next_v);
      },
      /*delta=*/
      [](const linalg::Vector& a, const linalg::Vector& b) {
        return (a - b).NormInf();
      });
  return out;
}

Result<SinkhornResult> RunSinkhorn(const linalg::Matrix& cost,
                                   const linalg::Vector& p,
                                   const linalg::Vector& q,
                                   const SinkhornOptions& options,
                                   const linalg::Vector* warm_u,
                                   const linalg::Vector* warm_v) {
  if (Status s =
          ValidateInputs("RunSinkhorn", cost.rows(), cost.cols(), p, q,
                         options);
      !s.ok()) {
    return s;
  }
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);
  if (options.log_domain) {
    return RunSinkhornLogDomain(cost, p, q, options, warm_u, warm_v, pool);
  }

  const linalg::DenseTransportKernel kernel =
      linalg::DenseTransportKernel::FromCost(cost, options.epsilon,
                                             options.num_threads, pool);
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornScaling scaling,
      RunSinkhornScaling(kernel, p, q, options, warm_u, warm_v));

  SinkhornResult result;
  result.plan = kernel.ScaleToPlan(scaling.u, scaling.v);
  result.transport_cost = kernel.TransportCost(cost, scaling.u, scaling.v);
  result.u = std::move(scaling.u);
  result.v = std::move(scaling.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  return result;
}

Status CheckTruncatedKernelSupport(const linalg::SparseMatrix& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where) {
  const auto& row_ptr = kernel.row_ptr();
  if (p != nullptr) {
    for (size_t r = 0; r < kernel.rows(); ++r) {
      if ((*p)[r] > 0.0 && row_ptr[r + 1] == row_ptr[r]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel row " +
            std::to_string(r) + " which carries source mass " +
            std::to_string((*p)[r]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  if (q != nullptr) {
    std::vector<bool> col_nonempty(kernel.cols(), false);
    for (size_t c : kernel.col_index()) col_nonempty[c] = true;
    for (size_t c = 0; c < kernel.cols(); ++c) {
      if ((*q)[c] > 0.0 && !col_nonempty[c]) {
        return Status::InvalidArgument(
            std::string(where) + ": truncation emptied kernel column " +
            std::to_string(c) + " which carries target mass " +
            std::to_string((*q)[c]) +
            " — that mass would be stranded; lower the kernel cutoff");
      }
    }
  }
  return Status::OK();
}

double PlanEntropy(const linalg::Matrix& plan) {
  double h = 0.0;
  for (double v : plan.data()) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v) {
  if (Status s = ValidateInputs("RunSinkhornSparse", cost.rows(), cost.cols(),
                                p, q, options);
      !s.ok()) {
    return s;
  }
  if (kernel_cutoff < 0.0) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: kernel_cutoff must be >= 0");
  }
  if (options.log_domain) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: log_domain is not supported on the truncated "
        "kernel (truncation is itself the underflow mitigation; use "
        "RunSinkhorn for log-domain iteration)");
  }

  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);
  const linalg::SparseTransportKernel kernel =
      linalg::SparseTransportKernel::FromCost(cost, options.epsilon,
                                              kernel_cutoff,
                                              options.num_threads, pool);
  // Hard-marginal mode must reach every row and column carrying mass.
  // Relaxed mode only soft-matches the target marginal, so an unreachable
  // column legitimately ends up under-served — check rows only (stranded
  // *source* mass silently degrades repairs to the identity either way).
  if (Status s = CheckTruncatedKernelSupport(kernel.kernel(), &p,
                                             options.relaxed ? nullptr : &q,
                                             "RunSinkhornSparse");
      !s.ok()) {
    return s;
  }
  OTCLEAN_ASSIGN_OR_RETURN(
      SinkhornScaling scaling,
      RunSinkhornScaling(kernel, p, q, options, warm_u, warm_v));

  SparseSinkhornResult result;
  result.plan = kernel.ScaleToPlanSparse(scaling.u, scaling.v);
  result.transport_cost = kernel.TransportCost(cost, scaling.u, scaling.v);
  result.u = std::move(scaling.u);
  result.v = std::move(scaling.v);
  result.iterations = scaling.iterations;
  result.converged = scaling.converged;
  return result;
}

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v) {
  return RunSinkhornSparse(linalg::MatrixCostProvider(cost), p, q, options,
                           kernel_cutoff, warm_u, warm_v);
}

}  // namespace otclean::ot
