#include "ot/sinkhorn.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otclean::ot {

namespace {

/// Guards the scaling vectors against overflow. Kernels with a large
/// dynamic range (e.g. costs that effectively forbid some moves) can push
/// u or v past the double range over many iterations; an infinite scaling
/// entry then zeroes the opposite vector and silently drains the plan.
/// Clamping at 1e150 keeps u·K·v finite without affecting normal runs.
void ClampScaling(linalg::Vector& s) {
  constexpr double kMax = 1e150;
  for (size_t i = 0; i < s.size(); ++i) {
    if (!std::isfinite(s[i]) || s[i] > kMax) s[i] = kMax;
  }
}

/// Log-domain implementation: iterates log-potentials lu, lv with
/// log(K·v)_i computed by a streaming log-sum-exp over −C_ij/ε + lv_j.
/// Entries with p_i = 0 (or q_j = 0) keep lu_i = −inf, matching the
/// linear-domain 0/0 := 0 convention.
Result<SinkhornResult> RunSinkhornLogDomain(const linalg::Matrix& cost,
                                            const linalg::Vector& p,
                                            const linalg::Vector& q,
                                            const SinkhornOptions& options,
                                            const linalg::Vector* warm_u,
                                            const linalg::Vector* warm_v) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  const double eps = options.epsilon;
  const double exponent =
      options.relaxed ? options.lambda / (options.lambda + eps) : 1.0;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto safe_log = [](double x) {
    return x > 0.0 ? std::log(x)
                   : -std::numeric_limits<double>::infinity();
  };
  linalg::Vector log_p(m), log_q(n);
  for (size_t i = 0; i < m; ++i) log_p[i] = safe_log(p[i]);
  for (size_t j = 0; j < n; ++j) log_q[j] = safe_log(q[j]);

  linalg::Vector lu(m, 0.0), lv(n, 0.0);
  if (warm_u != nullptr && warm_u->size() == m) {
    for (size_t i = 0; i < m; ++i) lu[i] = safe_log((*warm_u)[i]);
  }
  if (warm_v != nullptr && warm_v->size() == n) {
    for (size_t j = 0; j < n; ++j) lv[j] = safe_log((*warm_v)[j]);
  }

  // lse over j of (lv_j − C_ij/ε), per row i (and the transpose for lv).
  auto lse_rows = [&](const linalg::Vector& lvv, linalg::Vector& out) {
    for (size_t i = 0; i < m; ++i) {
      double mx = kNegInf;
      for (size_t j = 0; j < n; ++j) {
        const double t = lvv[j] - cost(i, j) / eps;
        if (t > mx) mx = t;
      }
      if (mx == kNegInf) {
        out[i] = kNegInf;
        continue;
      }
      double s = 0.0;
      for (size_t j = 0; j < n; ++j) {
        s += std::exp(lvv[j] - cost(i, j) / eps - mx);
      }
      out[i] = mx + std::log(s);
    }
  };
  auto lse_cols = [&](const linalg::Vector& luu, linalg::Vector& out) {
    for (size_t j = 0; j < n; ++j) {
      double mx = kNegInf;
      for (size_t i = 0; i < m; ++i) {
        const double t = luu[i] - cost(i, j) / eps;
        if (t > mx) mx = t;
      }
      if (mx == kNegInf) {
        out[j] = kNegInf;
        continue;
      }
      double s = 0.0;
      for (size_t i = 0; i < m; ++i) {
        s += std::exp(luu[i] - cost(i, j) / eps - mx);
      }
      out[j] = mx + std::log(s);
    }
  };

  SinkhornResult result;
  linalg::Vector lkv(m), lktu(n);
  for (size_t it = 0; it < options.max_iterations; ++it) {
    lse_rows(lv, lkv);
    linalg::Vector new_lu(m);
    for (size_t i = 0; i < m; ++i) {
      new_lu[i] = (log_p[i] == kNegInf || lkv[i] == kNegInf)
                      ? kNegInf
                      : exponent * (log_p[i] - lkv[i]);
    }
    lse_cols(new_lu, lktu);
    linalg::Vector new_lv(n);
    for (size_t j = 0; j < n; ++j) {
      new_lv[j] = (log_q[j] == kNegInf || lktu[j] == kNegInf)
                      ? kNegInf
                      : exponent * (log_q[j] - lktu[j]);
    }

    double du = 0.0, dv = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double d = std::fabs(new_lu[i] - lu[i]);
      if (std::isfinite(d)) du = std::max(du, d);
    }
    for (size_t j = 0; j < n; ++j) {
      const double d = std::fabs(new_lv[j] - lv[j]);
      if (std::isfinite(d)) dv = std::max(dv, d);
    }
    lu = std::move(new_lu);
    lv = std::move(new_lv);
    result.iterations = it + 1;
    if (du <= options.tolerance && dv <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan = linalg::Matrix(m, n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (lu[i] == kNegInf) continue;
    for (size_t j = 0; j < n; ++j) {
      if (lv[j] == kNegInf) continue;
      result.plan(i, j) = std::exp(lu[i] + lv[j] - cost(i, j) / eps);
    }
  }
  result.u = linalg::Vector(m);
  result.v = linalg::Vector(n);
  for (size_t i = 0; i < m; ++i) {
    result.u[i] = lu[i] == kNegInf ? 0.0 : std::exp(lu[i]);
  }
  for (size_t j = 0; j < n; ++j) {
    result.v[j] = lv[j] == kNegInf ? 0.0 : std::exp(lv[j]);
  }
  ClampScaling(result.u);
  ClampScaling(result.v);
  result.transport_cost = cost.FrobeniusDot(result.plan);
  return result;
}

}  // namespace

Result<SinkhornResult> RunSinkhorn(const linalg::Matrix& cost,
                                   const linalg::Vector& p,
                                   const linalg::Vector& q,
                                   const SinkhornOptions& options,
                                   const linalg::Vector* warm_u,
                                   const linalg::Vector* warm_v) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument("RunSinkhorn: marginal dimension mismatch");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("RunSinkhorn: epsilon must be positive");
  }
  if (options.log_domain) {
    return RunSinkhornLogDomain(cost, p, q, options, warm_u, warm_v);
  }

  const linalg::Matrix kernel = cost.GibbsKernel(options.epsilon);

  SinkhornResult result;
  result.u = (warm_u != nullptr && warm_u->size() == m) ? *warm_u
                                                        : linalg::Vector::Ones(m);
  result.v = (warm_v != nullptr && warm_v->size() == n) ? *warm_v
                                                        : linalg::Vector::Ones(n);

  // Relaxed update exponent λ/(λ+ε) (Frogner et al., Prop 4.2; the paper's
  // Eq. 5 exponent ρλ/(ρλ+1) with ρ = 1/ε).
  const double exponent =
      options.relaxed ? options.lambda / (options.lambda + options.epsilon)
                      : 1.0;

  for (size_t it = 0; it < options.max_iterations; ++it) {
    const linalg::Vector kv = kernel.MatVec(result.v);
    linalg::Vector new_u = p.CwiseQuotientSafe(kv);
    if (exponent != 1.0) new_u = new_u.CwisePow(exponent);
    ClampScaling(new_u);

    const linalg::Vector ktu = kernel.TransposeMatVec(new_u);
    linalg::Vector new_v = q.CwiseQuotientSafe(ktu);
    if (exponent != 1.0) new_v = new_v.CwisePow(exponent);
    ClampScaling(new_v);

    const double du = (new_u - result.u).NormInf();
    const double dv = (new_v - result.v).NormInf();
    result.u = std::move(new_u);
    result.v = std::move(new_v);
    result.iterations = it + 1;
    if (du <= options.tolerance && dv <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan = kernel.ScaleRowsCols(result.u, result.v);
  result.transport_cost = cost.FrobeniusDot(result.plan);
  return result;
}

double PlanEntropy(const linalg::Matrix& plan) {
  double h = 0.0;
  for (double v : plan.data()) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u,
    const linalg::Vector* warm_v) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: marginal dimension mismatch");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: epsilon must be positive");
  }
  if (kernel_cutoff < 0.0) {
    return Status::InvalidArgument(
        "RunSinkhornSparse: kernel_cutoff must be >= 0");
  }

  const linalg::SparseMatrix kernel =
      linalg::SparseMatrix::GibbsKernel(cost, options.epsilon, kernel_cutoff);

  SparseSinkhornResult result;
  result.u = (warm_u != nullptr && warm_u->size() == m)
                 ? *warm_u
                 : linalg::Vector::Ones(m);
  result.v = (warm_v != nullptr && warm_v->size() == n)
                 ? *warm_v
                 : linalg::Vector::Ones(n);

  const double exponent =
      options.relaxed ? options.lambda / (options.lambda + options.epsilon)
                      : 1.0;

  for (size_t it = 0; it < options.max_iterations; ++it) {
    const linalg::Vector kv = kernel.MatVec(result.v);
    linalg::Vector new_u = p.CwiseQuotientSafe(kv);
    if (exponent != 1.0) new_u = new_u.CwisePow(exponent);
    ClampScaling(new_u);

    const linalg::Vector ktu = kernel.TransposeMatVec(new_u);
    linalg::Vector new_v = q.CwiseQuotientSafe(ktu);
    if (exponent != 1.0) new_v = new_v.CwisePow(exponent);
    ClampScaling(new_v);

    const double du = (new_u - result.u).NormInf();
    const double dv = (new_v - result.v).NormInf();
    result.u = std::move(new_u);
    result.v = std::move(new_v);
    result.iterations = it + 1;
    if (du <= options.tolerance && dv <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan = kernel.ScaleRowsCols(result.u, result.v);
  result.transport_cost = result.plan.FrobeniusDotDense(cost);
  return result;
}

}  // namespace otclean::ot
