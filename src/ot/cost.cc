#include "ot/cost.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace otclean::ot {

double EuclideanCost::Cost(const std::vector<int>& a,
                           const std::vector<int>& b) const {
  assert(a.size() == b.size() && a.size() == inv_scales_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) * inv_scales_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double HammingCost::Cost(const std::vector<int>& a,
                         const std::vector<int>& b) const {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] != b[i]) ? 1.0 : 0.0;
  return s;
}

double CosineCost::Cost(const std::vector<int>& a,
                        const std::vector<int>& b) const {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  const double cosine = dot / (std::sqrt(na) * std::sqrt(nb));
  return 1.0 - cosine;
}

double CorrelationCost::Cost(const std::vector<int>& a,
                             const std::vector<int>& b) const {
  assert(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return (a == b) ? 0.0 : 1.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return (a == b) ? 0.0 : 1.0;
  return 1.0 - cov / std::sqrt(va * vb);
}

FairnessCost::FairnessCost(std::vector<size_t> frozen_attrs, size_t num_attrs,
                           double frozen_penalty)
    : frozen_(num_attrs, false), frozen_penalty_(frozen_penalty) {
  for (size_t a : frozen_attrs) {
    assert(a < num_attrs);
    frozen_[a] = true;
  }
}

double FairnessCost::Cost(const std::vector<int>& a,
                          const std::vector<int>& b) const {
  assert(a.size() == b.size() && a.size() == frozen_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (frozen_[i]) return frozen_penalty_;
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double WeightedEuclideanCost::Cost(const std::vector<int>& a,
                                   const std::vector<int>& b) const {
  assert(a.size() == b.size() && a.size() == weights_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) * weights_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

namespace {

// Every fingerprint starts from a distinct per-class tag so two classes
// that happen to share parameter bytes (e.g. both parameterless) never
// collide, and is coerced away from 0 — 0 is the "unfingerprintable"
// sentinel that disables caching.
uint64_t FinishFingerprint(uint64_t h) { return h == 0 ? 1 : h; }

uint64_t TagFingerprint(uint64_t tag) {
  return FinishFingerprint(HashMix(kHashSeed, tag));
}

uint64_t VectorFingerprint(uint64_t tag, const std::vector<double>& v) {
  uint64_t h = HashMix(kHashSeed, tag);
  h = HashMix(h, v.size());
  for (double x : v) h = HashMixDouble(h, x);
  return FinishFingerprint(h);
}

}  // namespace

uint64_t EuclideanCost::Fingerprint() const {
  return VectorFingerprint(0xE001, inv_scales_);
}

uint64_t HammingCost::Fingerprint() const { return TagFingerprint(0xE002); }

uint64_t CosineCost::Fingerprint() const { return TagFingerprint(0xE003); }

uint64_t CorrelationCost::Fingerprint() const {
  return TagFingerprint(0xE004);
}

uint64_t FairnessCost::Fingerprint() const {
  uint64_t h = HashMix(kHashSeed, 0xE005);
  h = HashMix(h, frozen_.size());
  for (size_t i = 0; i < frozen_.size(); ++i) {
    if (frozen_[i]) h = HashMix(h, i + 1);
  }
  h = HashMixDouble(h, frozen_penalty_);
  return FinishFingerprint(h);
}

uint64_t WeightedEuclideanCost::Fingerprint() const {
  return VectorFingerprint(0xE006, weights_);
}

namespace {

std::shared_ptr<const std::vector<std::vector<int>>> DecodeCells(
    const prob::Domain& dom, const std::vector<size_t>& cells) {
  auto table = std::make_shared<std::vector<std::vector<int>>>();
  table->reserve(cells.size());
  for (size_t i : cells) table->push_back(dom.Decode(i));
  return table;
}

}  // namespace

FunctionCostProvider::FunctionCostProvider(const prob::Domain& dom,
                                           const CostFunction& f)
    : f_(&f) {
  auto table = std::make_shared<TupleTable>();
  table->reserve(dom.TotalSize());
  for (size_t i = 0; i < dom.TotalSize(); ++i) table->push_back(dom.Decode(i));
  // Symmetric view: both sides share the one decoded table.
  row_tuples_ = table;
  col_tuples_ = std::move(table);
}

FunctionCostProvider::FunctionCostProvider(const prob::Domain& dom,
                                           const std::vector<size_t>& rows,
                                           const std::vector<size_t>& cols,
                                           const CostFunction& f)
    : f_(&f),
      row_tuples_(DecodeCells(dom, rows)),
      col_tuples_(DecodeCells(dom, cols)) {}

linalg::Matrix BuildCostMatrix(const prob::Domain& dom,
                               const CostFunction& f) {
  return linalg::MaterializeCostMatrix(FunctionCostProvider(dom, f));
}

linalg::Matrix BuildCostMatrix(const prob::Domain& dom,
                               const std::vector<size_t>& rows,
                               const std::vector<size_t>& cols,
                               const CostFunction& f) {
  return linalg::MaterializeCostMatrix(
      FunctionCostProvider(dom, rows, cols, f));
}

std::vector<double> InverseStddevWeights(const prob::Domain& dom,
                                         const linalg::Vector& probs) {
  assert(probs.size() == dom.TotalSize());
  const size_t k = dom.num_attrs();
  std::vector<double> mean(k, 0.0), m2(k, 0.0);
  double mass = 0.0;
  for (size_t cell = 0; cell < probs.size(); ++cell) {
    const double p = probs[cell];
    if (p <= 0.0) continue;
    mass += p;
    for (size_t a = 0; a < k; ++a) {
      const double v = dom.DecodeAttr(cell, a);
      mean[a] += p * v;
      m2[a] += p * v * v;
    }
  }
  std::vector<double> w(k, 1.0);
  if (mass <= 0.0) return w;
  for (size_t a = 0; a < k; ++a) {
    const double mu = mean[a] / mass;
    const double var = m2[a] / mass - mu * mu;
    w[a] = (var > 1e-12) ? 1.0 / std::sqrt(var) : 1.0;
  }
  return w;
}

}  // namespace otclean::ot
