#ifndef OTCLEAN_OT_PLAN_H_
#define OTCLEAN_OT_PLAN_H_

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "prob/domain.h"

namespace otclean::ot {

/// A transport plan π(v, v′) between cells of a shared domain, with row
/// support restricted to `row_cells` (the dataset's active domain) and
/// column support `col_cells`.
///
/// This is the paper's *probabilistic data cleaner*: row-normalizing yields
/// the probabilistic mapping π(v′ | v), and sampling from it repairs tuples.
///
/// Storage is polymorphic: a dense `linalg::Matrix` or a CSR
/// `linalg::SparseMatrix` backs the plan behind the same interface. The
/// sparse backing is kept as-is end to end — marginals, conditionals, and
/// repair sampling walk only the stored nonzeros — so a truncated-kernel
/// solve (Section 6.5) never pays O(rows×cols) memory. At truncation
/// cutoff 0 the two backings hold the same entries and every operation,
/// including `SampleRepair` under a shared RNG stream, is bit-identical.
class TransportPlan {
 public:
  TransportPlan() = default;
  /// Dense backing.
  TransportPlan(prob::Domain domain, std::vector<size_t> row_cells,
                std::vector<size_t> col_cells, linalg::Matrix plan);
  /// CSR backing (the unified solver's sparse path); kept sparse — use
  /// Densify() if a dense matrix is truly required.
  TransportPlan(prob::Domain domain, std::vector<size_t> row_cells,
                std::vector<size_t> col_cells, linalg::SparseMatrix plan);

  const prob::Domain& domain() const { return domain_; }
  const std::vector<size_t>& row_cells() const { return row_cells_; }
  const std::vector<size_t>& col_cells() const { return col_cells_; }

  /// True when the plan is CSR-backed.
  bool IsSparse() const { return is_sparse_; }
  /// Stored entries: structural nonzeros for CSR, rows×cols for dense.
  size_t Nnz() const { return is_sparse_ ? sparse_.nnz() : dense_.size(); }
  /// Approximate heap footprint of the backing store, in bytes.
  size_t MemoryBytes() const;
  /// Escape hatch for callers that truly need a dense rows×cols matrix
  /// (e.g. entropy diagnostics over the full support). Allocates; prefer
  /// the storage-agnostic accessors everywhere else.
  linalg::Matrix Densify() const;

  /// Source marginal π(v) over row cells.
  linalg::Vector SourceMarginal() const;
  /// Target marginal π(v′) over column cells.
  linalg::Vector TargetMarginal() const;

  /// The conditional mapping π(v′ | v = row_cells[row]); all zeros when the
  /// row carries no mass. Always a dense length-|col_cells| vector (one
  /// row's worth, never rows×cols).
  linalg::Vector ConditionalRow(size_t row) const;

  /// Samples a repaired cell (flat domain index) for the tuple in
  /// `source_cell`. If the cell is not in the plan's row support or carries
  /// no mass, the tuple is returned unchanged. Consumes exactly one RNG
  /// draw for in-support rows with mass, so dense- and CSR-backed plans
  /// holding the same entries advance a shared stream identically.
  size_t SampleRepair(size_t source_cell, Rng& rng) const;

  /// Deterministic (MAP) repair: the most likely target cell for
  /// `source_cell`; identity for unknown / massless rows.
  size_t MapRepair(size_t source_cell) const;

 private:
  prob::Domain domain_;
  std::vector<size_t> row_cells_;
  std::vector<size_t> col_cells_;
  bool is_sparse_ = false;
  linalg::Matrix dense_;        ///< valid when !is_sparse_
  linalg::SparseMatrix sparse_; ///< valid when is_sparse_
  std::unordered_map<size_t, size_t> row_of_cell_;
};

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_PLAN_H_
