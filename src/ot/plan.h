#ifndef OTCLEAN_OT_PLAN_H_
#define OTCLEAN_OT_PLAN_H_

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "prob/domain.h"

namespace otclean::ot {

/// A transport plan π(v, v′) between cells of a shared domain, with row
/// support restricted to `row_cells` (the dataset's active domain) and
/// column support `col_cells`.
///
/// This is the paper's *probabilistic data cleaner*: row-normalizing yields
/// the probabilistic mapping π(v′ | v), and sampling from it repairs tuples.
class TransportPlan {
 public:
  TransportPlan() = default;
  TransportPlan(prob::Domain domain, std::vector<size_t> row_cells,
                std::vector<size_t> col_cells, linalg::Matrix plan);
  /// From a CSR plan (the unified solver's sparse path); densified
  /// internally.
  TransportPlan(prob::Domain domain, std::vector<size_t> row_cells,
                std::vector<size_t> col_cells, const linalg::SparseMatrix& plan);

  const prob::Domain& domain() const { return domain_; }
  const linalg::Matrix& matrix() const { return plan_; }
  const std::vector<size_t>& row_cells() const { return row_cells_; }
  const std::vector<size_t>& col_cells() const { return col_cells_; }

  /// Source marginal π(v) over row cells.
  linalg::Vector SourceMarginal() const { return plan_.RowSums(); }
  /// Target marginal π(v′) over column cells.
  linalg::Vector TargetMarginal() const { return plan_.ColSums(); }

  /// The conditional mapping π(v′ | v = row_cells[row]); all zeros when the
  /// row carries no mass.
  linalg::Vector ConditionalRow(size_t row) const;

  /// Samples a repaired cell (flat domain index) for the tuple in
  /// `source_cell`. If the cell is not in the plan's row support or carries
  /// no mass, the tuple is returned unchanged.
  size_t SampleRepair(size_t source_cell, Rng& rng) const;

  /// Deterministic (MAP) repair: the most likely target cell for
  /// `source_cell`; identity for unknown / massless rows.
  size_t MapRepair(size_t source_cell) const;

 private:
  prob::Domain domain_;
  std::vector<size_t> row_cells_;
  std::vector<size_t> col_cells_;
  linalg::Matrix plan_;
  std::unordered_map<size_t, size_t> row_of_cell_;
};

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_PLAN_H_
