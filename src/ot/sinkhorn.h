#ifndef OTCLEAN_OT_SINKHORN_H_
#define OTCLEAN_OT_SINKHORN_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/transport_kernel.h"
#include "linalg/vector.h"

namespace otclean::ot {

/// Parameters for entropic / relaxed optimal transport.
///
/// Convention: we minimize  ⟨C, π⟩ − ε·H(π) (+ λ·KL marginal penalties in
/// relaxed mode). The paper writes the entropic weight as 1/ρ and the kernel
/// as K = e^{−C/ρ}; our `epsilon` is the paper's ρ in that kernel formula
/// (i.e. K = e^{−C/ε}), so *smaller* epsilon means sharper plans.
struct SinkhornOptions {
  double epsilon = 0.05;
  /// Marginal-relaxation coefficient λ (only used when `relaxed`). Larger λ
  /// means marginals are matched more strictly; the relaxed update exponent
  /// is λ/(λ+ε) — the paper's ρλ/(ρλ+1) with ρ = 1/ε (Eq. 5).
  double lambda = 50.0;
  /// false: classic Sinkhorn with hard marginals (Algorithm 1).
  /// true: relaxed OT updates of Frogner et al. (Eq. 5).
  bool relaxed = false;
  /// Run the iterations on log-scaled potentials instead of the scaling
  /// vectors themselves. Immune to under/overflow for very small ε or
  /// costs with a huge dynamic range (e.g. frozen-attribute penalties), at
  /// ~3–4× the per-iteration cost of the linear-domain kernel.
  bool log_domain = false;
  size_t max_iterations = 20000;
  /// Convergence threshold on the max-change of the scaling vectors
  /// (log-domain mode: of the log-potentials).
  double tolerance = 1e-10;
  /// Worker threads for the kernel primitives (row-blocked). 0 = hardware
  /// concurrency, 1 = serial. Results are bit-compatible across thread
  /// counts (disjoint output blocks; fixed-block-ordered reductions).
  size_t num_threads = 0;
  /// Optional externally owned worker pool (linalg/thread_pool.h) the
  /// kernel primitives dispatch on; must outlive the solve. When null and
  /// the resolved `num_threads` exceeds 1, the solver creates its own pool
  /// for the duration of the run, so threads are spawned once per solve
  /// instead of once per primitive call. Callers running many solves *in
  /// sequence* (e.g. FastOTClean's outer loop, or a server draining a
  /// repair-job queue) pass one pool and amortize the startup across all
  /// of them — but a pool serves one dispatching thread at a time, so
  /// concurrent solves must each bring their own pool (or leave this null).
  /// Pooled, spawned, and serial runs are bit-identical. Honored by RunSinkhorn /
  /// RunSinkhornSparse, which build the kernel; RunSinkhornScaling ignores
  /// it — there the pool binds at kernel construction, so pass it to the
  /// TransportKernel constructor instead.
  linalg::ThreadPool* thread_pool = nullptr;
};

/// Output of a Sinkhorn run.
struct SinkhornResult {
  linalg::Matrix plan;  ///< π = diag(u)·K·diag(v).
  linalg::Vector u;     ///< row scaling (exposable for warm starts).
  linalg::Vector v;     ///< column scaling.
  size_t iterations = 0;
  bool converged = false;
  double transport_cost = 0.0;  ///< ⟨C, π⟩.
};

/// Scaling vectors + convergence stats of a run of the shared engine loop,
/// before any plan materialization.
struct SinkhornScaling {
  linalg::Vector u;
  linalg::Vector v;
  size_t iterations = 0;
  bool converged = false;
};

/// The single linear-domain engine loop, usable with any TransportKernel
/// (dense, CSR-sparse, or future storages). `warm_u` / `warm_v`, when
/// non-null and correctly sized, initialize the scaling vectors; otherwise
/// they start at all-ones. Both RunSinkhorn and RunSinkhornSparse delegate
/// here — call it directly when you build the kernel once and reuse it
/// across solves (e.g. warm-started outer loops). Errors on marginal /
/// kernel dimension mismatch.
Result<SinkhornScaling> RunSinkhornScaling(
    const linalg::TransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

/// Runs Sinkhorn matrix scaling between marginals `p` (rows) and `q`
/// (columns) under cost matrix `cost`, on a dense kernel.
///
/// `warm_u` / `warm_v`, when non-null and correctly sized, initialize the
/// scaling vectors (the paper's warm-start optimization, Section 5);
/// otherwise they start at all-ones.
Result<SinkhornResult> RunSinkhorn(const linalg::Matrix& cost,
                                   const linalg::Vector& p,
                                   const linalg::Vector& q,
                                   const SinkhornOptions& options,
                                   const linalg::Vector* warm_u = nullptr,
                                   const linalg::Vector* warm_v = nullptr);

/// Entropy H(π) = −Σ π log π of a plan (0·log 0 := 0).
double PlanEntropy(const linalg::Matrix& plan);

/// Output of a sparse-kernel Sinkhorn run; the plan inherits the truncated
/// kernel's sparsity pattern.
struct SparseSinkhornResult {
  linalg::SparseMatrix plan;
  linalg::Vector u;
  linalg::Vector v;
  size_t iterations = 0;
  bool converged = false;
  double transport_cost = 0.0;
};

/// Sinkhorn on a *truncated* Gibbs kernel: entries of K = e^{−C/ε} below
/// `kernel_cutoff` are dropped before iterating — the sparse transport-plan
/// representation of Section 6.5. With cutoff 0 this matches RunSinkhorn
/// exactly while storing only structural nonzeros. Errors (InvalidArgument)
/// rather than producing a deficient plan when the cutoff is too
/// aggressive: every row with p > 0 — and, in hard-marginal (non-relaxed)
/// mode, every column with q > 0 — must keep at least one kernel entry,
/// otherwise that marginal mass would be stranded. (Relaxed mode only
/// soft-matches the target marginal, so unreachable columns are
/// legitimately under-served there, not an error — the same policy
/// FastOTClean applies.) Also errors when `options.log_domain` is set — log-domain
/// iteration is not implemented on the truncated kernel (the truncation
/// is itself the underflow mitigation; use RunSinkhorn for log-domain).
///
/// The CostProvider overload is the O(nnz)-memory entry point: the cost is
/// streamed into the kernel build and the final ⟨C, π⟩, so no rows×cols
/// array ever exists. The Matrix overload delegates to it through a
/// MatrixCostProvider view and produces bit-identical results — use it
/// only when a dense cost is already in hand.
Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

/// Verifies a truncated kernel can carry the marginals: every row i with
/// p[i] > 0 (and, when `q` is non-null, every column j with q[j] > 0) must
/// hold at least one stored entry. Returns InvalidArgument naming the
/// first offending row/column — the fix is a smaller truncation cutoff.
Status CheckTruncatedKernelSupport(const linalg::SparseMatrix& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where);

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_SINKHORN_H_
