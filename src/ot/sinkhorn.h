#ifndef OTCLEAN_OT_SINKHORN_H_
#define OTCLEAN_OT_SINKHORN_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "linalg/log_transport_kernel.h"
#include "linalg/matrix.h"
#include "linalg/precision.h"
#include "linalg/sparse_matrix.h"
#include "linalg/transport_kernel.h"
#include "linalg/vector.h"

namespace otclean::core {
class SolveCache;
}  // namespace otclean::core

namespace otclean::linalg {
struct SparseKernelStorageF32;
}  // namespace otclean::linalg

namespace otclean::ot {

/// Parameters for entropic / relaxed optimal transport.
///
/// ε-annealing schedule: solve a short sequence of EASIER problems (larger
/// ε — smoother kernels, geometric convergence rate ~1 − O(ε) per
/// iteration) and carry each stage's potentials into the next as a warm
/// start, instead of grinding the full iteration budget at the sharp final
/// ε from a cold start. Stage ε_k runs ε_0 = initial_epsilon,
/// ε_{k+1} = max(final, ε_k · decay) down to — but not including — the
/// final `SinkhornOptions::epsilon`, which the normal solve then finishes
/// at full tolerance. Between stages the linear-domain potentials rescale
/// as u ↦ u^{ε_k/ε_{k+1}} (u ≈ e^{f/ε} for a dual potential f that varies
/// slowly with ε; zeros stay zero). Stages solve to a LOOSE tolerance with
/// a SMALL iteration cap — they only need to be warm, not converged.
struct EpsilonSchedule {
  /// First-stage ε. 0 (default) disables annealing; when set it must
  /// exceed the final `SinkhornOptions::epsilon` (validated loudly).
  double initial_epsilon = 0.0;
  /// Geometric stage factor, in (0, 1): ε_{k+1} = ε_k · decay.
  double decay = 0.5;
  /// Per-stage convergence threshold (loose on purpose).
  double stage_tolerance = 1e-4;
  /// Per-stage iteration cap (small on purpose).
  size_t stage_max_iterations = 500;

  bool enabled() const { return initial_epsilon > 0.0; }
};

/// Convergence record of one annealing stage (surfaced in results and
/// the CLI `--report`).
struct EpsilonAnnealStage {
  double epsilon = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Convention: we minimize  ⟨C, π⟩ − ε·H(π) (+ λ·KL marginal penalties in
/// relaxed mode). The paper writes the entropic weight as 1/ρ and the kernel
/// as K = e^{−C/ρ}; our `epsilon` is the paper's ρ in that kernel formula
/// (i.e. K = e^{−C/ε}), so *smaller* epsilon means sharper plans.
struct SinkhornOptions {
  double epsilon = 0.05;
  /// Marginal-relaxation coefficient λ (only used when `relaxed`). Larger λ
  /// means marginals are matched more strictly; the relaxed update exponent
  /// is λ/(λ+ε) — the paper's ρλ/(ρλ+1) with ρ = 1/ε (Eq. 5).
  double lambda = 50.0;
  /// false: classic Sinkhorn with hard marginals (Algorithm 1).
  /// true: relaxed OT updates of Frogner et al. (Eq. 5).
  bool relaxed = false;
  /// Run the iterations on log-potentials over a LogTransportKernel
  /// (streamed log-sum-exp) instead of the scaling vectors themselves.
  /// Immune to under/overflow for very small ε or costs with a huge
  /// dynamic range (e.g. frozen-attribute penalties). Supported on both
  /// the dense path (RunSinkhorn) and the truncated sparse path
  /// (RunSinkhornSparse, where the kernel stores −C/ε at the kept
  /// entries and the solve stays O(nnz)). Each iteration costs an exp
  /// per kernel entry (SIMD'd; see bench_log_kernel) versus the linear
  /// domain's multiply — prefer it when ε is small enough for e^{−C/ε}
  /// to leave the double range, or when convergence stalls from clamped
  /// scalings.
  bool log_domain = false;
  size_t max_iterations = 20000;
  /// Convergence threshold on the max-change of the scaling vectors
  /// (log-domain mode: of the log-potentials).
  double tolerance = 1e-10;
  /// Worker threads for the kernel primitives (row-blocked). 0 = hardware
  /// concurrency, 1 = serial. Results are bit-compatible across thread
  /// counts (disjoint output blocks; fixed-block-ordered reductions).
  size_t num_threads = 0;
  /// Optional externally owned worker pool (linalg/thread_pool.h) the
  /// kernel primitives dispatch on; must outlive the solve. When null and
  /// the resolved `num_threads` exceeds 1, the solver creates its own pool
  /// for the duration of the run, so threads are spawned once per solve
  /// instead of once per primitive call. Callers running many solves —
  /// sequential (FastOTClean's outer loop) or *concurrent* (the
  /// RepairScheduler's executors) — pass one shared pool: ThreadPool
  /// accepts any number of concurrent dispatchers, and per-solve chunk
  /// decompositions never depend on what else shares the pool.
  /// Pooled, spawned, and serial runs are bit-identical. Honored by RunSinkhorn /
  /// RunSinkhornSparse, which build the kernel; RunSinkhornScaling ignores
  /// it — there the pool binds at kernel construction, so pass it to the
  /// TransportKernel constructor instead.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Optional cross-request solve cache (core/solve_cache.h). When set
  /// together with a nonzero `cache_cost_fingerprint`, the solver reuses
  /// a previously built Gibbs kernel for the same (fingerprint, dims, ε,
  /// cutoff, domain, SIMD tier) — bit-identical to rebuilding, since the
  /// hit hands back the very storage the miss built — and publishes the
  /// kernel it builds on a miss. Borrowed; must outlive the solve.
  /// Honored by RunSinkhorn / RunSinkhornSparse (the kernel-building
  /// entry points); RunSinkhorn(Log)Scaling takes a prebuilt kernel and
  /// ignores it.
  core::SolveCache* solve_cache = nullptr;
  /// Stable content identity of this solve's cost argument — e.g.
  /// CostFunction::Fingerprint() mixed (common/hash.h) with the identity
  /// of whatever produced the matrix from it (domain shape, active
  /// cells). 0 — the default — means "unfingerprintable" and bypasses
  /// the cache entirely. The caller owns correctness here: the
  /// fingerprint must cover everything the cost *values* depend on, or
  /// different costs alias one kernel.
  uint64_t cache_cost_fingerprint = 0;
  /// Also fetch/store converged potentials under the same cache key —
  /// the paper's Section-5 warm start applied *across* solves. Off by
  /// default and deliberately opt-in: a warm-started run converges to
  /// the same tolerance but is not bit-identical to a cold one, and
  /// which solve seeds the store depends on arrival order. Explicit
  /// warm_u/warm_v arguments always take precedence over the store;
  /// stored potentials whose sizes mismatch fall back to a cold start.
  bool cache_warm_start = false;
  /// ε-annealing schedule (see EpsilonSchedule). Honored by RunSinkhorn /
  /// RunSinkhornSparse when no explicit warm_u/warm_v are passed and the
  /// warm store has nothing better: the non-final stages run first (via
  /// RunSinkhornAnnealed) and seed the final solve. Explicit warm starts
  /// and warm-store hits win — they are already warm.
  EpsilonSchedule epsilon_schedule;
  /// Storage precision of the Gibbs kernel the solve iterates on.
  /// kFloat32 halves kernel memory traffic — the cost-per-iteration
  /// bottleneck on large domains — while every reduction still
  /// accumulates in double (linalg/precision.h; the kept-set of a
  /// truncated kernel is decided in double, so f32 and f64 share a
  /// sparsity pattern). Results are bit-identical across thread counts,
  /// pools, and cache hit/miss *per* (SIMD tier, precision), but differ
  /// from the f64 tier's by the kernel rounding (relative entry error
  /// ≤ 2⁻²⁴). Support costs and all outputs stay double.
  linalg::Precision precision = linalg::Precision::kFloat64;
  /// Optional cooperative cancellation (common/cancellation.h; borrowed,
  /// must outlive the solve). Checked once per engine-loop iteration, per
  /// ε-annealing stage, and — through the ThreadPool stop flag — between
  /// chunk executions of pooled kernel dispatches, so a fired token drains
  /// even a large dispatch promptly. A firing aborts the solve with
  /// kCancelled; checks never alter what an unaborted solve computes.
  const CancellationToken* cancel_token = nullptr;
  /// Optional monotonic wall deadline, polled at the same iteration /
  /// stage granularity; expiry aborts with kDeadlineExceeded. Infinite by
  /// default. Compose caller and scheduler budgets with Deadline::Earliest.
  Deadline deadline;
};

/// Output of a Sinkhorn run.
struct SinkhornResult {
  linalg::Matrix plan;  ///< π = diag(u)·K·diag(v).
  linalg::Vector u;     ///< row scaling (exposable for warm starts).
  linalg::Vector v;     ///< column scaling.
  size_t iterations = 0;  ///< final-ε iterations (annealing stages excluded)
  bool converged = false;
  double transport_cost = 0.0;  ///< ⟨C, π⟩.
  /// Per-stage records when an EpsilonSchedule ran; empty otherwise.
  std::vector<EpsilonAnnealStage> anneal_stages;
};

/// Scaling vectors + convergence stats of a run of the shared engine loop,
/// before any plan materialization.
struct SinkhornScaling {
  linalg::Vector u;
  linalg::Vector v;
  size_t iterations = 0;
  bool converged = false;
};

/// The single linear-domain engine loop, usable with any TransportKernel
/// (dense, CSR-sparse, or future storages). `warm_u` / `warm_v`, when
/// non-null, initialize the scaling vectors (their sizes MUST match the
/// kernel — a mismatch is an InvalidArgument, never a silent cold start);
/// when null they start at all-ones. Both RunSinkhorn and
/// RunSinkhornSparse delegate here — call it directly when you build the
/// kernel once and reuse it across solves (e.g. warm-started outer
/// loops). Errors on marginal / kernel dimension mismatch and on
/// negative or non-finite marginal entries.
Result<SinkhornScaling> RunSinkhornScaling(
    const linalg::TransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

/// Log-potentials + convergence stats of a log-domain engine run, before
/// any plan materialization. −inf marks "no mass" (the linear u_i = 0).
struct SinkhornLogScaling {
  linalg::Vector lu;
  linalg::Vector lv;
  size_t iterations = 0;
  bool converged = false;
};

/// The log-domain twin of RunSinkhornScaling: the same RunScalingLoop
/// engine iterated on log-potentials over a LogTransportKernel (dense or
/// CSR — every storage optimization of the linear kernels applies).
/// `warm_lu` / `warm_lv` are LOG-potentials (sizes must match; −inf
/// entries allowed); null starts from all-zeros (= all-ones scalings).
/// Convergence measures the max-change of the log-potentials, and a
/// potential flipping between finite and −inf counts as an infinite
/// change — the loop cannot report convergence across such a flip.
/// Errors exactly as RunSinkhornScaling does.
Result<SinkhornLogScaling> RunSinkhornLogScaling(
    const linalg::LogTransportKernel& kernel, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    const linalg::Vector* warm_lu = nullptr,
    const linalg::Vector* warm_lv = nullptr);

/// Runs Sinkhorn matrix scaling between marginals `p` (rows) and `q`
/// (columns) under cost matrix `cost`, on a dense kernel (log-domain mode
/// iterates a DenseLogTransportKernel instead; the result's u/v are the
/// linear-domain scalings e^{lu}/e^{lv} either way).
///
/// `warm_u` / `warm_v`, when non-null, initialize the scaling vectors
/// (the paper's warm-start optimization, Section 5) and must match the
/// problem's dimensions — a mismatch is an InvalidArgument, never a
/// silent cold start; null starts from all-ones. Inputs are validated:
/// negative or non-finite marginal entries and non-finite cost entries
/// are rejected with an indexed error message.
Result<SinkhornResult> RunSinkhorn(const linalg::Matrix& cost,
                                   const linalg::Vector& p,
                                   const linalg::Vector& q,
                                   const SinkhornOptions& options,
                                   const linalg::Vector* warm_u = nullptr,
                                   const linalg::Vector* warm_v = nullptr);

/// Entropy H(π) = −Σ π log π of a plan (0·log 0 := 0).
double PlanEntropy(const linalg::Matrix& plan);

/// Output of a sparse-kernel Sinkhorn run; the plan inherits the truncated
/// kernel's sparsity pattern.
struct SparseSinkhornResult {
  linalg::SparseMatrix plan;
  linalg::Vector u;
  linalg::Vector v;
  size_t iterations = 0;  ///< final-ε iterations (annealing stages excluded)
  bool converged = false;
  double transport_cost = 0.0;
  /// Per-stage records when an EpsilonSchedule ran; empty otherwise.
  std::vector<EpsilonAnnealStage> anneal_stages;
};

/// Sinkhorn on a *truncated* Gibbs kernel: entries of K = e^{−C/ε} below
/// `kernel_cutoff` are dropped before iterating — the sparse transport-plan
/// representation of Section 6.5. With cutoff 0 this matches RunSinkhorn
/// exactly while storing only structural nonzeros. Errors (InvalidArgument)
/// rather than producing a deficient plan when the cutoff is too
/// aggressive: every row with p > 0 — and, in hard-marginal (non-relaxed)
/// mode, every column with q > 0 — must keep at least one kernel entry,
/// otherwise that marginal mass would be stranded. (Relaxed mode only
/// soft-matches the target marginal, so unreachable columns are
/// legitimately under-served there, not an error — the same policy
/// FastOTClean applies.)
///
/// With `options.log_domain`, the truncated solve iterates log-potentials
/// over a SparseLogTransportKernel storing −C/ε at exactly the kept
/// entries (same sparsity pattern and stranded-mass guard as the linear
/// kernel) — still O(nnz) memory end to end. Truncation bounds the
/// kernel's dynamic range from below but does nothing for *convergence*
/// at small ε, where the linear iteration's scalings under/overflow —
/// combine truncation with log_domain for sharp, sparse, stable solves.
///
/// The CostProvider overload is the O(nnz)-memory entry point: the cost is
/// streamed into the kernel build and the final ⟨C, π⟩, so no rows×cols
/// array ever exists. The Matrix overload delegates to it through a
/// MatrixCostProvider view and produces bit-identical results — use it
/// only when a dense cost is already in hand.
Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

Result<SparseSinkhornResult> RunSinkhornSparse(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    double kernel_cutoff, const linalg::Vector* warm_u = nullptr,
    const linalg::Vector* warm_v = nullptr);

/// Rejects NaN/±inf cost entries with a row/col-indexed InvalidArgument
/// (finite-cost validation of RunSinkhorn/RunSinkhornSparse, exposed for
/// callers like FastOTClean that build kernels from a CostProvider
/// directly — a non-finite entry would otherwise be silently truncated
/// away or flushed to 0 by the kernels). Streams tile-by-tile, O(tile)
/// memory; zero-copy when the provider has a dense backing.
Status ValidateFiniteCosts(const char* where,
                           const linalg::CostProvider& cost);

/// Verifies a truncated kernel can carry the marginals: every row i with
/// p[i] > 0 (and, when `q` is non-null, every column j with q[j] > 0) must
/// hold at least one stored entry. Returns InvalidArgument naming the
/// first offending row/column — the fix is a smaller truncation cutoff.
Status CheckTruncatedKernelSupport(const linalg::SparseMatrix& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where);

/// Same check over an f32 sparse kernel storage. The f32 kept-set is
/// decided in double, so this always agrees with the f64 check for the
/// same (cost, ε, cutoff); column emptiness reads the CSC mirror's
/// col_ptr directly instead of scanning col_index.
Status CheckTruncatedKernelSupport(const linalg::SparseKernelStorageF32& kernel,
                                   const linalg::Vector* p,
                                   const linalg::Vector* q,
                                   const char* where);

/// Warm potentials produced by the non-final stages of an ε-annealing
/// schedule, plus the per-stage convergence records. `u`/`v` are
/// linear-domain scalings sized to the problem — pass them as warm_u /
/// warm_v of the final solve (the log-domain paths lift them).
struct EpsilonAnnealWarmStart {
  linalg::Vector u;
  linalg::Vector v;
  std::vector<EpsilonAnnealStage> stages;
};

/// Runs the NON-final stages of `options.epsilon_schedule`: for each
/// stage ε_k (ε_0 = initial_epsilon, ε_{k+1} = max(ε, ε_k·decay), down to
/// but excluding the final ε) it builds the stage kernel — honoring
/// `options.log_domain`, `options.precision`, the truncation `cutoff`
/// when `sparse`, and the solve cache (stage kernels get their own
/// per-(fingerprint, ε_k) entries; the warm-start tier is never touched
/// at stage ε) — runs the engine loop at the schedule's loose
/// stage_tolerance / stage_max_iterations, and rescales the potentials
/// u ↦ u^{ε_k/ε_{k+1}} into the next stage. RunSinkhorn /
/// RunSinkhornSparse call this automatically; call it directly when you
/// drive RunSinkhorn(Log)Scaling yourself on a prebuilt final-ε kernel
/// (e.g. a warm-started outer loop) and want an annealed first solve.
///
/// Errors as the entry points do (schedule fields are validated loudly);
/// stage kernels on the sparse path keep a SUPERSET of the final
/// kernel's entries (larger ε keeps more), so stage support never fails
/// where the final solve would succeed.
Result<EpsilonAnnealWarmStart> RunSinkhornAnnealed(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const SinkhornOptions& options,
    bool sparse = false, double cutoff = 0.0,
    linalg::ThreadPool* pool = nullptr);

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_SINKHORN_H_
