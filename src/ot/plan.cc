#include "ot/plan.h"

#include <cassert>

namespace otclean::ot {

TransportPlan::TransportPlan(prob::Domain domain,
                             std::vector<size_t> row_cells,
                             std::vector<size_t> col_cells,
                             linalg::Matrix plan)
    : domain_(std::move(domain)),
      row_cells_(std::move(row_cells)),
      col_cells_(std::move(col_cells)),
      plan_(std::move(plan)) {
  assert(plan_.rows() == row_cells_.size());
  assert(plan_.cols() == col_cells_.size());
  row_of_cell_.reserve(row_cells_.size());
  for (size_t r = 0; r < row_cells_.size(); ++r) {
    row_of_cell_.emplace(row_cells_[r], r);
  }
}

TransportPlan::TransportPlan(prob::Domain domain,
                             std::vector<size_t> row_cells,
                             std::vector<size_t> col_cells,
                             const linalg::SparseMatrix& plan)
    : TransportPlan(std::move(domain), std::move(row_cells),
                    std::move(col_cells), plan.ToDense()) {}

linalg::Vector TransportPlan::ConditionalRow(size_t row) const {
  assert(row < plan_.rows());
  linalg::Vector cond = plan_.Row(row);
  const double mass = cond.Sum();
  if (mass > 0.0) cond /= mass;
  return cond;
}

size_t TransportPlan::SampleRepair(size_t source_cell, Rng& rng) const {
  const auto it = row_of_cell_.find(source_cell);
  if (it == row_of_cell_.end()) return source_cell;
  const linalg::Vector row = plan_.Row(it->second);
  if (row.Sum() <= 0.0) return source_cell;
  return col_cells_[rng.NextCategorical(row.data())];
}

size_t TransportPlan::MapRepair(size_t source_cell) const {
  const auto it = row_of_cell_.find(source_cell);
  if (it == row_of_cell_.end()) return source_cell;
  const linalg::Vector row = plan_.Row(it->second);
  if (row.Sum() <= 0.0) return source_cell;
  return col_cells_[row.ArgMax()];
}

}  // namespace otclean::ot
