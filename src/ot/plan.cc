#include "ot/plan.h"

#include <cassert>

namespace otclean::ot {

namespace {

/// Shared index map for both constructors.
std::unordered_map<size_t, size_t> BuildRowIndex(
    const std::vector<size_t>& row_cells) {
  std::unordered_map<size_t, size_t> index;
  index.reserve(row_cells.size());
  for (size_t r = 0; r < row_cells.size(); ++r) index.emplace(row_cells[r], r);
  return index;
}

/// First-maximum scan over a weight span (strict > keeps the first of
/// equal maxima — Vector::ArgMax's tie-break), accumulating the total
/// mass on the way. Both plan backings select their MAP repair through
/// this one loop, so the tie-break can never drift between them. Returns
/// the span index of the first maximum (0 on an empty span — callers
/// must check `mass > 0` before using it).
size_t FirstArgMax(const double* values, size_t count, double& mass) {
  mass = 0.0;
  double best = 0.0;
  size_t best_i = 0;
  bool found = false;
  for (size_t i = 0; i < count; ++i) {
    mass += values[i];
    if (!found || values[i] > best) {
      best = values[i];
      best_i = i;
      found = true;
    }
  }
  return best_i;
}

}  // namespace

TransportPlan::TransportPlan(prob::Domain domain,
                             std::vector<size_t> row_cells,
                             std::vector<size_t> col_cells,
                             linalg::Matrix plan)
    : domain_(std::move(domain)),
      row_cells_(std::move(row_cells)),
      col_cells_(std::move(col_cells)),
      is_sparse_(false),
      dense_(std::move(plan)),
      row_of_cell_(BuildRowIndex(row_cells_)) {
  assert(dense_.rows() == row_cells_.size());
  assert(dense_.cols() == col_cells_.size());
}

TransportPlan::TransportPlan(prob::Domain domain,
                             std::vector<size_t> row_cells,
                             std::vector<size_t> col_cells,
                             linalg::SparseMatrix plan)
    : domain_(std::move(domain)),
      row_cells_(std::move(row_cells)),
      col_cells_(std::move(col_cells)),
      is_sparse_(true),
      sparse_(std::move(plan)),
      row_of_cell_(BuildRowIndex(row_cells_)) {
  assert(sparse_.rows() == row_cells_.size());
  assert(sparse_.cols() == col_cells_.size());
}

size_t TransportPlan::MemoryBytes() const {
  return is_sparse_ ? sparse_.MemoryBytes()
                    : dense_.size() * sizeof(double);
}

linalg::Matrix TransportPlan::Densify() const {
  return is_sparse_ ? sparse_.ToDense() : dense_;
}

linalg::Vector TransportPlan::SourceMarginal() const {
  return is_sparse_ ? sparse_.RowSums() : dense_.RowSums();
}

linalg::Vector TransportPlan::TargetMarginal() const {
  return is_sparse_ ? sparse_.ColSums() : dense_.ColSums();
}

linalg::Vector TransportPlan::ConditionalRow(size_t row) const {
  if (is_sparse_) {
    assert(row < sparse_.rows());
    linalg::Vector cond(col_cells_.size(), 0.0);
    const auto& row_ptr = sparse_.row_ptr();
    const auto& col_index = sparse_.col_index();
    const auto& values = sparse_.values();
    double mass = 0.0;
    for (size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      cond[col_index[k]] = values[k];
      mass += values[k];
    }
    if (mass > 0.0) {
      for (size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        cond[col_index[k]] /= mass;
      }
    }
    return cond;
  }
  assert(row < dense_.rows());
  linalg::Vector cond = dense_.Row(row);
  const double mass = cond.Sum();
  if (mass > 0.0) cond /= mass;
  return cond;
}

size_t TransportPlan::SampleRepair(size_t source_cell, Rng& rng) const {
  const auto it = row_of_cell_.find(source_cell);
  if (it == row_of_cell_.end()) return source_cell;
  const size_t row = it->second;
  if (is_sparse_) {
    const auto& row_ptr = sparse_.row_ptr();
    const auto& col_index = sparse_.col_index();
    const auto& values = sparse_.values();
    const size_t begin = row_ptr[row];
    const size_t end = row_ptr[row + 1];
    // The CSR span runs the same categorical algorithm (and the same
    // single RNG draw) as the dense row via the span overload, so the two
    // backings are bit-identical whenever their stored entries match.
    double mass = 0.0;
    for (size_t k = begin; k < end; ++k) mass += values[k];
    if (mass <= 0.0) return source_cell;
    const size_t pick =
        rng.NextCategorical(values.data() + begin, end - begin, mass);
    return col_cells_[col_index[begin + pick]];
  }
  // Sample straight off the row-major backing — like the CSR branch, no
  // per-tuple row copy on the repair loop.
  const size_t n = dense_.cols();
  const double* row_data = dense_.data().data() + row * n;
  double mass = 0.0;
  for (size_t c = 0; c < n; ++c) mass += row_data[c];
  if (mass <= 0.0) return source_cell;
  return col_cells_[rng.NextCategorical(row_data, n, mass)];
}

size_t TransportPlan::MapRepair(size_t source_cell) const {
  const auto it = row_of_cell_.find(source_cell);
  if (it == row_of_cell_.end()) return source_cell;
  const size_t row = it->second;
  if (is_sparse_) {
    const auto& row_ptr = sparse_.row_ptr();
    const auto& col_index = sparse_.col_index();
    const auto& values = sparse_.values();
    const size_t begin = row_ptr[row];
    double mass = 0.0;
    const size_t k =
        FirstArgMax(values.data() + begin, row_ptr[row + 1] - begin, mass);
    if (mass <= 0.0) return source_cell;
    return col_cells_[col_index[begin + k]];
  }
  const size_t n = dense_.cols();
  double mass = 0.0;
  const size_t c = FirstArgMax(dense_.data().data() + row * n, n, mass);
  if (mass <= 0.0) return source_cell;
  return col_cells_[c];
}

}  // namespace otclean::ot
