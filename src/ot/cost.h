#ifndef OTCLEAN_OT_COST_H_
#define OTCLEAN_OT_COST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/cost_provider.h"
#include "linalg/matrix.h"
#include "prob/domain.h"

namespace otclean::ot {

/// A user-defined cost `c(v, v′)` between two tuples of the same domain —
/// the paper's generalization of repair-minimality criteria. Implementations
/// must be non-negative and should return 0 for identical tuples.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Cost of transforming tuple `a` into tuple `b` (code vectors over the
  /// same domain).
  virtual double Cost(const std::vector<int>& a,
                      const std::vector<int>& b) const = 0;

  /// Stable content fingerprint of this cost's *parameters*: two instances
  /// that compute the same c(v, v′) return the same value, and materially
  /// different parameterizations differ. The cross-request solve cache
  /// (core::SolveCache) keys built kernels on it. 0 means
  /// "unfingerprintable" and disables caching for solves using this cost —
  /// the default, so an arbitrary user cost (LambdaCost) is never wrongly
  /// shared between jobs.
  virtual uint64_t Fingerprint() const { return 0; }
};

/// Euclidean distance over integer codes with per-attribute scale weights
/// (the paper's C1: attributes divided by their standard deviation).
/// With unit weights this is the plain Euclidean distance of Example 3.2.
class EuclideanCost : public CostFunction {
 public:
  /// Unit weights.
  explicit EuclideanCost(size_t num_attrs)
      : inv_scales_(num_attrs, 1.0) {}
  /// weights[i] multiplies attribute i's difference (use 1/stddev for the
  /// paper's normalization).
  explicit EuclideanCost(std::vector<double> inv_scales)
      : inv_scales_(std::move(inv_scales)) {}

  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;

 private:
  std::vector<double> inv_scales_;
};

/// Number of attributes that differ (update-count minimality; makes the
/// repair problem match MVD U-repair, cf. Section 3 of the paper).
class HammingCost : public CostFunction {
 public:
  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;
};

/// 1 − cosine similarity of the code vectors (used in Fig. 12 for Boston).
class CosineCost : public CostFunction {
 public:
  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;
};

/// 1 − Pearson correlation across attributes (used in Fig. 12 for Car).
class CorrelationCost : public CostFunction {
 public:
  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;
};

/// Wraps an arbitrary callable as a cost function.
class LambdaCost : public CostFunction {
 public:
  using Fn =
      std::function<double(const std::vector<int>&, const std::vector<int>&)>;
  explicit LambdaCost(Fn fn) : fn_(std::move(fn)) {}
  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override {
    return fn_(a, b);
  }

 private:
  Fn fn_;
};

/// The fairness cost of Section 6.2: changes to attributes in
/// `frozen_attrs` (sensitive + admissible) cost `frozen_penalty`
/// (effectively forbidding them), while the remaining (inadmissible)
/// attributes cost their weighted Euclidean distance.
class FairnessCost : public CostFunction {
 public:
  FairnessCost(std::vector<size_t> frozen_attrs, size_t num_attrs,
               double frozen_penalty = 1e6);

  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;

 private:
  std::vector<bool> frozen_;
  double frozen_penalty_;
};

/// Diagonal-metric (per-attribute weighted) Euclidean cost; the carrier for
/// the learned MLKR metric (the paper's C2).
class WeightedEuclideanCost : public CostFunction {
 public:
  explicit WeightedEuclideanCost(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  double Cost(const std::vector<int>& a,
              const std::vector<int>& b) const override;
  uint64_t Fingerprint() const override;

 private:
  std::vector<double> weights_;
};

/// Streams C[r][c] = f(Decode(rows[r]), Decode(cols[c])) on demand — the
/// linalg::CostProvider view of a CostFunction over (a restriction of) a
/// domain. The sparse transport pipeline consumes this directly
/// (SparseMatrix::GibbsKernel, SparseTransportKernel::FromCost,
/// TransportKernel::TransportCost), so a truncated solve never
/// materializes the dense rows×cols cost matrix; BuildCostMatrix below is
/// just the client that does materialize it for the dense path.
///
/// Row/column tuples are decoded once at construction (O((rows+cols)·k)
/// memory; the symmetric full-domain form shares one table for both
/// sides), which makes At/Fill/Gather allocation-free and safe to call
/// concurrently from kernel worker threads. The cost function is borrowed
/// and must outlive the provider.
class FunctionCostProvider final : public linalg::CostProvider {
 public:
  /// Cost over all cell pairs of `dom`.
  FunctionCostProvider(const prob::Domain& dom, const CostFunction& f);
  /// Cost restricted to row cells `rows` and column cells `cols` (flat
  /// indices of `dom`) — the paper's active-domain optimization.
  FunctionCostProvider(const prob::Domain& dom,
                       const std::vector<size_t>& rows,
                       const std::vector<size_t>& cols,
                       const CostFunction& f);

  size_t rows() const override { return row_tuples_->size(); }
  size_t cols() const override { return col_tuples_->size(); }
  double At(size_t row, size_t col) const override {
    return f_->Cost((*row_tuples_)[row], (*col_tuples_)[col]);
  }

 private:
  using TupleTable = std::vector<std::vector<int>>;

  const CostFunction* f_;
  std::shared_ptr<const TupleTable> row_tuples_;
  std::shared_ptr<const TupleTable> col_tuples_;  ///< may alias row_tuples_
};

/// Dense cost matrix over all cell pairs of `dom`:
/// C[i][j] = f(Decode(i), Decode(j)).
linalg::Matrix BuildCostMatrix(const prob::Domain& dom, const CostFunction& f);

/// Cost matrix restricted to row cells `rows` and column cells `cols`
/// (flat indices of `dom`) — the paper's active-domain optimization.
/// Materializes a FunctionCostProvider; prefer streaming the provider
/// itself when the consumer can (the truncated-kernel path does).
linalg::Matrix BuildCostMatrix(const prob::Domain& dom,
                               const std::vector<size_t>& rows,
                               const std::vector<size_t>& cols,
                               const CostFunction& f);

/// Per-attribute inverse standard deviations of the codes under the
/// empirical distribution `p` — the paper's C1 normalization. Attributes
/// with zero variance get weight 1.
std::vector<double> InverseStddevWeights(const prob::Domain& dom,
                                         const linalg::Vector& probs);

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_COST_H_
