#ifndef OTCLEAN_OT_EXACT_H_
#define OTCLEAN_OT_EXACT_H_

#include "common/result.h"
#include "ot/cost.h"
#include "prob/joint.h"

namespace otclean::ot {

/// Exact (LP-based) optimal transport distance between two distributions
/// over the same domain — the Earth Mover's Distance used by the
/// statistical-distortion evaluation (Fig. 9, Dasu & Loh framework).
///
/// Support is restricted to cells with nonzero mass on either side, so the
/// LP stays small for sparse empirical distributions.
Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost);

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_EXACT_H_
