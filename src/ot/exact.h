#ifndef OTCLEAN_OT_EXACT_H_
#define OTCLEAN_OT_EXACT_H_

#include <cstddef>

#include "common/cancellation.h"
#include "common/result.h"
#include "ot/cost.h"
#include "prob/joint.h"

namespace otclean::linalg {
class ThreadPool;
}  // namespace otclean::linalg

namespace otclean::ot {

/// Engine knobs for the exact solve: pooled pivot pricing and cooperative
/// stop checks, mirroring the Sinkhorn path's options surface.
struct ExactOtOptions {
  /// Worker lanes for the network-simplex pricing scan (0 = hardware
  /// concurrency, 1 = serial). Results are identical across thread counts.
  size_t num_threads = 1;
  /// Optional shared pool; must outlive the call.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Cooperative stop signals, polled once per simplex pivot.
  const CancellationToken* cancel_token = nullptr;
  Deadline deadline = Deadline::Infinite();
  /// Pivot cap forwarded to the network simplex.
  size_t max_pivots = 100000;
};

/// Exact (LP-based) optimal transport distance between two distributions
/// over the same domain — the Earth Mover's Distance used by the
/// statistical-distortion evaluation (Fig. 9, Dasu & Loh framework).
///
/// Support is restricted to cells with nonzero mass on either side, and
/// costs stream through a linalg::CostProvider into the network simplex —
/// no dense support×support cost matrix is materialized. Non-finite cost
/// entries are rejected with a row/col-indexed InvalidArgument, matching
/// ValidateInputs on the Sinkhorn path.
Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost,
                               const ExactOtOptions& options);

Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost);

}  // namespace otclean::ot

#endif  // OTCLEAN_OT_EXACT_H_
