#include "ot/exact.h"

#include "lp/network_simplex.h"
#include "ot/sinkhorn.h"

namespace otclean::ot {

Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost,
                               const ExactOtOptions& options) {
  if (!(p.domain() == q.domain())) {
    return Status::InvalidArgument("ExactOtDistance: domain mismatch");
  }
  prob::JointDistribution pn = p;
  prob::JointDistribution qn = q;
  pn.Normalize();
  qn.Normalize();

  std::vector<size_t> p_cells, q_cells;
  for (size_t i = 0; i < pn.size(); ++i) {
    if (pn[i] > 0.0) p_cells.push_back(i);
  }
  for (size_t i = 0; i < qn.size(); ++i) {
    if (qn[i] > 0.0) q_cells.push_back(i);
  }
  if (p_cells.empty() || q_cells.empty()) {
    return Status::InvalidArgument("ExactOtDistance: zero measure");
  }

  linalg::Vector pv(p_cells.size()), qv(q_cells.size());
  for (size_t i = 0; i < p_cells.size(); ++i) pv[i] = pn[p_cells[i]];
  for (size_t j = 0; j < q_cells.size(); ++j) qv[j] = qn[q_cells[j]];

  // Stream the support×support cost — no dense BuildCostMatrix — and
  // reject NaN/±inf entries with the same row/col-indexed message the
  // Sinkhorn path produces.
  FunctionCostProvider provider(p.domain(), p_cells, q_cells, cost);
  Status finite = ValidateFiniteCosts("ExactOtDistance", provider);
  if (!finite.ok()) return finite;

  lp::NetworkSimplexOptions net;
  net.max_pivots = options.max_pivots;
  net.num_threads = options.num_threads;
  net.thread_pool = options.thread_pool;
  net.cancel_token = options.cancel_token;
  net.deadline = options.deadline;
  OTCLEAN_ASSIGN_OR_RETURN(lp::SparseNetworkSimplexResult tr,
                           lp::SolveTransportNetwork(provider, pv, qv, net));
  return tr.cost;
}

Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost) {
  return ExactOtDistance(p, q, cost, ExactOtOptions{});
}

}  // namespace otclean::ot
