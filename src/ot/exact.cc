#include "ot/exact.h"

#include "lp/transport_lp.h"

namespace otclean::ot {

Result<double> ExactOtDistance(const prob::JointDistribution& p,
                               const prob::JointDistribution& q,
                               const CostFunction& cost) {
  if (!(p.domain() == q.domain())) {
    return Status::InvalidArgument("ExactOtDistance: domain mismatch");
  }
  prob::JointDistribution pn = p;
  prob::JointDistribution qn = q;
  pn.Normalize();
  qn.Normalize();

  std::vector<size_t> p_cells, q_cells;
  for (size_t i = 0; i < pn.size(); ++i) {
    if (pn[i] > 0.0) p_cells.push_back(i);
  }
  for (size_t i = 0; i < qn.size(); ++i) {
    if (qn[i] > 0.0) q_cells.push_back(i);
  }
  if (p_cells.empty() || q_cells.empty()) {
    return Status::InvalidArgument("ExactOtDistance: zero measure");
  }

  linalg::Vector pv(p_cells.size()), qv(q_cells.size());
  for (size_t i = 0; i < p_cells.size(); ++i) pv[i] = pn[p_cells[i]];
  for (size_t j = 0; j < q_cells.size(); ++j) qv[j] = qn[q_cells[j]];

  const linalg::Matrix c = BuildCostMatrix(p.domain(), p_cells, q_cells, cost);
  OTCLEAN_ASSIGN_OR_RETURN(lp::TransportResult tr,
                           lp::SolveTransport(c, pv, qv));
  return tr.cost;
}

}  // namespace otclean::ot
