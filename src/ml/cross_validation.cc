#include "ml/cross_validation.h"

#include <algorithm>

#include "ml/features.h"

namespace otclean::ml {

std::vector<size_t> StratifiedFolds(const std::vector<int>& labels, size_t k,
                                    Rng& rng) {
  std::vector<size_t> folds(labels.size(), 0);
  // Shuffle each class's rows and deal them round-robin across folds.
  for (int cls = 0; cls <= 1; ++cls) {
    std::vector<size_t> rows;
    for (size_t i = 0; i < labels.size(); ++i) {
      if ((labels[i] != 0) == (cls == 1)) rows.push_back(i);
    }
    const std::vector<size_t> perm = rng.Permutation(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      folds[rows[perm[i]]] = i % k;
    }
  }
  return folds;
}

Result<CrossValidationResult> CrossValidate(
    const dataset::Table& table, size_t label_col,
    const std::vector<size_t>& feature_cols, const ClassifierFactory& factory,
    const CrossValidationOptions& options, const TrainTransform& transform) {
  if (options.num_folds < 2) {
    return Status::InvalidArgument("CrossValidate: need at least 2 folds");
  }
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           BinaryLabels(table, label_col));
  Rng rng(options.seed);
  const std::vector<size_t> folds =
      StratifiedFolds(labels, options.num_folds, rng);

  CrossValidationResult result;
  result.oof_scores.assign(table.num_rows(), 0.5);
  double sum_f1 = 0.0, sum_acc = 0.0;

  for (size_t fold = 0; fold < options.num_folds; ++fold) {
    std::vector<size_t> train_rows, test_rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      (folds[r] == fold ? test_rows : train_rows).push_back(r);
    }
    if (train_rows.empty() || test_rows.empty()) continue;

    dataset::Table train = table.SelectRows(train_rows);
    if (transform) {
      OTCLEAN_ASSIGN_OR_RETURN(train, transform(train));
    }
    std::unique_ptr<Classifier> model = factory();
    OTCLEAN_RETURN_NOT_OK(model->Fit(train, label_col, feature_cols));

    std::vector<int> test_labels;
    std::vector<double> test_scores;
    test_labels.reserve(test_rows.size());
    test_scores.reserve(test_rows.size());
    for (size_t r : test_rows) {
      const double score = model->PredictProb(table.Row(r));
      result.oof_scores[r] = score;
      test_labels.push_back(labels[r]);
      test_scores.push_back(score);
    }
    const double auc = Auc(test_labels, test_scores);
    result.fold_auc.push_back(auc);
    sum_f1 += F1Score(test_labels, test_scores);
    sum_acc += Accuracy(test_labels, test_scores);
  }
  if (result.fold_auc.empty()) {
    return Status::Internal("CrossValidate: no folds evaluated");
  }
  const double nf = static_cast<double>(result.fold_auc.size());
  for (double a : result.fold_auc) result.mean_auc += a;
  result.mean_auc /= nf;
  result.mean_f1 = sum_f1 / nf;
  result.mean_accuracy = sum_acc / nf;
  return result;
}

Result<HoldoutResult> TrainAndEvaluate(const dataset::Table& train,
                                       const dataset::Table& test,
                                       size_t label_col,
                                       const std::vector<size_t>& feature_cols,
                                       const ClassifierFactory& factory,
                                       const TrainTransform& transform) {
  dataset::Table fitted_train = train;
  if (transform) {
    OTCLEAN_ASSIGN_OR_RETURN(fitted_train, transform(train));
  }
  std::unique_ptr<Classifier> model = factory();
  OTCLEAN_RETURN_NOT_OK(model->Fit(fitted_train, label_col, feature_cols));

  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           BinaryLabels(test, label_col));
  const std::vector<double> scores = model->PredictTable(test);
  HoldoutResult out;
  out.auc = Auc(labels, scores);
  out.f1 = F1Score(labels, scores);
  out.accuracy = Accuracy(labels, scores);
  return out;
}

std::vector<size_t> AllFeaturesExcept(const dataset::Schema& schema,
                                      size_t label_col,
                                      const std::vector<size_t>& exclude) {
  std::vector<size_t> out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c == label_col) continue;
    if (std::find(exclude.begin(), exclude.end(), c) != exclude.end()) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace otclean::ml
