#include "ml/naive_bayes.h"

#include <cmath>

#include "ml/features.h"

namespace otclean::ml {

Status NaiveBayes::Fit(const dataset::Table& table, size_t label_col,
                       const std::vector<size_t>& feature_cols) {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           BinaryLabels(table, label_col));
  feature_cols_ = feature_cols;
  const size_t n = table.num_rows();
  if (n == 0) return Status::InvalidArgument("NaiveBayes: empty table");

  size_t n1 = 0;
  for (int y : labels) n1 += static_cast<size_t>(y);
  const size_t n0 = n - n1;
  log_prior_1_ = std::log((static_cast<double>(n1) + options_.alpha) /
                          (static_cast<double>(n) + 2.0 * options_.alpha));
  log_prior_0_ = std::log((static_cast<double>(n0) + options_.alpha) /
                          (static_cast<double>(n) + 2.0 * options_.alpha));

  log_cond_.assign(2, {});
  for (int c = 0; c < 2; ++c) {
    log_cond_[c].resize(feature_cols_.size());
    for (size_t f = 0; f < feature_cols_.size(); ++f) {
      log_cond_[c][f].assign(
          table.schema().column(feature_cols_[f]).cardinality(), 0.0);
    }
  }
  // Count per class.
  std::vector<std::vector<std::vector<double>>> counts = log_cond_;
  std::vector<std::vector<double>> totals(
      2, std::vector<double>(feature_cols_.size(), 0.0));
  for (size_t r = 0; r < n; ++r) {
    const int c = labels[r];
    for (size_t f = 0; f < feature_cols_.size(); ++f) {
      const int v = table.Value(r, feature_cols_[f]);
      if (v == dataset::kMissing) continue;
      counts[c][f][static_cast<size_t>(v)] += 1.0;
      totals[c][f] += 1.0;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (size_t f = 0; f < feature_cols_.size(); ++f) {
      const double card = static_cast<double>(counts[c][f].size());
      for (size_t v = 0; v < counts[c][f].size(); ++v) {
        log_cond_[c][f][v] =
            std::log((counts[c][f][v] + options_.alpha) /
                     (totals[c][f] + options_.alpha * card));
      }
    }
  }
  return Status::OK();
}

double NaiveBayes::PredictProb(const std::vector<int>& row) const {
  if (log_cond_.empty()) return 0.5;
  double s1 = log_prior_1_;
  double s0 = log_prior_0_;
  for (size_t f = 0; f < feature_cols_.size(); ++f) {
    const int v = row[feature_cols_[f]];
    if (v == dataset::kMissing) continue;
    if (static_cast<size_t>(v) >= log_cond_[0][f].size()) continue;
    s1 += log_cond_[1][f][static_cast<size_t>(v)];
    s0 += log_cond_[0][f][static_cast<size_t>(v)];
  }
  // P(1 | row) via the log-sum trick.
  const double m = std::max(s0, s1);
  const double e1 = std::exp(s1 - m);
  const double e0 = std::exp(s0 - m);
  return e1 / (e0 + e1);
}

}  // namespace otclean::ml
