#include "ml/random_forest.h"

#include <cmath>

namespace otclean::ml {

Status RandomForest::Fit(const dataset::Table& table, size_t label_col,
                         const std::vector<size_t>& feature_cols) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("RandomForest: empty table");
  }
  trees_.clear();
  Rng rng(options_.seed);
  const size_t n = table.num_rows();
  const size_t max_features = std::max<size_t>(
      1, static_cast<size_t>(
             std::sqrt(static_cast<double>(feature_cols.size())) + 0.5));

  for (size_t t = 0; t < options_.num_trees; ++t) {
    DecisionTree::Options tree_opts;
    tree_opts.max_depth = options_.max_depth;
    tree_opts.min_samples_split = options_.min_samples_split;
    tree_opts.max_features = max_features;
    tree_opts.seed = options_.seed + t;
    DecisionTree tree(tree_opts);

    // Bootstrap sample.
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = rng.NextUint64Below(n);
    }
    Rng tree_rng = rng.Fork(t);
    OTCLEAN_RETURN_NOT_OK(
        tree.FitRows(table, label_col, feature_cols, rows, tree_rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::PredictProb(const std::vector<int>& row) const {
  if (trees_.empty()) return 0.5;
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.PredictProb(row);
  return s / static_cast<double>(trees_.size());
}

}  // namespace otclean::ml
