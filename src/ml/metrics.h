#ifndef OTCLEAN_ML_METRICS_H_
#define OTCLEAN_ML_METRICS_H_

#include <vector>

namespace otclean::ml {

/// Area under the ROC curve (rank statistic with midrank tie handling).
/// Returns 0.5 when one class is absent.
double Auc(const std::vector<int>& labels, const std::vector<double>& scores);

/// F1 score of the positive class at `threshold`.
double F1Score(const std::vector<int>& labels,
               const std::vector<double>& scores, double threshold = 0.5);

/// Fraction of correct predictions at `threshold`.
double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& scores, double threshold = 0.5);

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_METRICS_H_
