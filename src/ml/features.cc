#include "ml/features.h"

namespace otclean::ml {

OneHotEncoder::OneHotEncoder(const dataset::Schema& schema,
                             std::vector<size_t> feature_cols)
    : feature_cols_(std::move(feature_cols)) {
  offsets_.reserve(feature_cols_.size());
  cardinalities_.reserve(feature_cols_.size());
  for (size_t col : feature_cols_) {
    offsets_.push_back(width_);
    const size_t card = schema.column(col).cardinality();
    cardinalities_.push_back(card);
    width_ += card;
  }
}

std::vector<double> OneHotEncoder::Encode(const std::vector<int>& row) const {
  std::vector<double> out(width_, 0.0);
  for (size_t i = 0; i < feature_cols_.size(); ++i) {
    const int code = row[feature_cols_[i]];
    if (code == dataset::kMissing) continue;
    if (static_cast<size_t>(code) < cardinalities_[i]) {
      out[offsets_[i] + static_cast<size_t>(code)] = 1.0;
    }
  }
  return out;
}

std::vector<std::vector<double>> OneHotEncoder::EncodeTable(
    const dataset::Table& table) const {
  std::vector<std::vector<double>> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(Encode(table.Row(r)));
  }
  return out;
}

Result<std::vector<int>> BinaryLabels(const dataset::Table& table,
                                      size_t label_col) {
  if (label_col >= table.num_columns()) {
    return Status::OutOfRange("BinaryLabels: column out of range");
  }
  if (table.schema().column(label_col).cardinality() != 2) {
    return Status::InvalidArgument("BinaryLabels: label column '" +
                                   table.schema().column(label_col).name +
                                   "' is not binary");
  }
  std::vector<int> labels(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int v = table.Value(r, label_col);
    if (v == dataset::kMissing) {
      return Status::InvalidArgument("BinaryLabels: missing label at row " +
                                     std::to_string(r));
    }
    labels[r] = (v != 0) ? 1 : 0;
  }
  return labels;
}

}  // namespace otclean::ml
