#ifndef OTCLEAN_ML_FEATURES_H_
#define OTCLEAN_ML_FEATURES_H_

#include <vector>

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::ml {

/// One-hot encoding of categorical columns into a dense feature matrix.
/// Missing values encode as an all-zero block for that column.
class OneHotEncoder {
 public:
  /// Builds the encoder for `feature_cols` of `schema`.
  OneHotEncoder(const dataset::Schema& schema,
                std::vector<size_t> feature_cols);

  /// Total encoded width.
  size_t width() const { return width_; }
  const std::vector<size_t>& feature_cols() const { return feature_cols_; }

  /// Encodes one table row (vector of codes over the full schema).
  std::vector<double> Encode(const std::vector<int>& row) const;

  /// Encodes every row of a table.
  std::vector<std::vector<double>> EncodeTable(
      const dataset::Table& table) const;

 private:
  std::vector<size_t> feature_cols_;
  std::vector<size_t> offsets_;       ///< per feature col, start in output.
  std::vector<size_t> cardinalities_; ///< per feature col.
  size_t width_ = 0;
};

/// Extracts a binary label vector from a column with cardinality 2
/// (code != 0 → 1). Fails for non-binary columns or missing labels.
Result<std::vector<int>> BinaryLabels(const dataset::Table& table,
                                      size_t label_col);

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_FEATURES_H_
