#ifndef OTCLEAN_ML_RANDOM_FOREST_H_
#define OTCLEAN_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace otclean::ml {

/// Bagged ensemble of multiway-split decision trees with per-split feature
/// subsampling.
class RandomForest : public Classifier {
 public:
  struct Options {
    size_t num_trees = 25;
    size_t max_depth = 10;
    size_t min_samples_split = 4;
    uint64_t seed = 11;
  };

  RandomForest() : RandomForest(Options()) {}
  explicit RandomForest(Options options) : options_(options) {}

  Status Fit(const dataset::Table& table, size_t label_col,
             const std::vector<size_t>& feature_cols) override;
  double PredictProb(const std::vector<int>& row) const override;
  const char* name() const override { return "random_forest"; }

  size_t num_trees() const { return trees_.size(); }

 private:
  Options options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_RANDOM_FOREST_H_
