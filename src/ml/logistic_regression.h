#ifndef OTCLEAN_ML_LOGISTIC_REGRESSION_H_
#define OTCLEAN_ML_LOGISTIC_REGRESSION_H_

#include <optional>

#include "ml/features.h"
#include "ml/model.h"

namespace otclean::ml {

/// L2-regularized logistic regression on one-hot features, trained with
/// full-batch gradient descent and a decaying step size.
class LogisticRegression : public Classifier {
 public:
  struct Options {
    double learning_rate = 0.5;
    double l2 = 1e-3;
    size_t epochs = 300;
  };

  LogisticRegression() : LogisticRegression(Options()) {}
  explicit LogisticRegression(Options options) : options_(options) {}

  Status Fit(const dataset::Table& table, size_t label_col,
             const std::vector<size_t>& feature_cols) override;
  double PredictProb(const std::vector<int>& row) const override;
  const char* name() const override { return "logistic_regression"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  Options options_;
  std::optional<OneHotEncoder> encoder_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_LOGISTIC_REGRESSION_H_
