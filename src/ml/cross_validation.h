#ifndef OTCLEAN_ML_CROSS_VALIDATION_H_
#define OTCLEAN_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "ml/metrics.h"
#include "ml/model.h"

namespace otclean::ml {

/// Stratified fold assignment: returns fold index per row, balancing class
/// proportions across `k` folds.
std::vector<size_t> StratifiedFolds(const std::vector<int>& labels, size_t k,
                                    Rng& rng);

/// Builds a fresh classifier per fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Optional hook applied to each fold's *training* partition before
/// fitting — this is where a data cleaner (OTClean, Capuchin, …) plugs in,
/// so cleaning never sees the evaluation split.
using TrainTransform =
    std::function<Result<dataset::Table>(const dataset::Table&)>;

struct CrossValidationResult {
  double mean_auc = 0.0;
  double mean_f1 = 0.0;
  double mean_accuracy = 0.0;
  std::vector<double> fold_auc;
  /// Out-of-fold score for every input row (each row is scored exactly once
  /// by the model that did not train on it) — used by the fairness metrics.
  std::vector<double> oof_scores;
};

struct CrossValidationOptions {
  size_t num_folds = 5;
  uint64_t seed = 1234;
};

/// k-fold cross validation of `factory`-built models on `table`.
Result<CrossValidationResult> CrossValidate(
    const dataset::Table& table, size_t label_col,
    const std::vector<size_t>& feature_cols, const ClassifierFactory& factory,
    const CrossValidationOptions& options = {},
    const TrainTransform& transform = nullptr);

/// Trains on `train` (after optional transform) and evaluates on `test`.
struct HoldoutResult {
  double auc = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};
Result<HoldoutResult> TrainAndEvaluate(const dataset::Table& train,
                                       const dataset::Table& test,
                                       size_t label_col,
                                       const std::vector<size_t>& feature_cols,
                                       const ClassifierFactory& factory,
                                       const TrainTransform& transform =
                                           nullptr);

/// All feature columns except `label_col` (and any in `exclude`).
std::vector<size_t> AllFeaturesExcept(const dataset::Schema& schema,
                                      size_t label_col,
                                      const std::vector<size_t>& exclude = {});

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_CROSS_VALIDATION_H_
