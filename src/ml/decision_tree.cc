#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "ml/features.h"

namespace otclean::ml {

namespace {
double GiniFromCounts(double n0, double n1) {
  const double n = n0 + n1;
  if (n <= 0.0) return 0.0;
  const double p1 = n1 / n;
  return 2.0 * p1 * (1.0 - p1);
}
}  // namespace

Status DecisionTree::Fit(const dataset::Table& table, size_t label_col,
                         const std::vector<size_t>& feature_cols) {
  std::vector<size_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  Rng rng(options_.seed);
  return FitRows(table, label_col, feature_cols, rows, rng);
}

Status DecisionTree::FitRows(const dataset::Table& table, size_t label_col,
                             const std::vector<size_t>& feature_cols,
                             const std::vector<size_t>& rows, Rng& rng) {
  if (table.schema().column(label_col).cardinality() != 2) {
    return Status::InvalidArgument("DecisionTree: label column is not binary");
  }
  if (rows.empty()) return Status::InvalidArgument("DecisionTree: no rows");
  nodes_.clear();
  child_index_.clear();
  child_index_size_ = 0;
  std::vector<size_t> mutable_rows = rows;
  Build(table, label_col, feature_cols, mutable_rows, 0, rng);
  return Status::OK();
}

size_t DecisionTree::Build(const dataset::Table& table, size_t label_col,
                           const std::vector<size_t>& feature_cols,
                           std::vector<size_t>& rows, size_t depth, Rng& rng) {
  const size_t node_id = nodes_.size();
  nodes_.emplace_back();

  double n0 = 0.0, n1 = 0.0;
  for (size_t r : rows) {
    const int y = table.Value(r, label_col);
    if (y == 1) {
      n1 += 1.0;
    } else {
      n0 += 1.0;
    }
  }
  // Laplace-smoothed leaf probability.
  nodes_[node_id].prob1 = (n1 + 1.0) / (n0 + n1 + 2.0);

  if (depth >= options_.max_depth || rows.size() < options_.min_samples_split ||
      n0 == 0.0 || n1 == 0.0) {
    return node_id;
  }

  // Candidate features (optionally a random subset, for forests).
  std::vector<size_t> candidates = feature_cols;
  if (options_.max_features > 0 && options_.max_features < candidates.size()) {
    const std::vector<size_t> perm = rng.Permutation(candidates.size());
    std::vector<size_t> subset;
    subset.reserve(options_.max_features);
    for (size_t i = 0; i < options_.max_features; ++i) {
      subset.push_back(candidates[perm[i]]);
    }
    candidates = std::move(subset);
  }

  // Pick the multiway split with the lowest weighted Gini.
  const double parent_gini = GiniFromCounts(n0, n1);
  double best_gain = 1e-12;
  size_t best_feature = table.num_columns();
  for (size_t f : candidates) {
    const size_t card = table.schema().column(f).cardinality();
    std::vector<double> c0(card, 0.0), c1(card, 0.0);
    double miss0 = 0.0, miss1 = 0.0;
    for (size_t r : rows) {
      const int v = table.Value(r, f);
      const bool is1 = table.Value(r, label_col) == 1;
      if (v == dataset::kMissing) {
        (is1 ? miss1 : miss0) += 1.0;
        continue;
      }
      (is1 ? c1[static_cast<size_t>(v)] : c0[static_cast<size_t>(v)]) += 1.0;
    }
    double weighted = 0.0;
    const double total = n0 + n1;
    for (size_t v = 0; v < card; ++v) {
      const double nv = c0[v] + c1[v];
      if (nv > 0.0) weighted += (nv / total) * GiniFromCounts(c0[v], c1[v]);
    }
    const double nm = miss0 + miss1;
    if (nm > 0.0) weighted += (nm / total) * GiniFromCounts(miss0, miss1);
    const double gain = parent_gini - weighted;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = f;
    }
  }
  if (best_feature == table.num_columns()) return node_id;  // no useful split

  const size_t card = table.schema().column(best_feature).cardinality();
  // Partition rows per child; missing values go to the largest child later.
  std::vector<std::vector<size_t>> parts(card);
  std::vector<size_t> missing_rows;
  for (size_t r : rows) {
    const int v = table.Value(r, best_feature);
    if (v == dataset::kMissing) {
      missing_rows.push_back(r);
    } else {
      parts[static_cast<size_t>(v)].push_back(r);
    }
  }
  size_t majority = 0;
  for (size_t v = 1; v < card; ++v) {
    if (parts[v].size() > parts[majority].size()) majority = v;
  }
  for (size_t r : missing_rows) parts[majority].push_back(r);

  // Children must be contiguous: reserve their slots by building a
  // breadth-one layout — record child ids after recursive builds.
  nodes_[node_id].leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].num_children = card;
  nodes_[node_id].majority_child = majority;

  std::vector<size_t> child_ids(card);
  for (size_t v = 0; v < card; ++v) {
    if (parts[v].empty()) {
      // Empty child: a leaf inheriting the parent's probability.
      child_ids[v] = nodes_.size();
      nodes_.emplace_back();
      nodes_.back().prob1 = nodes_[node_id].prob1;
    } else {
      child_ids[v] =
          Build(table, label_col, feature_cols, parts[v], depth + 1, rng);
    }
  }
  // Children are not contiguous after recursion; store ids in a side table
  // keyed by first_child into child_index_.
  nodes_[node_id].first_child = child_index_size_;
  child_index_.resize(child_index_size_ + card);
  for (size_t v = 0; v < card; ++v) {
    child_index_[nodes_[node_id].first_child + v] = child_ids[v];
  }
  child_index_size_ += card;
  return node_id;
}

double DecisionTree::PredictProb(const std::vector<int>& row) const {
  if (nodes_.empty()) return 0.5;
  size_t id = 0;
  while (!nodes_[id].leaf) {
    const Node& node = nodes_[id];
    const int v = row[node.feature];
    const size_t child_slot =
        (v == dataset::kMissing ||
         static_cast<size_t>(v) >= node.num_children)
            ? node.majority_child
            : static_cast<size_t>(v);
    id = child_index_[node.first_child + child_slot];
  }
  return nodes_[id].prob1;
}

}  // namespace otclean::ml
