#ifndef OTCLEAN_ML_MODEL_H_
#define OTCLEAN_ML_MODEL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::ml {

/// Interface for binary classifiers over categorical tables. Models consume
/// rows of integer codes over the full schema and know which columns are
/// features; the label column must be binary (codes {0,1}).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains the model. `feature_cols` must not contain `label_col`.
  virtual Status Fit(const dataset::Table& table, size_t label_col,
                     const std::vector<size_t>& feature_cols) = 0;

  /// P(label = 1 | row). `row` is a code vector over the full schema;
  /// missing feature values are tolerated.
  virtual double PredictProb(const std::vector<int>& row) const = 0;

  /// Human-readable model name for reports.
  virtual const char* name() const = 0;

  /// Predicted probabilities for every row of a table.
  std::vector<double> PredictTable(const dataset::Table& table) const {
    std::vector<double> out;
    out.reserve(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      out.push_back(PredictProb(table.Row(r)));
    }
    return out;
  }
};

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_MODEL_H_
