#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace otclean::ml {

double Auc(const std::vector<int>& labels, const std::vector<double>& scores) {
  assert(labels.size() == scores.size());
  const size_t n = labels.size();
  size_t n1 = 0;
  for (int y : labels) n1 += static_cast<size_t>(y != 0);
  const size_t n0 = n - n1;
  if (n0 == 0 || n1 == 0) return 0.5;

  // Midrank computation over sorted scores.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] != 0) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  const double auc =
      (rank_sum_pos - 0.5 * static_cast<double>(n1) * (n1 + 1)) /
      (static_cast<double>(n0) * static_cast<double>(n1));
  return auc;
}

double F1Score(const std::vector<int>& labels,
               const std::vector<double>& scores, double threshold) {
  assert(labels.size() == scores.size());
  double tp = 0.0, fp = 0.0, fn = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    const bool truth = labels[i] != 0;
    if (pred && truth) tp += 1.0;
    if (pred && !truth) fp += 1.0;
    if (!pred && truth) fn += 1.0;
  }
  const double denom = 2.0 * tp + fp + fn;
  return (denom > 0.0) ? 2.0 * tp / denom : 0.0;
}

double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& scores, double threshold) {
  assert(labels.size() == scores.size());
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (pred == (labels[i] != 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace otclean::ml
