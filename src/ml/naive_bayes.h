#ifndef OTCLEAN_ML_NAIVE_BAYES_H_
#define OTCLEAN_ML_NAIVE_BAYES_H_

#include "ml/model.h"

namespace otclean::ml {

/// Categorical naive Bayes with Laplace smoothing. Missing feature values
/// are skipped at both train and predict time.
class NaiveBayes : public Classifier {
 public:
  struct Options {
    double alpha = 1.0;  ///< Laplace smoothing pseudo-count.
  };

  NaiveBayes() : NaiveBayes(Options()) {}
  explicit NaiveBayes(Options options) : options_(options) {}

  Status Fit(const dataset::Table& table, size_t label_col,
             const std::vector<size_t>& feature_cols) override;
  double PredictProb(const std::vector<int>& row) const override;
  const char* name() const override { return "naive_bayes"; }

 private:
  Options options_;
  std::vector<size_t> feature_cols_;
  /// log_cond_[c][f][v] = log P(feature f = v | class c).
  std::vector<std::vector<std::vector<double>>> log_cond_;
  double log_prior_1_ = 0.0;
  double log_prior_0_ = 0.0;
};

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_NAIVE_BAYES_H_
