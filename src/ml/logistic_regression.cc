#include "ml/logistic_regression.h"

#include <cmath>

namespace otclean::ml {

namespace {
double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

Status LogisticRegression::Fit(const dataset::Table& table, size_t label_col,
                               const std::vector<size_t>& feature_cols) {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<int> labels,
                           BinaryLabels(table, label_col));
  encoder_.emplace(table.schema(), feature_cols);
  const auto xs = encoder_->EncodeTable(table);
  const size_t n = xs.size();
  const size_t d = encoder_->width();
  if (n == 0) return Status::InvalidArgument("LogisticRegression: empty table");

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * xs[i][j];
      const double err = Sigmoid(z) - static_cast<double>(labels[i]);
      for (size_t j = 0; j < d; ++j) grad[j] += err * xs[i][j];
      grad_b += err;
    }
    const double lr =
        options_.learning_rate / (1.0 + 0.01 * static_cast<double>(epoch));
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= lr * (grad[j] * inv_n + options_.l2 * weights_[j]);
    }
    bias_ -= lr * grad_b * inv_n;
  }
  return Status::OK();
}

double LogisticRegression::PredictProb(const std::vector<int>& row) const {
  if (!encoder_.has_value()) return 0.5;
  const std::vector<double> x = encoder_->Encode(row);
  double z = bias_;
  for (size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return Sigmoid(z);
}

}  // namespace otclean::ml
