#ifndef OTCLEAN_ML_DECISION_TREE_H_
#define OTCLEAN_ML_DECISION_TREE_H_

#include <memory>

#include "common/random.h"
#include "ml/model.h"

namespace otclean::ml {

/// CART-style decision tree for categorical features with multiway splits
/// (one child per category value) and Gini impurity. Missing values route
/// to the most-populated child.
class DecisionTree : public Classifier {
 public:
  struct Options {
    size_t max_depth = 8;
    size_t min_samples_split = 8;
    /// Number of features considered per split; 0 = all (for forests, set
    /// to ~sqrt(#features)).
    size_t max_features = 0;
    uint64_t seed = 7;
  };

  DecisionTree() : DecisionTree(Options()) {}
  explicit DecisionTree(Options options) : options_(options) {}

  Status Fit(const dataset::Table& table, size_t label_col,
             const std::vector<size_t>& feature_cols) override;

  /// Fit on a row subset (bootstrap support for forests).
  Status FitRows(const dataset::Table& table, size_t label_col,
                 const std::vector<size_t>& feature_cols,
                 const std::vector<size_t>& rows, Rng& rng);

  double PredictProb(const std::vector<int>& row) const override;
  const char* name() const override { return "decision_tree"; }

  /// Number of nodes in the fitted tree (0 before Fit).
  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    bool leaf = true;
    double prob1 = 0.5;       ///< P(label=1) at this node.
    size_t feature = 0;       ///< split column (table index) if internal.
    size_t first_child = 0;   ///< children are contiguous, one per category.
    size_t num_children = 0;
    size_t majority_child = 0;  ///< fallback for missing values.
  };

  size_t Build(const dataset::Table& table, size_t label_col,
               const std::vector<size_t>& feature_cols,
               std::vector<size_t>& rows, size_t depth, Rng& rng);

  Options options_;
  std::vector<Node> nodes_;
  /// Child node ids, indexed by Node::first_child + category value (node
  /// children are built recursively, so ids are not contiguous).
  std::vector<size_t> child_index_;
  size_t child_index_size_ = 0;
};

}  // namespace otclean::ml

#endif  // OTCLEAN_ML_DECISION_TREE_H_
