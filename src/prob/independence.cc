#include "prob/independence.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace otclean::prob {

namespace {
/// Concatenates attribute-position lists.
std::vector<size_t> Concat(const std::vector<size_t>& a,
                           const std::vector<size_t>& b) {
  std::vector<size_t> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}
}  // namespace

double ConditionalMutualInformation(const JointDistribution& p,
                                    const CiSpec& ci) {
  const double mass = p.Mass();
  if (mass <= 0.0) return 0.0;

  const auto xz = Concat(ci.x, ci.z);
  const auto yz = Concat(ci.y, ci.z);
  const auto xyz = Concat(Concat(ci.x, ci.y), ci.z);

  const JointDistribution p_xyz = p.Marginal(xyz);
  const JointDistribution p_xz = p.Marginal(xz);
  const JointDistribution p_yz = p.Marginal(yz);
  const JointDistribution p_z =
      ci.z.empty() ? JointDistribution() : p.Marginal(ci.z);

  // Index arithmetic: within p_xyz's domain, attributes appear in order
  // [X..., Y..., Z...].
  const Domain& dom = p_xyz.domain();
  std::vector<size_t> x_pos(ci.x.size()), y_pos(ci.y.size()),
      z_pos(ci.z.size());
  for (size_t i = 0; i < ci.x.size(); ++i) x_pos[i] = i;
  for (size_t i = 0; i < ci.y.size(); ++i) y_pos[i] = ci.x.size() + i;
  for (size_t i = 0; i < ci.z.size(); ++i) {
    z_pos[i] = ci.x.size() + ci.y.size() + i;
  }
  const auto xz_pos = Concat(x_pos, z_pos);
  const auto yz_pos = Concat(y_pos, z_pos);

  double cmi = 0.0;
  for (size_t cell = 0; cell < p_xyz.size(); ++cell) {
    const double pxyz = p_xyz[cell] / mass;
    if (pxyz <= 0.0) continue;
    const double pxz = p_xz[dom.ProjectIndex(cell, xz_pos)] / mass;
    const double pyz = p_yz[dom.ProjectIndex(cell, yz_pos)] / mass;
    const double pz =
        ci.z.empty() ? 1.0 : p_z[dom.ProjectIndex(cell, z_pos)] / mass;
    // pxz, pyz > 0 whenever pxyz > 0 (they dominate it).
    cmi += pxyz * std::log((pxyz * pz) / (pxz * pyz));
  }
  // Numerical noise can push an exactly-independent case slightly negative.
  return cmi > 0.0 ? cmi : 0.0;
}

bool SatisfiesCi(const JointDistribution& p, const CiSpec& ci, double tol) {
  return ConditionalMutualInformation(p, ci) <= tol;
}

JointDistribution CiProjection(const JointDistribution& p, const CiSpec& ci) {
  const Domain& dom = p.domain();
  const double mass = p.Mass();
  JointDistribution out(dom);
  if (mass <= 0.0) return out;

  const auto xz = Concat(ci.x, ci.z);
  const auto yz = Concat(ci.y, ci.z);
  const auto xyz = Concat(Concat(ci.x, ci.y), ci.z);

  const JointDistribution p_xz = p.Marginal(xz);
  const JointDistribution p_yz = p.Marginal(yz);
  const JointDistribution p_z =
      ci.z.empty() ? JointDistribution() : p.Marginal(ci.z);
  // Conditional of the remaining attributes given (X,Y,Z): keeps the
  // projection well-defined for unsaturated constraints.
  const JointDistribution p_rest_given_xyz = p.ConditionalOn(xyz);

  for (size_t cell = 0; cell < dom.TotalSize(); ++cell) {
    const double pxz = p_xz[dom.ProjectIndex(cell, xz)] / mass;
    const double pyz = p_yz[dom.ProjectIndex(cell, yz)] / mass;
    if (pxz <= 0.0 || pyz <= 0.0) continue;
    const double pz =
        ci.z.empty() ? 1.0 : p_z[dom.ProjectIndex(cell, ci.z)] / mass;
    if (pz <= 0.0) continue;
    out[cell] = (pxz * pyz / pz) * p_rest_given_xyz[cell];
  }
  out.Normalize();
  return out;
}

double MutualInformation(const JointDistribution& p,
                         const std::vector<size_t>& x,
                         const std::vector<size_t>& y) {
  CiSpec ci;
  ci.x = x;
  ci.y = y;
  return ConditionalMutualInformation(p, ci);
}

JointDistribution MultiCiProjection(const JointDistribution& p,
                                    const std::vector<CiSpec>& cis,
                                    size_t max_sweeps, double tol) {
  JointDistribution q = p;
  if (cis.empty()) return q;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    for (const CiSpec& ci : cis) {
      q = CiProjection(q, ci);
    }
    if (MaxCmi(q, cis) <= tol) break;
  }
  return q;
}

double MaxCmi(const JointDistribution& p, const std::vector<CiSpec>& cis) {
  double mx = 0.0;
  for (const CiSpec& ci : cis) {
    mx = std::max(mx, ConditionalMutualInformation(p, ci));
  }
  return mx;
}

}  // namespace otclean::prob
