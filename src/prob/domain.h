#ifndef OTCLEAN_PROB_DOMAIN_H_
#define OTCLEAN_PROB_DOMAIN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace otclean::prob {

/// A finite product domain `V = V_1 × … × V_k` over named categorical
/// attributes, with mixed-radix encoding between value tuples and flat cell
/// indices.
///
/// Cell index layout: the *last* attribute varies fastest, i.e.
/// `index = ((v_0 · d_1 + v_1) · d_2 + v_2) …` — the row-major convention,
/// which makes slicing on a prefix cheap.
class Domain {
 public:
  Domain() = default;

  /// Builds a domain from attribute names and matching cardinalities.
  /// All cardinalities must be >= 1.
  static Result<Domain> Make(std::vector<std::string> names,
                             std::vector<size_t> cardinalities);

  /// Convenience constructor for unnamed attributes (named "a0", "a1", …).
  static Domain FromCardinalities(const std::vector<size_t>& cardinalities);

  size_t num_attrs() const { return cardinalities_.size(); }
  size_t Cardinality(size_t attr) const { return cardinalities_[attr]; }
  const std::vector<size_t>& cardinalities() const { return cardinalities_; }
  const std::string& Name(size_t attr) const { return names_[attr]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the attribute with the given name.
  Result<size_t> AttrIndex(const std::string& name) const;

  /// Total number of cells Π d_i (1 for the empty domain).
  size_t TotalSize() const { return total_size_; }

  /// Flat index for a full value tuple (values.size() == num_attrs()).
  size_t Encode(const std::vector<int>& values) const;

  /// Inverse of Encode.
  std::vector<int> Decode(size_t index) const;

  /// Decodes a single attribute's value from a flat index.
  int DecodeAttr(size_t index, size_t attr) const;

  /// Sub-domain over the given attribute positions, in the given order.
  Domain Project(const std::vector<size_t>& attrs) const;

  /// Maps a flat index of this domain to a flat index of the projected
  /// domain over `attrs`.
  size_t ProjectIndex(size_t index, const std::vector<size_t>& attrs) const;

  /// Average attribute cardinality (0 for the empty domain).
  double AverageCardinality() const;

  bool operator==(const Domain& other) const {
    return cardinalities_ == other.cardinalities_ && names_ == other.names_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<size_t> cardinalities_;
  /// strides_[i] = product of cardinalities of attributes after i.
  std::vector<size_t> strides_;
  size_t total_size_ = 1;

  void ComputeStrides();
};

}  // namespace otclean::prob

#endif  // OTCLEAN_PROB_DOMAIN_H_
