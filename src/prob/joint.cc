#include "prob/joint.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace otclean::prob {

JointDistribution::JointDistribution(Domain domain)
    : domain_(std::move(domain)), probs_(domain_.TotalSize(), 0.0) {}

Result<JointDistribution> JointDistribution::Make(Domain domain,
                                                  linalg::Vector probs) {
  if (probs.size() != domain.TotalSize()) {
    return Status::InvalidArgument(
        "JointDistribution::Make: probs length does not match domain size");
  }
  JointDistribution j;
  j.domain_ = std::move(domain);
  j.probs_ = std::move(probs);
  return j;
}

JointDistribution JointDistribution::Uniform(const Domain& domain) {
  JointDistribution j(domain);
  const double p = 1.0 / static_cast<double>(domain.TotalSize());
  for (size_t i = 0; i < j.probs_.size(); ++i) j.probs_[i] = p;
  return j;
}

JointDistribution JointDistribution::FromCounts(
    const Domain& domain, const std::vector<double>& counts) {
  assert(counts.size() == domain.TotalSize());
  JointDistribution j(domain);
  for (size_t i = 0; i < counts.size(); ++i) j.probs_[i] = counts[i];
  j.Normalize();
  return j;
}

JointDistribution JointDistribution::Marginal(
    const std::vector<size_t>& attrs) const {
  const Domain sub = domain_.Project(attrs);
  JointDistribution out(sub);
  for (size_t cell = 0; cell < probs_.size(); ++cell) {
    const double p = probs_[cell];
    if (p == 0.0) continue;
    out.probs_[domain_.ProjectIndex(cell, attrs)] += p;
  }
  return out;
}

JointDistribution JointDistribution::ConditionalOn(
    const std::vector<size_t>& attrs) const {
  // Slice mass per conditioning value.
  const Domain sub = domain_.Project(attrs);
  linalg::Vector slice_mass(sub.TotalSize(), 0.0);
  for (size_t cell = 0; cell < probs_.size(); ++cell) {
    slice_mass[domain_.ProjectIndex(cell, attrs)] += probs_[cell];
  }
  JointDistribution out(domain_);
  for (size_t cell = 0; cell < probs_.size(); ++cell) {
    const double m = slice_mass[domain_.ProjectIndex(cell, attrs)];
    out.probs_[cell] = (m > 0.0) ? probs_[cell] / m : 0.0;
  }
  return out;
}

double JointDistribution::Entropy() const {
  double h = 0.0;
  const double mass = Mass();
  if (mass <= 0.0) return 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    const double p = probs_[i] / mass;
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double JointDistribution::KlDivergence(const JointDistribution& q) const {
  assert(domain_ == q.domain_);
  const double pm = Mass();
  const double qm = q.Mass();
  if (pm <= 0.0 || qm <= 0.0) return 0.0;
  double kl = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    const double p = probs_[i] / pm;
    if (p <= 0.0) continue;
    const double qv = q.probs_[i] / qm;
    if (qv <= 0.0) return std::numeric_limits<double>::infinity();
    kl += p * std::log(p / qv);
  }
  return kl;
}

double JointDistribution::TotalVariation(const JointDistribution& q) const {
  assert(domain_ == q.domain_);
  double s = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    s += std::fabs(probs_[i] - q.probs_[i]);
  }
  return 0.5 * s;
}

size_t JointDistribution::Sample(Rng& rng) const {
  return rng.NextCategorical(probs_.data());
}

std::vector<size_t> JointDistribution::SampleMany(size_t n, Rng& rng) const {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = Sample(rng);
  return out;
}

JointDistribution ProductDistribution(const JointDistribution& p,
                                      const JointDistribution& q) {
  std::vector<std::string> names = p.domain().names();
  std::vector<size_t> cards = p.domain().cardinalities();
  for (size_t i = 0; i < q.domain().num_attrs(); ++i) {
    names.push_back(q.domain().Name(i));
    cards.push_back(q.domain().Cardinality(i));
  }
  // The concatenation of two valid domains is a valid domain.
  Domain product_domain;
  OTCLEAN_CHECK_OK_AND_ASSIGN(product_domain,
                              Domain::Make(std::move(names), std::move(cards)));
  JointDistribution out(std::move(product_domain));
  const size_t qn = q.size();
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i];
    for (size_t j = 0; j < qn; ++j) {
      out[i * qn + j] = pi * q[j];
    }
  }
  return out;
}

}  // namespace otclean::prob
