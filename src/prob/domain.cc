#include "prob/domain.h"

#include <cassert>
#include <sstream>

namespace otclean::prob {

Result<Domain> Domain::Make(std::vector<std::string> names,
                            std::vector<size_t> cardinalities) {
  if (names.size() != cardinalities.size()) {
    return Status::InvalidArgument(
        "Domain::Make: names and cardinalities size mismatch");
  }
  for (size_t c : cardinalities) {
    if (c == 0) {
      return Status::InvalidArgument(
          "Domain::Make: attribute cardinality must be >= 1");
    }
  }
  Domain d;
  d.names_ = std::move(names);
  d.cardinalities_ = std::move(cardinalities);
  d.ComputeStrides();
  return d;
}

Domain Domain::FromCardinalities(const std::vector<size_t>& cardinalities) {
  std::vector<std::string> names;
  names.reserve(cardinalities.size());
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    names.push_back("a" + std::to_string(i));
  }
  // Synthetic unique names over positive cardinalities cannot fail Make's
  // validation; assert that in every build mode (a plain assert would let a
  // release binary dereference an empty result).
  Domain out;
  OTCLEAN_CHECK_OK_AND_ASSIGN(out, Make(std::move(names), cardinalities));
  return out;
}

void Domain::ComputeStrides() {
  const size_t k = cardinalities_.size();
  strides_.assign(k, 1);
  total_size_ = 1;
  for (size_t i = k; i-- > 0;) {
    strides_[i] = total_size_;
    total_size_ *= cardinalities_[i];
  }
}

Result<size_t> Domain::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return Status::NotFound("Domain: no attribute named '" + name + "'");
}

size_t Domain::Encode(const std::vector<int>& values) const {
  assert(values.size() == cardinalities_.size());
  size_t index = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    assert(values[i] >= 0 &&
           static_cast<size_t>(values[i]) < cardinalities_[i]);
    index += static_cast<size_t>(values[i]) * strides_[i];
  }
  return index;
}

std::vector<int> Domain::Decode(size_t index) const {
  assert(index < total_size_);
  std::vector<int> values(cardinalities_.size());
  for (size_t i = 0; i < cardinalities_.size(); ++i) {
    values[i] = static_cast<int>((index / strides_[i]) % cardinalities_[i]);
  }
  return values;
}

int Domain::DecodeAttr(size_t index, size_t attr) const {
  assert(attr < cardinalities_.size());
  return static_cast<int>((index / strides_[attr]) % cardinalities_[attr]);
}

Domain Domain::Project(const std::vector<size_t>& attrs) const {
  std::vector<std::string> names;
  std::vector<size_t> cards;
  names.reserve(attrs.size());
  cards.reserve(attrs.size());
  for (size_t a : attrs) {
    assert(a < cardinalities_.size());
    names.push_back(names_[a]);
    cards.push_back(cardinalities_[a]);
  }
  // A projection of a valid domain is a valid domain.
  Domain out;
  OTCLEAN_CHECK_OK_AND_ASSIGN(out, Make(std::move(names), std::move(cards)));
  return out;
}

size_t Domain::ProjectIndex(size_t index,
                            const std::vector<size_t>& attrs) const {
  size_t out = 0;
  for (size_t a : attrs) {
    out = out * cardinalities_[a] + static_cast<size_t>(DecodeAttr(index, a));
  }
  return out;
}

double Domain::AverageCardinality() const {
  if (cardinalities_.empty()) return 0.0;
  double s = 0.0;
  for (size_t c : cardinalities_) s += static_cast<double>(c);
  return s / static_cast<double>(cardinalities_.size());
}

std::string Domain::ToString() const {
  std::ostringstream os;
  os << "Domain{";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) os << ", ";
    os << names_[i] << ":" << cardinalities_[i];
  }
  os << "} size=" << total_size_;
  return os.str();
}

}  // namespace otclean::prob
