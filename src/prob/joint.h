#ifndef OTCLEAN_PROB_JOINT_H_
#define OTCLEAN_PROB_JOINT_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "linalg/vector.h"
#include "prob/domain.h"

namespace otclean::prob {

/// A (possibly unnormalized) distribution over a finite product `Domain`,
/// stored densely as one probability per cell — the paper's "point in the
/// probability simplex Δ_V".
class JointDistribution {
 public:
  JointDistribution() = default;

  /// Zero measure over `domain`.
  explicit JointDistribution(Domain domain);

  /// Takes ownership of the probability vector; its length must equal
  /// `domain.TotalSize()`.
  static Result<JointDistribution> Make(Domain domain, linalg::Vector probs);

  /// Uniform distribution over `domain`.
  static JointDistribution Uniform(const Domain& domain);

  /// Empirical distribution from encoded cell counts (index -> count).
  static JointDistribution FromCounts(const Domain& domain,
                                      const std::vector<double>& counts);

  const Domain& domain() const { return domain_; }
  const linalg::Vector& probs() const { return probs_; }
  linalg::Vector& probs() { return probs_; }

  size_t size() const { return probs_.size(); }
  double operator[](size_t cell) const { return probs_[cell]; }
  double& operator[](size_t cell) { return probs_[cell]; }

  /// Probability of a full value tuple.
  double Prob(const std::vector<int>& values) const {
    return probs_[domain_.Encode(values)];
  }

  /// Total mass.
  double Mass() const { return probs_.Sum(); }

  /// Rescales to total mass 1 (no-op on the zero measure).
  void Normalize() { probs_.Normalize(); }

  /// Marginal over the attribute positions `attrs` (in that order).
  JointDistribution Marginal(const std::vector<size_t>& attrs) const;

  /// Conditional distribution table P(rest | attrs = their value), returned
  /// as a joint over the *full* domain where each `attrs`-slice is
  /// normalized. Slices with zero mass stay zero.
  JointDistribution ConditionalOn(const std::vector<size_t>& attrs) const;

  /// Entropy −Σ p log p (natural log). Treats 0·log 0 as 0.
  double Entropy() const;

  /// KL divergence D(this ‖ q). Returns +inf when absolute continuity
  /// fails. Both measures are normalized internally.
  double KlDivergence(const JointDistribution& q) const;

  /// Total variation distance ½ Σ |p − q|.
  double TotalVariation(const JointDistribution& q) const;

  /// Draws one cell index from the normalized distribution.
  size_t Sample(Rng& rng) const;

  /// Draws `n` cells i.i.d.
  std::vector<size_t> SampleMany(size_t n, Rng& rng) const;

  bool ApproxEquals(const JointDistribution& other, double tol) const {
    return domain_ == other.domain_ && probs_.ApproxEquals(other.probs_, tol);
  }

 private:
  Domain domain_;
  linalg::Vector probs_;
};

/// Product measure of independent marginals p (over X) and q (over Y),
/// yielding a joint over the concatenated domain.
JointDistribution ProductDistribution(const JointDistribution& p,
                                      const JointDistribution& q);

}  // namespace otclean::prob

#endif  // OTCLEAN_PROB_JOINT_H_
