#ifndef OTCLEAN_PROB_INDEPENDENCE_H_
#define OTCLEAN_PROB_INDEPENDENCE_H_

#include <vector>

#include "prob/joint.h"

namespace otclean::prob {

/// Attribute-position sets for a CI statement X ⟂ Y | Z over a joint
/// distribution's domain. Z may be empty (marginal independence).
struct CiSpec {
  std::vector<size_t> x;
  std::vector<size_t> y;
  std::vector<size_t> z;
};

/// Conditional mutual information I(X;Y|Z) in nats — the paper's degree of
/// inconsistency δ_σ(P). Zero iff P |= (X ⟂ Y | Z). The input need not be
/// normalized.
double ConditionalMutualInformation(const JointDistribution& p,
                                    const CiSpec& ci);

/// Whether P satisfies X ⟂ Y | Z up to `tol` in CMI (nats).
bool SatisfiesCi(const JointDistribution& p, const CiSpec& ci,
                 double tol = 1e-9);

/// The I-projection of P onto the set of CI-consistent distributions:
/// Q(x,y,z,w) = P(z) · P(x|z) · P(y|z) · P(w|x,y,z) restricted to the
/// constraint attributes (for a saturated constraint there is no w).
///
/// For each z-slice this equals the rank-one (outer-product-of-marginals)
/// factorization, which is the unique KL-closest CI-consistent distribution
/// with the same Z-marginal — the closed form of the paper's inner NMF loop.
JointDistribution CiProjection(const JointDistribution& p, const CiSpec& ci);

/// Mutual information I(X;Y) in nats (CMI with empty Z).
double MutualInformation(const JointDistribution& p,
                         const std::vector<size_t>& x,
                         const std::vector<size_t>& y);

/// Approximate projection onto the intersection of several CI constraints
/// by cyclic I-projections (iterative proportional fitting style): sweeps
/// over the constraints, projecting onto each in turn, until the largest
/// CMI falls below `tol` or `max_sweeps` is exhausted. For a single
/// constraint this reduces to CiProjection. The intersection is non-empty
/// (product distributions satisfy every CI), so the iteration is always
/// well-defined; convergence to the exact KL-closest point holds when the
/// constraints' closures form a compatible (e.g. decomposable) set.
JointDistribution MultiCiProjection(const JointDistribution& p,
                                    const std::vector<CiSpec>& cis,
                                    size_t max_sweeps = 60,
                                    double tol = 1e-10);

/// Largest CMI across a set of constraints (0 for an empty set).
double MaxCmi(const JointDistribution& p, const std::vector<CiSpec>& cis);

}  // namespace otclean::prob

#endif  // OTCLEAN_PROB_INDEPENDENCE_H_
