#include "datagen/synthetic.h"

#include <cmath>

namespace otclean::datagen {

dataset::Column MakeColumn(const std::string& name, size_t card) {
  dataset::Column col;
  col.name = name;
  col.categories.reserve(card);
  for (size_t i = 0; i < card; ++i) {
    col.categories.push_back("v" + std::to_string(i));
  }
  return col;
}

int SampleWeighted(const std::vector<double>& weights, Rng& rng) {
  return static_cast<int>(rng.NextCategorical(weights));
}

std::vector<double> PeakedWeights(size_t card, double center, double temp) {
  std::vector<double> w(card);
  for (size_t i = 0; i < card; ++i) {
    const double d = (static_cast<double>(i) - center) / temp;
    w[i] = std::exp(-0.5 * d * d);
  }
  return w;
}

Result<dataset::Table> MakeScalingDataset(
    const ScalingDatasetOptions& options) {
  if (options.z_card == 0 || options.w_card == 0) {
    return Status::InvalidArgument("MakeScalingDataset: zero cardinality");
  }
  std::vector<dataset::Column> cols;
  cols.push_back(MakeColumn("x", 2));
  cols.push_back(MakeColumn("y", 2));
  for (size_t i = 0; i < options.num_z_attrs; ++i) {
    cols.push_back(MakeColumn("z" + std::to_string(i), options.z_card));
  }
  for (size_t i = 0; i < options.num_w_attrs; ++i) {
    cols.push_back(MakeColumn("w" + std::to_string(i), options.w_card));
  }
  dataset::Table table{dataset::Schema(std::move(cols))};

  Rng rng(options.seed);
  for (size_t r = 0; r < options.num_rows; ++r) {
    std::vector<int> row;
    row.reserve(table.num_columns());
    // Z attributes: uniform, independent.
    std::vector<int> zs(options.num_z_attrs);
    for (size_t i = 0; i < options.num_z_attrs; ++i) {
      zs[i] = static_cast<int>(rng.NextUint64Below(options.z_card));
    }
    // A per-row "z parity" drives both X and Y when the violation fires,
    // creating dependence between X and Y inside each z-slice.
    size_t zsum = 0;
    for (int z : zs) zsum += static_cast<size_t>(z);
    const int x = rng.NextBernoulli(0.5) ? 1 : 0;
    int y;
    if (rng.NextBernoulli(options.violation)) {
      // Violating mechanism: within each z-slice, y is a deterministic
      // function of x (copied, or flipped on odd z-parity), so X and Y are
      // strongly dependent *given* Z.
      y = (zsum % 2 == 0) ? x : 1 - x;
    } else {
      y = rng.NextBernoulli(0.5) ? 1 : 0;
    }
    row.push_back(x);
    row.push_back(y);
    for (int z : zs) row.push_back(z);
    for (size_t i = 0; i < options.num_w_attrs; ++i) {
      // W correlates mildly with X so unsaturated cleaning is non-trivial.
      const double bias = (x == 1) ? 0.7 : 0.3;
      const size_t wv = rng.NextBernoulli(bias)
                            ? options.w_card - 1
                            : rng.NextUint64Below(options.w_card);
      row.push_back(static_cast<int>(wv));
    }
    OTCLEAN_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace otclean::datagen
