#ifndef OTCLEAN_DATAGEN_SYNTHETIC_H_
#define OTCLEAN_DATAGEN_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"

namespace otclean::datagen {

/// Builds a categorical column with generic labels v0..v{card-1}.
dataset::Column MakeColumn(const std::string& name, size_t card);

/// Samples an index from unnormalized non-negative weights.
int SampleWeighted(const std::vector<double>& weights, Rng& rng);

/// Weight helpers used by the dataset generators: a softmax-peaked
/// categorical centered at `center` with spread `temp` over `card` values.
std::vector<double> PeakedWeights(size_t card, double center, double temp);

/// Parameters for the generic scaling dataset used by the runtime / memory
/// benchmarks (Figs. 10, 13, 14): binary X and Y plus `num_z_attrs`
/// conditioning attributes of cardinality `z_card`, with a planted
/// violation of X ⟂ Y | Z of strength `violation` ∈ [0, 1].
struct ScalingDatasetOptions {
  size_t num_rows = 2000;
  size_t num_z_attrs = 2;
  size_t z_card = 3;
  double violation = 0.4;
  /// Extra attributes outside the constraint (for unsaturated benchmarks,
  /// Fig. 11a), each with cardinality `w_card`.
  size_t num_w_attrs = 0;
  size_t w_card = 3;
  uint64_t seed = 1;
};

/// Generates the scaling dataset; columns are named x, y, z0.., w0.. .
Result<dataset::Table> MakeScalingDataset(const ScalingDatasetOptions& options);

}  // namespace otclean::datagen

#endif  // OTCLEAN_DATAGEN_SYNTHETIC_H_
