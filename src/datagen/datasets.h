#ifndef OTCLEAN_DATAGEN_DATASETS_H_
#define OTCLEAN_DATAGEN_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/ci_constraint.h"
#include "dataset/table.h"

namespace otclean::datagen {

/// A generated benchmark dataset plus the experiment wiring the paper uses
/// with it (Section 6): the prediction label, the CI constraint, and (for
/// the fairness datasets) the sensitive / admissible / inadmissible split.
///
/// These are synthetic stand-ins for UCI Adult, ProPublica COMPAS, UCI Car
/// and Boston Housing: schemas and cardinalities follow Table 2, and the
/// generative process plants the CI violation the paper's experiments
/// exploit. See DESIGN.md §3 for the substitution rationale.
struct DatasetBundle {
  dataset::Table table;
  std::string name;
  std::string label_col;
  /// The constraint the experiments repair against.
  core::CiConstraint constraint;
  /// Fairness wiring (empty for the cleaning datasets).
  std::string sensitive_col;
  std::vector<std::string> admissible_cols;
  std::vector<std::string> inadmissible_cols;
};

/// "Census Income"-style dataset. Fairness constraint:
/// sex ⟂ marital-status | {occupation, education-num, hours-per-week, age}.
Result<DatasetBundle> MakeAdult(size_t num_rows = 4000, uint64_t seed = 101);

/// Recidivism-style dataset. Fairness constraint:
/// race ⟂ {age-cat, priors-count} | charge-degree.
Result<DatasetBundle> MakeCompas(size_t num_rows = 4000, uint64_t seed = 102);

/// Car-evaluation-style dataset (cleaning). Constraint:
/// doors ⟂ class | {buying, safety, persons} — holds approximately in the
/// clean data and is broken by noise injection.
Result<DatasetBundle> MakeCar(size_t num_rows = 1728, uint64_t seed = 103);

/// Boston-housing-style dataset, pre-discretized (cleaning). Constraint:
/// B ⟂ medv | {lstat, rm} — the conditioning set is reduced from "all
/// remaining attributes" to the two dominant causal parents of medv so the
/// constraint domain stays tractable (documented substitution).
Result<DatasetBundle> MakeBoston(size_t num_rows = 506, uint64_t seed = 104);

/// All four bundles (Table 2 reproduction).
Result<std::vector<DatasetBundle>> MakeAllDatasets(uint64_t seed = 100);

}  // namespace otclean::datagen

#endif  // OTCLEAN_DATAGEN_DATASETS_H_
