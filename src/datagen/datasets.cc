#include "datagen/datasets.h"

#include <cmath>

#include "datagen/synthetic.h"

namespace otclean::datagen {

namespace {

/// Clamps a double to [0, card-1] and rounds — used to derive categorical
/// codes from latent continuous quantities.
int ToCode(double v, size_t card) {
  if (v < 0.0) v = 0.0;
  const double hi = static_cast<double>(card - 1);
  if (v > hi) v = hi;
  return static_cast<int>(std::lround(v));
}

}  // namespace

Result<DatasetBundle> MakeAdult(size_t num_rows, uint64_t seed) {
  // Schema mirrors UCI Adult's 14 attributes (income is the label). The
  // admissible attributes are coarsened relative to UCI so the ROD strata
  // remain estimable at synthetic sample sizes (DESIGN.md §3).
  std::vector<dataset::Column> cols = {
      MakeColumn("age", 4),           MakeColumn("workclass", 5),
      MakeColumn("fnlwgt", 4),        MakeColumn("education", 8),
      MakeColumn("education-num", 5), MakeColumn("marital-status", 5),
      MakeColumn("occupation", 5),    MakeColumn("relationship", 6),
      MakeColumn("race", 5),          MakeColumn("sex", 2),
      MakeColumn("capital-gain", 3),  MakeColumn("hours-per-week", 3),
      MakeColumn("native-country", 5), MakeColumn("income", 2)};
  dataset::Table table{dataset::Schema(std::move(cols))};

  Rng rng(seed);
  for (size_t r = 0; r < num_rows; ++r) {
    // Latent socioeconomic status drives education/occupation/hours.
    const double ses = rng.NextDouble();
    const int age = SampleWeighted(PeakedWeights(4, 1.3 + ses, 1.1), rng);
    const int sex = rng.NextBernoulli(0.5) ? 1 : 0;
    const int edu_num =
        SampleWeighted(PeakedWeights(5, 0.8 + 3.0 * ses, 1.0), rng);
    const int education = ToCode(1.6 * edu_num + rng.NextGaussian() * 0.9, 8);
    const int occupation =
        SampleWeighted(PeakedWeights(5, 0.6 + 3.4 * ses, 1.2), rng);
    const int hours =
        SampleWeighted(PeakedWeights(3, 0.5 + 1.6 * ses, 0.8), rng);

    // The planted violation: marital-status depends on sex *directly*, not
    // only through the admissible attributes {occupation, education-num,
    // hours-per-week, age} — so (sex ⟂ marital | A) fails.
    const double marital_center =
        1.2 + 0.4 * age + (sex == 1 ? 0.9 : 0.0) + rng.NextGaussian() * 0.8;
    const int marital = ToCode(marital_center, 5);

    const int workclass = SampleWeighted(PeakedWeights(5, 2.0 * ses + 1.0, 1.3), rng);
    const int fnlwgt = static_cast<int>(rng.NextUint64Below(4));
    const int relationship =
        ToCode(0.8 * marital + rng.NextGaussian() * 0.8, 6);
    const int race = SampleWeighted({0.72, 0.10, 0.08, 0.06, 0.04}, rng);
    const int capgain = rng.NextBernoulli(0.08 + 0.1 * ses) ? 2
                        : rng.NextBernoulli(0.15)           ? 1
                                                            : 0;
    const int country = SampleWeighted({0.80, 0.06, 0.05, 0.05, 0.04}, rng);

    // Income depends on qualifications AND marital status (the inadmissible
    // path), so models trained with marital inherit the sex signal.
    const double income_logit = -6.0 + 0.9 * edu_num + 0.8 * hours +
                                0.45 * occupation + 0.6 * marital +
                                0.5 * capgain;
    const int income =
        rng.NextBernoulli(1.0 / (1.0 + std::exp(-income_logit))) ? 1 : 0;

    OTCLEAN_RETURN_NOT_OK(table.AppendRow(
        {age, workclass, fnlwgt, education, edu_num, marital, occupation,
         relationship, race, sex, capgain, hours, country, income}));
  }

  DatasetBundle bundle{std::move(table),
                       "Adult",
                       "income",
                       core::CiConstraint({"sex"}, {"marital-status"},
                                          {"occupation", "education-num",
                                           "hours-per-week", "age"}),
                       "sex",
                       {"occupation", "education-num", "hours-per-week",
                        "age"},
                       {"marital-status"}};
  return bundle;
}

Result<DatasetBundle> MakeCompas(size_t num_rows, uint64_t seed) {
  std::vector<dataset::Column> cols = {
      MakeColumn("sex", 2),          MakeColumn("race", 2),
      MakeColumn("age-cat", 3),      MakeColumn("juv-fel-count", 3),
      MakeColumn("juv-misd-count", 3), MakeColumn("priors-count", 4),
      MakeColumn("charge-degree", 2), MakeColumn("days-in-jail", 4),
      MakeColumn("decile-score", 5),  MakeColumn("violent-recid", 2),
      MakeColumn("c-charge-desc", 3), MakeColumn("two-year-recid", 2)};
  dataset::Table table{dataset::Schema(std::move(cols))};

  Rng rng(seed);
  for (size_t r = 0; r < num_rows; ++r) {
    const int sex = rng.NextBernoulli(0.8) ? 0 : 1;
    const int race = rng.NextBernoulli(0.51) ? 1 : 0;  // 1 = protected
    const int charge = rng.NextBernoulli(0.35) ? 1 : 0;  // admissible

    // Planted violation: age-cat and priors-count (inadmissible) depend on
    // race beyond what charge-degree explains.
    const int age_cat = SampleWeighted(
        PeakedWeights(3, race == 1 ? 0.85 : 1.2, 1.0), rng);
    const double priors_center =
        0.9 + (race == 1 ? 0.55 : 0.0) + 0.5 * charge + rng.NextGaussian() * 0.8;
    const int priors = ToCode(priors_center, 4);

    const int juv_fel = SampleWeighted(PeakedWeights(3, 0.3 + 0.3 * priors, 0.8), rng);
    const int juv_misd = SampleWeighted(PeakedWeights(3, 0.4 + 0.2 * priors, 0.8), rng);
    const int jail = ToCode(0.6 * priors + 0.8 * charge + rng.NextGaussian() * 0.6, 4);
    const int decile =
        ToCode(0.9 * priors + 0.5 * charge + rng.NextGaussian() * 0.8, 5);
    const int charge_desc = static_cast<int>(rng.NextUint64Below(3));
    const int violent = rng.NextBernoulli(0.12 + 0.06 * priors) ? 1 : 0;

    const double recid_logit =
        -1.4 + 0.55 * priors + 0.4 * charge - 0.45 * age_cat;
    const int recid =
        rng.NextBernoulli(1.0 / (1.0 + std::exp(-recid_logit))) ? 1 : 0;

    OTCLEAN_RETURN_NOT_OK(table.AppendRow(
        {sex, race, age_cat, juv_fel, juv_misd, priors, charge, jail, decile,
         violent, charge_desc, recid}));
  }

  DatasetBundle bundle{std::move(table),
                       "COMPAS",
                       "two-year-recid",
                       core::CiConstraint({"race"},
                                          {"age-cat", "priors-count"},
                                          {"charge-degree"}),
                       "race",
                       {"charge-degree"},
                       {"age-cat", "priors-count"}};
  return bundle;
}

Result<DatasetBundle> MakeCar(size_t num_rows, uint64_t seed) {
  std::vector<dataset::Column> cols = {
      MakeColumn("buying", 4),  MakeColumn("maint", 4),
      MakeColumn("doors", 4),   MakeColumn("persons", 3),
      MakeColumn("lug_boot", 3), MakeColumn("safety", 3),
      MakeColumn("class", 2)};
  dataset::Table table{dataset::Schema(std::move(cols))};

  Rng rng(seed);
  for (size_t r = 0; r < num_rows; ++r) {
    const int buying = static_cast<int>(rng.NextUint64Below(4));
    const int maint = static_cast<int>(rng.NextUint64Below(4));
    const int doors = static_cast<int>(rng.NextUint64Below(4));
    const int persons = static_cast<int>(rng.NextUint64Below(3));
    const int lug = static_cast<int>(rng.NextUint64Below(3));
    const int safety = static_cast<int>(rng.NextUint64Below(3));

    // Acceptability: cheap-ish, safe, roomy cars; doors play (almost) no
    // role given the rest — so (doors ⟂ class | buying,safety,persons)
    // holds approximately in the clean data.
    const double score = -0.9 * buying - 0.4 * maint + 1.5 * safety +
                         1.0 * persons + 0.3 * lug + rng.NextGaussian() * 0.7;
    const int cls = score > 1.2 ? 1 : 0;

    OTCLEAN_RETURN_NOT_OK(
        table.AppendRow({buying, maint, doors, persons, lug, safety, cls}));
  }

  DatasetBundle bundle{std::move(table),
                       "Car",
                       "class",
                       core::CiConstraint({"doors"}, {"class"},
                                          {"buying", "safety", "persons"}),
                       "",
                       {},
                       {}};
  return bundle;
}

Result<DatasetBundle> MakeBoston(size_t num_rows, uint64_t seed) {
  std::vector<dataset::Column> cols = {
      MakeColumn("crim", 4),   MakeColumn("zn", 3),
      MakeColumn("indus", 4),  MakeColumn("chas", 2),
      MakeColumn("nox", 4),    MakeColumn("rm", 5),
      MakeColumn("age", 4),    MakeColumn("dis", 4),
      MakeColumn("rad", 4),    MakeColumn("tax", 4),
      MakeColumn("ptratio", 4), MakeColumn("B", 5),
      MakeColumn("lstat", 4),  MakeColumn("medv", 2)};
  dataset::Table table{dataset::Schema(std::move(cols))};

  Rng rng(seed);
  for (size_t r = 0; r < num_rows; ++r) {
    // Latent neighborhood quality.
    const double q = rng.NextDouble();
    const int lstat = ToCode(3.0 * (1.0 - q) + rng.NextGaussian() * 0.5, 4);
    const int rm = ToCode(1.0 + 3.0 * q + rng.NextGaussian() * 0.6, 5);
    const int crim = ToCode(3.0 * (1.0 - q) + rng.NextGaussian() * 0.7, 4);
    const int zn = SampleWeighted(PeakedWeights(3, 2.0 * q, 0.9), rng);
    const int indus = ToCode(3.0 * (1.0 - q) + rng.NextGaussian() * 0.8, 4);
    const int chas = rng.NextBernoulli(0.07) ? 1 : 0;
    const int nox = ToCode(0.8 * indus + rng.NextGaussian() * 0.6, 4);
    const int age = ToCode(2.0 * (1.0 - q) + 1.0 + rng.NextGaussian() * 0.8, 4);
    const int dis = ToCode(3.0 * q + rng.NextGaussian() * 0.7, 4);
    const int rad = ToCode(0.9 * crim + rng.NextGaussian() * 0.9, 4);
    const int tax = ToCode(0.8 * indus + 0.4 * rad + rng.NextGaussian() * 0.5, 4);
    const int ptratio = ToCode(2.5 * (1.0 - q) + rng.NextGaussian() * 0.8, 4);
    // B depends on lstat only (given lstat & rm, it carries no information
    // about medv) — the clean data approximately satisfies the constraint.
    const int b_attr = ToCode(1.2 * lstat + 0.6 + rng.NextGaussian() * 0.9, 5);

    const double medv_score =
        1.2 * rm - 1.1 * lstat - 0.2 * ptratio + rng.NextGaussian() * 1.6;
    const int medv = medv_score > 0.3 ? 1 : 0;

    OTCLEAN_RETURN_NOT_OK(table.AppendRow({crim, zn, indus, chas, nox, rm, age,
                                           dis, rad, tax, ptratio, b_attr,
                                           lstat, medv}));
  }

  DatasetBundle bundle{std::move(table),
                       "Boston",
                       "medv",
                       core::CiConstraint({"B"}, {"medv"}, {"lstat", "rm"}),
                       "",
                       {},
                       {}};
  return bundle;
}

Result<std::vector<DatasetBundle>> MakeAllDatasets(uint64_t seed) {
  std::vector<DatasetBundle> out;
  OTCLEAN_ASSIGN_OR_RETURN(DatasetBundle adult, MakeAdult(4000, seed + 1));
  out.push_back(std::move(adult));
  OTCLEAN_ASSIGN_OR_RETURN(DatasetBundle compas, MakeCompas(4000, seed + 2));
  out.push_back(std::move(compas));
  OTCLEAN_ASSIGN_OR_RETURN(DatasetBundle car, MakeCar(1728, seed + 3));
  out.push_back(std::move(car));
  OTCLEAN_ASSIGN_OR_RETURN(DatasetBundle boston, MakeBoston(506, seed + 4));
  out.push_back(std::move(boston));
  return out;
}

}  // namespace otclean::datagen
