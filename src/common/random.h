#ifndef OTCLEAN_COMMON_RANDOM_H_
#define OTCLEAN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace otclean {

/// Deterministic, seedable PRNG (xoshiro256++ seeded via SplitMix64).
///
/// Every randomized component in the library takes an explicit `Rng&` so
/// experiments are reproducible end to end from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64Below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector;
  /// only positive-weight indices can be returned. Consumes exactly one
  /// draw when the total weight is positive. Returns weights.size()-1 on
  /// degenerate all-zero input (no draw consumed).
  size_t NextCategorical(const std::vector<double>& weights);

  /// The same draw over a raw span with a caller-supplied `total` (the
  /// left-to-right sum of the span, typically already at hand). This is
  /// the one categorical algorithm — the vector overload delegates here,
  /// and CSR rows sample through it without copying their weights — so
  /// dense and sparse samplers can never drift apart.
  size_t NextCategorical(const double* weights, size_t count, double total);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independently seeded child generator; children with distinct
  /// `stream` values produce decorrelated sequences.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace otclean

#endif  // OTCLEAN_COMMON_RANDOM_H_
