#ifndef OTCLEAN_COMMON_STRING_UTIL_H_
#define OTCLEAN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace otclean {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a decimal floating-point number; the whole string must parse.
Result<double> ParseDouble(std::string_view s);

/// Parses a decimal integer; the whole string must parse.
Result<int64_t> ParseInt(std::string_view s);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

}  // namespace otclean

#endif  // OTCLEAN_COMMON_STRING_UTIL_H_
