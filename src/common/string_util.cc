#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace otclean {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty string is not a double");
  // std::from_chars<double> is not available everywhere; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = StripWhitespace(s);
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + std::string(s) + "'");
  }
  return v;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace otclean
