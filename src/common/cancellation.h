#ifndef OTCLEAN_COMMON_CANCELLATION_H_
#define OTCLEAN_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <optional>
#include <string>

#include "common/status.h"

namespace otclean {

/// A one-shot cooperative stop signal. The owner (a caller, or the
/// RepairScheduler on behalf of `Cancel(job_id)`) fires it from any thread;
/// the solver layers poll it at safe points — per scaling-loop iteration,
/// per ε-annealing stage, per FastOTClean outer step, and between chunk
/// executions inside ThreadPool dispatches — and abort with
/// `StatusCode::kCancelled`. Firing is sticky: a token cannot be reset, so
/// one token serves exactly one unit of work.
///
/// Polling never mutates solver state: a check either aborts the solve or
/// leaves it bit-identical to a run without the token.
///
/// Deliberately lock-free: the one mutable field is a std::atomic, so
/// under the TSA regime (common/thread_annotations.h) there is no
/// capability to annotate — Cancel/cancelled() are safe from any thread
/// with no mutex to hold, and the pool polls the raw flag() pointer at
/// chunk granularity without taking any lock.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Fires the signal. Safe to call from any thread, any number of times.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// The raw flag, for layers (linalg::ThreadPool) that poll a plain
  /// atomic without depending on this header.
  const std::atomic<bool>* flag() const { return &cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A monotonic-clock wall deadline. Default-constructed deadlines are
/// infinite (never expire), so options structs can carry one by value with
/// zero cost on the common path. Composable via `Earliest` — the scheduler
/// combines a per-job deadline with its scheduler-wide default that way.
class Deadline {
 public:
  /// Infinite — never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now (monotonic). Non-positive values produce an
  /// already-expired deadline; callers that want to reject those loudly
  /// validate before constructing (see RepairScheduler / the CLI).
  static Deadline After(double seconds) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline AfterMillis(int64_t millis) {
    return After(static_cast<double>(millis) * 1e-3);
  }

  bool infinite() const { return !when_.has_value(); }

  bool expired() const {
    return when_.has_value() && Clock::now() >= *when_;
  }

  /// Seconds until expiry: +infinity when infinite, <= 0 once expired.
  double remaining_seconds() const {
    if (!when_.has_value()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*when_ - Clock::now()).count();
  }

  /// The sooner of two deadlines (an infinite deadline never wins).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    if (a.infinite()) return b;
    if (b.infinite()) return a;
    Deadline d;
    d.when_ = *a.when_ < *b.when_ ? *a.when_ : *b.when_;
    return d;
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> when_;
};

/// The one stop-check every cooperative layer shares: cancellation wins
/// over deadline expiry, and the returned message names the checking layer
/// so an aborted batch job reads "RunSinkhornScaling: cancelled", not just
/// "cancelled". Costs one relaxed-ish atomic load (plus a clock read only
/// when a finite deadline is set) on the non-aborting path.
inline Status CheckStop(const CancellationToken* token, const Deadline& deadline,
                        const char* where) {
  if (token != nullptr && token->cancelled()) {
    return Status::Cancelled(std::string(where) + ": cancelled by caller");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded(std::string(where) + ": deadline exceeded");
  }
  return Status::OK();
}

}  // namespace otclean

#endif  // OTCLEAN_COMMON_CANCELLATION_H_
