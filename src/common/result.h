#ifndef OTCLEAN_COMMON_RESULT_H_
#define OTCLEAN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace otclean {

/// A value-or-error container, in the spirit of arrow::Result<T>.
///
/// A `Result<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit so functions can
  /// `return value;`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an errored result (implicit so functions can
  /// `return Status::InvalidArgument(...);`).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status out of the enclosing function.
#define OTCLEAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define OTCLEAN_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define OTCLEAN_ASSIGN_OR_RETURN_NAME(a, b) OTCLEAN_ASSIGN_OR_RETURN_CONCAT(a, b)
#define OTCLEAN_ASSIGN_OR_RETURN(lhs, expr)                                     \
  OTCLEAN_ASSIGN_OR_RETURN_IMPL(                                                \
      OTCLEAN_ASSIGN_OR_RETURN_NAME(_otclean_result_, __LINE__), lhs, expr)

}  // namespace otclean

#endif  // OTCLEAN_COMMON_RESULT_H_
