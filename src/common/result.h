#ifndef OTCLEAN_COMMON_RESULT_H_
#define OTCLEAN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace otclean {

/// A value-or-error container, in the spirit of arrow::Result<T>.
///
/// A `Result<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds.
///
/// Like `Status`, the class is `[[nodiscard]]`: a Result-returning call
/// whose outcome is ignored is a warning on every compiler and an error
/// under CI's warning gate. Extract values with a visible `ok()` check,
/// `OTCLEAN_ASSIGN_OR_RETURN` (propagate), or `OTCLEAN_CHECK_OK_AND_ASSIGN`
/// (assert, release-safe) — `tools/otclean_lint` flags naked `.value()`
/// calls with none of those in sight.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit so functions can
  /// `return value;`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs an errored result (implicit so functions can
  /// `return Status::InvalidArgument(...);`).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status out of the enclosing function.
#define OTCLEAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define OTCLEAN_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define OTCLEAN_ASSIGN_OR_RETURN_NAME(a, b) OTCLEAN_ASSIGN_OR_RETURN_CONCAT(a, b)
#define OTCLEAN_ASSIGN_OR_RETURN(lhs, expr)                                     \
  OTCLEAN_ASSIGN_OR_RETURN_IMPL(                                                \
      OTCLEAN_ASSIGN_OR_RETURN_NAME(_otclean_result_, __LINE__), lhs, expr)

/// Assigns the value of a Result expression to `lhs`, or terminates the
/// process with the error — in every build mode. This is the release-safe
/// replacement for the `assert(r.ok()); use(std::move(r).value());`
/// pattern: under NDEBUG that assert compiles away and the `.value()`
/// dereferences an empty optional, so "cannot fail here" call sites
/// (locally re-validated inputs, infallible reconstructions) assert
/// through this macro instead. Failures report file:line plus the
/// originating expression via InternalCheckOkFailed (status.h).
#define OTCLEAN_CHECK_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)                \
  auto tmp = (expr);                                                    \
  if (!tmp.ok()) {                                                      \
    ::otclean::InternalCheckOkFailed(__FILE__, __LINE__, #expr,         \
                                     tmp.status());                     \
  }                                                                     \
  lhs = std::move(tmp).value();
#define OTCLEAN_CHECK_OK_AND_ASSIGN(lhs, expr)                          \
  OTCLEAN_CHECK_OK_AND_ASSIGN_IMPL(                                     \
      OTCLEAN_ASSIGN_OR_RETURN_NAME(_otclean_checked_, __LINE__), lhs, expr)

}  // namespace otclean

#endif  // OTCLEAN_COMMON_RESULT_H_
