#ifndef OTCLEAN_COMMON_LOGGING_H_
#define OTCLEAN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace otclean {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
/// Use via the OTCLEAN_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define OTCLEAN_LOG(level)                                        \
  ::otclean::internal::LogMessage(::otclean::LogLevel::k##level,  \
                                  __FILE__, __LINE__)

}  // namespace otclean

#endif  // OTCLEAN_COMMON_LOGGING_H_
