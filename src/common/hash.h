#ifndef OTCLEAN_COMMON_HASH_H_
#define OTCLEAN_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

namespace otclean {

/// FNV-1a offset basis — the canonical starting value for HashMix chains.
inline constexpr uint64_t kHashSeed = 1469598103934665603ull;

/// Folds a 64-bit word into an FNV-1a style running hash, byte by byte.
/// Used for content fingerprints (cost functions, solve-cache keys) where
/// we need a *stable* hash — identical across runs and processes — which
/// std::hash does not guarantee.
inline uint64_t HashMix(uint64_t h, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kPrime;
  }
  return h;
}

/// Folds a double's bit pattern (so 0.05 and 0.050000001 differ and every
/// NaN payload is taken literally — fingerprints compare representations,
/// not values).
inline uint64_t HashMixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  return HashMix(h, bits);
}

}  // namespace otclean

#endif  // OTCLEAN_COMMON_HASH_H_
