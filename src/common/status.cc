#include "common/status.h"

namespace otclean {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace otclean
