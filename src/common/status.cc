#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace otclean {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

void InternalCheckOkFailed(const char* file, int line, const char* expr_text,
                           const Status& status) {
  // stderr, not the logging layer: a failed OTCLEAN_CHECK_OK is a broken
  // program invariant and must reach the operator even if logging itself
  // is misconfigured or mid-initialization.
  std::fprintf(stderr, "%s:%d: OTCLEAN_CHECK_OK(%s) failed: %s\n", file, line,
               expr_text, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace otclean
