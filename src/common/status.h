#ifndef OTCLEAN_COMMON_STATUS_H_
#define OTCLEAN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace otclean {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kNotConverged,
  kInfeasible,
  kUnbounded,
  kIoError,
  kNotImplemented,
  kInternal,
  kCancelled,          ///< A caller-fired CancellationToken aborted the work.
  kDeadlineExceeded,   ///< A Deadline expired before the work completed.
  kResourceExhausted,  ///< Admission refused (queue full) or allocation failed.
};

/// One past the largest StatusCode value — lets tests iterate the full code
/// set and fail loudly when a new code ships without a StatusCodeName entry.
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kResourceExhausted) + 1;

/// Returns the canonical name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. The library does not throw
/// exceptions across public API boundaries; fallible operations return
/// `Status` (or `Result<T>`, see result.h).
///
/// The class itself is `[[nodiscard]]`, so *every* Status-returning call
/// in the library is covered without per-function markings: silently
/// dropping an error is a compiler warning everywhere and a hard error
/// under the CI warning gate (and `-Werror=unused-result` is always on
/// for library/tool/test targets — see CMakeLists.txt). Intentional
/// discards must be spelled `OTCLEAN_CHECK_OK(expr)` (die loudly if it
/// ever fails) — a bare `(void)` cast is what the discipline exists to
/// prevent.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status out of the enclosing function.
#define OTCLEAN_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::otclean::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Terminates the process with `file:line`, the failing expression and the
/// status text. Out-of-line so the macro below stays cheap at every site.
[[noreturn]] void InternalCheckOkFailed(const char* file, int line,
                                        const char* expr_text,
                                        const Status& status);

/// Asserts that a Status-returning expression succeeded, in *every* build
/// mode (unlike `assert`, which vanishes under NDEBUG and turns a dropped
/// error into silent corruption in release binaries). This is the one
/// sanctioned way to discard a `[[nodiscard]]` Status: it converts the
/// discard into a loud invariant.
#define OTCLEAN_CHECK_OK(expr)                                             \
  do {                                                                     \
    ::otclean::Status _otclean_check_st = (expr);                          \
    if (!_otclean_check_st.ok()) {                                         \
      ::otclean::InternalCheckOkFailed(__FILE__, __LINE__, #expr,          \
                                       _otclean_check_st);                 \
    }                                                                      \
  } while (0)

}  // namespace otclean

#endif  // OTCLEAN_COMMON_STATUS_H_
