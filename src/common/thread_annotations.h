#ifndef OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_
#define OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// Clang Thread Safety Analysis (TSA) annotations, plus the annotated
/// `Mutex`/`MutexLock`/`CondVar` wrappers the concurrent subsystems lock
/// through. With clang and `-Wthread-safety` the repo's locking discipline
/// — "every shared field is accessed under its mutex" — becomes a compile
/// error instead of a comment backed by TSan sampling; on other compilers
/// (g++ builds this repo too) every macro expands to nothing and the
/// wrappers are zero-overhead shims over `std::mutex` /
/// `std::lock_guard` / `std::condition_variable`.
///
/// The vocabulary (mirrors abseil's thread_annotations.h):
///  - `OTCLEAN_GUARDED_BY(mu)` on a member: reads and writes require `mu`.
///  - `OTCLEAN_REQUIRES(mu)` on a function: callers must already hold `mu`
///    (the `*Locked()` private-helper convention).
///  - `OTCLEAN_EXCLUDES(mu)` on a function: callers must NOT hold `mu`
///    (the function takes it itself — public entry points).
///  - `OTCLEAN_ACQUIRE(mu)` / `OTCLEAN_RELEASE(mu)`: the function leaves
///    with `mu` held / released.
/// The analysis only understands lock types it can see annotations on, so
/// the subsystems lock through the `Mutex` wrapper below rather than a raw
/// `std::mutex` (`tools/otclean_lint` has no rule for this, but
/// `-Wthread-safety` itself flags a `GUARDED_BY` whose mutex expression is
/// not a capability).

#if defined(__clang__)
#define OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define OTCLEAN_CAPABILITY(x) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define OTCLEAN_SCOPED_CAPABILITY \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define OTCLEAN_GUARDED_BY(x) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define OTCLEAN_PT_GUARDED_BY(x) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define OTCLEAN_REQUIRES(...) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define OTCLEAN_EXCLUDES(...) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define OTCLEAN_ACQUIRE(...) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define OTCLEAN_RELEASE(...) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define OTCLEAN_RETURN_CAPABILITY(x) \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define OTCLEAN_NO_THREAD_SAFETY_ANALYSIS \
  OTCLEAN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace otclean {

/// An annotated `std::mutex`: TSA recognizes Lock/Unlock as
/// acquiring/releasing the capability, so members declared
/// `OTCLEAN_GUARDED_BY(mu_)` are compile-checked against it. Prefer the
/// scoped `MutexLock` below; Lock/Unlock exist for the analysis contract
/// and for `CondVar`'s adopt/release dance.
class OTCLEAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OTCLEAN_ACQUIRE() { mu_.lock(); }
  void Unlock() OTCLEAN_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over `Mutex` — the annotated twin of `std::lock_guard`. TSA
/// treats the scope as holding the mutex from construction to destruction,
/// which is exactly the window the guarded fields may be touched in.
class OTCLEAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OTCLEAN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OTCLEAN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable under an annotated `Mutex`. `Wait` requires
/// the mutex held (TSA-checked at every call site) and returns with it
/// held again, so the idiomatic annotated wait is an explicit predicate
/// loop inside the locked scope:
///
///   MutexLock lock(mu_);
///   while (!predicate_over_guarded_fields()) cv_.Wait(mu_);
///
/// (The predicate-lambda overload of `std::condition_variable::wait` is
/// deliberately not mirrored: TSA analyzes a lambda as a separate function
/// that does not hold the capability, so guarded reads inside it would
/// falsely warn. The explicit loop keeps the reads in the locked scope.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and re-acquires
  /// `mu` before returning. Spurious wakeups are possible, as with any
  /// condition variable — always wait in a predicate loop.
  void Wait(Mutex& mu) OTCLEAN_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release (not unlock) it afterwards: ownership stays with the
    // caller's MutexLock, matching what the analysis believes.
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace otclean

#endif  // OTCLEAN_COMMON_THREAD_ANNOTATIONS_H_
