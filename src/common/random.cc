#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace otclean {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64Below(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  if (weights.empty()) return 0;  // release-build guard: never SIZE_MAX
  return NextCategorical(weights.data(), weights.size(),
                         std::accumulate(weights.begin(), weights.end(), 0.0));
}

size_t Rng::NextCategorical(const double* weights, size_t count,
                            double total) {
  assert(count > 0);
  if (count == 0) return 0;  // release-build guard: never SIZE_MAX
  if (total <= 0.0) return count - 1;
  double u = NextDouble() * total;
  // Only positive-weight entries can be selected: a draw landing exactly
  // on a zero-weight boundary (u == 0) or surviving every subtraction on
  // floating-point residue must not return an impossible outcome. Skipping
  // zeros leaves the partial sums unchanged, so the selected index is the
  // same as the naive scan in every non-degenerate case.
  size_t last_positive = count - 1;
  for (size_t i = 0; i < count; ++i) {
    if (weights[i] <= 0.0) continue;
    u -= weights[i];
    last_positive = i;
    if (u <= 0.0) return i;
  }
  return last_positive;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextUint64Below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the current state with the stream id into a fresh seed.
  uint64_t seed = s_[0] ^ (s_[1] + 0x9e3779b97f4a7c15ull * (stream + 1));
  return Rng(seed);
}

}  // namespace otclean
