#include "cleaning/hyperimpute_style.h"

#include <algorithm>
#include <cmath>

namespace otclean::cleaning {

namespace {

/// Conditional categorical model for one target column given all others
/// (naive-Bayes factorization), fit from a working (fully observed) table.
class ColumnModel {
 public:
  ColumnModel(const dataset::Table& table, size_t target, double alpha)
      : target_(target) {
    const size_t ncols = table.num_columns();
    const size_t card = table.schema().column(target).cardinality();
    prior_.assign(card, alpha);
    cond_.resize(ncols);
    for (size_t j = 0; j < ncols; ++j) {
      if (j == target) continue;
      cond_[j].assign(card, std::vector<double>(
                                table.schema().column(j).cardinality(),
                                alpha));
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const int v = table.Value(r, target);
      if (v == dataset::kMissing) continue;
      prior_[static_cast<size_t>(v)] += 1.0;
      for (size_t j = 0; j < ncols; ++j) {
        if (j == target) continue;
        const int b = table.Value(r, j);
        if (b == dataset::kMissing) continue;
        cond_[j][static_cast<size_t>(v)][static_cast<size_t>(b)] += 1.0;
      }
    }
    for (size_t j = 0; j < cond_.size(); ++j) {
      if (j == target_) continue;
      for (auto& row : cond_[j]) {
        double s = 0.0;
        for (double x : row) s += x;
        if (s > 0.0) {
          for (double& x : row) x /= s;
        }
      }
    }
  }

  int Predict(const std::vector<int>& row) const {
    const size_t card = prior_.size();
    double best = -1e300;
    int best_v = 0;
    for (size_t v = 0; v < card; ++v) {
      double logp = std::log(prior_[v]);
      for (size_t j = 0; j < cond_.size(); ++j) {
        if (j == target_ || cond_[j].empty()) continue;
        const int b = row[j];
        if (b == dataset::kMissing) continue;
        logp += std::log(cond_[j][v][static_cast<size_t>(b)] + 1e-12);
      }
      if (logp > best) {
        best = logp;
        best_v = static_cast<int>(v);
      }
    }
    return best_v;
  }

 private:
  size_t target_;
  std::vector<double> prior_;
  std::vector<std::vector<std::vector<double>>> cond_;
};

int ColumnMode(const dataset::Table& table, size_t c) {
  std::vector<size_t> counts(table.schema().column(c).cardinality(), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int v = table.Value(r, c);
    if (v != dataset::kMissing) ++counts[static_cast<size_t>(v)];
  }
  const auto it = std::max_element(counts.begin(), counts.end());
  return (it == counts.end()) ? 0 : static_cast<int>(it - counts.begin());
}

}  // namespace

Result<dataset::Table> HyperImputeStyleImputer::Impute(
    const dataset::Table& table) {
  Rng rng(options_.seed);
  // Initial completion: most frequent per column.
  MostFrequentImputer mf;
  OTCLEAN_ASSIGN_OR_RETURN(dataset::Table work, mf.Impute(table));

  const size_t ncols = table.num_columns();
  std::vector<std::vector<size_t>> missing_rows(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (table.IsMissing(r, c)) missing_rows[c].push_back(r);
    }
  }

  for (size_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    for (size_t c = 0; c < ncols; ++c) {
      if (missing_rows[c].empty()) continue;

      // Automatic model selection: evaluate the conditional model against
      // the mode on a holdout of *observed* cells of column c.
      std::vector<size_t> observed;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (!table.IsMissing(r, c)) observed.push_back(r);
      }
      if (observed.empty()) continue;
      const size_t holdout =
          std::max<size_t>(1, static_cast<size_t>(options_.holdout_frac *
                                                  observed.size()));
      const std::vector<size_t> perm = rng.Permutation(observed.size());

      const ColumnModel model(work, c, options_.alpha);
      const int mode = ColumnMode(work, c);
      size_t model_hits = 0, mode_hits = 0;
      for (size_t i = 0; i < holdout; ++i) {
        const size_t r = observed[perm[i]];
        const int truth = table.Value(r, c);
        if (model.Predict(work.Row(r)) == truth) ++model_hits;
        if (mode == truth) ++mode_hits;
      }

      const bool use_model = model_hits >= mode_hits;
      for (size_t r : missing_rows[c]) {
        work.SetValue(r, c,
                      use_model ? model.Predict(work.Row(r)) : mode);
      }
    }
  }
  return work;
}

}  // namespace otclean::cleaning
