#ifndef OTCLEAN_CLEANING_IMPUTER_H_
#define OTCLEAN_CLEANING_IMPUTER_H_

#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"

namespace otclean::cleaning {

/// Fills missing cells of a table. Implementations must return a table with
/// no missing values (in columns that had at least one observed value).
class Imputer {
 public:
  virtual ~Imputer() = default;
  virtual Result<dataset::Table> Impute(const dataset::Table& table) = 0;
  virtual const char* name() const = 0;
};

/// Fills each column's missing cells with its most frequent observed value
/// (the paper's "MF" baseline).
class MostFrequentImputer : public Imputer {
 public:
  Result<dataset::Table> Impute(const dataset::Table& table) override;
  const char* name() const override { return "most_frequent"; }
};

/// k-nearest-neighbour imputation under Hamming distance on the observed
/// attributes; the missing cell takes the most frequent value among the k
/// nearest complete-in-that-column rows (the paper's "kNN" baseline).
class KnnImputer : public Imputer {
 public:
  struct Options {
    size_t k = 5;
    /// Rows examined per query; larger tables are subsampled for speed.
    size_t max_reference_rows = 2000;
    uint64_t seed = 17;
  };

  KnnImputer() : KnnImputer(Options()) {}
  explicit KnnImputer(Options options) : options_(options) {}
  Result<dataset::Table> Impute(const dataset::Table& table) override;
  const char* name() const override { return "knn"; }

 private:
  Options options_;
};

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_IMPUTER_H_
