#include "cleaning/gain_style.h"

#include <algorithm>
#include <cmath>

namespace otclean::cleaning {

namespace {

/// Pairwise conditional model P(col_j = b | col_c = v) with Laplace
/// smoothing, fitted from rows where both cells are observed.
struct PairwiseModel {
  /// prior[c][v] ∝ count of value v in column c.
  std::vector<std::vector<double>> prior;
  /// cond[c][j][v][b] = P(col_j = b | col_c = v), for j != c.
  std::vector<std::vector<std::vector<std::vector<double>>>> cond;
};

PairwiseModel FitPairwise(const dataset::Table& table, double alpha) {
  const size_t ncols = table.num_columns();
  PairwiseModel m;
  m.prior.resize(ncols);
  m.cond.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const size_t card_c = table.schema().column(c).cardinality();
    m.prior[c].assign(card_c, alpha);
    m.cond[c].resize(ncols);
    for (size_t j = 0; j < ncols; ++j) {
      if (j == c) continue;
      const size_t card_j = table.schema().column(j).cardinality();
      m.cond[c][j].assign(card_c, std::vector<double>(card_j, alpha));
    }
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const int v = table.Value(r, c);
      if (v == dataset::kMissing) continue;
      m.prior[c][static_cast<size_t>(v)] += 1.0;
      for (size_t j = 0; j < ncols; ++j) {
        if (j == c) continue;
        const int b = table.Value(r, j);
        if (b == dataset::kMissing) continue;
        m.cond[c][j][static_cast<size_t>(v)][static_cast<size_t>(b)] += 1.0;
      }
    }
  }
  // Normalize conditionals.
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t j = 0; j < ncols; ++j) {
      if (j == c) continue;
      for (auto& row : m.cond[c][j]) {
        double s = 0.0;
        for (double x : row) s += x;
        if (s > 0.0) {
          for (double& x : row) x /= s;
        }
      }
    }
  }
  return m;
}

}  // namespace

Result<dataset::Table> GainStyleImputer::Impute(const dataset::Table& table) {
  const PairwiseModel model = FitPairwise(table, options_.alpha);
  Rng rng(options_.seed);
  dataset::Table out = table;
  const size_t ncols = table.num_columns();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      if (!table.IsMissing(r, c)) continue;
      const size_t card = table.schema().column(c).cardinality();
      // log P(v | obs) up to a constant.
      std::vector<double> logp(card, 0.0);
      for (size_t v = 0; v < card; ++v) {
        logp[v] = std::log(model.prior[c][v]);
        for (size_t j = 0; j < ncols; ++j) {
          if (j == c) continue;
          const int b = table.Value(r, j);
          if (b == dataset::kMissing) continue;
          logp[v] +=
              std::log(model.cond[c][j][v][static_cast<size_t>(b)] + 1e-12);
        }
      }
      // Softmax-normalize and sample.
      const double mx = *std::max_element(logp.begin(), logp.end());
      std::vector<double> w(card);
      for (size_t v = 0; v < card; ++v) w[v] = std::exp(logp[v] - mx);
      out.SetValue(r, c, static_cast<int>(rng.NextCategorical(w)));
    }
  }
  return out;
}

}  // namespace otclean::cleaning
