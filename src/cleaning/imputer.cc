#include "cleaning/imputer.h"

#include <algorithm>

namespace otclean::cleaning {

Result<dataset::Table> MostFrequentImputer::Impute(
    const dataset::Table& table) {
  dataset::Table out = table;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::vector<size_t> counts(table.schema().column(c).cardinality(), 0);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const int v = table.Value(r, c);
      if (v != dataset::kMissing) ++counts[static_cast<size_t>(v)];
    }
    const auto it = std::max_element(counts.begin(), counts.end());
    if (it == counts.end() || *it == 0) continue;  // nothing observed
    const int mode = static_cast<int>(it - counts.begin());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (out.IsMissing(r, c)) out.SetValue(r, c, mode);
    }
  }
  return out;
}

Result<dataset::Table> KnnImputer::Impute(const dataset::Table& table) {
  const size_t n = table.num_rows();
  const size_t ncols = table.num_columns();
  Rng rng(options_.seed);

  // Reference pool (subsampled when large).
  std::vector<size_t> pool;
  if (n <= options_.max_reference_rows) {
    pool.resize(n);
    for (size_t i = 0; i < n; ++i) pool[i] = i;
  } else {
    const std::vector<size_t> perm = rng.Permutation(n);
    pool.assign(perm.begin(), perm.begin() + options_.max_reference_rows);
  }

  dataset::Table out = table;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      if (!table.IsMissing(r, c)) continue;
      // Distance to every pool row that has column c observed.
      std::vector<std::pair<size_t, size_t>> dist_row;  // (distance, row)
      for (size_t pr : pool) {
        if (pr == r || table.IsMissing(pr, c)) continue;
        size_t d = 0;
        for (size_t j = 0; j < ncols; ++j) {
          if (j == c) continue;
          const int a = table.Value(r, j);
          const int b = table.Value(pr, j);
          if (a == dataset::kMissing || b == dataset::kMissing || a != b) ++d;
        }
        dist_row.emplace_back(d, pr);
      }
      if (dist_row.empty()) continue;
      const size_t k = std::min(options_.k, dist_row.size());
      std::partial_sort(dist_row.begin(), dist_row.begin() + k,
                        dist_row.end());
      std::vector<size_t> votes(table.schema().column(c).cardinality(), 0);
      for (size_t i = 0; i < k; ++i) {
        votes[static_cast<size_t>(table.Value(dist_row[i].second, c))] += 1;
      }
      const auto it = std::max_element(votes.begin(), votes.end());
      out.SetValue(r, c, static_cast<int>(it - votes.begin()));
    }
  }
  return out;
}

}  // namespace otclean::cleaning
