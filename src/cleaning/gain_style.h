#ifndef OTCLEAN_CLEANING_GAIN_STYLE_H_
#define OTCLEAN_CLEANING_GAIN_STYLE_H_

#include "cleaning/imputer.h"

namespace otclean::cleaning {

/// Generative imputer standing in for GAIN (Yoon et al., ICML'18), which is
/// a GAN trained to impute from the data distribution. On small categorical
/// data the discrete analogue is: fit the empirical conditionals and
/// *sample* each missing value from P(target | observed attributes), which
/// is modeled naive-Bayes style, P(v | obs) ∝ P(v) · Π_j P(obs_j | v).
/// Sampling (rather than argmax) preserves the generative character that
/// distinguishes GAIN from point imputers in the paper's figures.
class GainStyleImputer : public Imputer {
 public:
  struct Options {
    double alpha = 0.5;  ///< Laplace smoothing.
    uint64_t seed = 23;
  };

  GainStyleImputer() : GainStyleImputer(Options()) {}
  explicit GainStyleImputer(Options options) : options_(options) {}
  Result<dataset::Table> Impute(const dataset::Table& table) override;
  const char* name() const override { return "gain_style"; }

 private:
  Options options_;
};

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_GAIN_STYLE_H_
