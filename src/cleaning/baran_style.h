#ifndef OTCLEAN_CLEANING_BARAN_STYLE_H_
#define OTCLEAN_CLEANING_BARAN_STYLE_H_

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::cleaning {

/// Context-based error corrector standing in for Baran (Mahdavi & Abedjan,
/// VLDB'20). Baran generates correction candidates from value context
/// (co-occurring values in the same tuple) with high precision. Our
/// substitute learns co-occurrence statistics P(target | context attribute)
/// from a small clean sample, then corrects a dirty cell only when the
/// observed value is very unlikely under its context *and* an alternative
/// is confidently more likely — a high-precision, value-level corrector
/// that (like Baran) does not target distribution-level CI violations.
class BaranStyleCleaner {
 public:
  struct Options {
    /// Correct only when P(best | ctx) / P(observed | ctx) exceeds this.
    double confidence_ratio = 4.0;
    double alpha = 0.5;  ///< Laplace smoothing.
  };

  BaranStyleCleaner() : BaranStyleCleaner(Options()) {}
  explicit BaranStyleCleaner(Options options) : options_(options) {}

  /// Learns context statistics from a clean sample (schema must match the
  /// tables to be cleaned).
  Status Fit(const dataset::Table& clean_sample);

  /// Returns a corrected copy of `dirty`.
  Result<dataset::Table> Clean(const dataset::Table& dirty) const;

 private:
  Options options_;
  bool fitted_ = false;
  dataset::Schema schema_;
  /// cooccur_[c][j][b][v] = P(col_c = v | col_j = b) with smoothing.
  std::vector<std::vector<std::vector<std::vector<double>>>> cooccur_;
};

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_BARAN_STYLE_H_
