#ifndef OTCLEAN_CLEANING_HYPERIMPUTE_STYLE_H_
#define OTCLEAN_CLEANING_HYPERIMPUTE_STYLE_H_

#include "cleaning/imputer.h"

namespace otclean::cleaning {

/// Iterative imputer standing in for HyperImpute (Jarrett et al., ICML'22):
/// MICE-style column sweeps where each column with missing values is
/// re-imputed from the current completion of the others, with automatic
/// per-column model selection (a conditional model vs. the marginal mode,
/// chosen by held-out accuracy on observed cells).
class HyperImputeStyleImputer : public Imputer {
 public:
  struct Options {
    size_t sweeps = 3;
    double alpha = 0.5;       ///< Laplace smoothing for conditional models.
    double holdout_frac = 0.15;
    uint64_t seed = 29;
  };

  HyperImputeStyleImputer() : HyperImputeStyleImputer(Options()) {}
  explicit HyperImputeStyleImputer(Options options) : options_(options) {}
  Result<dataset::Table> Impute(const dataset::Table& table) override;
  const char* name() const override { return "hyperimpute_style"; }

 private:
  Options options_;
};

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_HYPERIMPUTE_STYLE_H_
