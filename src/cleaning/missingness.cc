#include "cleaning/missingness.h"

namespace otclean::cleaning {

Result<dataset::Table> InjectMissingness(const dataset::Table& table,
                                         const MissingnessOptions& options) {
  if (options.target_col >= table.num_columns() ||
      options.driver_col >= table.num_columns()) {
    return Status::OutOfRange("InjectMissingness: column out of range");
  }
  if (options.rate < 0.0 || options.rate > 1.0) {
    return Status::InvalidArgument("InjectMissingness: rate not in [0,1]");
  }
  const size_t driver_card =
      table.schema().column(options.driver_col).cardinality();
  const size_t target_card =
      table.schema().column(options.target_col).cardinality();

  Rng rng(options.seed);
  dataset::Table out = table;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int driver = table.Value(r, options.driver_col);
    const int target = table.Value(r, options.target_col);
    if (driver == dataset::kMissing || target == dataset::kMissing) continue;

    // Rows in the "high" half of the relevant attribute(s) are twice as
    // likely to lose the value, keeping the overall rate ≈ options.rate
    // while making missingness value-dependent.
    double p = options.rate;
    const bool driver_high =
        static_cast<size_t>(driver) * 2 >= driver_card;
    if (options.mechanism == MissingMechanism::kMar) {
      p *= driver_high ? 1.5 : 0.5;
    } else {
      const bool target_high =
          static_cast<size_t>(target) * 2 >= target_card;
      p *= (target_high ? 1.2 : 0.4) + (driver_high ? 0.4 : 0.0);
    }
    if (rng.NextBernoulli(std::min(1.0, p))) {
      out.SetValue(r, options.target_col, dataset::kMissing);
    }
  }
  return out;
}

}  // namespace otclean::cleaning
