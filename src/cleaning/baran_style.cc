#include "cleaning/baran_style.h"

#include <cmath>

namespace otclean::cleaning {

Status BaranStyleCleaner::Fit(const dataset::Table& clean_sample) {
  schema_ = clean_sample.schema();
  const size_t ncols = schema_.num_columns();
  cooccur_.assign(ncols, {});
  for (size_t c = 0; c < ncols; ++c) {
    cooccur_[c].resize(ncols);
    const size_t card_c = schema_.column(c).cardinality();
    for (size_t j = 0; j < ncols; ++j) {
      if (j == c) continue;
      const size_t card_j = schema_.column(j).cardinality();
      cooccur_[c][j].assign(card_j,
                            std::vector<double>(card_c, options_.alpha));
    }
  }
  for (size_t r = 0; r < clean_sample.num_rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const int v = clean_sample.Value(r, c);
      if (v == dataset::kMissing) continue;
      for (size_t j = 0; j < ncols; ++j) {
        if (j == c) continue;
        const int b = clean_sample.Value(r, j);
        if (b == dataset::kMissing) continue;
        cooccur_[c][j][static_cast<size_t>(b)][static_cast<size_t>(v)] += 1.0;
      }
    }
  }
  // Normalize to conditionals.
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t j = 0; j < ncols; ++j) {
      if (j == c) continue;
      for (auto& row : cooccur_[c][j]) {
        double s = 0.0;
        for (double x : row) s += x;
        if (s > 0.0) {
          for (double& x : row) x /= s;
        }
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<dataset::Table> BaranStyleCleaner::Clean(
    const dataset::Table& dirty) const {
  if (!fitted_) {
    return Status::FailedPrecondition("BaranStyleCleaner::Clean before Fit");
  }
  if (dirty.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument("BaranStyleCleaner: schema mismatch");
  }
  dataset::Table out = dirty;
  const size_t ncols = schema_.num_columns();
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const int observed = dirty.Value(r, c);
      if (observed == dataset::kMissing) continue;
      const size_t card = schema_.column(c).cardinality();
      // Aggregate context evidence: mean conditional probability over all
      // observed context attributes.
      std::vector<double> score(card, 0.0);
      size_t ctx_count = 0;
      for (size_t j = 0; j < ncols; ++j) {
        if (j == c) continue;
        const int b = dirty.Value(r, j);
        if (b == dataset::kMissing) continue;
        ++ctx_count;
        const auto& cond = cooccur_[c][j][static_cast<size_t>(b)];
        for (size_t v = 0; v < card; ++v) score[v] += cond[v];
      }
      if (ctx_count == 0) continue;
      size_t best = 0;
      for (size_t v = 1; v < card; ++v) {
        if (score[v] > score[best]) best = v;
      }
      const double obs_score = score[static_cast<size_t>(observed)];
      if (static_cast<int>(best) != observed && obs_score > 0.0 &&
          score[best] / obs_score >= options_.confidence_ratio) {
        out.SetValue(r, c, static_cast<int>(best));
      }
    }
  }
  return out;
}

}  // namespace otclean::cleaning
