#ifndef OTCLEAN_CLEANING_MISSINGNESS_H_
#define OTCLEAN_CLEANING_MISSINGNESS_H_

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"

namespace otclean::cleaning {

/// Missingness mechanisms of Section 6.3.
enum class MissingMechanism {
  /// Missing At Random: whether `target_col` goes missing depends on the
  /// value of `driver_col` in the same record.
  kMar,
  /// Missing Not At Random: missingness depends on the target's own value
  /// as well as the driver's.
  kMnar,
};

struct MissingnessOptions {
  size_t target_col = 0;
  size_t driver_col = 0;
  MissingMechanism mechanism = MissingMechanism::kMar;
  /// Overall fraction of target cells made missing, in [0, 1].
  double rate = 0.2;
  uint64_t seed = 5;
};

/// Returns a copy of `table` with target cells blanked out according to the
/// selected mechanism. The induced missingness is value-dependent, so naive
/// imputation reintroduces exactly the spurious correlations OTClean is
/// designed to remove.
Result<dataset::Table> InjectMissingness(const dataset::Table& table,
                                         const MissingnessOptions& options);

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_MISSINGNESS_H_
