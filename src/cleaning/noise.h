#ifndef OTCLEAN_CLEANING_NOISE_H_
#define OTCLEAN_CLEANING_NOISE_H_

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"

namespace otclean::cleaning {

/// Configuration for the attribute-noise injector of Section 6.3: noise is
/// added to `target_col` *as a function of* `driver_col`, deliberately
/// manufacturing a spurious dependency (and hence a CI violation) between
/// the two.
struct AttributeNoiseOptions {
  size_t target_col = 0;
  size_t driver_col = 0;
  /// Fraction of rows whose target value is corrupted, in [0, 1].
  double rate = 0.2;
  uint64_t seed = 3;
};

/// Returns a corrupted copy of `table`: for ~rate of the rows, the target
/// attribute is overwritten with a value deterministically derived from the
/// driver attribute (plus a small random offset), creating a non-random
/// error pattern correlated with the driver.
Result<dataset::Table> InjectAttributeNoise(const dataset::Table& table,
                                            const AttributeNoiseOptions& options);

/// Rows changed by an injection, for precision/recall style diagnostics.
std::vector<size_t> DiffRows(const dataset::Table& a, const dataset::Table& b);

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_NOISE_H_
