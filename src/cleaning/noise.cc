#include "cleaning/noise.h"

namespace otclean::cleaning {

Result<dataset::Table> InjectAttributeNoise(
    const dataset::Table& table, const AttributeNoiseOptions& options) {
  if (options.target_col >= table.num_columns() ||
      options.driver_col >= table.num_columns()) {
    return Status::OutOfRange("InjectAttributeNoise: column out of range");
  }
  if (options.target_col == options.driver_col) {
    return Status::InvalidArgument(
        "InjectAttributeNoise: target and driver must differ");
  }
  if (options.rate < 0.0 || options.rate > 1.0) {
    return Status::InvalidArgument("InjectAttributeNoise: rate not in [0,1]");
  }
  const size_t target_card =
      table.schema().column(options.target_col).cardinality();

  Rng rng(options.seed);
  dataset::Table out = table;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!rng.NextBernoulli(options.rate)) continue;
    const int driver = table.Value(r, options.driver_col);
    if (driver == dataset::kMissing ||
        table.IsMissing(r, options.target_col)) {
      continue;
    }
    // Non-random corruption: the new value is a deterministic function of
    // the driver, occasionally jittered so the dependency is strong but not
    // purely functional.
    int corrupted =
        static_cast<int>(static_cast<size_t>(driver) % target_card);
    if (rng.NextBernoulli(0.15)) {
      corrupted = static_cast<int>(
          (static_cast<size_t>(corrupted) + 1) % target_card);
    }
    out.SetValue(r, options.target_col, corrupted);
  }
  return out;
}

std::vector<size_t> DiffRows(const dataset::Table& a, const dataset::Table& b) {
  std::vector<size_t> out;
  const size_t n = std::min(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < n; ++r) {
    if (a.Row(r) != b.Row(r)) out.push_back(r);
  }
  return out;
}

}  // namespace otclean::cleaning
