#ifndef OTCLEAN_CLEANING_DISTORTION_H_
#define OTCLEAN_CLEANING_DISTORTION_H_

#include "common/random.h"
#include "common/result.h"
#include "dataset/table.h"
#include "ot/cost.h"

namespace otclean::cleaning {

/// Statistical-distortion evaluation of data-cleaning strategies (Dasu &
/// Loh, VLDB'12; Fig. 9 of the paper): how far a cleaning method moves the
/// data distribution, measured by the Earth Mover's Distance between the
/// empirical distributions of two tables over the given columns.
Result<double> TableEmd(const dataset::Table& a, const dataset::Table& b,
                        const std::vector<size_t>& cols,
                        const ot::CostFunction& cost);

/// Convenience overload using the C1 (stddev-normalized Euclidean) cost
/// built from table `a`.
Result<double> TableEmd(const dataset::Table& a, const dataset::Table& b,
                        const std::vector<size_t>& cols);

/// Bootstrap replication: samples `n` rows with replacement.
dataset::Table BootstrapSample(const dataset::Table& table, size_t n,
                               Rng& rng);

}  // namespace otclean::cleaning

#endif  // OTCLEAN_CLEANING_DISTORTION_H_
