#include "cleaning/distortion.h"

#include "ot/exact.h"

namespace otclean::cleaning {

Result<double> TableEmd(const dataset::Table& a, const dataset::Table& b,
                        const std::vector<size_t>& cols,
                        const ot::CostFunction& cost) {
  const prob::JointDistribution pa = a.Empirical(cols);
  const prob::JointDistribution pb = b.Empirical(cols);
  return ot::ExactOtDistance(pa, pb, cost);
}

Result<double> TableEmd(const dataset::Table& a, const dataset::Table& b,
                        const std::vector<size_t>& cols) {
  const prob::JointDistribution pa = a.Empirical(cols);
  const ot::EuclideanCost cost(
      ot::InverseStddevWeights(pa.domain(), pa.probs()));
  return TableEmd(a, b, cols, cost);
}

dataset::Table BootstrapSample(const dataset::Table& table, size_t n,
                               Rng& rng) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = rng.NextUint64Below(table.num_rows());
  }
  return table.SelectRows(rows);
}

}  // namespace otclean::cleaning
