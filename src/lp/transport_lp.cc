#include "lp/transport_lp.h"

#include <cmath>

#include "lp/simplex.h"

namespace otclean::lp {

Result<TransportResult> SolveTransport(const linalg::Matrix& cost,
                                       const linalg::Vector& p,
                                       const linalg::Vector& q,
                                       double mass_tol) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument("SolveTransport: dimension mismatch");
  }
  if (std::fabs(p.Sum() - q.Sum()) > mass_tol) {
    return Status::InvalidArgument(
        "SolveTransport: marginals have different total mass");
  }

  // Variables: π_ij flattened row-major. Constraints: m row sums + n column
  // sums (one is redundant; the simplex handles it).
  LpProblem lp;
  lp.a = linalg::Matrix(m + n, m * n, 0.0);
  lp.b = linalg::Vector(m + n, 0.0);
  lp.c = linalg::Vector(m * n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const size_t var = i * n + j;
      lp.a(i, var) = 1.0;
      lp.a(m + j, var) = 1.0;
      lp.c[var] = cost(i, j);
    }
    lp.b[i] = p[i];
  }
  for (size_t j = 0; j < n; ++j) lp.b[m + j] = q[j];

  OTCLEAN_ASSIGN_OR_RETURN(LpSolution sol, SolveSimplex(lp));

  TransportResult out;
  out.plan = linalg::Matrix(m, n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double v = sol.x[i * n + j];
      out.plan(i, j) = (v > 0.0) ? v : 0.0;
    }
  }
  out.cost = sol.objective;
  out.iterations = sol.iterations;
  return out;
}

}  // namespace otclean::lp
