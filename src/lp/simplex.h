#ifndef OTCLEAN_LP_SIMPLEX_H_
#define OTCLEAN_LP_SIMPLEX_H_

#include <cstddef>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::lp {

/// A linear program in standard equality form:
///   minimize    cᵀx
///   subject to  A x = b,  x ≥ 0.
/// Rows with negative b are sign-flipped internally.
struct LpProblem {
  linalg::Matrix a;  ///< m × n constraint matrix.
  linalg::Vector b;  ///< length-m right-hand side.
  linalg::Vector c;  ///< length-n objective.
};

struct LpSolution {
  linalg::Vector x;  ///< optimal primal point.
  double objective = 0.0;
  size_t iterations = 0;  ///< total simplex pivots (both phases).
};

struct SimplexOptions {
  size_t max_iterations = 200000;
  /// Feasibility / optimality tolerance.
  double tol = 1e-9;
};

/// Solves an LP with the two-phase primal simplex method (dense tableau,
/// Bland's anti-cycling rule). Returns:
///  - the optimum on success,
///  - Status::Infeasible when phase 1 cannot reach zero,
///  - Status::Unbounded when a pivot column has no positive entry,
///  - Status::NotConverged if the iteration cap is hit.
///
/// Redundant equality rows are tolerated: artificial variables stuck at
/// zero in the basis are pivoted out or their rows ignored.
Result<LpSolution> SolveSimplex(const LpProblem& problem,
                                const SimplexOptions& options = {});

}  // namespace otclean::lp

#endif  // OTCLEAN_LP_SIMPLEX_H_
