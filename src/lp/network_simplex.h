#ifndef OTCLEAN_LP_NETWORK_SIMPLEX_H_
#define OTCLEAN_LP_NETWORK_SIMPLEX_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::lp {

/// Specialized solver for the balanced transportation problem
///   minimize  Σ_ij C_ij π_ij   s.t.  Σ_j π_ij = p_i,  Σ_i π_ij = q_j, π ≥ 0
/// using the classical MODI (u–v potentials) method: a Vogel-style initial
/// basic feasible solution followed by stepping-stone pivots along the
/// unique cycle each entering cell closes in the basis tree.
///
/// This is the O(d³ log d)-class method the paper cites for exact OT; it is
/// typically orders of magnitude faster than the dense two-phase simplex in
/// transport_lp.h on the same instances (see bench_ablation_transport).
struct NetworkSimplexOptions {
  size_t max_pivots = 100000;
  /// Reduced-cost optimality tolerance.
  double tol = 1e-10;
};

struct NetworkSimplexResult {
  linalg::Matrix plan;
  double cost = 0.0;
  size_t pivots = 0;
};

/// Solves the transportation problem. `p` and `q` must be non-negative
/// with equal total mass (within `mass_tol`).
Result<NetworkSimplexResult> SolveTransportNetwork(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options = {},
    double mass_tol = 1e-6);

}  // namespace otclean::lp

#endif  // OTCLEAN_LP_NETWORK_SIMPLEX_H_
