#ifndef OTCLEAN_LP_NETWORK_SIMPLEX_H_
#define OTCLEAN_LP_NETWORK_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "linalg/cost_provider.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::linalg {
class ThreadPool;
}  // namespace otclean::linalg

namespace otclean::lp {

/// Specialized solver for the balanced transportation problem
///   minimize  Σ_ij C_ij π_ij   s.t.  Σ_j π_ij = p_i,  Σ_i π_ij = q_j, π ≥ 0
/// using the classical MODI (u–v potentials) method: a northwest-corner
/// initial basic feasible solution followed by stepping-stone pivots along
/// the unique cycle each entering cell closes in the basis tree.
///
/// This is the O(d³ log d)-class method the paper cites for exact OT; it is
/// typically orders of magnitude faster than the dense two-phase simplex in
/// transport_lp.h on the same instances (see bench_ablation_transport).
///
/// Costs stream through linalg::CostProvider: the engine touches cost rows
/// tile-by-tile during pivot pricing and O(m + n) individual entries for
/// basis maintenance, so no dense cost or flow matrix is materialized on
/// the streaming entry points.
struct NetworkSimplexOptions {
  size_t max_pivots = 100000;
  /// Reduced-cost optimality tolerance.
  double tol = 1e-10;
  /// Worker lanes for the pivot pricing scan (0 = hardware concurrency,
  /// 1 = serial). The entering arc is deterministic across thread counts:
  /// chunk-local minima merge in chunk order with lowest-index tie-breaks.
  size_t num_threads = 1;
  /// Optional shared pool for the pricing scan; must outlive the call.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Cooperative stop signals, polled once per pivot.
  const CancellationToken* cancel_token = nullptr;
  Deadline deadline = Deadline::Infinite();
};

struct NetworkSimplexResult {
  linalg::Matrix plan;
  double cost = 0.0;
  size_t pivots = 0;
};

/// One nonzero of a sparse transport plan.
struct SparsePlanEntry {
  size_t row = 0;
  size_t col = 0;
  double value = 0.0;
};

/// Result of the streaming entry points: only the nonzero flows (at most
/// m + n − 1 of them — a basic solution), never a dense m×n plan.
struct SparseNetworkSimplexResult {
  std::vector<SparsePlanEntry> entries;  ///< row-major sorted nonzeros
  double cost = 0.0;
  size_t pivots = 0;
};

/// Solves the transportation problem over a streamed cost oracle on the
/// full m×n grid. `p` and `q` must be non-negative with equal total mass
/// (within `mass_tol`).
Result<SparseNetworkSimplexResult> SolveTransportNetwork(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options = {},
    double mass_tol = 1e-6);

/// Support-restricted variant: arcs exist only on the kept-set
/// `arc_cols[i]` (sorted, deduplicated column ids per row — e.g. a
/// truncation kept-set). Costs for kept arcs are gathered once (O(nnz));
/// no other cost entries are read. If the kept arcs cannot carry the
/// marginals the solve fails with InvalidArgument rather than silently
/// routing mass off-support.
Result<SparseNetworkSimplexResult> SolveTransportNetworkRestricted(
    const linalg::CostProvider& cost,
    const std::vector<std::vector<size_t>>& arc_cols, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options = {},
    double mass_tol = 1e-6);

/// Dense convenience wrapper: adapts `cost` with linalg::MatrixCostProvider,
/// runs the streaming engine, and scatters the sparse result into a dense
/// plan for callers that want one.
Result<NetworkSimplexResult> SolveTransportNetwork(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options = {},
    double mass_tol = 1e-6);

}  // namespace otclean::lp

#endif  // OTCLEAN_LP_NETWORK_SIMPLEX_H_
