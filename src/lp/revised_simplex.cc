#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otclean::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<RevisedSimplexResult> SolveRevisedSimplex(
    const ColumnOracle& oracle, const linalg::Vector& b,
    const RevisedSimplexOptions& options) {
  const size_t rows = oracle.num_rows();
  const size_t cols = oracle.num_cols();
  if (b.size() != rows) {
    return Status::InvalidArgument("SolveRevisedSimplex: rhs size mismatch");
  }
  double b_norm = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    if (b[r] < -options.tol) {
      return Status::InvalidArgument(
          "SolveRevisedSimplex: rhs must be non-negative (artificial "
          "identity start)");
    }
    b_norm += std::fabs(b[r]);
  }
  const double feas_tol = options.tol * (1.0 + b_norm);

  // Artificial identity start: basis column `cols + r` is the r-th unit
  // vector; B⁻¹ = I and x_B = b, which is feasible because b ≥ 0.
  std::vector<size_t> basis(rows);
  for (size_t r = 0; r < rows; ++r) basis[r] = cols + r;
  linalg::Matrix binv = linalg::Matrix::Identity(rows);
  std::vector<double> xb(rows);
  for (size_t r = 0; r < rows; ++r) xb[r] = std::max(b[r], 0.0);

  std::vector<double> y(rows), d(rows), cb(rows);
  std::vector<std::pair<size_t, double>> column;

  RevisedSimplexResult result;
  result.working_set_bytes =
      rows * rows * sizeof(double) + 5 * rows * sizeof(double);

  bool phase1 = true;
  size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    Status stop = CheckStop(options.cancel_token, options.deadline,
                            "SolveRevisedSimplex: pivot");
    if (!stop.ok()) return stop;

    if (phase1) {
      double artificial_mass = 0.0;
      for (size_t k = 0; k < rows; ++k) {
        if (basis[k] >= cols) artificial_mass += xb[k];
      }
      if (artificial_mass <= feas_tol) phase1 = false;
    }

    // Duals y = B⁻ᵀ c_B for the active phase's objective.
    for (size_t k = 0; k < rows; ++k) {
      if (phase1) {
        cb[k] = basis[k] >= cols ? 1.0 : 0.0;
      } else {
        cb[k] = basis[k] >= cols ? 0.0 : oracle.Cost(basis[k]);
      }
    }
    for (size_t r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (size_t k = 0; k < rows; ++k) acc += cb[k] * binv(k, r);
      y[r] = acc;
    }

    const size_t enter = oracle.PriceEntering(y, options.tol, phase1);
    if (enter >= cols) {
      if (phase1) {
        // No entering column but artificial mass remains: infeasible.
        return Status::InvalidArgument(
            "SolveRevisedSimplex: constraints are infeasible");
      }
      break;  // optimal
    }

    // Direction d = B⁻¹ A_e from the sparse entering column.
    oracle.Column(enter, column);
    std::fill(d.begin(), d.end(), 0.0);
    for (const auto& [row, coef] : column) {
      for (size_t k = 0; k < rows; ++k) d[k] += binv(k, row) * coef;
    }

    // Leaving row. Degenerate artificials whose direction component would
    // let them re-acquire mass in phase 2 are forced out first with a
    // zero-length pivot; otherwise the standard ratio test applies with a
    // lowest-column tie-break against cycling.
    size_t leave = rows;
    double theta = kInf;
    if (!phase1) {
      for (size_t k = 0; k < rows; ++k) {
        if (basis[k] >= cols && xb[k] <= feas_tol &&
            std::fabs(d[k]) > options.tol) {
          leave = k;
          theta = 0.0;
          break;
        }
      }
    }
    if (leave == rows) {
      for (size_t k = 0; k < rows; ++k) {
        if (d[k] <= options.tol) continue;
        const double ratio = xb[k] / d[k];
        if (ratio < theta - options.tol ||
            (ratio < theta + options.tol &&
             (leave == rows || basis[k] < basis[leave]))) {
          theta = ratio;
          leave = k;
        }
      }
    }
    if (leave == rows) {
      return Status::Internal(
          "SolveRevisedSimplex: unbounded direction (transport-class "
          "problems are bounded; check the oracle's columns)");
    }

    // Pivot: eta-update of B⁻¹ and the basic solution.
    const double pivot = d[leave];
    const double inv_pivot = 1.0 / pivot;
    for (size_t r = 0; r < rows; ++r) binv(leave, r) *= inv_pivot;
    for (size_t k = 0; k < rows; ++k) {
      if (k == leave || d[k] == 0.0) continue;
      const double factor = d[k];
      for (size_t r = 0; r < rows; ++r) {
        binv(k, r) -= factor * binv(leave, r);
      }
      xb[k] -= theta * factor;
      if (xb[k] < 0.0) xb[k] = 0.0;  // numerical guard
    }
    xb[leave] = theta;
    basis[leave] = enter;
  }
  if (iter >= options.max_iterations) {
    return Status::NotConverged("SolveRevisedSimplex: iteration cap reached");
  }

  result.iterations = iter;
  for (size_t k = 0; k < rows; ++k) {
    if (basis[k] >= cols) continue;  // degenerate artificial, value ~0
    result.objective += oracle.Cost(basis[k]) * xb[k];
    if (xb[k] > 0.0) result.basic.emplace_back(basis[k], xb[k]);
  }
  std::sort(result.basic.begin(), result.basic.end());
  return result;
}

}  // namespace otclean::lp
