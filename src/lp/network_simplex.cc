#include "lp/network_simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

namespace otclean::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Basis bookkeeping: the set of basic cells forms a spanning tree of the
/// bipartite row/column graph. We keep flows in a dense matrix and the
/// basis as a boolean mask plus adjacency lists.
struct Basis {
  size_t m, n;
  std::vector<bool> basic;          // m*n mask
  std::vector<std::vector<size_t>> row_cells;  // per row: basic column ids
  std::vector<std::vector<size_t>> col_cells;  // per col: basic row ids

  Basis(size_t m_, size_t n_)
      : m(m_), n(n_), basic(m_ * n_, false), row_cells(m_), col_cells(n_) {}

  bool IsBasic(size_t i, size_t j) const { return basic[i * n + j]; }

  void Add(size_t i, size_t j) {
    if (IsBasic(i, j)) return;
    basic[i * n + j] = true;
    row_cells[i].push_back(j);
    col_cells[j].push_back(i);
  }

  void Remove(size_t i, size_t j) {
    basic[i * n + j] = false;
    auto& rc = row_cells[i];
    rc.erase(std::find(rc.begin(), rc.end(), j));
    auto& cc = col_cells[j];
    cc.erase(std::find(cc.begin(), cc.end(), i));
  }
};

/// Vogel's approximation for the initial basic feasible solution: repeatedly
/// place mass in the cheapest cell of the row/column with the largest
/// regret (difference between its two smallest costs).
void VogelInitial(const linalg::Matrix& cost, linalg::Vector supply,
                  linalg::Vector demand, linalg::Matrix& flow, Basis& basis) {
  const size_t m = supply.size();
  const size_t n = demand.size();
  std::vector<bool> row_done(m, false), col_done(n, false);
  size_t remaining = m + n;

  auto row_regret = [&](size_t i, size_t* best_j) {
    double c1 = kInf, c2 = kInf;
    size_t j1 = n;
    for (size_t j = 0; j < n; ++j) {
      if (col_done[j]) continue;
      const double c = cost(i, j);
      if (c < c1) {
        c2 = c1;
        c1 = c;
        j1 = j;
      } else if (c < c2) {
        c2 = c;
      }
    }
    *best_j = j1;
    return (c2 == kInf) ? c1 : c2 - c1;
  };
  auto col_regret = [&](size_t j, size_t* best_i) {
    double c1 = kInf, c2 = kInf;
    size_t i1 = m;
    for (size_t i = 0; i < m; ++i) {
      if (row_done[i]) continue;
      const double c = cost(i, j);
      if (c < c1) {
        c2 = c1;
        c1 = c;
        i1 = i;
      } else if (c < c2) {
        c2 = c;
      }
    }
    *best_i = i1;
    return (c2 == kInf) ? c1 : c2 - c1;
  };

  while (remaining > 2) {
    // Pick the line (row or column) with the largest regret.
    double best_regret = -1.0;
    bool is_row = true;
    size_t line = 0, partner = 0;
    for (size_t i = 0; i < m; ++i) {
      if (row_done[i]) continue;
      size_t j;
      const double reg = row_regret(i, &j);
      if (j < n && reg > best_regret) {
        best_regret = reg;
        is_row = true;
        line = i;
        partner = j;
      }
    }
    for (size_t j = 0; j < n; ++j) {
      if (col_done[j]) continue;
      size_t i;
      const double reg = col_regret(j, &i);
      if (i < m && reg > best_regret) {
        best_regret = reg;
        is_row = false;
        line = j;
        partner = i;
      }
    }
    if (best_regret < 0.0) break;  // nothing assignable

    const size_t i = is_row ? line : partner;
    const size_t j = is_row ? partner : line;
    const double amount = std::min(supply[i], demand[j]);
    flow(i, j) += amount;
    basis.Add(i, j);
    supply[i] -= amount;
    demand[j] -= amount;
    // Close exactly one line per step (keeps the basis a forest).
    if (supply[i] <= demand[j]) {
      row_done[i] = true;
    } else {
      col_done[j] = true;
    }
    --remaining;
  }
  // Assign whatever remains along the surviving lines.
  for (size_t i = 0; i < m; ++i) {
    if (row_done[i] || supply[i] < 0.0) continue;
    for (size_t j = 0; j < n; ++j) {
      if (col_done[j]) continue;
      const double amount = std::min(supply[i], demand[j]);
      if (amount > 0.0 || !basis.IsBasic(i, j)) {
        flow(i, j) += amount;
        basis.Add(i, j);
        supply[i] -= amount;
        demand[j] -= amount;
      }
    }
  }
}

/// Ensures the basis is a spanning tree (m + n − 1 connected cells) by
/// adding zero-flow cells bridging components.
void CompleteBasisTree(const linalg::Matrix& cost, Basis& basis) {
  const size_t m = basis.m;
  const size_t n = basis.n;
  // Union-find over m rows + n columns.
  std::vector<size_t> parent(m + n);
  for (size_t k = 0; k < m + n; ++k) parent[k] = k;
  std::vector<size_t>* pp = &parent;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while ((*pp)[x] != x) {
      (*pp)[x] = (*pp)[(*pp)[x]];
      x = (*pp)[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  size_t count = 0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j : basis.row_cells[i]) {
      unite(i, m + j);
    }
    count += basis.row_cells[i].size();
  }
  // Greedily add the cheapest bridging cell until the tree is spanning.
  while (count < m + n - 1) {
    double best = kInf;
    size_t bi = m, bj = n;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (basis.IsBasic(i, j) || find(i) == find(m + j)) continue;
        if (cost(i, j) < best) {
          best = cost(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == m) break;  // already connected (shouldn't happen)
    basis.Add(bi, bj);
    unite(bi, m + bj);
    ++count;
  }
}

/// Computes dual potentials over the basis tree: u_i + v_j = c_ij for
/// basic cells, anchored at u_0 = 0 per component.
void ComputePotentials(const linalg::Matrix& cost, const Basis& basis,
                       std::vector<double>& u, std::vector<double>& v) {
  const size_t m = basis.m;
  const size_t n = basis.n;
  u.assign(m, kInf);
  v.assign(n, kInf);
  std::vector<size_t> stack;
  for (size_t start = 0; start < m; ++start) {
    if (u[start] != kInf) continue;
    u[start] = 0.0;
    stack.push_back(start);  // rows are ids [0,m), cols [m, m+n)
    while (!stack.empty()) {
      const size_t node = stack.back();
      stack.pop_back();
      if (node < m) {
        for (size_t j : basis.row_cells[node]) {
          if (v[j] == kInf) {
            v[j] = cost(node, j) - u[node];
            stack.push_back(m + j);
          }
        }
      } else {
        const size_t j = node - m;
        for (size_t i : basis.col_cells[j]) {
          if (u[i] == kInf) {
            u[i] = cost(i, j) - v[j];
            stack.push_back(i);
          }
        }
      }
    }
  }
}

/// Finds the unique alternating cycle the entering cell (ei, ej) closes in
/// the basis tree: a path from row ei to column ej through basic cells.
/// Returns the path as alternating (row, col) cells starting with the
/// entering cell; even positions gain flow, odd positions lose it.
bool FindCycle(const Basis& basis, size_t ei, size_t ej,
               std::vector<std::pair<size_t, size_t>>& cycle) {
  const size_t m = basis.m;
  // BFS from row ei to column ej over basic cells.
  std::vector<int> prev(m + basis.n, -1);
  std::vector<bool> visited(m + basis.n, false);
  std::vector<size_t> queue = {ei};
  visited[ei] = true;
  bool found = false;
  for (size_t qi = 0; qi < queue.size() && !found; ++qi) {
    const size_t node = queue[qi];
    if (node < m) {
      for (size_t j : basis.row_cells[node]) {
        if (!visited[m + j]) {
          visited[m + j] = true;
          prev[m + j] = static_cast<int>(node);
          if (j == ej) {
            found = true;
            break;
          }
          queue.push_back(m + j);
        }
      }
    } else {
      const size_t j = node - m;
      for (size_t i : basis.col_cells[j]) {
        if (!visited[i]) {
          visited[i] = true;
          prev[i] = static_cast<int>(node);
          queue.push_back(i);
        }
      }
    }
  }
  if (!found) return false;

  // Reconstruct node path ej <- ... <- ei, then convert to cells.
  std::vector<size_t> nodes;
  size_t cur = m + ej;
  while (cur != ei) {
    nodes.push_back(cur);
    cur = static_cast<size_t>(prev[cur]);
  }
  nodes.push_back(ei);
  std::reverse(nodes.begin(), nodes.end());  // ei ... m+ej

  cycle.clear();
  cycle.emplace_back(ei, ej);  // entering cell (gains flow)
  // Path alternates row,col,row,col...; consecutive pairs are basic cells.
  for (size_t k = 0; k + 1 < nodes.size(); ++k) {
    const size_t a = nodes[k];
    const size_t b = nodes[k + 1];
    if (a < m) {
      cycle.emplace_back(a, b - m);
    } else {
      cycle.emplace_back(b, a - m);
    }
  }
  return true;
}

}  // namespace

Result<NetworkSimplexResult> SolveTransportNetwork(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options,
    double mass_tol) {
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  if (p.size() != m || q.size() != n) {
    return Status::InvalidArgument("SolveTransportNetwork: dimension mismatch");
  }
  for (size_t i = 0; i < m; ++i) {
    if (p[i] < 0.0) {
      return Status::InvalidArgument("SolveTransportNetwork: negative supply");
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (q[j] < 0.0) {
      return Status::InvalidArgument("SolveTransportNetwork: negative demand");
    }
  }
  if (std::fabs(p.Sum() - q.Sum()) > mass_tol) {
    return Status::InvalidArgument(
        "SolveTransportNetwork: unbalanced supplies/demands");
  }

  NetworkSimplexResult result;
  result.plan = linalg::Matrix(m, n, 0.0);
  Basis basis(m, n);
  VogelInitial(cost, p, q, result.plan, basis);
  CompleteBasisTree(cost, basis);

  std::vector<double> u, v;
  std::vector<std::pair<size_t, size_t>> cycle;
  for (size_t pivot = 0; pivot < options.max_pivots; ++pivot) {
    ComputePotentials(cost, basis, u, v);

    // Entering cell: most negative reduced cost.
    double best = -options.tol;
    size_t ei = m, ej = n;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (basis.IsBasic(i, j)) continue;
        const double reduced = cost(i, j) - u[i] - v[j];
        if (reduced < best) {
          best = reduced;
          ei = i;
          ej = j;
        }
      }
    }
    if (ei == m) {  // optimal
      result.cost = cost.FrobeniusDot(result.plan);
      result.pivots = pivot;
      return result;
    }

    if (!FindCycle(basis, ei, ej, cycle)) {
      return Status::Internal("SolveTransportNetwork: basis tree broken");
    }
    // Odd positions in the cycle lose flow; theta = their minimum.
    double theta = kInf;
    size_t leave_pos = 0;
    for (size_t k = 1; k < cycle.size(); k += 2) {
      const double f = result.plan(cycle[k].first, cycle[k].second);
      if (f < theta) {
        theta = f;
        leave_pos = k;
      }
    }
    for (size_t k = 0; k < cycle.size(); ++k) {
      double& f = result.plan(cycle[k].first, cycle[k].second);
      f += (k % 2 == 0) ? theta : -theta;
      if (f < 0.0) f = 0.0;  // numerical guard
    }
    basis.Remove(cycle[leave_pos].first, cycle[leave_pos].second);
    basis.Add(ei, ej);
  }
  return Status::NotConverged("SolveTransportNetwork: pivot cap reached");
}

}  // namespace otclean::lp
