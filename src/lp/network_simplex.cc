#include "lp/network_simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"

namespace otclean::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kNoArc = static_cast<size_t>(-1);

/// Basis bookkeeping: the set of basic cells forms a spanning tree of the
/// bipartite row/column graph. Flows live in a hash map keyed by cell id
/// (only basic cells carry flow), and the basis is adjacency lists — both
/// O(m + n), so the engine never allocates anything m×n sized.
struct Basis {
  size_t m, n;
  std::vector<std::vector<size_t>> row_cells;  // per row: basic column ids
  std::vector<std::vector<size_t>> col_cells;  // per col: basic row ids
  std::unordered_map<size_t, double> flow;     // basic-cell flows

  Basis(size_t m_, size_t n_) : m(m_), n(n_), row_cells(m_), col_cells(n_) {
    flow.reserve(m_ + n_);
  }

  size_t Key(size_t i, size_t j) const { return i * n + j; }

  void Add(size_t i, size_t j, double f) {
    row_cells[i].push_back(j);
    col_cells[j].push_back(i);
    flow[Key(i, j)] = f;
  }

  void Remove(size_t i, size_t j) {
    auto& rc = row_cells[i];
    rc.erase(std::find(rc.begin(), rc.end(), j));
    auto& cc = col_cells[j];
    cc.erase(std::find(cc.begin(), cc.end(), i));
    flow.erase(Key(i, j));
  }

  double& FlowAt(size_t i, size_t j) { return flow[Key(i, j)]; }
};

/// Kept-arc set for the restricted solve: CSR over sorted per-row column
/// ids with costs gathered once at entry (the only cost reads the
/// restricted engine performs). Cells outside the set act as Big-M
/// artificial arcs so an initial spanning basis always exists; any
/// artificial still carrying flow at the optimum proves infeasibility.
struct ArcSet {
  std::vector<size_t> row_ptr;
  std::vector<size_t> cols;
  std::vector<double> costs;
  double big_m = 0.0;

  size_t Find(size_t i, size_t j) const {
    const size_t b = row_ptr[i], e = row_ptr[i + 1];
    const auto it = std::lower_bound(cols.begin() + b, cols.begin() + e, j);
    if (it == cols.begin() + e || *it != j) return kNoArc;
    return static_cast<size_t>(it - cols.begin());
  }

  double CostOf(size_t i, size_t j) const {
    const size_t k = Find(i, j);
    return k == kNoArc ? big_m : costs[k];
  }
};

/// Northwest-corner initial basic feasible solution: a cost-free O(m + n)
/// sweep that yields exactly m + n − 1 basic cells forming a connected
/// path — already a spanning tree, so no completion pass is needed.
void NorthwestInitial(const linalg::Vector& p, const linalg::Vector& q,
                      Basis& basis) {
  const size_t m = p.size();
  const size_t n = q.size();
  size_t i = 0, j = 0;
  double s = p[0], d = q[0];
  while (true) {
    const double f = std::min(s, d);
    basis.Add(i, j, std::max(f, 0.0));
    s -= f;
    d -= f;
    const bool last_row = (i + 1 == m);
    const bool last_col = (j + 1 == n);
    if (last_row && last_col) break;
    if (last_row) {
      d = q[++j];
    } else if (last_col) {
      s = p[++i];
    } else if (s <= d) {
      s = p[++i];
    } else {
      d = q[++j];
    }
  }
}

/// Computes dual potentials over the basis tree: u_i + v_j = c_ij for
/// basic cells, anchored at u_0 = 0 per component. `basic_cost(i, j)` is
/// only ever called on basic cells.
template <typename BasicCost>
void ComputePotentials(const BasicCost& basic_cost, const Basis& basis,
                       std::vector<double>& u, std::vector<double>& v) {
  const size_t m = basis.m;
  const size_t n = basis.n;
  u.assign(m, kInf);
  v.assign(n, kInf);
  std::vector<size_t> stack;
  for (size_t start = 0; start < m; ++start) {
    if (u[start] != kInf) continue;
    u[start] = 0.0;
    stack.push_back(start);  // rows are ids [0,m), cols [m, m+n)
    while (!stack.empty()) {
      const size_t node = stack.back();
      stack.pop_back();
      if (node < m) {
        for (size_t j : basis.row_cells[node]) {
          if (v[j] == kInf) {
            v[j] = basic_cost(node, j) - u[node];
            stack.push_back(m + j);
          }
        }
      } else {
        const size_t j = node - m;
        for (size_t i : basis.col_cells[j]) {
          if (u[i] == kInf) {
            u[i] = basic_cost(i, j) - v[j];
            stack.push_back(i);
          }
        }
      }
    }
  }
}

/// Finds the unique alternating cycle the entering cell (ei, ej) closes in
/// the basis tree: a path from row ei to column ej through basic cells.
/// Returns the path as alternating (row, col) cells starting with the
/// entering cell; even positions gain flow, odd positions lose it.
bool FindCycle(const Basis& basis, size_t ei, size_t ej,
               std::vector<std::pair<size_t, size_t>>& cycle) {
  const size_t m = basis.m;
  // BFS from row ei to column ej over basic cells.
  std::vector<int> prev(m + basis.n, -1);
  std::vector<bool> visited(m + basis.n, false);
  std::vector<size_t> queue = {ei};
  visited[ei] = true;
  bool found = false;
  for (size_t qi = 0; qi < queue.size() && !found; ++qi) {
    const size_t node = queue[qi];
    if (node < m) {
      for (size_t j : basis.row_cells[node]) {
        if (!visited[m + j]) {
          visited[m + j] = true;
          prev[m + j] = static_cast<int>(node);
          if (j == ej) {
            found = true;
            break;
          }
          queue.push_back(m + j);
        }
      }
    } else {
      const size_t j = node - m;
      for (size_t i : basis.col_cells[j]) {
        if (!visited[i]) {
          visited[i] = true;
          prev[i] = static_cast<int>(node);
          queue.push_back(i);
        }
      }
    }
  }
  if (!found) return false;

  // Reconstruct node path ej <- ... <- ei, then convert to cells.
  std::vector<size_t> nodes;
  size_t cur = m + ej;
  while (cur != ei) {
    nodes.push_back(cur);
    cur = static_cast<size_t>(prev[cur]);
  }
  nodes.push_back(ei);
  std::reverse(nodes.begin(), nodes.end());  // ei ... m+ej

  cycle.clear();
  cycle.emplace_back(ei, ej);  // entering cell (gains flow)
  // Path alternates row,col,row,col...; consecutive pairs are basic cells.
  for (size_t k = 0; k + 1 < nodes.size(); ++k) {
    const size_t a = nodes[k];
    const size_t b = nodes[k + 1];
    if (a < m) {
      cycle.emplace_back(a, b - m);
    } else {
      cycle.emplace_back(b, a - m);
    }
  }
  return true;
}

/// One pricing candidate; chunk-local minima merge in chunk order with
/// strict comparisons, so the entering arc is the same for any thread
/// count or pool mode.
struct Candidate {
  double reduced;
  size_t i, j;
};

/// Entering-arc pricing over the full m×n grid, streaming cost rows
/// tile-by-tile. Returns the most negative reduced cost below −tol with a
/// lowest-(i, j) tie-break; (m, n) when none. Basic arcs need no mask:
/// their reduced cost is 0 by construction of the potentials, far above
/// the −tol acceptance threshold.
Candidate PriceFullGrid(const linalg::CostProvider& cost,
                        const std::vector<double>& u,
                        const std::vector<double>& v, double tol,
                        size_t threads, linalg::ThreadPool* pool) {
  const size_t m = u.size();
  const size_t n = v.size();
  const size_t grain = linalg::GrainForWork(n);
  const linalg::ChunkPlan plan = linalg::PlanChunks(m, threads, grain);
  std::vector<Candidate> best(std::max<size_t>(plan.num_chunks, 1),
                              Candidate{-tol, m, n});
  linalg::ParallelFor(
      m, threads,
      [&](size_t begin, size_t end) {
        Candidate local{-tol, m, n};
        std::vector<double> tile(
            std::min<size_t>(n, linalg::kCostStreamTileCols));
        for (size_t i = begin; i < end; ++i) {
          for (size_t c0 = 0; c0 < n; c0 += linalg::kCostStreamTileCols) {
            const size_t c1 = std::min(n, c0 + linalg::kCostStreamTileCols);
            cost.Fill(i, c0, c1, tile.data());
            for (size_t j = c0; j < c1; ++j) {
              const double reduced = tile[j - c0] - u[i] - v[j];
              if (reduced < local.reduced) local = Candidate{reduced, i, j};
            }
          }
        }
        best[begin / plan.chunk] = local;
      },
      grain, pool);
  Candidate out{-tol, m, n};
  for (const Candidate& c : best) {
    if (c.reduced < out.reduced) out = c;
  }
  return out;
}

/// Entering-arc pricing restricted to kept arcs, scanning the gathered CSR
/// costs. Artificial (non-kept) arcs never enter.
Candidate PriceRestricted(const ArcSet& arcs, const std::vector<double>& u,
                          const std::vector<double>& v, double tol,
                          size_t threads, linalg::ThreadPool* pool) {
  const size_t m = u.size();
  const size_t n = v.size();
  const size_t nnz = arcs.cols.size();
  const size_t grain = linalg::GrainForWork(std::max<size_t>(1, nnz / std::max<size_t>(m, 1)));
  const linalg::ChunkPlan plan = linalg::PlanChunks(m, threads, grain);
  std::vector<Candidate> best(std::max<size_t>(plan.num_chunks, 1),
                              Candidate{-tol, m, n});
  linalg::ParallelFor(
      m, threads,
      [&](size_t begin, size_t end) {
        Candidate local{-tol, m, n};
        for (size_t i = begin; i < end; ++i) {
          for (size_t k = arcs.row_ptr[i]; k < arcs.row_ptr[i + 1]; ++k) {
            const size_t j = arcs.cols[k];
            const double reduced = arcs.costs[k] - u[i] - v[j];
            if (reduced < local.reduced) local = Candidate{reduced, i, j};
          }
        }
        best[begin / plan.chunk] = local;
      },
      grain, pool);
  Candidate out{-tol, m, n};
  for (const Candidate& c : best) {
    if (c.reduced < out.reduced) out = c;
  }
  return out;
}

Status ValidateMarginals(const linalg::Vector& p, const linalg::Vector& q,
                         double mass_tol) {
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0) {
      return Status::InvalidArgument("SolveTransportNetwork: negative supply");
    }
  }
  for (size_t j = 0; j < q.size(); ++j) {
    if (q[j] < 0.0) {
      return Status::InvalidArgument("SolveTransportNetwork: negative demand");
    }
  }
  if (std::fabs(p.Sum() - q.Sum()) > mass_tol) {
    return Status::InvalidArgument(
        "SolveTransportNetwork: unbalanced supplies/demands");
  }
  return Status::OK();
}

/// The shared pivot engine. `arcs` is null for the full-grid mode.
Result<SparseNetworkSimplexResult> SolveCore(
    const linalg::CostProvider& cost, const ArcSet* arcs,
    const linalg::Vector& p, const linalg::Vector& q,
    const NetworkSimplexOptions& options, double mass_tol) {
  const size_t m = p.size();
  const size_t n = q.size();
  if (cost.rows() != m || cost.cols() != n) {
    return Status::InvalidArgument("SolveTransportNetwork: dimension mismatch");
  }
  Status valid = ValidateMarginals(p, q, mass_tol);
  if (!valid.ok()) return valid;
  if (m == 0 || n == 0) return SparseNetworkSimplexResult{};

  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);
  const size_t threads =
      std::max<size_t>(1, linalg::ResolveThreadCount(options.num_threads));

  auto basic_cost = [&](size_t i, size_t j) {
    return arcs != nullptr ? arcs->CostOf(i, j) : cost.At(i, j);
  };

  Basis basis(m, n);
  NorthwestInitial(p, q, basis);

  SparseNetworkSimplexResult result;
  std::vector<double> u, v;
  std::vector<std::pair<size_t, size_t>> cycle;
  bool optimal = false;
  for (size_t pivot = 0; pivot < options.max_pivots; ++pivot) {
    Status stop = CheckStop(options.cancel_token, options.deadline,
                            "SolveTransportNetwork: pivot");
    if (!stop.ok()) return stop;

    ComputePotentials(basic_cost, basis, u, v);
    const Candidate enter =
        arcs != nullptr
            ? PriceRestricted(*arcs, u, v, options.tol, threads, pool)
            : PriceFullGrid(cost, u, v, options.tol, threads, pool);
    if (enter.i == m) {  // optimal
      result.pivots = pivot;
      optimal = true;
      break;
    }

    if (!FindCycle(basis, enter.i, enter.j, cycle)) {
      return Status::Internal("SolveTransportNetwork: basis tree broken");
    }
    // Odd positions in the cycle lose flow; theta = their minimum.
    double theta = kInf;
    size_t leave_pos = 1;
    for (size_t k = 1; k < cycle.size(); k += 2) {
      const double f = basis.FlowAt(cycle[k].first, cycle[k].second);
      if (f < theta) {
        theta = f;
        leave_pos = k;
      }
    }
    const auto leave = cycle[leave_pos];
    basis.Remove(leave.first, leave.second);
    basis.Add(enter.i, enter.j, theta);
    for (size_t k = 1; k < cycle.size(); ++k) {
      if (k == leave_pos) continue;
      double& f = basis.FlowAt(cycle[k].first, cycle[k].second);
      f += (k % 2 == 0) ? theta : -theta;
      if (f < 0.0) f = 0.0;  // numerical guard
    }
  }
  if (!optimal) {
    return Status::NotConverged("SolveTransportNetwork: pivot cap reached");
  }

  // Collect nonzero flows. In restricted mode, a Big-M artificial still
  // carrying mass at the optimum means the kept arcs cannot route the
  // marginals — fail loudly instead of emitting an off-support plan.
  for (const auto& [key, f] : basis.flow) {
    if (f <= 0.0) continue;
    const size_t i = key / n;
    const size_t j = key % n;
    if (arcs != nullptr && arcs->Find(i, j) == kNoArc) {
      if (f > mass_tol) {
        return Status::InvalidArgument(
            "SolveTransportNetworkRestricted: the kept arc set cannot carry "
            "the marginals (artificial arc still active at the optimum) — "
            "widen the support");
      }
      continue;
    }
    result.entries.push_back(SparsePlanEntry{i, j, f});
    result.cost += f * basic_cost(i, j);
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const SparsePlanEntry& a, const SparsePlanEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  return result;
}

}  // namespace

Result<SparseNetworkSimplexResult> SolveTransportNetwork(
    const linalg::CostProvider& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options,
    double mass_tol) {
  return SolveCore(cost, /*arcs=*/nullptr, p, q, options, mass_tol);
}

Result<SparseNetworkSimplexResult> SolveTransportNetworkRestricted(
    const linalg::CostProvider& cost,
    const std::vector<std::vector<size_t>>& arc_cols, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options,
    double mass_tol) {
  const size_t m = p.size();
  const size_t n = q.size();
  if (arc_cols.size() != m) {
    return Status::InvalidArgument(
        "SolveTransportNetworkRestricted: arc_cols must have one entry per "
        "supply row");
  }
  ArcSet arcs;
  arcs.row_ptr.assign(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    arcs.row_ptr[i + 1] = arcs.row_ptr[i] + arc_cols[i].size();
  }
  arcs.cols.reserve(arcs.row_ptr[m]);
  for (size_t i = 0; i < m; ++i) {
    size_t prev = n;  // sentinel: no previous column yet
    for (size_t j : arc_cols[i]) {
      if (j >= n || (prev != n && j <= prev)) {
        return Status::InvalidArgument(
            "SolveTransportNetworkRestricted: arc_cols rows must be sorted, "
            "unique column ids < cols");
      }
      arcs.cols.push_back(j);
      prev = j;
    }
  }
  // Gather kept-arc costs once — the only cost reads the restricted
  // engine performs.
  arcs.costs.resize(arcs.cols.size());
  double max_abs = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const size_t b = arcs.row_ptr[i], e = arcs.row_ptr[i + 1];
    if (b == e) continue;
    cost.Gather(i, arcs.cols.data() + b, e - b, arcs.costs.data() + b);
    for (size_t k = b; k < e; ++k) {
      if (!std::isfinite(arcs.costs[k])) {
        return Status::InvalidArgument(
            "SolveTransportNetworkRestricted: non-finite kept-arc cost");
      }
      max_abs = std::max(max_abs, std::fabs(arcs.costs[k]));
    }
  }
  // Big-M: strictly dominates any path of kept arcs so artificial arcs
  // only survive when the kept set is genuinely infeasible.
  arcs.big_m = (max_abs + 1.0) * 4.0 * static_cast<double>(m + n + 1);
  return SolveCore(cost, &arcs, p, q, options, mass_tol);
}

Result<NetworkSimplexResult> SolveTransportNetwork(
    const linalg::Matrix& cost, const linalg::Vector& p,
    const linalg::Vector& q, const NetworkSimplexOptions& options,
    double mass_tol) {
  linalg::MatrixCostProvider provider(cost);
  Result<SparseNetworkSimplexResult> sparse =
      SolveCore(provider, /*arcs=*/nullptr, p, q, options, mass_tol);
  if (!sparse.ok()) return sparse.status();
  NetworkSimplexResult result;
  result.plan = linalg::Matrix(p.size(), q.size(), 0.0);
  for (const SparsePlanEntry& e : sparse->entries) {
    result.plan(e.row, e.col) = e.value;
  }
  result.cost = sparse->cost;
  result.pivots = sparse->pivots;
  return result;
}

}  // namespace otclean::lp
