#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace otclean::lp {

namespace {

/// Dense tableau for the two-phase simplex. Columns are
/// [structural (n) | artificial (m) | rhs]. The objective row is kept in
/// reduced-cost form and updated by the same pivots as constraint rows.
class Tableau {
 public:
  Tableau(const LpProblem& p, const SimplexOptions& options)
      : m_(p.a.rows()), n_(p.a.cols()), tol_(options.tol),
        max_iterations_(options.max_iterations) {
    assert(p.b.size() == m_ && p.c.size() == n_);
    rows_.assign(m_, std::vector<double>(n_ + m_ + 1, 0.0));
    basis_.assign(m_, 0);
    for (size_t r = 0; r < m_; ++r) {
      const double sign = (p.b[r] < 0.0) ? -1.0 : 1.0;
      for (size_t c = 0; c < n_; ++c) rows_[r][c] = sign * p.a(r, c);
      rows_[r][n_ + r] = 1.0;  // artificial
      rows_[r][n_ + m_] = sign * p.b[r];
      basis_[r] = n_ + r;
    }
  }

  /// Phase 1: minimize the sum of artificials. Returns feasibility.
  Result<bool> Phase1() {
    // Objective row: cost 1 on artificials => reduced costs are
    // -(sum of constraint rows) on structural columns.
    obj_.assign(n_ + m_ + 1, 0.0);
    for (size_t j = n_; j < n_ + m_; ++j) obj_[j] = 1.0;
    // Price out the artificial basis.
    for (size_t r = 0; r < m_; ++r) {
      for (size_t j = 0; j <= n_ + m_; ++j) obj_[j] -= rows_[r][j];
    }
    OTCLEAN_RETURN_NOT_OK(RunSimplex(/*allow_artificial_entering=*/false));
    const double phase1_obj = -obj_[n_ + m_];
    if (phase1_obj > 1e-7) return false;
    DriveOutArtificials();
    return true;
  }

  /// Phase 2: minimize the true objective from the phase-1 basis.
  Status Phase2(const linalg::Vector& c) {
    obj_.assign(n_ + m_ + 1, 0.0);
    for (size_t j = 0; j < n_; ++j) obj_[j] = c[j];
    // Price out the current basis.
    for (size_t r = 0; r < m_; ++r) {
      if (row_disabled_[r]) continue;
      const double cb = (basis_[r] < n_) ? c[basis_[r]] : 0.0;
      if (cb == 0.0) continue;
      for (size_t j = 0; j <= n_ + m_; ++j) obj_[j] -= cb * rows_[r][j];
    }
    return RunSimplex(/*allow_artificial_entering=*/false);
  }

  LpSolution Extract() const {
    LpSolution sol;
    sol.x = linalg::Vector(n_, 0.0);
    for (size_t r = 0; r < m_; ++r) {
      if (row_disabled_[r]) continue;
      if (basis_[r] < n_) sol.x[basis_[r]] = rows_[r][n_ + m_];
    }
    sol.objective = -obj_[n_ + m_];
    sol.iterations = iterations_;
    return sol;
  }

  size_t iterations() const { return iterations_; }

 private:
  Status RunSimplex(bool allow_artificial_entering) {
    if (row_disabled_.empty()) row_disabled_.assign(m_, false);
    const size_t ncols = allow_artificial_entering ? n_ + m_ : n_;
    while (true) {
      if (iterations_ >= max_iterations_) {
        return Status::NotConverged("simplex: iteration cap reached");
      }
      // Entering column: Dantzig rule with Bland fallback when stalled.
      size_t enter = ncols;
      double best = -tol_;
      for (size_t j = 0; j < ncols; ++j) {
        if (obj_[j] < best) {
          best = obj_[j];
          enter = j;
        }
      }
      if (enter == ncols) return Status::OK();  // optimal

      // Leaving row: min-ratio test; Bland tie-break on basis index.
      size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < m_; ++r) {
        if (row_disabled_[r]) continue;
        const double a = rows_[r][enter];
        if (a > tol_) {
          const double ratio = rows_[r][n_ + m_] / a;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               (leave == m_ || basis_[r] < basis_[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m_) return Status::Unbounded("simplex: unbounded direction");
      Pivot(leave, enter);
      ++iterations_;
    }
  }

  void Pivot(size_t leave, size_t enter) {
    std::vector<double>& prow = rows_[leave];
    const double piv = prow[enter];
    assert(std::fabs(piv) > 0.0);
    for (double& v : prow) v /= piv;
    for (size_t r = 0; r < m_; ++r) {
      if (r == leave || row_disabled_[r]) continue;
      const double f = rows_[r][enter];
      if (f == 0.0) continue;
      for (size_t j = 0; j <= n_ + m_; ++j) rows_[r][j] -= f * prow[j];
    }
    const double fo = obj_[enter];
    if (fo != 0.0) {
      for (size_t j = 0; j <= n_ + m_; ++j) obj_[j] -= fo * prow[j];
    }
    basis_[leave] = enter;
  }

  /// After phase 1, removes artificial variables that linger in the basis at
  /// zero level: pivot on any nonzero structural entry in their row, or
  /// disable the (redundant) row.
  void DriveOutArtificials() {
    for (size_t r = 0; r < m_; ++r) {
      if (row_disabled_[r] || basis_[r] < n_) continue;
      size_t enter = n_;
      for (size_t j = 0; j < n_; ++j) {
        if (std::fabs(rows_[r][j]) > tol_) {
          enter = j;
          break;
        }
      }
      if (enter < n_) {
        Pivot(r, enter);
      } else {
        row_disabled_[r] = true;  // redundant constraint
      }
    }
  }

  size_t m_;
  size_t n_;
  double tol_;
  size_t max_iterations_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<size_t> basis_;
  std::vector<bool> row_disabled_;
  size_t iterations_ = 0;
};

}  // namespace

Result<LpSolution> SolveSimplex(const LpProblem& problem,
                                const SimplexOptions& options) {
  if (problem.a.rows() != problem.b.size() ||
      problem.a.cols() != problem.c.size()) {
    return Status::InvalidArgument("SolveSimplex: dimension mismatch");
  }
  if (problem.a.cols() == 0) {
    return Status::InvalidArgument("SolveSimplex: no variables");
  }
  Tableau tableau(problem, options);
  OTCLEAN_ASSIGN_OR_RETURN(bool feasible, tableau.Phase1());
  if (!feasible) return Status::Infeasible("SolveSimplex: LP is infeasible");
  OTCLEAN_RETURN_NOT_OK(tableau.Phase2(problem.c));
  return tableau.Extract();
}

}  // namespace otclean::lp
