#ifndef OTCLEAN_LP_REVISED_SIMPLEX_H_
#define OTCLEAN_LP_REVISED_SIMPLEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::lp {

/// An implicit LP  min cᵀx  s.t.  Ax = b, x ≥ 0  exposed column-by-column.
///
/// The revised simplex never asks for A as a whole: it prices all columns
/// against the current duals y (where the oracle can exploit problem
/// structure — the QCLP oracle prices each of its m·n columns in O(1)
/// after an O(rows) precompute, streaming costs through a CostProvider),
/// and materializes only the single entering column per pivot. That is
/// what replaces the dense (rows × cols) tableau of transport_lp with an
/// O(rows²) working set.
///
/// Implementations must be thread-safe for concurrent const calls if they
/// parallelize PriceEntering internally.
class ColumnOracle {
 public:
  virtual ~ColumnOracle() = default;

  virtual size_t num_rows() const = 0;
  virtual size_t num_cols() const = 0;

  /// Objective coefficient c_j.
  virtual double Cost(size_t col) const = 0;

  /// Overwrites `out` with the sparse entries (row, coefficient) of
  /// column A_j. Rows may appear in any order but at most once.
  virtual void Column(size_t col,
                      std::vector<std::pair<size_t, double>>& out) const = 0;

  /// Returns the column with the most negative reduced cost
  /// (phase1 ? 0 : c_j) − yᵀA_j strictly below −tol, breaking ties toward
  /// the lowest index; num_cols() when none qualifies. Must be
  /// deterministic for a given y regardless of internal parallelism.
  virtual size_t PriceEntering(const std::vector<double>& y, double tol,
                               bool phase1) const = 0;
};

struct RevisedSimplexOptions {
  size_t max_iterations = 200000;
  /// Reduced-cost / pivot tolerance.
  double tol = 1e-9;
  /// Cooperative stop signals, polled once per pivot.
  const CancellationToken* cancel_token = nullptr;
  Deadline deadline = Deadline::Infinite();
};

struct RevisedSimplexResult {
  /// Basic variables at the optimum: (column id, value), value ≥ 0. At
  /// most num_rows entries; every non-listed column is 0.
  std::vector<std::pair<size_t, double>> basic;
  double objective = 0.0;
  size_t iterations = 0;
  /// Bytes of the factorization working set (B⁻¹ + per-pivot scratch) —
  /// the LP memory-scaling quantity that replaces the dense-tableau
  /// footprint in reports and benches.
  size_t working_set_bytes = 0;
};

/// Two-phase revised simplex with a dense product-form basis inverse.
/// Starts from the artificial identity basis, so `b` must be non-negative
/// (the transport/QCLP right-hand sides are). Phase 1 drives the
/// artificials out (InvalidArgument if the system is infeasible); phase 2
/// optimizes the true objective, forcing any residual degenerate
/// artificials out with zero-length pivots so they never re-acquire mass.
Result<RevisedSimplexResult> SolveRevisedSimplex(
    const ColumnOracle& oracle, const linalg::Vector& b,
    const RevisedSimplexOptions& options = {});

}  // namespace otclean::lp

#endif  // OTCLEAN_LP_REVISED_SIMPLEX_H_
