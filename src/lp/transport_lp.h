#ifndef OTCLEAN_LP_TRANSPORT_LP_H_
#define OTCLEAN_LP_TRANSPORT_LP_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::lp {

/// Exact solution of the discrete Kantorovich transportation problem
///   minimize  Σ_ij C_ij π_ij
///   s.t.      Σ_j π_ij = p_i,  Σ_i π_ij = q_j,  π ≥ 0
/// via the two-phase simplex. p and q must have equal total mass (within
/// `mass_tol`); one redundant constraint is handled automatically.
struct TransportResult {
  linalg::Matrix plan;  ///< optimal coupling π.
  double cost = 0.0;    ///< optimal transport cost ⟨C, π⟩.
  size_t iterations = 0;
};

Result<TransportResult> SolveTransport(const linalg::Matrix& cost,
                                       const linalg::Vector& p,
                                       const linalg::Vector& q,
                                       double mass_tol = 1e-6);

}  // namespace otclean::lp

#endif  // OTCLEAN_LP_TRANSPORT_LP_H_
