#include "linalg/transport_kernel_f32.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "linalg/parallel_for.h"
#include "linalg/simd.h"
#include "linalg/simd_exp.h"
#include "linalg/thread_pool.h"

namespace otclean::linalg {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Σ_k costs[k]·e^{(vals[k] + lv[col(k)]) + lu_r} over one stored row with
/// float log-kernel values — the f32 mirror of RowLogCost in
/// log_transport_kernel.cc, shared by the streamed and cached TransportCost
/// variants so they stay bit-identical.
double RowLogCostF32(const double* costs, const float* vals,
                     const size_t* cols, const double* lv, double lu_r,
                     size_t len) {
  double s = 0.0;
  for (size_t k = 0; k < len; ++k) {
    s += costs[k] *
         simd::PolyExp(static_cast<double>(vals[k]) + lv[cols[k]] + lu_r);
  }
  return s;
}

std::vector<float> Narrow(const std::vector<double>& src) {
  std::vector<float> out(src.size());
  for (size_t i = 0; i < src.size(); ++i) out[i] = static_cast<float>(src[i]);
  return out;
}

}  // namespace

DenseKernelStorageF32::DenseKernelStorageF32(const Matrix& kernel)
    : rows(kernel.rows()), cols(kernel.cols()), values(Narrow(kernel.data())) {}

SparseKernelStorageF32::SparseKernelStorageF32(
    const SparseKernelStorage& storage)
    : rows(storage.matrix.rows()),
      cols(storage.matrix.cols()),
      row_ptr(storage.matrix.row_ptr()),
      col_index(storage.matrix.col_index()),
      values(Narrow(storage.matrix.values())),
      col_ptr(storage.csc.col_ptr),
      csc_row_index(storage.csc.row_index),
      csc_values(Narrow(storage.csc.values)),
      max_row_nnz(storage.csc.max_row_nnz) {}

// ---------------------------------------------------------- Dense linear --

DenseTransportKernelF32::DenseTransportKernelF32(
    std::shared_ptr<const DenseKernelStorageF32> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

DenseTransportKernelF32 DenseTransportKernelF32::FromCost(const Matrix& cost,
                                                          double epsilon,
                                                          size_t num_threads,
                                                          ThreadPool* pool) {
  assert(epsilon > 0.0);
  return DenseTransportKernelF32(
      std::make_shared<const DenseKernelStorageF32>(cost.GibbsKernel(epsilon)),
      num_threads, pool);
}

void DenseTransportKernelF32::Apply(const Vector& v, Vector& y) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(v.size() == n);
  if (y.size() != m) y = Vector(m);
  const float* data = storage_->values.data();
  const double* vdata = v.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          y[r] = simd::DotF32(data + r * n, vdata, n);
        }
      },
      GrainForWork(n), pool_);
}

void DenseTransportKernelF32::ApplyTranspose(const Vector& u,
                                             Vector& y) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(u.size() == m);
  if (y.size() != n) y = Vector(n);
  const float* data = storage_->values.data();
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        const size_t w = c1 - c0;
        double* out = y.begin() + c0;
        for (size_t c = 0; c < w; ++c) out[c] = 0.0;
        simd::AxpyRowsF32(u.begin(), data + c0, n, m, out, w);
      },
      GrainForWork(m), pool_);
}

Matrix DenseTransportKernelF32::ScaleToPlan(const Vector& u,
                                            const Vector& v) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n);
  const float* data = storage_->values.data();
  const double* vdata = v.begin();
  double* out = plan.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          simd::ScaledHadamardF32(u[r], data + r * n, vdata, out + r * n, n);
        }
      },
      GrainForWork(n), pool_);
  return plan;
}

double DenseTransportKernelF32::TransportCost(const CostProvider& cost,
                                              const Vector& u,
                                              const Vector& v) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(cost.rows() == m && cost.cols() == n);
  assert(u.size() == m && v.size() == n);
  const float* kdata = storage_->values.data();
  const double* vdata = v.begin();
  if (const Matrix* dense_cost = cost.AsMatrix()) {
    const double* cdata = dense_cost->data().data();
    return BlockedReduce(
        m, threads_,
        [&](size_t r0, size_t r1) {
          double s = 0.0;
          for (size_t r = r0; r < r1; ++r) {
            const double ur = u[r];
            if (ur == 0.0) continue;
            s += ur * simd::Dot3F32(cdata + r * n, kdata + r * n, vdata, n);
          }
          return s;
        },
        pool_);
  }
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> tile(std::min(n, kCostStreamTileCols));
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          double row_sum = 0.0;
          for (size_t c0 = 0; c0 < n; c0 += tile.size()) {
            const size_t c1 = std::min(n, c0 + tile.size());
            cost.Fill(r, c0, c1, tile.data());
            row_sum += simd::Dot3F32(tile.data(), kdata + r * n + c0,
                                     vdata + c0, c1 - c0);
          }
          s += ur * row_sum;
        }
        return s;
      },
      pool_);
}

// --------------------------------------------------------- Sparse linear --

SparseTransportKernelF32::SparseTransportKernelF32(
    std::shared_ptr<const SparseKernelStorageF32> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

SparseTransportKernelF32 SparseTransportKernelF32::FromCost(
    const Matrix& cost, double epsilon, double cutoff, size_t num_threads,
    ThreadPool* pool) {
  return FromCost(MatrixCostProvider(cost), epsilon, cutoff, num_threads,
                  pool);
}

SparseTransportKernelF32 SparseTransportKernelF32::FromCost(
    const CostProvider& cost, double epsilon, double cutoff,
    size_t num_threads, ThreadPool* pool) {
  assert(epsilon > 0.0);
  const SparseKernelStorage f64(
      SparseMatrix::GibbsKernel(cost, epsilon, cutoff));
  return SparseTransportKernelF32(
      std::make_shared<const SparseKernelStorageF32>(f64), num_threads, pool);
}

void SparseTransportKernelF32::Apply(const Vector& v, Vector& y) const {
  const size_t m = storage_->rows;
  assert(v.size() == storage_->cols);
  if (y.size() != m) y = Vector(m);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* vdata = v.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          y[r] = simd::GatherDotF32(values + k0, cols + k0, vdata,
                                    row_ptr[r + 1] - k0);
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
}

void SparseTransportKernelF32::ApplyTranspose(const Vector& u,
                                              Vector& y) const {
  const size_t n = storage_->cols;
  assert(u.size() == storage_->rows);
  if (y.size() != n) y = Vector(n);
  const float* csc_values = storage_->csc_values.data();
  const size_t* rows = storage_->csc_row_index.data();
  const double* udata = u.begin();
  // Lane-parallel gather per owned column — NOT the f64 path's sequential
  // chain. The f32 tier doesn't carry the dense==sparse-at-cutoff-0
  // exactness contract, so it is free to break the latency chain; each
  // column is still one fixed-recipe reduction over ascending-row entries,
  // deterministic for any thread count.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          const size_t k0 = storage_->col_ptr[c];
          y[c] = simd::GatherDotF32(csc_values + k0, rows + k0, udata,
                                    storage_->col_ptr[c + 1] - k0);
        }
      },
      GrainForWork(storage_->nnz() / (n == 0 ? 1 : n)), pool_);
}

Matrix SparseTransportKernelF32::ScaleToPlan(const Vector& u,
                                             const Vector& v) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n, 0.0);
  const auto& row_ptr = storage_->row_ptr;
  const auto& col_index = storage_->col_index;
  const auto& values = storage_->values;
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            plan(r, col_index[k]) =
                (ur * static_cast<double>(values[k])) * v[col_index[k]];
          }
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

SparseMatrix SparseTransportKernelF32::ScaleToPlanSparse(
    const Vector& u, const Vector& v) const {
  assert(u.size() == storage_->rows && v.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* vdata = v.begin();
  std::vector<double> out(storage_->nnz());
  const size_t m = storage_->rows;
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          simd::GatherScaledHadamardF32(u[r], values + k0, cols + k0, vdata,
                                        out.data() + k0, row_ptr[r + 1] - k0);
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
  return SparseMatrix::FromParts(m, storage_->cols, storage_->row_ptr,
                                 storage_->col_index, std::move(out));
}

std::vector<double> SparseTransportKernelF32::GatherSupportCosts(
    const CostProvider& cost) const {
  assert(cost.rows() == storage_->rows && cost.cols() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  std::vector<double> out(storage_->nnz());
  for (size_t r = 0; r < storage_->rows; ++r) {
    const size_t k0 = row_ptr[r];
    cost.Gather(r, cols + k0, row_ptr[r + 1] - k0, out.data() + k0);
  }
  return out;
}

double SparseTransportKernelF32::SupportTransportCost(
    const std::vector<double>& support_costs, const Vector& u,
    const Vector& v) const {
  const size_t m = storage_->rows;
  assert(support_costs.size() == storage_->nnz());
  assert(u.size() == m && v.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* costs = support_costs.data();
  const double* vdata = v.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const size_t k0 = row_ptr[r];
          s += ur * simd::GatherDot3F32(costs + k0, values + k0, cols + k0,
                                        vdata, row_ptr[r + 1] - k0);
        }
        return s;
      },
      pool_);
}

double SparseTransportKernelF32::TransportCost(const CostProvider& cost,
                                               const Vector& u,
                                               const Vector& v) const {
  const size_t m = storage_->rows;
  assert(cost.rows() == m && cost.cols() == storage_->cols);
  assert(u.size() == m && v.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* vdata = v.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> crow(storage_->max_row_nnz);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          cost.Gather(r, cols + k0, len, crow.data());
          s += ur * simd::GatherDot3F32(crow.data(), values + k0, cols + k0,
                                        vdata, len);
        }
        return s;
      },
      pool_);
}

// ------------------------------------------------------------- Dense log --

DenseLogTransportKernelF32::DenseLogTransportKernelF32(
    std::shared_ptr<const DenseKernelStorageF32> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

DenseLogTransportKernelF32 DenseLogTransportKernelF32::FromCost(
    const Matrix& cost, double epsilon, size_t num_threads, ThreadPool* pool) {
  return FromCost(MatrixCostProvider(cost), epsilon, num_threads, pool);
}

DenseLogTransportKernelF32 DenseLogTransportKernelF32::FromCost(
    const CostProvider& cost, double epsilon, size_t num_threads,
    ThreadPool* pool) {
  assert(epsilon > 0.0);
  const DenseLogTransportKernel f64 =
      DenseLogTransportKernel::FromCost(cost, epsilon, num_threads, pool);
  return DenseLogTransportKernelF32(
      std::make_shared<const DenseKernelStorageF32>(f64.log_kernel()),
      num_threads, pool);
}

void DenseLogTransportKernelF32::LogApply(const Vector& lv,
                                          Vector& out) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(lv.size() == n);
  if (out.size() != m) out = Vector(m);
  const float* data = storage_->values.data();
  const double* lvdata = lv.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const float* row = data + r * n;
          const double mx = simd::AddMaxReduceF32(row, lvdata, n);
          out[r] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::AddExpSumShiftedF32(row, lvdata,
                                                                 mx, n));
        }
      },
      GrainForWork(n), pool_);
}

void DenseLogTransportKernelF32::LogApplyTranspose(const Vector& lu,
                                                   Vector& out) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(lu.size() == m);
  if (out.size() != n) out = Vector(n);
  const float* data = storage_->values.data();
  // Same column-strip two-pass walk as the f64 dense log kernel.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        std::vector<double> mx(std::min(c1 - c0, kCostStreamTileCols));
        std::vector<double> acc(mx.size());
        for (size_t s0 = c0; s0 < c1; s0 += mx.size()) {
          const size_t s1 = std::min(c1, s0 + mx.size());
          const size_t w = s1 - s0;
          std::fill(mx.begin(), mx.begin() + w, kNegInf);
          std::fill(acc.begin(), acc.begin() + w, 0.0);
          for (size_t r = 0; r < m; ++r) {
            if (lu[r] == kNegInf) continue;
            simd::AddMaxAccumulateF32(lu[r], data + r * n + s0, mx.data(), w);
          }
          for (size_t r = 0; r < m; ++r) {
            if (lu[r] == kNegInf) continue;
            simd::AddExpSumAccumulateF32(lu[r], data + r * n + s0, mx.data(),
                                         acc.data(), w);
          }
          for (size_t c = 0; c < w; ++c) {
            out[s0 + c] =
                mx[c] == kNegInf ? kNegInf : mx[c] + std::log(acc[c]);
          }
        }
      },
      GrainForWork(m), pool_);
}

Matrix DenseLogTransportKernelF32::ScaleToPlan(const Vector& lu,
                                               const Vector& lv) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(lu.size() == m && lv.size() == n);
  Matrix plan(m, n);
  const float* data = storage_->values.data();
  const double* lvdata = lv.begin();
  double* out = plan.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          simd::AddExpWriteF32(lu[r], data + r * n, lvdata, out + r * n, n);
        }
      },
      GrainForWork(n), pool_);
  return plan;
}

double DenseLogTransportKernelF32::TransportCost(const CostProvider& cost,
                                                 const Vector& lu,
                                                 const Vector& lv) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(cost.rows() == m && cost.cols() == n);
  assert(lu.size() == m && lv.size() == n);
  const float* data = storage_->values.data();
  const double* lvdata = lv.begin();
  const Matrix* dense_cost = cost.AsMatrix();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> w(std::min(n, kCostStreamTileCols));
        std::vector<double> ctile(dense_cost == nullptr ? w.size() : 0);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          double row_sum = 0.0;
          for (size_t c0 = 0; c0 < n; c0 += w.size()) {
            const size_t c1 = std::min(n, c0 + w.size());
            simd::AddExpWriteF32(lu[r], data + r * n + c0, lvdata + c0,
                                 w.data(), c1 - c0);
            const double* crow;
            if (dense_cost != nullptr) {
              crow = dense_cost->data().data() + r * n + c0;
            } else {
              cost.Fill(r, c0, c1, ctile.data());
              crow = ctile.data();
            }
            row_sum += simd::Dot(crow, w.data(), c1 - c0);
          }
          s += row_sum;
        }
        return s;
      },
      pool_);
}

// ------------------------------------------------------------ Sparse log --

SparseLogTransportKernelF32::SparseLogTransportKernelF32(
    std::shared_ptr<const SparseKernelStorageF32> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

SparseLogTransportKernelF32 SparseLogTransportKernelF32::FromCost(
    const Matrix& cost, double epsilon, double cutoff, size_t num_threads,
    ThreadPool* pool) {
  return FromCost(MatrixCostProvider(cost), epsilon, cutoff, num_threads,
                  pool);
}

SparseLogTransportKernelF32 SparseLogTransportKernelF32::FromCost(
    const CostProvider& cost, double epsilon, double cutoff,
    size_t num_threads, ThreadPool* pool) {
  assert(epsilon > 0.0);
  const SparseKernelStorage f64(
      SparseMatrix::LogGibbsKernel(cost, epsilon, cutoff));
  return SparseLogTransportKernelF32(
      std::make_shared<const SparseKernelStorageF32>(f64), num_threads, pool);
}

void SparseLogTransportKernelF32::LogApply(const Vector& lv,
                                           Vector& out) const {
  const size_t m = storage_->rows;
  assert(lv.size() == storage_->cols);
  if (out.size() != m) out = Vector(m);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* lvdata = lv.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          const double mx =
              simd::GatherAddMaxReduceF32(values + k0, cols + k0, lvdata,
                                          len);
          out[r] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::GatherAddExpSumShiftedF32(
                                 values + k0, cols + k0, lvdata, mx, len));
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
}

void SparseLogTransportKernelF32::LogApplyTranspose(const Vector& lu,
                                                    Vector& out) const {
  const size_t n = storage_->cols;
  assert(lu.size() == storage_->rows);
  if (out.size() != n) out = Vector(n);
  const float* csc_values = storage_->csc_values.data();
  const size_t* rows = storage_->csc_row_index.data();
  const double* ludata = lu.begin();
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          const size_t k0 = storage_->col_ptr[c];
          const size_t len = storage_->col_ptr[c + 1] - k0;
          const double mx =
              simd::GatherAddMaxReduceF32(csc_values + k0, rows + k0, ludata,
                                          len);
          out[c] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::GatherAddExpSumShiftedF32(
                                 csc_values + k0, rows + k0, ludata, mx,
                                 len));
        }
      },
      GrainForWork(storage_->nnz() / (n == 0 ? 1 : n)), pool_);
}

Matrix SparseLogTransportKernelF32::ScaleToPlan(const Vector& lu,
                                                const Vector& lv) const {
  const size_t m = storage_->rows;
  const size_t n = storage_->cols;
  assert(lu.size() == m && lv.size() == n);
  Matrix plan(m, n, 0.0);
  const auto& row_ptr = storage_->row_ptr;
  const auto& col_index = storage_->col_index;
  const auto& values = storage_->values;
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double lur = lu[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            plan(r, col_index[k]) = simd::PolyExp(
                static_cast<double>(values[k]) + lv[col_index[k]] + lur);
          }
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

SparseMatrix SparseLogTransportKernelF32::ScaleToPlanSparse(
    const Vector& lu, const Vector& lv) const {
  assert(lu.size() == storage_->rows && lv.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  std::vector<double> out(storage_->nnz());
  const size_t m = storage_->rows;
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double lur = lu[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            out[k] = simd::PolyExp(static_cast<double>(values[k]) +
                                   lv[cols[k]] + lur);
          }
        }
      },
      GrainForWork(storage_->nnz() / (m == 0 ? 1 : m)), pool_);
  return SparseMatrix::FromParts(m, storage_->cols, storage_->row_ptr,
                                 storage_->col_index, std::move(out));
}

std::vector<double> SparseLogTransportKernelF32::GatherSupportCosts(
    const CostProvider& cost) const {
  assert(cost.rows() == storage_->rows && cost.cols() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  std::vector<double> out(storage_->nnz());
  for (size_t r = 0; r < storage_->rows; ++r) {
    const size_t k0 = row_ptr[r];
    cost.Gather(r, cols + k0, row_ptr[r + 1] - k0, out.data() + k0);
  }
  return out;
}

double SparseLogTransportKernelF32::SupportTransportCost(
    const std::vector<double>& support_costs, const Vector& lu,
    const Vector& lv) const {
  const size_t m = storage_->rows;
  assert(support_costs.size() == storage_->nnz());
  assert(lu.size() == m && lv.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* costs = support_costs.data();
  const double* lvdata = lv.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          const size_t k0 = row_ptr[r];
          s += RowLogCostF32(costs + k0, values + k0, cols + k0, lvdata,
                             lu[r], row_ptr[r + 1] - k0);
        }
        return s;
      },
      pool_);
}

double SparseLogTransportKernelF32::TransportCost(const CostProvider& cost,
                                                  const Vector& lu,
                                                  const Vector& lv) const {
  const size_t m = storage_->rows;
  assert(cost.rows() == m && cost.cols() == storage_->cols);
  assert(lu.size() == m && lv.size() == storage_->cols);
  const auto& row_ptr = storage_->row_ptr;
  const size_t* cols = storage_->col_index.data();
  const float* values = storage_->values.data();
  const double* lvdata = lv.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> crow(storage_->max_row_nnz);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          cost.Gather(r, cols + k0, len, crow.data());
          s += RowLogCostF32(crow.data(), values + k0, cols + k0, lvdata,
                             lu[r], len);
        }
        return s;
      },
      pool_);
}

}  // namespace otclean::linalg
