// NEON tier of the SIMD dispatch (aarch64, where NEON is baseline — no
// extra compiler flags needed). A null table on other architectures.

#include "linalg/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackNeon {
  using V = float64x2_t;
  static constexpr size_t kLanes = 2;
  static V Zero() { return vdupq_n_f64(0.0); }
  static V Set1(double x) { return vdupq_n_f64(x); }
  static V Load(const double* p) { return vld1q_f64(p); }
  static void Store(double* p, V v) { vst1q_f64(p, v); }
  static V Add(V a, V b) { return vaddq_f64(a, b); }
  static V Mul(V a, V b) { return vmulq_f64(a, b); }
  static V Fma(V a, V b, V acc) { return vfmaq_f64(acc, a, b); }
  static V Gather(const double* base, const size_t* idx) {
    // NEON has no gather instruction; two scalar lane loads.
    const float64x1_t lo = vld1_f64(base + idx[0]);
    const float64x1_t hi = vld1_f64(base + idx[1]);
    return vcombine_f64(lo, hi);
  }
  static double ReduceAdd(V v) {
    return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
  }
};

}  // namespace

namespace detail {
const SimdOps* GetNeonOps() {
  static const SimdOps ops = impl::MakeOps<PackNeon>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // not aarch64: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetNeonOps() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
