// NEON tier of the SIMD dispatch (aarch64, where NEON is baseline — no
// extra compiler flags needed). A null table on other architectures.

#include "linalg/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackNeon {
  using V = float64x2_t;
  static constexpr size_t kLanes = 2;
  static V Zero() { return vdupq_n_f64(0.0); }
  static V Set1(double x) { return vdupq_n_f64(x); }
  static V Load(const double* p) { return vld1q_f64(p); }
  static void Store(double* p, V v) { vst1q_f64(p, v); }
  static V Add(V a, V b) { return vaddq_f64(a, b); }
  static V Mul(V a, V b) { return vmulq_f64(a, b); }
  static V Fma(V a, V b, V acc) { return vfmaq_f64(acc, a, b); }
  static V Gather(const double* base, const size_t* idx) {
    // NEON has no gather instruction; two scalar lane loads.
    const float64x1_t lo = vld1_f64(base + idx[0]);
    const float64x1_t hi = vld1_f64(base + idx[1]);
    return vcombine_f64(lo, hi);
  }
  static V LoadF32(const float* p) {
    // vcvt_f64_f32 is exact: every float is representable as a double.
    return vcvt_f64_f32(vld1_f32(p));
  }
  static V GatherF32(const float* base, const size_t* idx) {
    float32x2_t f = vdup_n_f32(base[idx[0]]);
    f = vset_lane_f32(base[idx[1]], f, 1);
    return vcvt_f64_f32(f);
  }
  static double ReduceAdd(V v) {
    return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
  }
  static V Sub(V a, V b) { return vsubq_f64(a, b); }
  static V Div(V a, V b) { return vdivq_f64(a, b); }
  static V Max(V a, V b) { return vmaxq_f64(a, b); }
  static V Min(V a, V b) { return vminq_f64(a, b); }
  static V Floor(V v) { return vrndmq_f64(v); }
  static double ReduceMax(V v) { return vmaxvq_f64(v); }
  static V ScaleByPow2(V x, V n) {
    // n is integral and in [-1021, 1023] (simd_exp.h clamps), so adding
    // n << 52 to the exponent field is an exact power-of-two scale.
    const int64x2_t bits = vshlq_n_s64(vcvtnq_s64_f64(n), 52);
    return vreinterpretq_f64_s64(
        vaddq_s64(vreinterpretq_s64_f64(x), bits));
  }
  static V ZeroIfBelow(V v, V x, V lim) {
    return vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(v), vcgeq_f64(x, lim)));
  }
};

}  // namespace

namespace detail {
const SimdOps* GetNeonOps() {
  static const SimdOps ops = impl::MakeOps<PackNeon>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // not aarch64: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetNeonOps() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
