#ifndef OTCLEAN_LINALG_TRANSPORT_KERNEL_F32_H_
#define OTCLEAN_LINALG_TRANSPORT_KERNEL_F32_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/cost_provider.h"
#include "linalg/log_transport_kernel.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/transport_kernel.h"
#include "linalg/vector.h"

namespace otclean::linalg {

class ThreadPool;

/// Float-storage backings of the four transport kernels — the
/// Precision::kFloat32 tier (precision.h). Each storage is built by
/// NARROWING an already-built f64 kernel: values round once to float
/// (round-to-nearest, relative error ≤ 2^-24) and, for sparse storage, the
/// kept-set is decided in DOUBLE before narrowing — so the f32 and f64
/// kernels of one (cost, ε, cutoff) always share a sparsity pattern, and
/// support checks / plan structures carry over unchanged.
///
/// The kernel classes below implement the same abstract TransportKernel /
/// LogTransportKernel interfaces the solver engine is written against, so
/// the scaling loop, FastOTClean's outer loop, and the cache wiring are
/// precision-blind. All arithmetic accumulates in double through the f32
/// SIMD lanes of simd.h; outputs (potentials, plans, costs) are double.
///
/// Determinism: per (SIMD tier, f32) the f64 guarantees carry over —
/// bit-identical across thread counts, pool modes, and cache hit/miss.
/// The one dropped f64 contract is dense == sparse-at-cutoff-0 for
/// ApplyTranspose: the f32 sparse transpose uses the lane-parallel
/// GatherDotF32 instead of the sequential chain (see simd.h), which is
/// exactly where the f32 sparse_applyT speedup comes from.

/// Dense row-major float storage of K = e^{−C/ε} or L = −C/ε.
struct DenseKernelStorageF32 {
  DenseKernelStorageF32() = default;
  /// Narrows a built f64 kernel matrix.
  explicit DenseKernelStorageF32(const Matrix& kernel);

  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> values;

  size_t size() const { return values.size(); }
  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return values.size() * sizeof(float); }
};

/// CSR float storage (plus float CSC mirror) of a truncated kernel.
/// Structure (row_ptr/col_index/col_ptr/row order) is copied verbatim from
/// the f64 storage; only the values narrow.
struct SparseKernelStorageF32 {
  SparseKernelStorageF32() = default;
  /// Narrows a built f64 storage (CSR + mirror).
  explicit SparseKernelStorageF32(const SparseKernelStorage& storage);

  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> row_ptr;
  std::vector<size_t> col_index;
  std::vector<float> values;
  // CSC mirror, ascending-row order within each column.
  std::vector<size_t> col_ptr;
  std::vector<size_t> csc_row_index;
  std::vector<float> csc_values;
  /// Longest stored CSR row — sizes per-block gather scratch.
  size_t max_row_nnz = 0;

  size_t nnz() const { return values.size(); }
  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return (row_ptr.size() + col_index.size() + col_ptr.size() +
            csc_row_index.size()) *
               sizeof(size_t) +
           (values.size() + csc_values.size()) * sizeof(float);
  }
};

/// Dense f32 linear kernel (K in float, double accumulators).
class DenseTransportKernelF32 final : public TransportKernel {
 public:
  explicit DenseTransportKernelF32(
      std::shared_ptr<const DenseKernelStorageF32> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds (f64) then narrows K = e^{−C/ε}.
  static DenseTransportKernelF32 FromCost(const Matrix& cost, double epsilon,
                                          size_t num_threads = 0,
                                          ThreadPool* pool = nullptr);

  size_t rows() const override { return storage_->rows; }
  size_t cols() const override { return storage_->cols; }
  size_t nnz() const override { return storage_->size(); }
  size_t num_threads() const override { return threads_; }

  void Apply(const Vector& v, Vector& y) const override;
  void ApplyTranspose(const Vector& u, Vector& y) const override;
  Matrix ScaleToPlan(const Vector& u, const Vector& v) const override;
  using TransportKernel::TransportCost;
  double TransportCost(const CostProvider& cost, const Vector& u,
                       const Vector& v) const override;

  /// The underlying storage handle, for sharing (core::SolveCache).
  const std::shared_ptr<const DenseKernelStorageF32>& shared_storage() const {
    return storage_;
  }

 private:
  std::shared_ptr<const DenseKernelStorageF32> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

/// CSR f32 linear kernel. ApplyTranspose gathers lane-parallel over the
/// float CSC mirror — the f32 tier's sparse_applyT win.
class SparseTransportKernelF32 final : public TransportKernel {
 public:
  explicit SparseTransportKernelF32(
      std::shared_ptr<const SparseKernelStorageF32> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds the f64 truncated kernel (kept-set decided in double), then
  /// narrows. Cutoff semantics match SparseTransportKernel::FromCost.
  static SparseTransportKernelF32 FromCost(const CostProvider& cost,
                                           double epsilon, double cutoff,
                                           size_t num_threads = 0,
                                           ThreadPool* pool = nullptr);
  static SparseTransportKernelF32 FromCost(const Matrix& cost, double epsilon,
                                           double cutoff,
                                           size_t num_threads = 0,
                                           ThreadPool* pool = nullptr);

  size_t rows() const override { return storage_->rows; }
  size_t cols() const override { return storage_->cols; }
  size_t nnz() const override { return storage_->nnz(); }
  size_t num_threads() const override { return threads_; }

  void Apply(const Vector& v, Vector& y) const override;
  void ApplyTranspose(const Vector& u, Vector& y) const override;
  Matrix ScaleToPlan(const Vector& u, const Vector& v) const override;
  using TransportKernel::TransportCost;
  double TransportCost(const CostProvider& cost, const Vector& u,
                       const Vector& v) const override;

  /// The scaled plan in CSR form (double values), inheriting the kernel's
  /// sparsity pattern.
  SparseMatrix ScaleToPlanSparse(const Vector& u, const Vector& v) const;

  /// Streams the provider once; C at every stored entry, aligned with the
  /// CSR values — same contract as SparseTransportKernel.
  std::vector<double> GatherSupportCosts(const CostProvider& cost) const;

  /// TransportCost from a GatherSupportCosts cache; bit-identical to the
  /// streaming CostProvider overload.
  double SupportTransportCost(const std::vector<double>& support_costs,
                              const Vector& u, const Vector& v) const;

  const std::shared_ptr<const SparseKernelStorageF32>& shared_storage() const {
    return storage_;
  }

 private:
  std::shared_ptr<const SparseKernelStorageF32> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

/// Dense f32 log kernel (L in float, LSE accumulated in double).
class DenseLogTransportKernelF32 final : public LogTransportKernel {
 public:
  explicit DenseLogTransportKernelF32(
      std::shared_ptr<const DenseKernelStorageF32> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds (f64, streamed — the raw cost never materializes) then narrows
  /// L = −C/ε.
  static DenseLogTransportKernelF32 FromCost(const CostProvider& cost,
                                             double epsilon,
                                             size_t num_threads = 0,
                                             ThreadPool* pool = nullptr);
  static DenseLogTransportKernelF32 FromCost(const Matrix& cost,
                                             double epsilon,
                                             size_t num_threads = 0,
                                             ThreadPool* pool = nullptr);

  size_t rows() const override { return storage_->rows; }
  size_t cols() const override { return storage_->cols; }
  size_t nnz() const override { return storage_->size(); }
  size_t num_threads() const override { return threads_; }

  void LogApply(const Vector& lv, Vector& out) const override;
  void LogApplyTranspose(const Vector& lu, Vector& out) const override;
  Matrix ScaleToPlan(const Vector& lu, const Vector& lv) const override;
  double TransportCost(const CostProvider& cost, const Vector& lu,
                       const Vector& lv) const override;

  const std::shared_ptr<const DenseKernelStorageF32>& shared_storage() const {
    return storage_;
  }

 private:
  std::shared_ptr<const DenseKernelStorageF32> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

/// CSR f32 log kernel; missing entries are −inf ("impossible move") as in
/// the f64 sparse log kernel, and the kept-set matches the linear one.
class SparseLogTransportKernelF32 final : public LogTransportKernel {
 public:
  explicit SparseLogTransportKernelF32(
      std::shared_ptr<const SparseKernelStorageF32> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds the f64 truncated log-kernel (kept-set in double), narrows.
  /// `cutoff` is in kernel space as for SparseLogTransportKernel::FromCost.
  static SparseLogTransportKernelF32 FromCost(const CostProvider& cost,
                                              double epsilon, double cutoff,
                                              size_t num_threads = 0,
                                              ThreadPool* pool = nullptr);
  static SparseLogTransportKernelF32 FromCost(const Matrix& cost,
                                              double epsilon, double cutoff,
                                              size_t num_threads = 0,
                                              ThreadPool* pool = nullptr);

  size_t rows() const override { return storage_->rows; }
  size_t cols() const override { return storage_->cols; }
  size_t nnz() const override { return storage_->nnz(); }
  size_t num_threads() const override { return threads_; }

  void LogApply(const Vector& lv, Vector& out) const override;
  void LogApplyTranspose(const Vector& lu, Vector& out) const override;
  Matrix ScaleToPlan(const Vector& lu, const Vector& lv) const override;
  double TransportCost(const CostProvider& cost, const Vector& lu,
                       const Vector& lv) const override;

  /// The scaled plan in CSR form (double values), kernel's pattern.
  SparseMatrix ScaleToPlanSparse(const Vector& lu, const Vector& lv) const;

  std::vector<double> GatherSupportCosts(const CostProvider& cost) const;
  double SupportTransportCost(const std::vector<double>& support_costs,
                              const Vector& lu, const Vector& lv) const;

  const std::shared_ptr<const SparseKernelStorageF32>& shared_storage() const {
    return storage_;
  }

 private:
  std::shared_ptr<const SparseKernelStorageF32> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_TRANSPORT_KERNEL_F32_H_
