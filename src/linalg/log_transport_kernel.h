#ifndef OTCLEAN_LINALG_LOG_TRANSPORT_KERNEL_H_
#define OTCLEAN_LINALG_LOG_TRANSPORT_KERNEL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/cost_provider.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/transport_kernel.h"
#include "linalg/vector.h"

namespace otclean::linalg {

class ThreadPool;

/// The log-domain counterpart of TransportKernel: a storage-agnostic view
/// of the LOG Gibbs kernel L = −C/ε, exposing the two primitives the
/// log-domain Sinkhorn loop needs —
///
///   LogApply:          out_i = log Σ_j e^{L_ij + lv_j}   (= log (K·v)_i)
///   LogApplyTranspose: out_j = log Σ_i e^{L_ij + lu_i}   (= log (Kᵀ·u)_j)
///
/// — each computed as a *streamed log-sum-exp*: one max pass, one shifted
/// exp-sum pass, never an intermediate e^x array. Where the linear-domain
/// kernel stores K = e^{−C/ε} (and under/overflows at small ε), the log
/// kernel stores L itself, so iterating on log-potentials stays exact for
/// any ε the cost's dynamic range allows. Built from a CostProvider:
/// the dense backing materializes only L (the same rows×cols the dense
/// linear kernel pays for K) and the CSR backing stores L at the
/// truncation's kept entries — a truncated log-domain solve is O(nnz)
/// end to end, the raw cost matrix never exists in either case.
///
/// Conventions shared with the solver: a log-potential of −inf means "no
/// mass" (the linear domain's u_i = 0); rows/columns whose every
/// contribution is −inf (or, sparse, with no stored entries) produce
/// −inf, and ScaleToPlan maps −inf to exactly 0.
///
/// Threading and determinism mirror TransportKernel: primitives run
/// row-blocked (column-blocked for the transpose) on ParallelFor with
/// owned output ranges, dispatching on the same borrowed ThreadPool, so
/// pooled/spawned/serial runs at any thread count are bit-identical. The
/// SIMD layer's log-domain contract (simd.h) adds: max passes are
/// bit-identical across every tier, exp-sums differ only by lane-sum
/// rounding, and every tier evaluates one shared e^x polynomial
/// (simd_exp.h).
class LogTransportKernel {
 public:
  virtual ~LogTransportKernel() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;
  /// Structural nonzeros of the log-kernel (rows·cols for dense storage).
  virtual size_t nnz() const = 0;
  /// Resolved worker count used by the primitives (>= 1).
  virtual size_t num_threads() const = 0;

  /// out_i = LSE_j(L_ij + lv_j). Resizes out.
  virtual void LogApply(const Vector& lv, Vector& out) const = 0;
  /// out_j = LSE_i(L_ij + lu_i). Resizes out.
  virtual void LogApplyTranspose(const Vector& lu, Vector& out) const = 0;
  /// π_ij = e^{lu_i + L_ij + lv_j}, materialized densely; −inf potentials
  /// (and entries below the double range) give exactly 0.
  virtual Matrix ScaleToPlan(const Vector& lu, const Vector& lv) const = 0;
  /// ⟨C, π⟩ = Σ_{(i,j) in support} C_ij·e^{lu_i + L_ij + lv_j}, with the
  /// cost *streamed* from the provider — no dense rows×cols cost needed.
  virtual double TransportCost(const CostProvider& cost, const Vector& lu,
                               const Vector& lv) const = 0;
};

/// Dense row-major storage of L = −C/ε.
class DenseLogTransportKernel final : public LogTransportKernel {
 public:
  /// Wraps an already-built log-kernel matrix (entries −C/ε).
  explicit DenseLogTransportKernel(Matrix log_kernel, size_t num_threads = 0,
                                   ThreadPool* pool = nullptr);

  /// Shares an immutable storage built elsewhere (no copy, no rebuild).
  explicit DenseLogTransportKernel(std::shared_ptr<const Matrix> log_kernel,
                                   size_t num_threads = 0,
                                   ThreadPool* pool = nullptr);

  /// Builds L = −C/ε from a dense cost.
  static DenseLogTransportKernel FromCost(const Matrix& cost, double epsilon,
                                          size_t num_threads = 0,
                                          ThreadPool* pool = nullptr);

  /// Same, streaming the provider tile-by-tile into L — the raw cost
  /// matrix is never materialized (only L is, it being the dense backing).
  static DenseLogTransportKernel FromCost(const CostProvider& cost,
                                          double epsilon,
                                          size_t num_threads = 0,
                                          ThreadPool* pool = nullptr);

  size_t rows() const override { return log_kernel_->rows(); }
  size_t cols() const override { return log_kernel_->cols(); }
  size_t nnz() const override { return log_kernel_->size(); }
  size_t num_threads() const override { return threads_; }

  void LogApply(const Vector& lv, Vector& out) const override;
  void LogApplyTranspose(const Vector& lu, Vector& out) const override;
  Matrix ScaleToPlan(const Vector& lu, const Vector& lv) const override;
  double TransportCost(const CostProvider& cost, const Vector& lu,
                       const Vector& lv) const override;

  const Matrix& log_kernel() const { return *log_kernel_; }
  /// The underlying storage handle, for sharing (core::SolveCache).
  const std::shared_ptr<const Matrix>& shared_log_kernel() const {
    return log_kernel_;
  }

 private:
  std::shared_ptr<const Matrix> log_kernel_;
  size_t threads_;
  ThreadPool* pool_;
};

/// CSR storage of L = −C/ε at a truncation's kept entries — the same
/// kept-set as the linear SparseTransportKernel at the same cutoff
/// (SparseMatrix::LogGibbsKernel), so CheckTruncatedKernelSupport and the
/// plan's sparsity pattern carry over unchanged. Entries not stored are
/// −inf ("impossible move"), the log-domain analog of the linear kernel's
/// structural zeros. Construction builds the shared CscMirror so the
/// transpose LSE is a deterministic gather.
class SparseLogTransportKernel final : public LogTransportKernel {
 public:
  explicit SparseLogTransportKernel(SparseMatrix log_kernel,
                                    size_t num_threads = 0,
                                    ThreadPool* pool = nullptr);

  /// Shares an immutable storage built elsewhere (no copy, no rebuild —
  /// the CSC mirror comes along for free).
  explicit SparseLogTransportKernel(
      std::shared_ptr<const SparseKernelStorage> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds the truncated log-kernel from a streamed cost; `cutoff` is in
  /// *kernel* space exactly as for SparseTransportKernel::FromCost (drop
  /// where e^{−C/ε} < cutoff), cutoff 0 keeps every entry.
  static SparseLogTransportKernel FromCost(const CostProvider& cost,
                                           double epsilon, double cutoff,
                                           size_t num_threads = 0,
                                           ThreadPool* pool = nullptr);
  static SparseLogTransportKernel FromCost(const Matrix& cost, double epsilon,
                                           double cutoff,
                                           size_t num_threads = 0,
                                           ThreadPool* pool = nullptr);

  size_t rows() const override { return kern().rows(); }
  size_t cols() const override { return kern().cols(); }
  size_t nnz() const override { return kern().nnz(); }
  size_t num_threads() const override { return threads_; }

  void LogApply(const Vector& lv, Vector& out) const override;
  void LogApplyTranspose(const Vector& lu, Vector& out) const override;
  Matrix ScaleToPlan(const Vector& lu, const Vector& lv) const override;
  double TransportCost(const CostProvider& cost, const Vector& lu,
                       const Vector& lv) const override;

  /// The scaled plan in CSR form, inheriting the kernel's sparsity
  /// pattern: values e^{lu_i + L_ik + lv_{col(k)}} (exact 0 below range).
  SparseMatrix ScaleToPlanSparse(const Vector& lu, const Vector& lv) const;

  /// Streams the provider once and returns C at every stored entry,
  /// aligned with log_kernel().values() — the same O(nnz) outer-loop
  /// cache contract as SparseTransportKernel::GatherSupportCosts.
  std::vector<double> GatherSupportCosts(const CostProvider& cost) const;

  /// TransportCost from a GatherSupportCosts cache; bit-identical to the
  /// streaming CostProvider overload.
  double SupportTransportCost(const std::vector<double>& support_costs,
                              const Vector& lu, const Vector& lv) const;

  const SparseMatrix& log_kernel() const { return kern(); }
  /// The underlying storage handle, for sharing (core::SolveCache).
  const std::shared_ptr<const SparseKernelStorage>& shared_storage() const {
    return storage_;
  }

 private:
  const SparseMatrix& kern() const { return storage_->matrix; }
  const CscMirror& csc() const { return storage_->csc; }

  std::shared_ptr<const SparseKernelStorage> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_LOG_TRANSPORT_KERNEL_H_
