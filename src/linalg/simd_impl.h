#ifndef OTCLEAN_LINALG_SIMD_IMPL_H_
#define OTCLEAN_LINALG_SIMD_IMPL_H_
// otclean-lint: internal-header — implementation detail of the SIMD layer,
// included only by its ISA translation units; deliberately NOT exported
// through the umbrella header.

// Lane-pack-templated bodies of every SIMD primitive. Each ISA translation
// unit (simd_avx2.cc, simd_avx512.cc, simd_neon.cc) defines a Pack type —
//
//   struct Pack {
//     using V = <vector register type>;
//     static constexpr size_t kLanes;
//     static V Zero();
//     static V Set1(double);
//     static V Load(const double*);            // unaligned
//     static V LoadF32(const float*);          // unaligned, widen to double
//     static void Store(double*, V);           // unaligned
//     static V Add(V, V);
//     static V Mul(V, V);
//     static V Fma(V a, V b, V acc);           // acc + a·b, single rounding
//     static V Gather(const double* base, const size_t* idx);
//     static V GatherF32(const float* base, const size_t* idx);  // widen
//     static double ReduceAdd(V);              // fixed-order lane sum
//   };
//
// — and instantiates these templates into its detail::SimdOps table.
// Writing every body exactly once is what guarantees the contiguous and
// gather variants of a reduction share the same accumulation recipe (see
// the determinism contract in simd.h): GatherDot with identity indices is
// bit-identical to Dot because both ARE the same template, modulo the load.
//
// The f32 kernel-tier variants are the SAME templates instantiated with a
// float element type for the kernel operand: LoadAs/GatherAs below resolve
// to the widening LoadF32/GatherF32, float→double conversion is exact, and
// everything downstream of the load is untouched — so each f32 primitive
// inherits its f64 twin's accumulation recipe and determinism contract by
// construction rather than by parallel maintenance.
//
// Scalar tails use std::fma so the last partial elements round the same
// way the vector body does.

// Log-domain primitives additionally require:
//
//     static V Sub(V, V);
//     static V Div(V, V);
//     static V Max(V, V);
//     static V Min(V, V);
//     static V Floor(V);
//     static double ReduceMax(V);              // order-free lane max
//     static V ScaleByPow2(V x, V n);          // x·2^n, n integral doubles
//                                              // (exponent-field add; x and
//                                              // the result must be normal)
//     static V ZeroIfBelow(V v, V x, V lim);   // lanes of v where x ≥ lim,
//                                              // else exact 0 (NaN x → 0)
//
// which ExpPdImpl composes into the shared PolyExp polynomial of
// simd_exp.h — same coefficients, same fma/mul/div sequence — so a lane
// of any vector tier's exp is bit-identical to the scalar PolyExp.

#include <cmath>
#include <cstddef>
#include <limits>

#include "linalg/simd_exp.h"

namespace otclean::linalg::simd::impl {

// Element-type-directed loads: double pointers take the plain lane load,
// float pointers take the widening one. The widening conversion is exact,
// so a body instantiated at float differs from its double twin ONLY in how
// many bytes the load touches.
template <class P>
inline typename P::V LoadAs(const double* p) {
  return P::Load(p);
}
template <class P>
inline typename P::V LoadAs(const float* p) {
  return P::LoadF32(p);
}
template <class P>
inline typename P::V GatherAs(const double* base, const size_t* idx) {
  return P::Gather(base, idx);
}
template <class P>
inline typename P::V GatherAs(const float* base, const size_t* idx) {
  return P::GatherF32(base, idx);
}

template <class P, class TA = double>
double DotImpl(const TA* a, const double* b, size_t n) {
  constexpr size_t L = P::kLanes;
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Fma(LoadAs<P>(a + i), P::Load(b + i), s0);
    s1 = P::Fma(LoadAs<P>(a + i + L), P::Load(b + i + L), s1);
    s2 = P::Fma(LoadAs<P>(a + i + 2 * L), P::Load(b + i + 2 * L), s2);
    s3 = P::Fma(LoadAs<P>(a + i + 3 * L), P::Load(b + i + 3 * L), s3);
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) s = P::Fma(LoadAs<P>(a + i), P::Load(b + i), s);
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) r = std::fma(static_cast<double>(a[i]), b[i], r);
  return r;
}

template <class P, class TV = double>
double GatherDotImpl(const TV* vals, const size_t* idx, const double* x,
                     size_t n) {
  constexpr size_t L = P::kLanes;
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Fma(LoadAs<P>(vals + i), P::Gather(x, idx + i), s0);
    s1 = P::Fma(LoadAs<P>(vals + i + L), P::Gather(x, idx + i + L), s1);
    s2 = P::Fma(LoadAs<P>(vals + i + 2 * L), P::Gather(x, idx + i + 2 * L),
                s2);
    s3 = P::Fma(LoadAs<P>(vals + i + 3 * L), P::Gather(x, idx + i + 3 * L),
                s3);
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Fma(LoadAs<P>(vals + i), P::Gather(x, idx + i), s);
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) {
    r = std::fma(static_cast<double>(vals[i]), x[idx[i]], r);
  }
  return r;
}

template <class P, class TB = double>
double Dot3Impl(const double* a, const TB* b, const double* c, size_t n) {
  constexpr size_t L = P::kLanes;
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Fma(P::Mul(P::Load(a + i), LoadAs<P>(b + i)), P::Load(c + i), s0);
    s1 = P::Fma(P::Mul(P::Load(a + i + L), LoadAs<P>(b + i + L)),
                P::Load(c + i + L), s1);
    s2 = P::Fma(P::Mul(P::Load(a + i + 2 * L), LoadAs<P>(b + i + 2 * L)),
                P::Load(c + i + 2 * L), s2);
    s3 = P::Fma(P::Mul(P::Load(a + i + 3 * L), LoadAs<P>(b + i + 3 * L)),
                P::Load(c + i + 3 * L), s3);
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Fma(P::Mul(P::Load(a + i), LoadAs<P>(b + i)), P::Load(c + i), s);
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) {
    r = std::fma(a[i] * static_cast<double>(b[i]), c[i], r);
  }
  return r;
}

template <class P, class TB = double>
double GatherDot3Impl(const double* a, const TB* b, const size_t* idx,
                      const double* x, size_t n) {
  constexpr size_t L = P::kLanes;
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Fma(P::Mul(P::Load(a + i), LoadAs<P>(b + i)),
                P::Gather(x, idx + i), s0);
    s1 = P::Fma(P::Mul(P::Load(a + i + L), LoadAs<P>(b + i + L)),
                P::Gather(x, idx + i + L), s1);
    s2 = P::Fma(P::Mul(P::Load(a + i + 2 * L), LoadAs<P>(b + i + 2 * L)),
                P::Gather(x, idx + i + 2 * L), s2);
    s3 = P::Fma(P::Mul(P::Load(a + i + 3 * L), LoadAs<P>(b + i + 3 * L)),
                P::Gather(x, idx + i + 3 * L), s3);
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Fma(P::Mul(P::Load(a + i), LoadAs<P>(b + i)),
               P::Gather(x, idx + i), s);
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) {
    r = std::fma(a[i] * static_cast<double>(b[i]), x[idx[i]], r);
  }
  return r;
}

template <class P>
double SumImpl(const double* a, size_t n) {
  constexpr size_t L = P::kLanes;
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Add(s0, P::Load(a + i));
    s1 = P::Add(s1, P::Load(a + i + L));
    s2 = P::Add(s2, P::Load(a + i + 2 * L));
    s3 = P::Add(s3, P::Load(a + i + 3 * L));
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) s = P::Add(s, P::Load(a + i));
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) r += a[i];
  return r;
}

// Elementwise bodies use Mul-then-Add (NOT Fma): a separately rounded
// multiply and add per element is exactly what the scalar tier computes,
// so these primitives are bit-identical across every tier — the property
// the dense/sparse ApplyTranspose exactness rests on (see simd.h).

template <class P, class TA = double>
void AxpyImpl(double c, const TA* a, double* y, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V cv = P::Set1(c);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(y + i, P::Add(P::Load(y + i), P::Mul(cv, LoadAs<P>(a + i))));
  }
  for (; i < n; ++i) y[i] += c * static_cast<double>(a[i]);
}

template <class P, class TB = double>
void AxpyRowsImpl(const double* coeffs, const TB* base, size_t row_stride,
                  size_t num_rows, double* y, size_t n) {
  constexpr size_t L = P::kLanes;
  size_t r = 0;
  // Two rows per pass: one load+store of y per pair instead of per row.
  // Each y element still accumulates the rows in ascending order with one
  // rounded multiply and add per row — the blocking is traffic-only.
  // Zero-coefficient rows are skipped INDIVIDUALLY, exactly as the scalar
  // tier skips them: a mixed pair degrades to a single-row Axpy, so tiers
  // agree bit for bit even on non-finite row data (0·inf never happens in
  // any tier).
  for (; r + 2 <= num_rows; r += 2) {
    if (coeffs[r] == 0.0 || coeffs[r + 1] == 0.0) {
      if (coeffs[r] != 0.0) {
        AxpyImpl<P>(coeffs[r], base + r * row_stride, y, n);
      } else if (coeffs[r + 1] != 0.0) {
        AxpyImpl<P>(coeffs[r + 1], base + (r + 1) * row_stride, y, n);
      }
      continue;
    }
    const typename P::V c0 = P::Set1(coeffs[r]);
    const typename P::V c1 = P::Set1(coeffs[r + 1]);
    const TB* a0 = base + r * row_stride;
    const TB* a1 = base + (r + 1) * row_stride;
    size_t i = 0;
    for (; i + L <= n; i += L) {
      typename P::V acc = P::Load(y + i);
      acc = P::Add(acc, P::Mul(c0, LoadAs<P>(a0 + i)));
      acc = P::Add(acc, P::Mul(c1, LoadAs<P>(a1 + i)));
      P::Store(y + i, acc);
    }
    for (; i < n; ++i) {
      y[i] += coeffs[r] * static_cast<double>(a0[i]);
      y[i] += coeffs[r + 1] * static_cast<double>(a1[i]);
    }
  }
  if (r < num_rows && coeffs[r] != 0.0) {
    AxpyImpl<P>(coeffs[r], base + r * row_stride, y, n);
  }
}

template <class P>
void HadamardImpl(const double* a, const double* b, double* out, size_t n) {
  constexpr size_t L = P::kLanes;
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(out + i, P::Mul(P::Load(a + i), P::Load(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

template <class P, class TA = double>
void ScaledHadamardImpl(double s, const TA* a, const double* b, double* out,
                        size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sv = P::Set1(s);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(out + i, P::Mul(P::Mul(sv, LoadAs<P>(a + i)), P::Load(b + i)));
  }
  for (; i < n; ++i) out[i] = (s * static_cast<double>(a[i])) * b[i];
}

template <class P, class TV = double>
void GatherScaledHadamardImpl(double s, const TV* vals, const size_t* idx,
                              const double* x, double* out, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sv = P::Set1(s);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(out + i,
             P::Mul(P::Mul(sv, LoadAs<P>(vals + i)), P::Gather(x, idx + i)));
  }
  for (; i < n; ++i) out[i] = (s * static_cast<double>(vals[i])) * x[idx[i]];
}

// ------------------------------------------------------------ log-domain --

/// Lane-pack PolyExp (simd_exp.h): identical clamp → argument reduction →
/// rational polynomial → power-of-two scale sequence, one lane per
/// element. See the domain contract in simd_exp.h.
template <class P>
typename P::V ExpPdImpl(typename P::V x) {
  using V = typename P::V;
  const V lo = P::Set1(kPolyExpLo);
  const V xc = P::Max(P::Min(x, P::Set1(kPolyExpHi)), lo);
  const V n = P::Floor(P::Fma(xc, P::Set1(kPolyExpLog2E), P::Set1(0.5)));
  V r = P::Fma(n, P::Set1(-kPolyExpC1), xc);
  r = P::Fma(n, P::Set1(-kPolyExpC2), r);
  const V rr = P::Mul(r, r);
  V p = P::Set1(kPolyExpP0);
  p = P::Fma(p, rr, P::Set1(kPolyExpP1));
  p = P::Fma(p, rr, P::Set1(kPolyExpP2));
  const V rp = P::Mul(r, p);
  V q = P::Set1(kPolyExpQ0);
  q = P::Fma(q, rr, P::Set1(kPolyExpQ1));
  q = P::Fma(q, rr, P::Set1(kPolyExpQ2));
  q = P::Fma(q, rr, P::Set1(kPolyExpQ3));
  const V e = P::Div(rp, P::Sub(q, rp));
  const V res = P::ScaleByPow2(P::Fma(e, P::Set1(2.0), P::Set1(1.0)), n);
  return P::ZeroIfBelow(res, x, lo);  // underflow, -inf, NaN → exact 0
}

// The max reductions reuse the 4-accumulator blocking of the sums. Max is
// exactly associative and commutative (no NaN inputs by contract), so —
// unlike the sums — any blocking gives the bit-identical result the
// scalar tier computes.

template <class P>
double MaxReduceImpl(const double* a, size_t n) {
  constexpr size_t L = P::kLanes;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  typename P::V s0 = P::Set1(kNegInf), s1 = s0, s2 = s0, s3 = s0;
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Max(s0, P::Load(a + i));
    s1 = P::Max(s1, P::Load(a + i + L));
    s2 = P::Max(s2, P::Load(a + i + 2 * L));
    s3 = P::Max(s3, P::Load(a + i + 3 * L));
  }
  typename P::V s = P::Max(P::Max(s0, s1), P::Max(s2, s3));
  for (; i + L <= n; i += L) s = P::Max(s, P::Load(a + i));
  double r = P::ReduceMax(s);
  for (; i < n; ++i) r = a[i] > r ? a[i] : r;
  return r;
}

template <class P, class TA = double>
double AddMaxReduceImpl(const TA* a, const double* b, size_t n) {
  constexpr size_t L = P::kLanes;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  typename P::V s0 = P::Set1(kNegInf), s1 = s0, s2 = s0, s3 = s0;
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Max(s0, P::Add(LoadAs<P>(a + i), P::Load(b + i)));
    s1 = P::Max(s1, P::Add(LoadAs<P>(a + i + L), P::Load(b + i + L)));
    s2 = P::Max(s2, P::Add(LoadAs<P>(a + i + 2 * L), P::Load(b + i + 2 * L)));
    s3 = P::Max(s3, P::Add(LoadAs<P>(a + i + 3 * L), P::Load(b + i + 3 * L)));
  }
  typename P::V s = P::Max(P::Max(s0, s1), P::Max(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Max(s, P::Add(LoadAs<P>(a + i), P::Load(b + i)));
  }
  double r = P::ReduceMax(s);
  for (; i < n; ++i) {
    const double t = static_cast<double>(a[i]) + b[i];
    r = t > r ? t : r;
  }
  return r;
}

template <class P, class TV = double>
double GatherAddMaxReduceImpl(const TV* vals, const size_t* idx,
                              const double* x, size_t n) {
  constexpr size_t L = P::kLanes;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  typename P::V s0 = P::Set1(kNegInf), s1 = s0, s2 = s0, s3 = s0;
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Max(s0, P::Add(LoadAs<P>(vals + i), P::Gather(x, idx + i)));
    s1 = P::Max(s1,
                P::Add(LoadAs<P>(vals + i + L), P::Gather(x, idx + i + L)));
    s2 = P::Max(s2, P::Add(LoadAs<P>(vals + i + 2 * L),
                           P::Gather(x, idx + i + 2 * L)));
    s3 = P::Max(s3, P::Add(LoadAs<P>(vals + i + 3 * L),
                           P::Gather(x, idx + i + 3 * L)));
  }
  typename P::V s = P::Max(P::Max(s0, s1), P::Max(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Max(s, P::Add(LoadAs<P>(vals + i), P::Gather(x, idx + i)));
  }
  double r = P::ReduceMax(s);
  for (; i < n; ++i) {
    const double t = static_cast<double>(vals[i]) + x[idx[i]];
    r = t > r ? t : r;
  }
  return r;
}

template <class P>
double ExpSumShiftedImpl(const double* a, double shift, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sh = P::Set1(shift);
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Add(s0, ExpPdImpl<P>(P::Sub(P::Load(a + i), sh)));
    s1 = P::Add(s1, ExpPdImpl<P>(P::Sub(P::Load(a + i + L), sh)));
    s2 = P::Add(s2, ExpPdImpl<P>(P::Sub(P::Load(a + i + 2 * L), sh)));
    s3 = P::Add(s3, ExpPdImpl<P>(P::Sub(P::Load(a + i + 3 * L), sh)));
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Add(s, ExpPdImpl<P>(P::Sub(P::Load(a + i), sh)));
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) r += PolyExp(a[i] - shift);
  return r;
}

template <class P, class TA = double>
double AddExpSumShiftedImpl(const TA* a, const double* b, double shift,
                            size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sh = P::Set1(shift);
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Add(s0, ExpPdImpl<P>(
                        P::Sub(P::Add(LoadAs<P>(a + i), P::Load(b + i)), sh)));
    s1 = P::Add(s1,
                ExpPdImpl<P>(P::Sub(
                    P::Add(LoadAs<P>(a + i + L), P::Load(b + i + L)), sh)));
    s2 = P::Add(s2,
                ExpPdImpl<P>(P::Sub(
                    P::Add(LoadAs<P>(a + i + 2 * L), P::Load(b + i + 2 * L)),
                    sh)));
    s3 = P::Add(s3,
                ExpPdImpl<P>(P::Sub(
                    P::Add(LoadAs<P>(a + i + 3 * L), P::Load(b + i + 3 * L)),
                    sh)));
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Add(s,
               ExpPdImpl<P>(P::Sub(P::Add(LoadAs<P>(a + i), P::Load(b + i)),
                                   sh)));
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) r += PolyExp(static_cast<double>(a[i]) + b[i] - shift);
  return r;
}

template <class P, class TV = double>
double GatherAddExpSumShiftedImpl(const TV* vals, const size_t* idx,
                                  const double* x, double shift, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sh = P::Set1(shift);
  typename P::V s0 = P::Zero(), s1 = P::Zero(), s2 = P::Zero(),
                s3 = P::Zero();
  size_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    s0 = P::Add(s0, ExpPdImpl<P>(P::Sub(
                        P::Add(LoadAs<P>(vals + i), P::Gather(x, idx + i)),
                        sh)));
    s1 = P::Add(s1, ExpPdImpl<P>(P::Sub(P::Add(LoadAs<P>(vals + i + L),
                                               P::Gather(x, idx + i + L)),
                                        sh)));
    s2 = P::Add(s2, ExpPdImpl<P>(P::Sub(P::Add(LoadAs<P>(vals + i + 2 * L),
                                               P::Gather(x, idx + i + 2 * L)),
                                        sh)));
    s3 = P::Add(s3, ExpPdImpl<P>(P::Sub(P::Add(LoadAs<P>(vals + i + 3 * L),
                                               P::Gather(x, idx + i + 3 * L)),
                                        sh)));
  }
  typename P::V s = P::Add(P::Add(s0, s1), P::Add(s2, s3));
  for (; i + L <= n; i += L) {
    s = P::Add(s, ExpPdImpl<P>(P::Sub(
                      P::Add(LoadAs<P>(vals + i), P::Gather(x, idx + i)),
                      sh)));
  }
  double r = P::ReduceAdd(s);
  for (; i < n; ++i) {
    r += PolyExp(static_cast<double>(vals[i]) + x[idx[i]] - shift);
  }
  return r;
}

template <class P, class TA = double>
void AddMaxAccumulateImpl(double c, const TA* a, double* mx, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V cv = P::Set1(c);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(mx + i,
             P::Max(P::Load(mx + i), P::Add(LoadAs<P>(a + i), cv)));
  }
  for (; i < n; ++i) {
    const double t = static_cast<double>(a[i]) + c;
    if (t > mx[i]) mx[i] = t;
  }
}

template <class P, class TA = double>
void AddExpSumAccumulateImpl(double c, const TA* a, const double* shift,
                             double* acc, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V cv = P::Set1(c);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    const typename P::V t =
        P::Sub(P::Add(LoadAs<P>(a + i), cv), P::Load(shift + i));
    P::Store(acc + i, P::Add(P::Load(acc + i), ExpPdImpl<P>(t)));
  }
  for (; i < n; ++i) {
    acc[i] += PolyExp(static_cast<double>(a[i]) + c - shift[i]);
  }
}

template <class P, class TA = double>
void AddExpWriteImpl(double shift, const TA* a, const double* b,
                     double* out, size_t n) {
  constexpr size_t L = P::kLanes;
  const typename P::V sh = P::Set1(shift);
  size_t i = 0;
  for (; i + L <= n; i += L) {
    P::Store(out + i, ExpPdImpl<P>(P::Add(
                          P::Add(LoadAs<P>(a + i), P::Load(b + i)), sh)));
  }
  for (; i < n; ++i) out[i] = PolyExp(static_cast<double>(a[i]) + b[i] + shift);
}

/// The table every ISA TU exports, filled from one Pack type.
template <class P>
detail::SimdOps MakeOps() {
  detail::SimdOps ops;
  ops.dot = DotImpl<P>;
  ops.dot3 = Dot3Impl<P>;
  ops.sum = SumImpl<P>;
  ops.gather_dot = GatherDotImpl<P>;
  ops.gather_dot3 = GatherDot3Impl<P>;
  ops.axpy = AxpyImpl<P>;
  ops.axpy_rows = AxpyRowsImpl<P>;
  ops.hadamard = HadamardImpl<P>;
  ops.scaled_hadamard = ScaledHadamardImpl<P>;
  ops.gather_scaled_hadamard = GatherScaledHadamardImpl<P>;
  ops.max_reduce = MaxReduceImpl<P>;
  ops.add_max_reduce = AddMaxReduceImpl<P>;
  ops.gather_add_max_reduce = GatherAddMaxReduceImpl<P>;
  ops.exp_sum_shifted = ExpSumShiftedImpl<P>;
  ops.add_exp_sum_shifted = AddExpSumShiftedImpl<P>;
  ops.gather_add_exp_sum_shifted = GatherAddExpSumShiftedImpl<P>;
  ops.add_max_accumulate = AddMaxAccumulateImpl<P>;
  ops.add_exp_sum_accumulate = AddExpSumAccumulateImpl<P>;
  ops.add_exp_write = AddExpWriteImpl<P>;
  // f32 kernel tier: the same templates at float, widening through
  // LoadF32/GatherF32.
  ops.dot_f32 = DotImpl<P, float>;
  ops.dot3_f32 = Dot3Impl<P, float>;
  ops.gather_dot_f32 = GatherDotImpl<P, float>;
  ops.gather_dot3_f32 = GatherDot3Impl<P, float>;
  ops.axpy_rows_f32 = AxpyRowsImpl<P, float>;
  ops.scaled_hadamard_f32 = ScaledHadamardImpl<P, float>;
  ops.gather_scaled_hadamard_f32 = GatherScaledHadamardImpl<P, float>;
  ops.add_max_reduce_f32 = AddMaxReduceImpl<P, float>;
  ops.add_exp_sum_shifted_f32 = AddExpSumShiftedImpl<P, float>;
  ops.gather_add_max_reduce_f32 = GatherAddMaxReduceImpl<P, float>;
  ops.gather_add_exp_sum_shifted_f32 = GatherAddExpSumShiftedImpl<P, float>;
  ops.add_max_accumulate_f32 = AddMaxAccumulateImpl<P, float>;
  ops.add_exp_sum_accumulate_f32 = AddExpSumAccumulateImpl<P, float>;
  ops.add_exp_write_f32 = AddExpWriteImpl<P, float>;
  return ops;
}

}  // namespace otclean::linalg::simd::impl

#endif  // OTCLEAN_LINALG_SIMD_IMPL_H_
