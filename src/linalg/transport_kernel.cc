#include "linalg/transport_kernel.h"

#include <cassert>
#include <cmath>

#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"

namespace otclean::linalg {

// ----------------------------------------------------------------- Dense --

DenseTransportKernel::DenseTransportKernel(Matrix kernel, size_t num_threads,
                                           ThreadPool* pool)
    : kernel_(std::move(kernel)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

DenseTransportKernel DenseTransportKernel::FromCost(const Matrix& cost,
                                                    double epsilon,
                                                    size_t num_threads,
                                                    ThreadPool* pool) {
  assert(epsilon > 0.0);
  return DenseTransportKernel(cost.GibbsKernel(epsilon), num_threads, pool);
}

void DenseTransportKernel::Apply(const Vector& v, Vector& y) const {
  const size_t m = kernel_.rows();
  const size_t n = kernel_.cols();
  assert(v.size() == n);
  if (y.size() != m) y = Vector(m);
  const double* data = kernel_.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double* row = data + r * n;
          double s = 0.0;
          for (size_t c = 0; c < n; ++c) s += row[c] * v[c];
          y[r] = s;
        }
      },
      GrainForWork(n), pool_);
}

void DenseTransportKernel::ApplyTranspose(const Vector& u, Vector& y) const {
  const size_t m = kernel_.rows();
  const size_t n = kernel_.cols();
  assert(u.size() == m);
  if (y.size() != n) y = Vector(n);
  const double* data = kernel_.data().data();
  // Column-blocked: each worker owns output range [c0, c1) and streams the
  // rows in order, so every y[c] accumulates over ascending i for any
  // thread count.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) y[c] = 0.0;
        for (size_t r = 0; r < m; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const double* row = data + r * n;
          for (size_t c = c0; c < c1; ++c) y[c] += row[c] * ur;
        }
      },
      GrainForWork(m), pool_);
}

Matrix DenseTransportKernel::ScaleToPlan(const Vector& u,
                                         const Vector& v) const {
  const size_t m = kernel_.rows();
  const size_t n = kernel_.cols();
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n);
  const double* data = kernel_.data().data();
  double* out = plan.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          const double* row = data + r * n;
          double* orow = out + r * n;
          for (size_t c = 0; c < n; ++c) orow[c] = ur * row[c] * v[c];
        }
      },
      GrainForWork(n), pool_);
  return plan;
}

double DenseTransportKernel::TransportCost(const Matrix& cost, const Vector& u,
                                           const Vector& v) const {
  const size_t m = kernel_.rows();
  const size_t n = kernel_.cols();
  assert(cost.rows() == m && cost.cols() == n);
  assert(u.size() == m && v.size() == n);
  const double* kdata = kernel_.data().data();
  const double* cdata = cost.data().data();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const double* krow = kdata + r * n;
          const double* crow = cdata + r * n;
          for (size_t c = 0; c < n; ++c) s += crow[c] * ur * krow[c] * v[c];
        }
        return s;
      },
      pool_);
}

// ---------------------------------------------------------------- Sparse --

SparseTransportKernel::SparseTransportKernel(SparseMatrix kernel,
                                             size_t num_threads,
                                             ThreadPool* pool)
    : kernel_(std::move(kernel)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {
  BuildTranspose();
}

SparseTransportKernel SparseTransportKernel::FromCost(const Matrix& cost,
                                                      double epsilon,
                                                      double cutoff,
                                                      size_t num_threads,
                                                      ThreadPool* pool) {
  assert(epsilon > 0.0);
  return SparseTransportKernel(SparseMatrix::GibbsKernel(cost, epsilon, cutoff),
                               num_threads, pool);
}

void SparseTransportKernel::BuildTranspose() {
  const size_t n = kernel_.cols();
  const auto& row_ptr = kernel_.row_ptr();
  const auto& col_index = kernel_.col_index();
  const auto& values = kernel_.values();
  col_ptr_.assign(n + 1, 0);
  for (size_t c : col_index) ++col_ptr_[c + 1];
  for (size_t c = 0; c < n; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_index_.resize(values.size());
  csc_values_.resize(values.size());
  std::vector<size_t> fill(col_ptr_.begin(), col_ptr_.end() - 1);
  // Row-order scan keeps each column's entries sorted by ascending row.
  for (size_t r = 0; r < kernel_.rows(); ++r) {
    for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const size_t dst = fill[col_index[k]]++;
      row_index_[dst] = r;
      csc_values_[dst] = values[k];
    }
  }
}

void SparseTransportKernel::Apply(const Vector& v, Vector& y) const {
  const size_t m = kernel_.rows();
  assert(v.size() == kernel_.cols());
  if (y.size() != m) y = Vector(m);
  const auto& row_ptr = kernel_.row_ptr();
  const auto& col_index = kernel_.col_index();
  const auto& values = kernel_.values();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          double s = 0.0;
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            s += values[k] * v[col_index[k]];
          }
          y[r] = s;
        }
      },
      GrainForWork(kernel_.nnz() / (m == 0 ? 1 : m)), pool_);
}

void SparseTransportKernel::ApplyTranspose(const Vector& u, Vector& y) const {
  const size_t n = kernel_.cols();
  assert(u.size() == kernel_.rows());
  if (y.size() != n) y = Vector(n);
  // Gather over the CSC mirror: each output y[c] is owned by one worker and
  // sums its column's entries in ascending-row order.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          double s = 0.0;
          for (size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
            s += csc_values_[k] * u[row_index_[k]];
          }
          y[c] = s;
        }
      },
      GrainForWork(kernel_.nnz() / (n == 0 ? 1 : n)), pool_);
}

Matrix SparseTransportKernel::ScaleToPlan(const Vector& u,
                                          const Vector& v) const {
  const size_t m = kernel_.rows();
  const size_t n = kernel_.cols();
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n, 0.0);
  const auto& row_ptr = kernel_.row_ptr();
  const auto& col_index = kernel_.col_index();
  const auto& values = kernel_.values();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            plan(r, col_index[k]) = ur * values[k] * v[col_index[k]];
          }
        }
      },
      GrainForWork(kernel_.nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

SparseMatrix SparseTransportKernel::ScaleToPlanSparse(const Vector& u,
                                                      const Vector& v) const {
  assert(u.size() == kernel_.rows() && v.size() == kernel_.cols());
  SparseMatrix plan = kernel_;
  const auto& row_ptr = kernel_.row_ptr();
  const auto& col_index = kernel_.col_index();
  const auto& values = kernel_.values();
  auto& out = plan.values();
  const size_t m = kernel_.rows();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            out[k] = ur * values[k] * v[col_index[k]];
          }
        }
      },
      GrainForWork(kernel_.nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

double SparseTransportKernel::TransportCost(const Matrix& cost, const Vector& u,
                                            const Vector& v) const {
  const size_t m = kernel_.rows();
  assert(cost.rows() == m && cost.cols() == kernel_.cols());
  assert(u.size() == m && v.size() == kernel_.cols());
  const auto& row_ptr = kernel_.row_ptr();
  const auto& col_index = kernel_.col_index();
  const auto& values = kernel_.values();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            const size_t c = col_index[k];
            s += cost(r, c) * ur * values[k] * v[c];
          }
        }
        return s;
      },
      pool_);
}

}  // namespace otclean::linalg
