#include "linalg/transport_kernel.h"

#include <cassert>
#include <cmath>

#include "linalg/parallel_for.h"
#include "linalg/simd.h"
#include "linalg/thread_pool.h"

namespace otclean::linalg {

CscMirror::CscMirror(const SparseMatrix& csr) {
  const size_t n = csr.cols();
  const auto& row_ptr = csr.row_ptr();
  const auto& col_index = csr.col_index();
  const auto& csr_values = csr.values();
  col_ptr.assign(n + 1, 0);
  for (size_t c : col_index) ++col_ptr[c + 1];
  for (size_t c = 0; c < n; ++c) col_ptr[c + 1] += col_ptr[c];
  row_index.resize(csr_values.size());
  values.resize(csr_values.size());
  std::vector<size_t> fill(col_ptr.begin(), col_ptr.end() - 1);
  // Row-order scan keeps each column's entries sorted by ascending row.
  for (size_t r = 0; r < csr.rows(); ++r) {
    max_row_nnz = std::max(max_row_nnz, row_ptr[r + 1] - row_ptr[r]);
    for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const size_t dst = fill[col_index[k]]++;
      row_index[dst] = r;
      values[dst] = csr_values[k];
    }
  }
}

// ----------------------------------------------------------------- Dense --

DenseTransportKernel::DenseTransportKernel(Matrix kernel, size_t num_threads,
                                           ThreadPool* pool)
    : DenseTransportKernel(std::make_shared<const Matrix>(std::move(kernel)),
                           num_threads, pool) {}

DenseTransportKernel::DenseTransportKernel(std::shared_ptr<const Matrix> kernel,
                                           size_t num_threads, ThreadPool* pool)
    : kernel_(std::move(kernel)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

DenseTransportKernel DenseTransportKernel::FromCost(const Matrix& cost,
                                                    double epsilon,
                                                    size_t num_threads,
                                                    ThreadPool* pool) {
  assert(epsilon > 0.0);
  return DenseTransportKernel(cost.GibbsKernel(epsilon), num_threads, pool);
}

void DenseTransportKernel::Apply(const Vector& v, Vector& y) const {
  const size_t m = kernel_->rows();
  const size_t n = kernel_->cols();
  assert(v.size() == n);
  if (y.size() != m) y = Vector(m);
  const double* data = kernel_->data().data();
  const double* vdata = v.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          y[r] = simd::Dot(data + r * n, vdata, n);
        }
      },
      GrainForWork(n), pool_);
}

void DenseTransportKernel::ApplyTranspose(const Vector& u, Vector& y) const {
  const size_t m = kernel_->rows();
  const size_t n = kernel_->cols();
  assert(u.size() == m);
  if (y.size() != n) y = Vector(n);
  const double* data = kernel_->data().data();
  // Column-blocked: each worker owns output range [c0, c1) and streams the
  // rows in ascending order (AxpyRows: two rows per pass in the vector
  // tiers, traffic-only blocking), so every y[c] accumulates the same
  // mul+add sequence for any thread count and any tier.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        const size_t w = c1 - c0;
        double* out = y.begin() + c0;
        for (size_t c = 0; c < w; ++c) out[c] = 0.0;
        simd::AxpyRows(u.begin(), data + c0, n, m, out, w);
      },
      GrainForWork(m), pool_);
}

Matrix DenseTransportKernel::ScaleToPlan(const Vector& u,
                                         const Vector& v) const {
  const size_t m = kernel_->rows();
  const size_t n = kernel_->cols();
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n);
  const double* data = kernel_->data().data();
  const double* vdata = v.begin();
  double* out = plan.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          simd::ScaledHadamard(u[r], data + r * n, vdata, out + r * n, n);
        }
      },
      GrainForWork(n), pool_);
  return plan;
}

double DenseTransportKernel::TransportCost(const CostProvider& cost,
                                           const Vector& u,
                                           const Vector& v) const {
  const size_t m = kernel_->rows();
  const size_t n = kernel_->cols();
  assert(cost.rows() == m && cost.cols() == n);
  assert(u.size() == m && v.size() == n);
  const double* kdata = kernel_->data().data();
  const double* vdata = v.begin();
  if (const Matrix* dense_cost = cost.AsMatrix()) {
    // Zero-copy fast path: whole-row triple dots against the in-memory
    // cost.
    const double* cdata = dense_cost->data().data();
    return BlockedReduce(
        m, threads_,
        [&](size_t r0, size_t r1) {
          double s = 0.0;
          for (size_t r = r0; r < r1; ++r) {
            const double ur = u[r];
            if (ur == 0.0) continue;
            s += ur * simd::Dot3(cdata + r * n, kdata + r * n, vdata, n);
          }
          return s;
        },
        pool_);
  }
  // Streamed path: pull cost rows tile-by-tile into an L1-sized scratch.
  // Each reduction block owns its scratch, so workers never share tiles.
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> tile(std::min(n, kCostStreamTileCols));
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          double row_sum = 0.0;
          for (size_t c0 = 0; c0 < n; c0 += tile.size()) {
            const size_t c1 = std::min(n, c0 + tile.size());
            cost.Fill(r, c0, c1, tile.data());
            row_sum +=
                simd::Dot3(tile.data(), kdata + r * n + c0, vdata + c0,
                           c1 - c0);
          }
          s += ur * row_sum;
        }
        return s;
      },
      pool_);
}

// ---------------------------------------------------------------- Sparse --

SparseTransportKernel::SparseTransportKernel(SparseMatrix kernel,
                                             size_t num_threads,
                                             ThreadPool* pool)
    : SparseTransportKernel(
          std::make_shared<const SparseKernelStorage>(std::move(kernel)),
          num_threads, pool) {}

SparseTransportKernel::SparseTransportKernel(
    std::shared_ptr<const SparseKernelStorage> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

SparseTransportKernel SparseTransportKernel::FromCost(const Matrix& cost,
                                                      double epsilon,
                                                      double cutoff,
                                                      size_t num_threads,
                                                      ThreadPool* pool) {
  return FromCost(MatrixCostProvider(cost), epsilon, cutoff, num_threads,
                  pool);
}

SparseTransportKernel SparseTransportKernel::FromCost(const CostProvider& cost,
                                                      double epsilon,
                                                      double cutoff,
                                                      size_t num_threads,
                                                      ThreadPool* pool) {
  assert(epsilon > 0.0);
  return SparseTransportKernel(SparseMatrix::GibbsKernel(cost, epsilon, cutoff),
                               num_threads, pool);
}

void SparseTransportKernel::Apply(const Vector& v, Vector& y) const {
  const size_t m = kern().rows();
  assert(v.size() == kern().cols());
  if (y.size() != m) y = Vector(m);
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* vdata = v.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          y[r] = simd::GatherDot(values + k0, cols + k0, vdata,
                                 row_ptr[r + 1] - k0);
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
}

void SparseTransportKernel::ApplyTranspose(const Vector& u, Vector& y) const {
  const size_t n = kern().cols();
  assert(u.size() == kern().rows());
  if (y.size() != n) y = Vector(n);
  const double* csc_values = csc().values.data();
  const size_t* rows = csc().row_index.data();
  const double* udata = u.begin();
  // Gather over the CSC mirror: each output y[c] is owned by one worker
  // and accumulates its column's entries in strictly ascending-row order
  // (GatherDotSequential, one multiply-accumulate per entry) — the same
  // per-element chain the dense ApplyTranspose applies, so at cutoff zero
  // sparse and dense transpose-applies are bit-identical.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          const size_t k0 = csc().col_ptr[c];
          y[c] = simd::GatherDotSequential(csc_values + k0, rows + k0, udata,
                                           csc().col_ptr[c + 1] - k0);
        }
      },
      GrainForWork(kern().nnz() / (n == 0 ? 1 : n)), pool_);
}

Matrix SparseTransportKernel::ScaleToPlan(const Vector& u,
                                          const Vector& v) const {
  const size_t m = kern().rows();
  const size_t n = kern().cols();
  assert(u.size() == m && v.size() == n);
  Matrix plan(m, n, 0.0);
  const auto& row_ptr = kern().row_ptr();
  const auto& col_index = kern().col_index();
  const auto& values = kern().values();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            plan(r, col_index[k]) = (ur * values[k]) * v[col_index[k]];
          }
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

SparseMatrix SparseTransportKernel::ScaleToPlanSparse(const Vector& u,
                                                      const Vector& v) const {
  assert(u.size() == kern().rows() && v.size() == kern().cols());
  SparseMatrix plan = kern();
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* vdata = v.begin();
  double* out = plan.values().data();
  const size_t m = kern().rows();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          simd::GatherScaledHadamard(u[r], values + k0, cols + k0, vdata,
                                     out + k0, row_ptr[r + 1] - k0);
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

std::vector<double> SparseTransportKernel::GatherSupportCosts(
    const CostProvider& cost) const {
  assert(cost.rows() == kern().rows() && cost.cols() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  std::vector<double> out(kern().nnz());
  for (size_t r = 0; r < kern().rows(); ++r) {
    const size_t k0 = row_ptr[r];
    cost.Gather(r, cols + k0, row_ptr[r + 1] - k0, out.data() + k0);
  }
  return out;
}

double SparseTransportKernel::SupportTransportCost(
    const std::vector<double>& support_costs, const Vector& u,
    const Vector& v) const {
  const size_t m = kern().rows();
  assert(support_costs.size() == kern().nnz());
  assert(u.size() == m && v.size() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* costs = support_costs.data();
  const double* vdata = v.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const size_t k0 = row_ptr[r];
          s += ur * simd::GatherDot3(costs + k0, values + k0, cols + k0,
                                     vdata, row_ptr[r + 1] - k0);
        }
        return s;
      },
      pool_);
}

double SparseTransportKernel::TransportCost(const CostProvider& cost,
                                            const Vector& u,
                                            const Vector& v) const {
  const size_t m = kern().rows();
  assert(cost.rows() == m && cost.cols() == kern().cols());
  assert(u.size() == m && v.size() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* vdata = v.begin();
  // O(nnz) cost evaluations: the provider is asked only for the kernel's
  // support. Each reduction block owns a max-row-nnz scratch for the
  // gathered cost entries.
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> crow(csc().max_row_nnz);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          const double ur = u[r];
          if (ur == 0.0) continue;
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          cost.Gather(r, cols + k0, len, crow.data());
          s += ur * simd::GatherDot3(crow.data(), values + k0, cols + k0,
                                     vdata, len);
        }
        return s;
      },
      pool_);
}

}  // namespace otclean::linalg
