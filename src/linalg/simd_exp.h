#ifndef OTCLEAN_LINALG_SIMD_EXP_H_
#define OTCLEAN_LINALG_SIMD_EXP_H_
// otclean-lint: internal-header — implementation detail of the SIMD layer,
// included only by its ISA translation units; deliberately NOT exported
// through the umbrella header.

// The ONE exponential every SIMD tier evaluates — scalar reference
// included. The log-domain LSE reductions (simd.h: ExpSumShifted and
// friends) need e^x inside their inner loops, where libm's exp() is both
// slow and unvectorizable; this header defines the shared Cephes-style
// rational approximation (~1 ulp over the reduced range) as plain scalar
// code, and simd_impl.h instantiates the identical operation sequence on
// lane packs. Because every tier — scalar included — evaluates the same
// polynomial with the same fma/multiply/divide structure, per-element
// results are bit-identical across tiers; only the *sum* order of the
// surrounding reductions differs (the usual few-ULP lane-accumulator
// reordering).
//
// Domain contract (shared by PolyExp and the vector ExpPd template):
//  - x < kPolyExpLo (~-708.4, where e^x leaves the normal double range),
//    x = -inf, and x = NaN all return EXACT 0. The flush makes
//    exp(-inf) = 0 without a branch in the vector tiers — exactly the
//    "impossible move carries no mass" convention the log-domain kernels
//    need — at the price of losing subnormal outputs (< ~3e-308).
//  - x > kPolyExpHi (709) clamps to e^709 ≈ 8.2e307. The log-sum-exp
//    callers always shift by the max first, so their inputs are <= 0 and
//    never hit this clamp.

#include <cmath>
#include <cstdint>
#include <cstring>

namespace otclean::linalg::simd {

// Clamps chosen so the power-of-two scale at the end stays strictly in
// the NORMAL double range (exponent field in [1, 2046]) for every
// admissible n — that is what makes the vector tiers' integer
// exponent-add bit-exact against std::ldexp: e^-708 ≈ 3.3e-308 > DBL_MIN
// and e^709 ≈ 8.2e307 < DBL_MAX.
inline constexpr double kPolyExpLo = -708.0;
inline constexpr double kPolyExpHi = 709.0;
inline constexpr double kPolyExpLog2E = 1.4426950408889634073599;
// ln2 split for extended-precision argument reduction.
inline constexpr double kPolyExpC1 = 6.93145751953125E-1;
inline constexpr double kPolyExpC2 = 1.42860682030941723212E-6;
// Cephes exp() rational coefficients: e^r = 1 + 2r·P(r²)/(Q(r²) − r·P(r²)).
inline constexpr double kPolyExpP0 = 1.26177193074810590878E-4;
inline constexpr double kPolyExpP1 = 3.02994407707441961300E-2;
inline constexpr double kPolyExpP2 = 9.99999999999999999910E-1;
inline constexpr double kPolyExpQ0 = 3.00198505138664455042E-6;
inline constexpr double kPolyExpQ1 = 2.52448340349684104192E-3;
inline constexpr double kPolyExpQ2 = 2.27265548208155028766E-1;
inline constexpr double kPolyExpQ3 = 2.00000000000000000005E0;

/// e^x under the domain contract above. The scalar tier's exp, and the
/// per-lane semantics of the vector tiers' ExpPd — kept in exact
/// operation-for-operation correspondence with simd_impl.h's template.
inline double PolyExp(double x) {
  if (!(x >= kPolyExpLo)) return 0.0;  // underflow, -inf and NaN flush to 0
  const double xc = x < kPolyExpHi ? x : kPolyExpHi;
  const double n = std::floor(std::fma(xc, kPolyExpLog2E, 0.5));
  double r = std::fma(n, -kPolyExpC1, xc);
  r = std::fma(n, -kPolyExpC2, r);
  const double rr = r * r;
  double p = kPolyExpP0;
  p = std::fma(p, rr, kPolyExpP1);
  p = std::fma(p, rr, kPolyExpP2);
  const double rp = r * p;
  double q = kPolyExpQ0;
  q = std::fma(q, rr, kPolyExpQ1);
  q = std::fma(q, rr, kPolyExpQ2);
  q = std::fma(q, rr, kPolyExpQ3);
  const double e = rp / (q - rp);
  const double res = std::fma(e, 2.0, 1.0);
  // n ∈ [-1021, 1023] and res ∈ (0.7, 1.42), so res·2^n stays strictly
  // normal and the scale is ONE integer add into the exponent field —
  // exactly the operation the vector tiers' ScaleByPow2 performs (and
  // bit-identical to what std::ldexp would return, without the libm
  // call that would otherwise dominate this scalar path).
  uint64_t bits;
  std::memcpy(&bits, &res, sizeof(bits));
  bits += static_cast<uint64_t>(static_cast<int64_t>(n)) << 52;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace otclean::linalg::simd

#endif  // OTCLEAN_LINALG_SIMD_EXP_H_
