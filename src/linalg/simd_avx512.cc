// AVX-512F tier of the SIMD dispatch. Compiled with -mavx512f on x86-64
// (see CMakeLists.txt); a null table everywhere else. Runtime CPU support
// is checked in simd.cc before the table is ever selected.

#include "linalg/simd.h"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackAvx512 {
  using V = __m512d;
  static constexpr size_t kLanes = 8;
  static V Zero() { return _mm512_setzero_pd(); }
  static V Set1(double x) { return _mm512_set1_pd(x); }
  static V Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V Add(V a, V b) { return _mm512_add_pd(a, b); }
  static V Mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V Fma(V a, V b, V acc) { return _mm512_fmadd_pd(a, b, acc); }
  static V Gather(const double* base, const size_t* idx) {
    const __m512i vi =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx));
    return _mm512_i64gather_pd(vi, base, 8);
  }
  static double ReduceAdd(V v) {
    alignas(64) double l[8];
    _mm512_store_pd(l, v);
    return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
  }
};

}  // namespace

namespace detail {
const SimdOps* GetAvx512Ops() {
  static const SimdOps ops = impl::MakeOps<PackAvx512>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // non-x86-64 build or flags missing: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetAvx512Ops() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
