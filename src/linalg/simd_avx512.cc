// AVX-512F tier of the SIMD dispatch. Compiled with -mavx512f on x86-64
// (see CMakeLists.txt); a null table everywhere else. Runtime CPU support
// is checked in simd.cc before the table is ever selected.

#include "linalg/simd.h"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackAvx512 {
  using V = __m512d;
  static constexpr size_t kLanes = 8;
  static V Zero() { return _mm512_setzero_pd(); }
  static V Set1(double x) { return _mm512_set1_pd(x); }
  static V Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V Add(V a, V b) { return _mm512_add_pd(a, b); }
  static V Mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V Fma(V a, V b, V acc) { return _mm512_fmadd_pd(a, b, acc); }
  static V Gather(const double* base, const size_t* idx) {
    const __m512i vi =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx));
    return _mm512_i64gather_pd(vi, base, 8);
  }
  static V LoadF32(const float* p) {
    // cvtps_pd is exact: every float is representable as a double.
    return _mm512_cvtps_pd(_mm256_loadu_ps(p));
  }
  static V GatherF32(const float* base, const size_t* idx) {
    const __m512i vi =
        _mm512_loadu_si512(reinterpret_cast<const void*>(idx));
    return _mm512_cvtps_pd(_mm512_i64gather_ps(vi, base, 4));
  }
  static double ReduceAdd(V v) {
    alignas(64) double l[8];
    _mm512_store_pd(l, v);
    return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
  }
  static V Sub(V a, V b) { return _mm512_sub_pd(a, b); }
  static V Div(V a, V b) { return _mm512_div_pd(a, b); }
  static V Max(V a, V b) { return _mm512_max_pd(a, b); }
  static V Min(V a, V b) { return _mm512_min_pd(a, b); }
  static V Floor(V v) {
    return _mm512_roundscale_pd(v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  }
  static double ReduceMax(V v) {
    alignas(64) double l[8];
    _mm512_store_pd(l, v);
    double r = l[0];
    for (int i = 1; i < 8; ++i) r = l[i] > r ? l[i] : r;
    return r;
  }
  static V ScaleByPow2(V x, V n) {
    // n is integral and in [-1021, 1023] (simd_exp.h clamps), so adding
    // n << 52 to the exponent field is an exact power-of-two scale.
    const __m256i n32 = _mm512_cvtpd_epi32(n);
    const __m512i bits = _mm512_slli_epi64(_mm512_cvtepi32_epi64(n32), 52);
    return _mm512_castsi512_pd(
        _mm512_add_epi64(_mm512_castpd_si512(x), bits));
  }
  static V ZeroIfBelow(V v, V x, V lim) {
    return _mm512_maskz_mov_pd(_mm512_cmp_pd_mask(x, lim, _CMP_GE_OQ), v);
  }
};

}  // namespace

namespace detail {
const SimdOps* GetAvx512Ops() {
  static const SimdOps ops = impl::MakeOps<PackAvx512>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // non-x86-64 build or flags missing: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetAvx512Ops() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
