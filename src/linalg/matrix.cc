#include "linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "linalg/simd.h"

namespace otclean::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::OuterProduct(const Vector& w, const Vector& h) {
  Matrix m(w.size(), h.size());
  for (size_t r = 0; r < w.size(); ++r) {
    const double wr = w[r];
    for (size_t c = 0; c < h.size(); ++c) m(r, c) = wr * h[c];
  }
  return m;
}

Vector Matrix::Row(size_t r) const {
  assert(r < rows_);
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(size_t c) const {
  assert(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    y[r] = simd::Dot(data_.data() + r * cols_, x.begin(), cols_);
  }
  return y;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    simd::Axpy(xr, data_.data() + r * cols_, y.begin(), cols_);
  }
  return y;
}

Vector Matrix::RowSums() const {
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    y[r] = simd::Sum(data_.data() + r * cols_, cols_);
  }
  return y;
}

Vector Matrix::ColSums() const {
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c];
  }
  return y;
}

double Matrix::Sum() const { return simd::Sum(data_.data(), data_.size()); }

double Matrix::NormInf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::ScaleRowsCols(const Vector& u, const Vector& v) const {
  assert(u.size() == rows_ && v.size() == cols_);
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    simd::ScaledHadamard(u[r], data_.data() + r * cols_, v.begin(),
                         out.data_.data() + r * cols_, cols_);
  }
  return out;
}

Matrix Matrix::CwiseProduct(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  simd::Hadamard(data_.data(), other.data_.data(), out.data_.data(),
                 data_.size());
  return out;
}

Matrix Matrix::GibbsKernel(double rho) const {
  assert(rho > 0.0);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::exp(-data_[i] / rho);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::FrobeniusDot(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  return simd::Dot(data_.data(), other.data_.data(), data_.size());
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(size_t max_rows, size_t max_cols) const {
  std::ostringstream os;
  const size_t nr = std::min(max_rows, rows_);
  const size_t nc = std::min(max_cols, cols_);
  os << rows_ << "x" << cols_ << " [\n";
  for (size_t r = 0; r < nr; ++r) {
    os << "  ";
    for (size_t c = 0; c < nc; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    if (nc < cols_) os << ", ...";
    os << "\n";
  }
  if (nr < rows_) os << "  ...\n";
  os << "]";
  return os.str();
}

}  // namespace otclean::linalg
