#ifndef OTCLEAN_LINALG_MATRIX_H_
#define OTCLEAN_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace otclean::linalg {

/// Dense row-major double matrix.
///
/// Provides the kernels used across the library: matrix–vector products
/// (plain and transposed), diagonal scaling (the Sinkhorn
/// `diag(u)·K·diag(v)` form), elementwise maps, and row/column reductions.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);
  /// Rank-one product w·hᵀ.
  static Matrix OuterProduct(const Vector& w, const Vector& h);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns row r as a vector copy.
  Vector Row(size_t r) const;
  /// Returns column c as a vector copy.
  Vector Col(size_t c) const;
  /// y = A·x. Requires x.size() == cols().
  Vector MatVec(const Vector& x) const;
  /// y = Aᵀ·x. Requires x.size() == rows().
  Vector TransposeMatVec(const Vector& x) const;
  /// Row sums (length rows()).
  Vector RowSums() const;
  /// Column sums (length cols()).
  Vector ColSums() const;
  /// Sum of all entries.
  double Sum() const;
  /// Largest entry magnitude.
  double NormInf() const;

  Matrix Transposed() const;
  /// diag(u)·A·diag(v). Requires u.size()==rows(), v.size()==cols().
  Matrix ScaleRowsCols(const Vector& u, const Vector& v) const;
  /// Elementwise product (Hadamard).
  Matrix CwiseProduct(const Matrix& other) const;
  /// Elementwise exp(-this/rho): the Sinkhorn Gibbs kernel K = e^{-C/ρ}.
  Matrix GibbsKernel(double rho) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Frobenius inner product ⟨A,B⟩ = Σ a_ij b_ij.
  double FrobeniusDot(const Matrix& other) const;

  /// True if max |this - other| <= tol (shapes must match).
  bool ApproxEquals(const Matrix& other, double tol) const;

  std::string ToString(size_t max_rows = 8, size_t max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_MATRIX_H_
