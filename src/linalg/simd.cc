// Scalar reference tier + runtime dispatch for the SIMD primitives.
//
// The scalar functions are the semantics every vector tier is tested
// against (tests/simd_test.cc) and the baseline bench_simd_kernel measures
// speedups over. They are pinned to genuinely scalar code — on GCC the
// optimizer is told not to auto-vectorize them — so "scalar vs SIMD"
// numbers compare one element per operation against real vector code, not
// against whatever the compiler managed to vectorize on its own.

#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>

#include "linalg/simd_exp.h"

namespace otclean::linalg::simd {

namespace {

#if defined(__GNUC__) && !defined(__clang__)
#define OTCLEAN_NOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define OTCLEAN_NOVEC
#endif

OTCLEAN_NOVEC double ScalarDot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

OTCLEAN_NOVEC double ScalarDot3(const double* a, const double* b,
                                const double* c, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += (a[i] * b[i]) * c[i];
  return s;
}

OTCLEAN_NOVEC double ScalarSum(const double* a, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i];
  return s;
}

OTCLEAN_NOVEC double ScalarGatherDot(const double* vals, const size_t* idx,
                                     const double* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += vals[i] * x[idx[i]];
  return s;
}

OTCLEAN_NOVEC double ScalarGatherDot3(const double* a, const double* b,
                                      const size_t* idx, const double* x,
                                      size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += (a[i] * b[i]) * x[idx[i]];
  return s;
}

OTCLEAN_NOVEC void ScalarAxpy(double c, const double* a, double* y,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += c * a[i];
}

OTCLEAN_NOVEC void ScalarAxpyRows(const double* coeffs, const double* base,
                                  size_t row_stride, size_t num_rows,
                                  double* y, size_t n) {
  // Plain row-at-a-time sweep — the seed's ApplyTranspose inner loop, and
  // the bench's honest "before" baseline. The vector tiers' two-row
  // blocking accumulates identically per element (see simd_impl.h).
  for (size_t r = 0; r < num_rows; ++r) {
    const double c = coeffs[r];
    if (c == 0.0) continue;  // zero rows are skipped in every tier (simd.h)
    const double* a = base + r * row_stride;
    for (size_t i = 0; i < n; ++i) y[i] += c * a[i];
  }
}

OTCLEAN_NOVEC void ScalarHadamard(const double* a, const double* b,
                                  double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

OTCLEAN_NOVEC void ScalarScaledHadamard(double s, const double* a,
                                        const double* b, double* out,
                                        size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = (s * a[i]) * b[i];
}

OTCLEAN_NOVEC void ScalarGatherScaledHadamard(double s, const double* vals,
                                              const size_t* idx,
                                              const double* x, double* out,
                                              size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = (s * vals[i]) * x[idx[i]];
}

// Log-domain scalar tier: one element at a time through the shared
// PolyExp (simd_exp.h) — the same polynomial the vector tiers run per
// lane, so scalar-vs-vector differences are confined to the sum order of
// the exp-sum reductions (the max reductions are bit-identical).

OTCLEAN_NOVEC double ScalarMaxReduce(const double* a, size_t n) {
  double r = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) r = a[i] > r ? a[i] : r;
  return r;
}

OTCLEAN_NOVEC double ScalarAddMaxReduce(const double* a, const double* b,
                                        size_t n) {
  double r = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double t = a[i] + b[i];
    r = t > r ? t : r;
  }
  return r;
}

OTCLEAN_NOVEC double ScalarGatherAddMaxReduce(const double* vals,
                                              const size_t* idx,
                                              const double* x, size_t n) {
  double r = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double t = vals[i] + x[idx[i]];
    r = t > r ? t : r;
  }
  return r;
}

OTCLEAN_NOVEC double ScalarExpSumShifted(const double* a, double shift,
                                         size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += PolyExp(a[i] - shift);
  return s;
}

OTCLEAN_NOVEC double ScalarAddExpSumShifted(const double* a, const double* b,
                                            double shift, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += PolyExp(a[i] + b[i] - shift);
  return s;
}

OTCLEAN_NOVEC double ScalarGatherAddExpSumShifted(const double* vals,
                                                  const size_t* idx,
                                                  const double* x,
                                                  double shift, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += PolyExp(vals[i] + x[idx[i]] - shift);
  return s;
}

OTCLEAN_NOVEC void ScalarAddMaxAccumulate(double c, const double* a,
                                          double* mx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double t = a[i] + c;
    if (t > mx[i]) mx[i] = t;
  }
}

OTCLEAN_NOVEC void ScalarAddExpSumAccumulate(double c, const double* a,
                                             const double* shift, double* acc,
                                             size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] += PolyExp(a[i] + c - shift[i]);
}

OTCLEAN_NOVEC void ScalarAddExpWrite(double shift, const double* a,
                                     const double* b, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = PolyExp(a[i] + b[i] + shift);
}

// f32 kernel-tier scalar reference: each float widens to double (exactly)
// before any arithmetic, so these are the f64 scalar bodies applied to the
// widened values — the semantics the f32 vector recipes are tested against.

OTCLEAN_NOVEC double ScalarDotF32(const float* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

OTCLEAN_NOVEC double ScalarDot3F32(const double* a, const float* b,
                                   const double* c, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += (a[i] * static_cast<double>(b[i])) * c[i];
  }
  return s;
}

OTCLEAN_NOVEC double ScalarGatherDotF32(const float* vals, const size_t* idx,
                                        const double* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(vals[i]) * x[idx[i]];
  return s;
}

OTCLEAN_NOVEC double ScalarGatherDot3F32(const double* a, const float* b,
                                         const size_t* idx, const double* x,
                                         size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += (a[i] * static_cast<double>(b[i])) * x[idx[i]];
  }
  return s;
}

OTCLEAN_NOVEC void ScalarAxpyRowsF32(const double* coeffs, const float* base,
                                     size_t row_stride, size_t num_rows,
                                     double* y, size_t n) {
  for (size_t r = 0; r < num_rows; ++r) {
    const double c = coeffs[r];
    if (c == 0.0) continue;  // zero rows are skipped in every tier (simd.h)
    const float* a = base + r * row_stride;
    for (size_t i = 0; i < n; ++i) y[i] += c * static_cast<double>(a[i]);
  }
}

OTCLEAN_NOVEC void ScalarScaledHadamardF32(double s, const float* a,
                                           const double* b, double* out,
                                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = (s * static_cast<double>(a[i])) * b[i];
  }
}

OTCLEAN_NOVEC void ScalarGatherScaledHadamardF32(double s, const float* vals,
                                                 const size_t* idx,
                                                 const double* x, double* out,
                                                 size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = (s * static_cast<double>(vals[i])) * x[idx[i]];
  }
}

OTCLEAN_NOVEC double ScalarAddMaxReduceF32(const float* a, const double* b,
                                           size_t n) {
  double r = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(a[i]) + b[i];
    r = t > r ? t : r;
  }
  return r;
}

OTCLEAN_NOVEC double ScalarAddExpSumShiftedF32(const float* a,
                                               const double* b, double shift,
                                               size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += PolyExp(static_cast<double>(a[i]) + b[i] - shift);
  }
  return s;
}

OTCLEAN_NOVEC double ScalarGatherAddMaxReduceF32(const float* vals,
                                                 const size_t* idx,
                                                 const double* x, size_t n) {
  double r = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(vals[i]) + x[idx[i]];
    r = t > r ? t : r;
  }
  return r;
}

OTCLEAN_NOVEC double ScalarGatherAddExpSumShiftedF32(const float* vals,
                                                     const size_t* idx,
                                                     const double* x,
                                                     double shift, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += PolyExp(static_cast<double>(vals[i]) + x[idx[i]] - shift);
  }
  return s;
}

OTCLEAN_NOVEC void ScalarAddMaxAccumulateF32(double c, const float* a,
                                             double* mx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(a[i]) + c;
    if (t > mx[i]) mx[i] = t;
  }
}

OTCLEAN_NOVEC void ScalarAddExpSumAccumulateF32(double c, const float* a,
                                                const double* shift,
                                                double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += PolyExp(static_cast<double>(a[i]) + c - shift[i]);
  }
}

OTCLEAN_NOVEC void ScalarAddExpWriteF32(double shift, const float* a,
                                        const double* b, double* out,
                                        size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = PolyExp(static_cast<double>(a[i]) + b[i] + shift);
  }
}

#undef OTCLEAN_NOVEC

/// True when the running CPU can execute `isa` (independent of whether the
/// tier was compiled in).
bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) && defined(__GNUC__)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case Isa::kAvx2:
    case Isa::kAvx512:
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const detail::SimdOps* OpsFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::GetScalarOps();
    case Isa::kAvx2:
      return detail::GetAvx2Ops();
    case Isa::kAvx512:
      return detail::GetAvx512Ops();
    case Isa::kNeon:
      return detail::GetNeonOps();
  }
  return nullptr;
}

/// Widest supported tier, honoring an OTCLEAN_SIMD env override. An
/// unsupported or unknown request degrades to the best supported tier.
Isa SelectIsa() {
  if (const char* env = std::getenv("OTCLEAN_SIMD")) {
    Isa requested = Isa::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      requested = Isa::kAvx512;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = Isa::kNeon;
    } else {
      known = false;
    }
    if (known && IsaSupported(requested)) return requested;
  }
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (IsaSupported(isa)) return isa;
  }
  return Isa::kScalar;
}

struct Dispatch {
  std::atomic<const detail::SimdOps*> ops{nullptr};
  std::atomic<Isa> isa{Isa::kScalar};
};

Dispatch& ActiveDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

const detail::SimdOps& Active() {
  Dispatch& d = ActiveDispatch();
  const detail::SimdOps* ops = d.ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    static std::once_flag init;
    std::call_once(init, [&d] {
      const Isa isa = SelectIsa();
      d.isa.store(isa, std::memory_order_relaxed);
      d.ops.store(OpsFor(isa), std::memory_order_release);
    });
    ops = d.ops.load(std::memory_order_acquire);
  }
  return *ops;
}

}  // namespace

namespace detail {
const SimdOps* GetScalarOps() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.dot = ScalarDot;
    o.dot3 = ScalarDot3;
    o.sum = ScalarSum;
    o.gather_dot = ScalarGatherDot;
    o.gather_dot3 = ScalarGatherDot3;
    o.axpy = ScalarAxpy;
    o.axpy_rows = ScalarAxpyRows;
    o.hadamard = ScalarHadamard;
    o.scaled_hadamard = ScalarScaledHadamard;
    o.gather_scaled_hadamard = ScalarGatherScaledHadamard;
    o.max_reduce = ScalarMaxReduce;
    o.add_max_reduce = ScalarAddMaxReduce;
    o.gather_add_max_reduce = ScalarGatherAddMaxReduce;
    o.exp_sum_shifted = ScalarExpSumShifted;
    o.add_exp_sum_shifted = ScalarAddExpSumShifted;
    o.gather_add_exp_sum_shifted = ScalarGatherAddExpSumShifted;
    o.add_max_accumulate = ScalarAddMaxAccumulate;
    o.add_exp_sum_accumulate = ScalarAddExpSumAccumulate;
    o.add_exp_write = ScalarAddExpWrite;
    o.dot_f32 = ScalarDotF32;
    o.dot3_f32 = ScalarDot3F32;
    o.gather_dot_f32 = ScalarGatherDotF32;
    o.gather_dot3_f32 = ScalarGatherDot3F32;
    o.axpy_rows_f32 = ScalarAxpyRowsF32;
    o.scaled_hadamard_f32 = ScalarScaledHadamardF32;
    o.gather_scaled_hadamard_f32 = ScalarGatherScaledHadamardF32;
    o.add_max_reduce_f32 = ScalarAddMaxReduceF32;
    o.add_exp_sum_shifted_f32 = ScalarAddExpSumShiftedF32;
    o.gather_add_max_reduce_f32 = ScalarGatherAddMaxReduceF32;
    o.gather_add_exp_sum_shifted_f32 = ScalarGatherAddExpSumShiftedF32;
    o.add_max_accumulate_f32 = ScalarAddMaxAccumulateF32;
    o.add_exp_sum_accumulate_f32 = ScalarAddExpSumAccumulateF32;
    o.add_exp_write_f32 = ScalarAddExpWriteF32;
    return o;
  }();
  return &ops;
}
}  // namespace detail

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  // CpuSupports MUST short-circuit first: OpsFor() executes the ISA TU's
  // table getter, whose static-init code the compiler emits with that
  // ISA's instructions (e.g. zmm moves in GetAvx512Ops) — calling it on a
  // CPU without the ISA is itself an illegal instruction.
  return CpuSupports(isa) && OpsFor(isa) != nullptr;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (IsaSupported(isa)) out.push_back(isa);
  }
  return out;
}

Isa ActiveIsa() {
  Active();  // force dispatch selection
  return ActiveDispatch().isa.load(std::memory_order_relaxed);
}

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

bool SetIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  Dispatch& d = ActiveDispatch();
  d.isa.store(isa, std::memory_order_relaxed);
  d.ops.store(OpsFor(isa), std::memory_order_release);
  return true;
}

double Dot(const double* a, const double* b, size_t n) {
  return Active().dot(a, b, n);
}

double Dot3(const double* a, const double* b, const double* c, size_t n) {
  return Active().dot3(a, b, c, n);
}

double Sum(const double* a, size_t n) { return Active().sum(a, n); }

double GatherDot(const double* vals, const size_t* idx, const double* x,
                 size_t n) {
  return Active().gather_dot(vals, idx, x, n);
}

double GatherDotSequential(const double* vals, const size_t* idx,
                           const double* x, size_t n) {
  // Not dispatched: the strictly sequential mul+add chain is the same code
  // in every tier (lane parallelism cannot help a length-n dependency
  // chain), and pinning one implementation keeps it bit-identical to the
  // AxpyRows element chain everywhere.
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += vals[i] * x[idx[i]];
  return s;
}

double GatherDot3(const double* a, const double* b, const size_t* idx,
                  const double* x, size_t n) {
  return Active().gather_dot3(a, b, idx, x, n);
}

void Axpy(double c, const double* a, double* y, size_t n) {
  Active().axpy(c, a, y, n);
}

void AxpyRows(const double* coeffs, const double* base, size_t row_stride,
              size_t num_rows, double* y, size_t n) {
  Active().axpy_rows(coeffs, base, row_stride, num_rows, y, n);
}

void Hadamard(const double* a, const double* b, double* out, size_t n) {
  Active().hadamard(a, b, out, n);
}

void ScaledHadamard(double s, const double* a, const double* b, double* out,
                    size_t n) {
  Active().scaled_hadamard(s, a, b, out, n);
}

void GatherScaledHadamard(double s, const double* vals, const size_t* idx,
                          const double* x, double* out, size_t n) {
  Active().gather_scaled_hadamard(s, vals, idx, x, out, n);
}

double MaxReduce(const double* a, size_t n) {
  return Active().max_reduce(a, n);
}

double AddMaxReduce(const double* a, const double* b, size_t n) {
  return Active().add_max_reduce(a, b, n);
}

double GatherAddMaxReduce(const double* vals, const size_t* idx,
                          const double* x, size_t n) {
  return Active().gather_add_max_reduce(vals, idx, x, n);
}

double ExpSumShifted(const double* a, double shift, size_t n) {
  return Active().exp_sum_shifted(a, shift, n);
}

double AddExpSumShifted(const double* a, const double* b, double shift,
                        size_t n) {
  return Active().add_exp_sum_shifted(a, b, shift, n);
}

double GatherAddExpSumShifted(const double* vals, const size_t* idx,
                              const double* x, double shift, size_t n) {
  return Active().gather_add_exp_sum_shifted(vals, idx, x, shift, n);
}

void AddMaxAccumulate(double c, const double* a, double* mx, size_t n) {
  Active().add_max_accumulate(c, a, mx, n);
}

void AddExpSumAccumulate(double c, const double* a, const double* shift,
                         double* acc, size_t n) {
  Active().add_exp_sum_accumulate(c, a, shift, acc, n);
}

void AddExpWrite(double shift, const double* a, const double* b, double* out,
                 size_t n) {
  Active().add_exp_write(shift, a, b, out, n);
}

double DotF32(const float* a, const double* b, size_t n) {
  return Active().dot_f32(a, b, n);
}

double Dot3F32(const double* a, const float* b, const double* c, size_t n) {
  return Active().dot3_f32(a, b, c, n);
}

double GatherDotF32(const float* vals, const size_t* idx, const double* x,
                    size_t n) {
  return Active().gather_dot_f32(vals, idx, x, n);
}

double GatherDot3F32(const double* a, const float* b, const size_t* idx,
                     const double* x, size_t n) {
  return Active().gather_dot3_f32(a, b, idx, x, n);
}

void AxpyRowsF32(const double* coeffs, const float* base, size_t row_stride,
                 size_t num_rows, double* y, size_t n) {
  Active().axpy_rows_f32(coeffs, base, row_stride, num_rows, y, n);
}

void ScaledHadamardF32(double s, const float* a, const double* b, double* out,
                       size_t n) {
  Active().scaled_hadamard_f32(s, a, b, out, n);
}

void GatherScaledHadamardF32(double s, const float* vals, const size_t* idx,
                             const double* x, double* out, size_t n) {
  Active().gather_scaled_hadamard_f32(s, vals, idx, x, out, n);
}

double AddMaxReduceF32(const float* a, const double* b, size_t n) {
  return Active().add_max_reduce_f32(a, b, n);
}

double AddExpSumShiftedF32(const float* a, const double* b, double shift,
                           size_t n) {
  return Active().add_exp_sum_shifted_f32(a, b, shift, n);
}

double GatherAddMaxReduceF32(const float* vals, const size_t* idx,
                             const double* x, size_t n) {
  return Active().gather_add_max_reduce_f32(vals, idx, x, n);
}

double GatherAddExpSumShiftedF32(const float* vals, const size_t* idx,
                                 const double* x, double shift, size_t n) {
  return Active().gather_add_exp_sum_shifted_f32(vals, idx, x, shift, n);
}

void AddMaxAccumulateF32(double c, const float* a, double* mx, size_t n) {
  Active().add_max_accumulate_f32(c, a, mx, n);
}

void AddExpSumAccumulateF32(double c, const float* a, const double* shift,
                            double* acc, size_t n) {
  Active().add_exp_sum_accumulate_f32(c, a, shift, acc, n);
}

void AddExpWriteF32(double shift, const float* a, const double* b,
                    double* out, size_t n) {
  Active().add_exp_write_f32(shift, a, b, out, n);
}

}  // namespace otclean::linalg::simd
