#ifndef OTCLEAN_LINALG_TRANSPORT_KERNEL_H_
#define OTCLEAN_LINALG_TRANSPORT_KERNEL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/cost_provider.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace otclean::linalg {

class ThreadPool;

/// Storage-agnostic view of a Gibbs kernel K = e^{−C/ε}, exposing exactly
/// the four primitives the Sinkhorn scaling loop needs. The solver engine
/// in ot/sinkhorn.cc is written once against this interface; dense and
/// CSR-sparse (truncated-kernel) storage plug in underneath, so every
/// future kernel optimization (truncation, blocking, SIMD) is a
/// single-implementation change.
///
/// All primitives are multi-threaded over row (or column) blocks.
/// `num_threads` is fixed at construction: 0 = hardware concurrency,
/// 1 = serial. Results are bit-compatible across thread counts — outputs
/// are either written to disjoint index ranges or reduced over fixed-size
/// blocks whose partial sums are combined in block order (see
/// parallel_for.h).
///
/// Inner loops run on the runtime-dispatched SIMD primitives of
/// linalg/simd.h. The SIMD layer's own determinism contract composes with
/// the threading one: for a fixed instruction set, pooled/spawned/serial
/// runs at any thread count are bit-identical, and dense vs cutoff-zero
/// sparse `Apply` share one accumulation recipe.
///
/// `pool`, when non-null, is a persistent worker pool (thread_pool.h) the
/// primitives dispatch on instead of spawning threads per call — the same
/// chunk decomposition runs either way, so pooled results stay
/// bit-identical. The pool is borrowed, not owned: it must outlive the
/// kernel. Solvers create one pool per solve and reuse it across every
/// Sinkhorn iteration and outer step.
class TransportKernel {
 public:
  virtual ~TransportKernel() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;
  /// Structural nonzeros of the kernel (rows·cols for dense storage).
  virtual size_t nnz() const = 0;
  /// Resolved worker count used by the primitives (>= 1).
  virtual size_t num_threads() const = 0;

  /// y = K·v (the Sinkhorn row update's denominator). Resizes y.
  virtual void Apply(const Vector& v, Vector& y) const = 0;
  /// y = Kᵀ·u (the column update's denominator). Resizes y.
  virtual void ApplyTranspose(const Vector& u, Vector& y) const = 0;
  /// The scaled plan π = diag(u)·K·diag(v), materialized densely.
  virtual Matrix ScaleToPlan(const Vector& u, const Vector& v) const = 0;
  /// ⟨C, π⟩ = Σ_{(i,j) in support} C_ij·u_i·K_ij·v_j over the kernel's
  /// support, without materializing π. The cost is *streamed* from the
  /// provider (tile- or support-wise); no dense rows×cols cost is needed.
  virtual double TransportCost(const CostProvider& cost, const Vector& u,
                               const Vector& v) const = 0;
  /// Convenience overload for an in-memory dense cost. Deprecated on the
  /// sparse kernel, where it forces callers that only have the kernel's
  /// support to materialize a rows×cols matrix — pass a CostProvider
  /// (e.g. ot::FunctionCostProvider) instead. Kept as a thin wrapper over
  /// the provider overload via MatrixCostProvider.
  double TransportCost(const Matrix& cost, const Vector& u,
                       const Vector& v) const {
    return TransportCost(MatrixCostProvider(cost), u, v);
  }
};

/// Dense row-major kernel storage.
///
/// The kernel matrix is held through a shared_ptr, so several kernel
/// objects (possibly with different thread counts / pools) can view one
/// immutable built storage — the mechanism core::SolveCache uses to share
/// a repeated (cost, ε) kernel across jobs without rebuilding it.
class DenseTransportKernel final : public TransportKernel {
 public:
  /// Wraps an already-built kernel matrix (e.g. cost.GibbsKernel(eps)).
  explicit DenseTransportKernel(Matrix kernel, size_t num_threads = 0,
                                ThreadPool* pool = nullptr);

  /// Shares an immutable storage built elsewhere (no copy, no rebuild).
  explicit DenseTransportKernel(std::shared_ptr<const Matrix> kernel,
                                size_t num_threads = 0,
                                ThreadPool* pool = nullptr);

  /// Builds K = e^{−C/ε} from a cost matrix.
  static DenseTransportKernel FromCost(const Matrix& cost, double epsilon,
                                       size_t num_threads = 0,
                                       ThreadPool* pool = nullptr);

  size_t rows() const override { return kernel_->rows(); }
  size_t cols() const override { return kernel_->cols(); }
  size_t nnz() const override { return kernel_->size(); }
  size_t num_threads() const override { return threads_; }

  void Apply(const Vector& v, Vector& y) const override;
  void ApplyTranspose(const Vector& u, Vector& y) const override;
  Matrix ScaleToPlan(const Vector& u, const Vector& v) const override;
  using TransportKernel::TransportCost;
  double TransportCost(const CostProvider& cost, const Vector& u,
                       const Vector& v) const override;

  const Matrix& kernel() const { return *kernel_; }
  /// The underlying storage handle, for sharing (core::SolveCache).
  const std::shared_ptr<const Matrix>& shared_kernel() const {
    return kernel_;
  }

 private:
  std::shared_ptr<const Matrix> kernel_;
  size_t threads_;
  ThreadPool* pool_;
};

/// CSC mirror of a CSR matrix: column c's entries live at
/// [col_ptr[c], col_ptr[c+1]), sorted by ascending row. Shared by the
/// linear (SparseTransportKernel) and log-domain (SparseLogTransportKernel)
/// sparse kernels: with the mirror, every transpose-side primitive is a
/// gather over disjoint outputs that accumulates each column's entries in
/// ascending-row order regardless of threading — deterministic, never a
/// racy scatter.
struct CscMirror {
  CscMirror() = default;
  explicit CscMirror(const SparseMatrix& csr);

  std::vector<size_t> col_ptr;
  std::vector<size_t> row_index;
  std::vector<double> values;
  /// Longest stored CSR row — sizes the per-block scratch of primitives
  /// that gather one row's worth of streamed data.
  size_t max_row_nnz = 0;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return col_ptr.size() * sizeof(size_t) +
           row_index.size() * sizeof(size_t) + values.size() * sizeof(double);
  }
};

/// An immutable built CSR kernel bundled with its CSC mirror — everything
/// a sparse kernel object needs beyond threading config. Held through
/// shared_ptr so many kernel objects (and core::SolveCache) can view one
/// storage: a repeated (cost, ε, truncation) never re-streams costs or
/// rebuilds the mirror. The linear and log-domain sparse kernels use the
/// same struct (the matrix holds K or L respectively).
struct SparseKernelStorage {
  explicit SparseKernelStorage(SparseMatrix m)
      : matrix(std::move(m)), csc(matrix) {}

  SparseMatrix matrix;
  CscMirror csc;

  /// Approximate heap footprint (CSR + mirror).
  size_t MemoryBytes() const {
    return matrix.MemoryBytes() + csc.MemoryBytes();
  }
};

/// CSR-sparse kernel storage for truncated Gibbs kernels (Section 6.5).
/// Construction also builds the transposed (CSC) index so that
/// ApplyTranspose is a gather over disjoint outputs — deterministic under
/// any thread count — instead of a racy scatter.
class SparseTransportKernel final : public TransportKernel {
 public:
  explicit SparseTransportKernel(SparseMatrix kernel, size_t num_threads = 0,
                                 ThreadPool* pool = nullptr);

  /// Shares an immutable storage built elsewhere (no copy, no rebuild —
  /// the CSC mirror comes along for free).
  explicit SparseTransportKernel(
      std::shared_ptr<const SparseKernelStorage> storage,
      size_t num_threads = 0, ThreadPool* pool = nullptr);

  /// Builds the truncated kernel: entries of e^{−C/ε} below `cutoff` are
  /// dropped. Cutoff 0 keeps every entry and matches the dense kernel
  /// exactly.
  static SparseTransportKernel FromCost(const Matrix& cost, double epsilon,
                                        double cutoff, size_t num_threads = 0,
                                        ThreadPool* pool = nullptr);

  /// Same, with the cost *streamed* from a provider tile-by-tile — the
  /// dense rows×cols cost matrix is never materialized, so a truncated
  /// solve's memory is O(nnz) end to end.
  static SparseTransportKernel FromCost(const CostProvider& cost,
                                        double epsilon, double cutoff,
                                        size_t num_threads = 0,
                                        ThreadPool* pool = nullptr);

  size_t rows() const override { return kern().rows(); }
  size_t cols() const override { return kern().cols(); }
  size_t nnz() const override { return kern().nnz(); }
  size_t num_threads() const override { return threads_; }

  void Apply(const Vector& v, Vector& y) const override;
  void ApplyTranspose(const Vector& u, Vector& y) const override;
  Matrix ScaleToPlan(const Vector& u, const Vector& v) const override;
  using TransportKernel::TransportCost;
  double TransportCost(const CostProvider& cost, const Vector& u,
                       const Vector& v) const override;

  /// The scaled plan in CSR form, inheriting the kernel's sparsity pattern.
  SparseMatrix ScaleToPlanSparse(const Vector& u, const Vector& v) const;

  /// Streams the provider once and returns C at every stored entry,
  /// aligned with kernel().values() — O(nnz) memory. Callers that evaluate
  /// the transport cost repeatedly against one cost (FastOTClean's outer
  /// loop) gather once and pass the cache to SupportTransportCost instead
  /// of re-evaluating the cost function every iteration.
  std::vector<double> GatherSupportCosts(const CostProvider& cost) const;

  /// TransportCost from a GatherSupportCosts cache; bit-identical to the
  /// streaming CostProvider overload.
  double SupportTransportCost(const std::vector<double>& support_costs,
                              const Vector& u, const Vector& v) const;

  const SparseMatrix& kernel() const { return kern(); }
  /// The underlying storage handle, for sharing (core::SolveCache).
  const std::shared_ptr<const SparseKernelStorage>& shared_storage() const {
    return storage_;
  }

 private:
  const SparseMatrix& kern() const { return storage_->matrix; }
  const CscMirror& csc() const { return storage_->csc; }

  std::shared_ptr<const SparseKernelStorage> storage_;
  size_t threads_;
  ThreadPool* pool_;
};

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_TRANSPORT_KERNEL_H_
