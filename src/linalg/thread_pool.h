#ifndef OTCLEAN_LINALG_THREAD_POOL_H_
#define OTCLEAN_LINALG_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"
#include "linalg/parallel_for.h"

namespace otclean::linalg {

/// A persistent worker pool for the kernel primitives. The spawn-per-call
/// ParallelFor in parallel_for.h pays a thread create/join on *every*
/// primitive invocation — on small plans that startup dominates the actual
/// arithmetic. A ThreadPool is created once (per solve, or shared across
/// solves by the caller) and reuses the same workers for every subsequent
/// dispatch, so an entire Sinkhorn run — thousands of Apply/ApplyTranspose
/// calls — costs one thread startup total.
///
/// Determinism: the pool never decides *what* a chunk computes, only which
/// OS thread runs it. The pool-aware ParallelFor overload below uses the
/// exact same chunk decomposition as the spawn-per-call path, and chunks
/// write disjoint index ranges, so pooled results are bit-identical to
/// spawned and serial ones.
///
/// Concurrent dispatch: any number of threads may call RunChunks on the
/// same pool at the same time (one repair job per dispatcher — the
/// RepairScheduler's sharing model). Each dispatch registers a job in a
/// small intrusive job list; workers pull chunks from whichever live jobs
/// still have unclaimed work, and every dispatcher runs its own job's
/// chunks too, so a job is never starved by its neighbours. Because the
/// chunk decomposition of a dispatch depends only on (n, threads, grain) —
/// never on what else shares the pool — per-job results stay bit-identical
/// whether the pool is private, shared sequentially, or shared by
/// concurrent dispatchers.
class ThreadPool {
 public:
  /// Sizes the pool at `ResolveThreadCount(num_threads)` lanes (the
  /// dispatching thread is one of them). 0 = hardware concurrency; 1 = no
  /// workers, every Run executes inline. Workers start lazily on the
  /// first dispatch with more than one chunk, so pools created for solves
  /// that never exceed the parallel grain cost nothing.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency including the dispatching thread (>= 1).
  size_t num_threads() const { return num_threads_; }

  /// Runs `chunk_fn(ctx, c)` for every c in [0, num_chunks) across the
  /// workers and the calling thread; returns once all chunks completed.
  /// Chunks are claimed dynamically, so `chunk_fn` must be safe to run for
  /// any chunk on any participating thread (disjoint outputs). Safe to
  /// call from multiple threads concurrently; each call is an independent
  /// job and returns when exactly its own chunks have completed.
  void RunChunks(size_t num_chunks, void (*chunk_fn)(void*, size_t),
                 void* ctx) OTCLEAN_EXCLUDES(mutex_);

  /// Installs `flag` as the calling thread's cooperative stop flag for the
  /// scope's duration (RAII; nests by saving the previous flag). Every
  /// dispatch issued from this thread captures the flag into its job; once
  /// the flag reads true, participants — dispatcher and workers alike —
  /// keep *claiming and counting* chunks but skip executing them, so the
  /// dispatch drains immediately. The chunk decomposition and completion
  /// accounting are untouched: a stop can only abort a dispatch (whose
  /// output the solve then discards), never alter what an unstopped
  /// dispatch computes — completed solves stay bit-identical.
  class ScopedStopFlag {
   public:
    explicit ScopedStopFlag(const std::atomic<bool>* flag);
    ~ScopedStopFlag();
    ScopedStopFlag(const ScopedStopFlag&) = delete;
    ScopedStopFlag& operator=(const ScopedStopFlag&) = delete;

   private:
    const std::atomic<bool>* previous_;
  };

  /// The calling thread's installed stop flag (null when none).
  static const std::atomic<bool>* CurrentStopFlag();

  /// Fault-injection/test instrumentation: `hook(ctx)` runs before every
  /// chunk execution on every participating thread (core::FaultInjector
  /// uses it to delay a worker at the Nth chunk). Install before work is
  /// dispatched and uninstall (null) after it drains — the two atomics are
  /// published independently. Null by default; costs one relaxed load per
  /// chunk when unset.
  using ChunkHook = void (*)(void*);
  static void SetChunkHook(ChunkHook hook, void* ctx);

 private:
  /// One in-flight dispatch. Lives on its dispatcher's stack; linked into
  /// jobs_head_ for the duration of the RunChunks call. All fields except
  /// next_chunk (claimed lock-free) and the immutable dispatch description
  /// (chunk_fn/ctx/num_chunks/stop, written before publication) are
  /// guarded by mutex_ — TSA cannot express "guarded by the owning pool's
  /// mutex_" on a stack-allocated node (and the single-threaded inline
  /// path in RunChunks legitimately uses an unpublished Job lock-free), so
  /// the mutable fields document the discipline instead of annotating it.
  struct Job {
    void (*chunk_fn)(void*, size_t) = nullptr;
    void* ctx = nullptr;
    size_t num_chunks = 0;
    std::atomic<size_t> next_chunk{0};
    size_t done_chunks = 0;     ///< chunks done; guarded by pool mutex_.
    size_t active_workers = 0;  ///< registered workers; guarded by mutex_.
    /// Dispatcher's stop flag at dispatch time; when it reads true,
    /// participants claim+count remaining chunks without executing them.
    const std::atomic<bool>* stop = nullptr;
    Job* next = nullptr;  ///< intrusive list link; guarded by pool mutex_.
  };

  /// Runs the chunk hook (if installed) and returns whether the job's stop
  /// flag has fired — the per-chunk gate shared by dispatcher and workers.
  static bool ChunkStopped(const Job& job);

  void WorkerLoop() OTCLEAN_EXCLUDES(mutex_);
  Job* FindClaimableJobLocked() OTCLEAN_REQUIRES(mutex_);

  const size_t num_threads_;

  Mutex mutex_;
  CondVar wake_;
  CondVar done_;
  /// Lazily started on the first multi-chunk dispatch; joined (after a
  /// swap out under the lock) by the destructor.
  std::vector<std::thread> workers_ OTCLEAN_GUARDED_BY(mutex_);
  Job* jobs_head_ OTCLEAN_GUARDED_BY(mutex_) = nullptr;  ///< live dispatches
  bool stopping_ OTCLEAN_GUARDED_BY(mutex_) = false;
};

/// Resolves the pool a solve dispatches on: the caller-supplied `external`
/// when present, otherwise a pool constructed into `owned` for the solve's
/// duration when more than one thread resolves — so threads start once per
/// solve, not once per primitive call. Null (spawn-free serial execution)
/// when one thread resolves. Every solver entry point (Sinkhorn,
/// FastOTClean, QCLP) funnels through this one policy.
inline ThreadPool* ResolveSolvePool(ThreadPool* external, size_t num_threads,
                                    std::optional<ThreadPool>& owned) {
  if (external != nullptr) return external;
  if (ResolveThreadCount(num_threads) > 1) {
    owned.emplace(num_threads);
    return &*owned;
  }
  return nullptr;
}

/// Pool-aware ParallelFor: same contract and — critically — the same chunk
/// decomposition as the spawn-per-call overload in parallel_for.h, so
/// outputs are bit-identical whether a pool, fresh threads, or a single
/// thread runs the loop. `threads` bounds the decomposition exactly as in
/// the spawn path (the pool's worker count only affects scheduling). A
/// null pool falls back to spawn-per-call.
template <typename Fn>
void ParallelFor(size_t n, size_t threads, Fn&& fn, size_t grain,
                 ThreadPool* pool) {
  if (pool == nullptr) {
    ParallelFor(n, threads, std::forward<Fn>(fn), grain);
    return;
  }
  const ChunkPlan plan = PlanChunks(n, threads, grain);
  if (plan.num_chunks == 0) return;
  if (plan.num_chunks == 1) {
    fn(size_t{0}, n);
    return;
  }
  struct Job {
    std::remove_reference_t<Fn>* fn;
    size_t n;
    size_t chunk;
  } job{&fn, n, plan.chunk};
  pool->RunChunks(
      plan.num_chunks,
      [](void* ctx, size_t c) {
        Job& j = *static_cast<Job*>(ctx);
        const size_t begin = c * j.chunk;
        (*j.fn)(begin, std::min(j.n, begin + j.chunk));
      },
      &job);
}

/// Pool-aware BlockedReduce: the shared BlockedReduceWith recipe with a
/// pooled executor — the result does not depend on the thread count or on
/// whether a pool is used.
template <typename BlockFn>
double BlockedReduce(size_t n, size_t threads, BlockFn&& block_fn,
                     ThreadPool* pool) {
  return BlockedReduceWith(n, block_fn, [&](size_t blocks, auto&& fn) {
    ParallelFor(blocks, threads, fn, /*grain=*/1, pool);
  });
}

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_THREAD_POOL_H_
