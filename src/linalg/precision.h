#ifndef OTCLEAN_LINALG_PRECISION_H_
#define OTCLEAN_LINALG_PRECISION_H_

#include <cstdint>

namespace otclean::linalg {

/// Storage precision of a kernel's values. Arithmetic always accumulates
/// in double — kFloat32 narrows only what is STORED (the Gibbs kernel /
/// log-kernel entries, dense or CSR+CSC): every load widens the float back
/// to double (exactly) before it enters a reduction, so the f32 tier's
/// determinism story is the f64 one applied to the rounded kernel.
/// Halving the bytes per entry doubles the effective SIMD width of the
/// memory-bound kernel loops; the price is one float rounding of each
/// kernel entry at construction (relative error ≤ 2^-24 per entry).
enum class Precision : uint8_t {
  kFloat64 = 0,
  kFloat32 = 1,
};

inline const char* PrecisionName(Precision p) {
  return p == Precision::kFloat32 ? "f32" : "f64";
}

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_PRECISION_H_
