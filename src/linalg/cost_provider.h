#ifndef OTCLEAN_LINALG_COST_PROVIDER_H_
#define OTCLEAN_LINALG_COST_PROVIDER_H_

#include <algorithm>
#include <cstddef>

#include "linalg/matrix.h"

namespace otclean::linalg {

/// Columns per scratch tile when a streamed cost is consumed row-wise —
/// 8 KiB of doubles, comfortably L1-resident. Shared by every consumer
/// (kernel build, transport-cost reductions) so the tiling stays in sync.
inline constexpr size_t kCostStreamTileCols = 1024;

/// A read-only view of a rows×cols cost matrix that is *streamed*, never
/// required to exist in memory. The sparse (truncated-kernel) pipeline is
/// built entirely against this interface — `SparseMatrix::GibbsKernel`,
/// `SparseTransportKernel::FromCost`, and `TransportKernel::TransportCost`
/// pull cost entries tile-by-tile or at the kernel's support — so a
/// truncated solve allocates O(nnz) + O(tile) instead of the dense
/// rows×cols cost matrix (`ot::BuildCostMatrix` is just one client that
/// materializes the view).
///
/// Implementations must be thread-safe for concurrent const calls: the
/// kernel primitives invoke Fill/Gather/At from worker threads on disjoint
/// rows and output buffers.
class CostProvider {
 public:
  virtual ~CostProvider() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;

  /// Single entry C(row, col).
  virtual double At(size_t row, size_t col) const = 0;

  /// Writes C(row, c) for c in [c0, c1) into out[0 .. c1-c0) — the tile
  /// access used when every column of a row is needed (kernel build,
  /// dense transport cost).
  virtual void Fill(size_t row, size_t c0, size_t c1, double* out) const {
    for (size_t c = c0; c < c1; ++c) out[c - c0] = At(row, c);
  }

  /// Writes C(row, cols[k]) into out[k] for k in [0, n) — the
  /// sparse-support access used when only the kernel's stored columns of a
  /// row are needed (sparse transport cost).
  virtual void Gather(size_t row, const size_t* cols, size_t n,
                      double* out) const {
    for (size_t k = 0; k < n; ++k) out[k] = At(row, cols[k]);
  }

  /// The dense backing matrix when one exists — a zero-copy fast path for
  /// consumers that would otherwise Fill into a scratch tile. Null for
  /// genuinely streamed providers.
  virtual const Matrix* AsMatrix() const { return nullptr; }
};

/// CostProvider over an in-memory dense matrix (borrowed, not owned). The
/// adapter that keeps every Matrix-taking entry point working on the
/// provider-based pipeline.
class MatrixCostProvider final : public CostProvider {
 public:
  explicit MatrixCostProvider(const Matrix& matrix) : matrix_(&matrix) {}

  size_t rows() const override { return matrix_->rows(); }
  size_t cols() const override { return matrix_->cols(); }

  double At(size_t row, size_t col) const override {
    return (*matrix_)(row, col);
  }

  void Fill(size_t row, size_t c0, size_t c1, double* out) const override {
    const double* base = matrix_->data().data() + row * matrix_->cols();
    std::copy(base + c0, base + c1, out);
  }

  void Gather(size_t row, const size_t* cols, size_t n,
              double* out) const override {
    const double* base = matrix_->data().data() + row * matrix_->cols();
    for (size_t k = 0; k < n; ++k) out[k] = base[cols[k]];
  }

  const Matrix* AsMatrix() const override { return matrix_; }

 private:
  const Matrix* matrix_;
};

/// Materializes the view as a dense matrix — the one place the O(rows×cols)
/// allocation happens when a caller really wants it.
inline Matrix MaterializeCostMatrix(const CostProvider& cost) {
  Matrix out(cost.rows(), cost.cols());
  double* data = out.data().data();
  for (size_t r = 0; r < cost.rows(); ++r) {
    cost.Fill(r, 0, cost.cols(), data + r * cost.cols());
  }
  return out;
}

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_COST_PROVIDER_H_
