#ifndef OTCLEAN_LINALG_VECTOR_H_
#define OTCLEAN_LINALG_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace otclean::linalg {

/// Dense double-precision vector.
///
/// This is the library's replacement for an external linear-algebra
/// dependency: it provides exactly the operations the Sinkhorn, NMF and LP
/// kernels need (elementwise arithmetic, safe division, reductions).
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t n, double fill = 0.0) : data_(n, fill) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  static Vector Ones(size_t n) { return Vector(n, 1.0); }
  static Vector Zeros(size_t n) { return Vector(n, 0.0); }

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double* begin() { return data_.data(); }
  double* end() { return data_.data() + data_.size(); }
  const double* begin() const { return data_.data(); }
  const double* end() const { return data_.data() + data_.size(); }

  /// Sum of entries.
  double Sum() const;
  /// Dot product; requires equal sizes.
  double Dot(const Vector& other) const;
  /// Euclidean norm.
  double Norm2() const;
  /// Max-norm.
  double NormInf() const;
  /// Largest entry (−inf on empty).
  double Max() const;
  /// Smallest entry (+inf on empty).
  double Min() const;
  /// Index of the largest entry; 0 on empty.
  size_t ArgMax() const;

  /// In-place elementwise operations; all require matching sizes.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// Elementwise product.
  Vector CwiseProduct(const Vector& other) const;
  /// Elementwise quotient with 0/0 := 0 and x/0 := 0 (the Sinkhorn
  /// convention for empty marginals).
  Vector CwiseQuotientSafe(const Vector& other) const;
  /// Elementwise natural power; preserves zeros for non-negative input.
  Vector CwisePow(double exponent) const;
  /// Elementwise exp.
  Vector CwiseExp() const;
  /// Elementwise natural log with log(0) := 0 (measure-theoretic 0·log 0).
  Vector CwiseLogSafe() const;

  /// Rescales to sum to 1; no-op if the sum is not positive.
  void Normalize();

  /// True if max |this - other| <= tol (sizes must match).
  bool ApproxEquals(const Vector& other, double tol) const;

  std::string ToString(size_t max_entries = 16) const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double s);
Vector operator*(double s, Vector a);

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_VECTOR_H_
