#include "linalg/log_transport_kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "linalg/parallel_for.h"
#include "linalg/simd.h"
#include "linalg/simd_exp.h"
#include "linalg/thread_pool.h"

namespace otclean::linalg {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Σ_k costs[k]·e^{(vals[k] + lv[col(k)]) + lu_r} over one stored row —
/// the shared inner loop of the sparse TransportCost and
/// SupportTransportCost, written once so the streamed and cached variants
/// are bit-identical.
double RowLogCost(const double* costs, const double* vals, const size_t* cols,
                  const double* lv, double lu_r, size_t len) {
  double s = 0.0;
  for (size_t k = 0; k < len; ++k) {
    s += costs[k] * simd::PolyExp(vals[k] + lv[cols[k]] + lu_r);
  }
  return s;
}

}  // namespace

// ----------------------------------------------------------------- Dense --

DenseLogTransportKernel::DenseLogTransportKernel(Matrix log_kernel,
                                                 size_t num_threads,
                                                 ThreadPool* pool)
    : DenseLogTransportKernel(
          std::make_shared<const Matrix>(std::move(log_kernel)), num_threads,
          pool) {}

DenseLogTransportKernel::DenseLogTransportKernel(
    std::shared_ptr<const Matrix> log_kernel, size_t num_threads,
    ThreadPool* pool)
    : log_kernel_(std::move(log_kernel)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

DenseLogTransportKernel DenseLogTransportKernel::FromCost(const Matrix& cost,
                                                          double epsilon,
                                                          size_t num_threads,
                                                          ThreadPool* pool) {
  assert(epsilon > 0.0);
  Matrix log_kernel(cost.rows(), cost.cols());
  const double* src = cost.data().data();
  double* dst = log_kernel.data().data();
  for (size_t i = 0; i < cost.size(); ++i) dst[i] = -src[i] / epsilon;
  return DenseLogTransportKernel(std::move(log_kernel), num_threads, pool);
}

DenseLogTransportKernel DenseLogTransportKernel::FromCost(
    const CostProvider& cost, double epsilon, size_t num_threads,
    ThreadPool* pool) {
  assert(epsilon > 0.0);
  if (const Matrix* dense = cost.AsMatrix()) {
    return FromCost(*dense, epsilon, num_threads, pool);
  }
  const size_t m = cost.rows();
  const size_t n = cost.cols();
  Matrix log_kernel(m, n);
  double* dst = log_kernel.data().data();
  const size_t threads = ResolveThreadCount(num_threads);
  // Rows are disjoint and the provider is thread-safe for const calls, so
  // the build parallelizes deterministically; L is filled in place, the
  // raw cost never exists as a matrix.
  ParallelFor(
      m, threads,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          double* row = dst + r * n;
          cost.Fill(r, 0, n, row);
          for (size_t c = 0; c < n; ++c) row[c] = -row[c] / epsilon;
        }
      },
      GrainForWork(n), pool);
  return DenseLogTransportKernel(std::move(log_kernel), num_threads, pool);
}

void DenseLogTransportKernel::LogApply(const Vector& lv, Vector& out) const {
  const size_t m = log_kernel_->rows();
  const size_t n = log_kernel_->cols();
  assert(lv.size() == n);
  if (out.size() != m) out = Vector(m);
  const double* data = log_kernel_->data().data();
  const double* lvdata = lv.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double* row = data + r * n;
          const double mx = simd::AddMaxReduce(row, lvdata, n);
          out[r] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::AddExpSumShifted(row, lvdata, mx,
                                                              n));
        }
      },
      GrainForWork(n), pool_);
}

void DenseLogTransportKernel::LogApplyTranspose(const Vector& lu,
                                                Vector& out) const {
  const size_t m = log_kernel_->rows();
  const size_t n = log_kernel_->cols();
  assert(lu.size() == m);
  if (out.size() != n) out = Vector(n);
  const double* data = log_kernel_->data().data();
  // Column strips, two passes each (max, then shifted exp-sum): every
  // output column accumulates the rows in ascending order with the
  // bit-identical-across-tiers strip accumulators of simd.h, while the
  // matrix is still walked row-major — the streamed-LSE answer to the
  // transpose's cache problem. Strips are worker-owned → deterministic.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        std::vector<double> mx(std::min(c1 - c0, kCostStreamTileCols));
        std::vector<double> acc(mx.size());
        for (size_t s0 = c0; s0 < c1; s0 += mx.size()) {
          const size_t s1 = std::min(c1, s0 + mx.size());
          const size_t w = s1 - s0;
          std::fill(mx.begin(), mx.begin() + w, kNegInf);
          std::fill(acc.begin(), acc.begin() + w, 0.0);
          for (size_t r = 0; r < m; ++r) {
            // −inf rows carry no mass in any column; skipping them keeps
            // the max pass from ever being the only finite contribution.
            if (lu[r] == kNegInf) continue;
            simd::AddMaxAccumulate(lu[r], data + r * n + s0, mx.data(), w);
          }
          for (size_t r = 0; r < m; ++r) {
            if (lu[r] == kNegInf) continue;
            simd::AddExpSumAccumulate(lu[r], data + r * n + s0, mx.data(),
                                      acc.data(), w);
          }
          for (size_t c = 0; c < w; ++c) {
            out[s0 + c] =
                mx[c] == kNegInf ? kNegInf : mx[c] + std::log(acc[c]);
          }
        }
      },
      GrainForWork(m), pool_);
}

Matrix DenseLogTransportKernel::ScaleToPlan(const Vector& lu,
                                            const Vector& lv) const {
  const size_t m = log_kernel_->rows();
  const size_t n = log_kernel_->cols();
  assert(lu.size() == m && lv.size() == n);
  Matrix plan(m, n);
  const double* data = log_kernel_->data().data();
  const double* lvdata = lv.begin();
  double* out = plan.data().data();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          simd::AddExpWrite(lu[r], data + r * n, lvdata, out + r * n, n);
        }
      },
      GrainForWork(n), pool_);
  return plan;
}

double DenseLogTransportKernel::TransportCost(const CostProvider& cost,
                                              const Vector& lu,
                                              const Vector& lv) const {
  const size_t m = log_kernel_->rows();
  const size_t n = log_kernel_->cols();
  assert(cost.rows() == m && cost.cols() == n);
  assert(lu.size() == m && lv.size() == n);
  const double* data = log_kernel_->data().data();
  const double* lvdata = lv.begin();
  const Matrix* dense_cost = cost.AsMatrix();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        // Per-block scratch: exp'd plan row (and a streamed cost tile when
        // the provider has no dense backing).
        std::vector<double> w(std::min(n, kCostStreamTileCols));
        std::vector<double> ctile(dense_cost == nullptr ? w.size() : 0);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          double row_sum = 0.0;
          for (size_t c0 = 0; c0 < n; c0 += w.size()) {
            const size_t c1 = std::min(n, c0 + w.size());
            simd::AddExpWrite(lu[r], data + r * n + c0, lvdata + c0, w.data(),
                              c1 - c0);
            const double* crow;
            if (dense_cost != nullptr) {
              crow = dense_cost->data().data() + r * n + c0;
            } else {
              cost.Fill(r, c0, c1, ctile.data());
              crow = ctile.data();
            }
            row_sum += simd::Dot(crow, w.data(), c1 - c0);
          }
          s += row_sum;
        }
        return s;
      },
      pool_);
}

// ---------------------------------------------------------------- Sparse --

SparseLogTransportKernel::SparseLogTransportKernel(SparseMatrix log_kernel,
                                                   size_t num_threads,
                                                   ThreadPool* pool)
    : SparseLogTransportKernel(
          std::make_shared<const SparseKernelStorage>(std::move(log_kernel)),
          num_threads, pool) {}

SparseLogTransportKernel::SparseLogTransportKernel(
    std::shared_ptr<const SparseKernelStorage> storage, size_t num_threads,
    ThreadPool* pool)
    : storage_(std::move(storage)),
      threads_(ResolveThreadCount(num_threads)),
      pool_(pool) {}

SparseLogTransportKernel SparseLogTransportKernel::FromCost(
    const Matrix& cost, double epsilon, double cutoff, size_t num_threads,
    ThreadPool* pool) {
  return FromCost(MatrixCostProvider(cost), epsilon, cutoff, num_threads,
                  pool);
}

SparseLogTransportKernel SparseLogTransportKernel::FromCost(
    const CostProvider& cost, double epsilon, double cutoff,
    size_t num_threads, ThreadPool* pool) {
  assert(epsilon > 0.0);
  return SparseLogTransportKernel(
      SparseMatrix::LogGibbsKernel(cost, epsilon, cutoff), num_threads, pool);
}

void SparseLogTransportKernel::LogApply(const Vector& lv, Vector& out) const {
  const size_t m = kern().rows();
  assert(lv.size() == kern().cols());
  if (out.size() != m) out = Vector(m);
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* lvdata = lv.begin();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          const double mx =
              simd::GatherAddMaxReduce(values + k0, cols + k0, lvdata, len);
          out[r] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::GatherAddExpSumShifted(
                                 values + k0, cols + k0, lvdata, mx, len));
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
}

void SparseLogTransportKernel::LogApplyTranspose(const Vector& lu,
                                                 Vector& out) const {
  const size_t n = kern().cols();
  assert(lu.size() == kern().rows());
  if (out.size() != n) out = Vector(n);
  const double* csc_values = csc().values.data();
  const size_t* rows = csc().row_index.data();
  const double* ludata = lu.begin();
  // Each output column is owned by one worker and reduced over the CSC
  // mirror — empty columns (truncated away entirely) come out −inf.
  ParallelFor(
      n, threads_,
      [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
          const size_t k0 = csc().col_ptr[c];
          const size_t len = csc().col_ptr[c + 1] - k0;
          const double mx =
              simd::GatherAddMaxReduce(csc_values + k0, rows + k0, ludata,
                                       len);
          out[c] = mx == kNegInf
                       ? kNegInf
                       : mx + std::log(simd::GatherAddExpSumShifted(
                                 csc_values + k0, rows + k0, ludata, mx,
                                 len));
        }
      },
      GrainForWork(kern().nnz() / (n == 0 ? 1 : n)), pool_);
}

Matrix SparseLogTransportKernel::ScaleToPlan(const Vector& lu,
                                             const Vector& lv) const {
  const size_t m = kern().rows();
  const size_t n = kern().cols();
  assert(lu.size() == m && lv.size() == n);
  Matrix plan(m, n, 0.0);
  const auto& row_ptr = kern().row_ptr();
  const auto& col_index = kern().col_index();
  const auto& values = kern().values();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double lur = lu[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            // Same (L + lv) + lu association as the dense AddExpWrite, so
            // cutoff-zero sparse plans match dense ones bit for bit.
            plan(r, col_index[k]) =
                simd::PolyExp(values[k] + lv[col_index[k]] + lur);
          }
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

SparseMatrix SparseLogTransportKernel::ScaleToPlanSparse(
    const Vector& lu, const Vector& lv) const {
  assert(lu.size() == kern().rows() && lv.size() == kern().cols());
  SparseMatrix plan = kern();
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  double* out = plan.values().data();
  const size_t m = kern().rows();
  ParallelFor(
      m, threads_,
      [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const double lur = lu[r];
          for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            out[k] = simd::PolyExp(values[k] + lv[cols[k]] + lur);
          }
        }
      },
      GrainForWork(kern().nnz() / (m == 0 ? 1 : m)), pool_);
  return plan;
}

std::vector<double> SparseLogTransportKernel::GatherSupportCosts(
    const CostProvider& cost) const {
  assert(cost.rows() == kern().rows() &&
         cost.cols() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  std::vector<double> out(kern().nnz());
  for (size_t r = 0; r < kern().rows(); ++r) {
    const size_t k0 = row_ptr[r];
    cost.Gather(r, cols + k0, row_ptr[r + 1] - k0, out.data() + k0);
  }
  return out;
}

double SparseLogTransportKernel::SupportTransportCost(
    const std::vector<double>& support_costs, const Vector& lu,
    const Vector& lv) const {
  const size_t m = kern().rows();
  assert(support_costs.size() == kern().nnz());
  assert(lu.size() == m && lv.size() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* costs = support_costs.data();
  const double* lvdata = lv.begin();
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          const size_t k0 = row_ptr[r];
          s += RowLogCost(costs + k0, values + k0, cols + k0, lvdata, lu[r],
                          row_ptr[r + 1] - k0);
        }
        return s;
      },
      pool_);
}

double SparseLogTransportKernel::TransportCost(const CostProvider& cost,
                                               const Vector& lu,
                                               const Vector& lv) const {
  const size_t m = kern().rows();
  assert(cost.rows() == m && cost.cols() == kern().cols());
  assert(lu.size() == m && lv.size() == kern().cols());
  const auto& row_ptr = kern().row_ptr();
  const size_t* cols = kern().col_index().data();
  const double* values = kern().values().data();
  const double* lvdata = lv.begin();
  // O(nnz) cost evaluations at the kernel's support, per-block scratch.
  return BlockedReduce(
      m, threads_,
      [&](size_t r0, size_t r1) {
        std::vector<double> crow(csc().max_row_nnz);
        double s = 0.0;
        for (size_t r = r0; r < r1; ++r) {
          if (lu[r] == kNegInf) continue;
          const size_t k0 = row_ptr[r];
          const size_t len = row_ptr[r + 1] - k0;
          cost.Gather(r, cols + k0, len, crow.data());
          s += RowLogCost(crow.data(), values + k0, cols + k0, lvdata, lu[r],
                          len);
        }
        return s;
      },
      pool_);
}

}  // namespace otclean::linalg
