#include "linalg/vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "linalg/simd.h"

namespace otclean::linalg {

double Vector::Sum() const { return simd::Sum(data_.data(), data_.size()); }

double Vector::Dot(const Vector& other) const {
  assert(size() == other.size());
  return simd::Dot(data_.data(), other.data_.data(), data_.size());
}

double Vector::Norm2() const { return std::sqrt(Dot(*this)); }

double Vector::NormInf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Vector::Max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::max(m, v);
  return m;
}

double Vector::Min() const {
  double m = std::numeric_limits<double>::infinity();
  for (double v : data_) m = std::min(m, v);
  return m;
}

size_t Vector::ArgMax() const {
  if (data_.empty()) return 0;
  return static_cast<size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

Vector& Vector::operator+=(const Vector& other) {
  assert(size() == other.size());
  simd::Axpy(1.0, other.data_.data(), data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(size() == other.size());
  simd::Axpy(-1.0, other.data_.data(), data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (double& v : data_) v /= scalar;
  return *this;
}

Vector Vector::CwiseProduct(const Vector& other) const {
  assert(size() == other.size());
  Vector out(size());
  simd::Hadamard(data_.data(), other.data_.data(), out.data_.data(),
                 data_.size());
  return out;
}

Vector Vector::CwiseQuotientSafe(const Vector& other) const {
  assert(size() == other.size());
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = (other.data_[i] != 0.0) ? data_[i] / other.data_[i] : 0.0;
  }
  return out;
}

Vector Vector::CwisePow(double exponent) const {
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = (data_[i] > 0.0) ? std::pow(data_[i], exponent) : 0.0;
  }
  return out;
}

Vector Vector::CwiseExp() const {
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = std::exp(data_[i]);
  return out;
}

Vector Vector::CwiseLogSafe() const {
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = (data_[i] > 0.0) ? std::log(data_[i]) : 0.0;
  }
  return out;
}

void Vector::Normalize() {
  const double s = Sum();
  if (s > 0.0) *this /= s;
}

bool Vector::ApproxEquals(const Vector& other, double tol) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Vector::ToString(size_t max_entries) const {
  std::ostringstream os;
  os << "[";
  const size_t n = std::min(max_entries, size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (n < size()) os << ", ... (" << size() << " total)";
  os << "]";
  return os.str();
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}
Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}
Vector operator*(Vector a, double s) {
  a *= s;
  return a;
}
Vector operator*(double s, Vector a) {
  a *= s;
  return a;
}

}  // namespace otclean::linalg
