#ifndef OTCLEAN_LINALG_SPARSE_MATRIX_H_
#define OTCLEAN_LINALG_SPARSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/cost_provider.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace otclean::linalg {

/// Compressed-sparse-row matrix holding only nonzero entries. Backing
/// store for the sparse transport-plan representation the paper suggests
/// for reducing Sinkhorn memory (Section 6.5).
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}
  SparseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from a dense matrix, dropping entries with |v| <= threshold.
  static SparseMatrix FromDense(const Matrix& dense, double threshold = 0.0);

  /// Assembles from already-built CSR parts (no validation beyond sizes
  /// being consistent — callers hand over structure they own). Lets code
  /// that keeps a CSR structure outside a SparseMatrix (e.g. the f32
  /// kernel storage) materialize plans with that structure without a
  /// dense round-trip.
  static SparseMatrix FromParts(size_t rows, size_t cols,
                                std::vector<size_t> row_ptr,
                                std::vector<size_t> col_index,
                                std::vector<double> values) {
    SparseMatrix m(rows, cols);
    m.row_ptr_ = std::move(row_ptr);
    m.col_index_ = std::move(col_index);
    m.values_ = std::move(values);
    return m;
  }

  /// Builds the truncated Gibbs kernel K = e^{−C/ε} directly from a dense
  /// cost matrix, keeping only entries ≥ cutoff — no dense intermediate.
  static SparseMatrix GibbsKernel(const Matrix& cost, double epsilon,
                                  double cutoff);

  /// Same, with the cost *streamed* tile-by-tile from a provider: peak
  /// transient memory is O(nnz) output + one L1-sized tile, never
  /// rows×cols. The Matrix overload above delegates here, so both produce
  /// bit-identical kernels.
  static SparseMatrix GibbsKernel(const CostProvider& cost, double epsilon,
                                  double cutoff);

  /// The truncated *log-domain* Gibbs kernel: stores L = −C/ε at exactly
  /// the entries GibbsKernel would keep (e^{−C/ε} ≥ cutoff ⟺
  /// −C/ε ≥ log(cutoff)), streamed tile-by-tile like GibbsKernel — the
  /// backing store of linalg::SparseLogTransportKernel. Cutoff 0 keeps
  /// every entry. The kept-set equivalence means the linear and log
  /// sparse kernels always share one sparsity pattern, so
  /// CheckTruncatedKernelSupport applies to both unchanged.
  static SparseMatrix LogGibbsKernel(const CostProvider& cost, double epsilon,
                                     double cutoff);
  static SparseMatrix LogGibbsKernel(const Matrix& cost, double epsilon,
                                     double cutoff);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const {
    return values_.size() * (sizeof(double) + sizeof(size_t)) +
           row_ptr_.size() * sizeof(size_t);
  }

  /// y = A·x.
  Vector MatVec(const Vector& x) const;
  /// y = Aᵀ·x.
  Vector TransposeMatVec(const Vector& x) const;
  /// Row sums.
  Vector RowSums() const;
  /// Column sums.
  Vector ColSums() const;

  /// diag(u)·A·diag(v) with the same sparsity pattern.
  SparseMatrix ScaleRowsCols(const Vector& u, const Vector& v) const;

  /// Σ_ij A_ij · B_ij for a dense B of the same shape.
  double FrobeniusDotDense(const Matrix& dense) const;

  /// Densifies (for interoperability with TransportPlan).
  Matrix ToDense() const;

  /// Row access for iteration: [row_ptr[i], row_ptr[i+1]) index into
  /// col_index()/values().
  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_SPARSE_MATRIX_H_
