// AVX2+FMA tier of the SIMD dispatch. This file is compiled with
// -mavx2 -mfma on x86-64 (see CMakeLists.txt); everywhere else it
// collapses to a null table and the dispatcher skips the tier. Runtime CPU
// support is checked in simd.cc before the table is ever selected.

#include "linalg/simd.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackAvx2 {
  using V = __m256d;
  static constexpr size_t kLanes = 4;
  static V Zero() { return _mm256_setzero_pd(); }
  static V Set1(double x) { return _mm256_set1_pd(x); }
  static V Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V Add(V a, V b) { return _mm256_add_pd(a, b); }
  static V Mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V Fma(V a, V b, V acc) { return _mm256_fmadd_pd(a, b, acc); }
  static V Gather(const double* base, const size_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }
  static double ReduceAdd(V v) {
    alignas(32) double l[4];
    _mm256_store_pd(l, v);
    return (l[0] + l[1]) + (l[2] + l[3]);
  }
};

}  // namespace

namespace detail {
const SimdOps* GetAvx2Ops() {
  static const SimdOps ops = impl::MakeOps<PackAvx2>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // non-x86-64 build or flags missing: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetAvx2Ops() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
