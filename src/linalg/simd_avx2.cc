// AVX2+FMA tier of the SIMD dispatch. This file is compiled with
// -mavx2 -mfma on x86-64 (see CMakeLists.txt); everywhere else it
// collapses to a null table and the dispatcher skips the tier. Runtime CPU
// support is checked in simd.cc before the table is ever selected.

#include "linalg/simd.h"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "linalg/simd_impl.h"

namespace otclean::linalg::simd {
namespace {

struct PackAvx2 {
  using V = __m256d;
  static constexpr size_t kLanes = 4;
  static V Zero() { return _mm256_setzero_pd(); }
  static V Set1(double x) { return _mm256_set1_pd(x); }
  static V Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V Add(V a, V b) { return _mm256_add_pd(a, b); }
  static V Mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V Fma(V a, V b, V acc) { return _mm256_fmadd_pd(a, b, acc); }
  static V Gather(const double* base, const size_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }
  static V LoadF32(const float* p) {
    // cvtps_pd is exact: every float is representable as a double.
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
  static V GatherF32(const float* base, const size_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_cvtps_pd(_mm256_i64gather_ps(base, vi, 4));
  }
  static double ReduceAdd(V v) {
    alignas(32) double l[4];
    _mm256_store_pd(l, v);
    return (l[0] + l[1]) + (l[2] + l[3]);
  }
  static V Sub(V a, V b) { return _mm256_sub_pd(a, b); }
  static V Div(V a, V b) { return _mm256_div_pd(a, b); }
  static V Max(V a, V b) { return _mm256_max_pd(a, b); }
  static V Min(V a, V b) { return _mm256_min_pd(a, b); }
  static V Floor(V v) { return _mm256_floor_pd(v); }
  static double ReduceMax(V v) {
    alignas(32) double l[4];
    _mm256_store_pd(l, v);
    const double lo = l[0] > l[1] ? l[0] : l[1];
    const double hi = l[2] > l[3] ? l[2] : l[3];
    return lo > hi ? lo : hi;
  }
  static V ScaleByPow2(V x, V n) {
    // n is integral and in [-1021, 1023] (simd_exp.h clamps), so adding
    // n << 52 to the exponent field is an exact power-of-two scale.
    const __m128i n32 = _mm256_cvtpd_epi32(n);
    const __m256i bits = _mm256_slli_epi64(_mm256_cvtepi32_epi64(n32), 52);
    return _mm256_castsi256_pd(
        _mm256_add_epi64(_mm256_castpd_si256(x), bits));
  }
  static V ZeroIfBelow(V v, V x, V lim) {
    return _mm256_and_pd(v, _mm256_cmp_pd(x, lim, _CMP_GE_OQ));
  }
};

}  // namespace

namespace detail {
const SimdOps* GetAvx2Ops() {
  static const SimdOps ops = impl::MakeOps<PackAvx2>();
  return &ops;
}
}  // namespace detail

}  // namespace otclean::linalg::simd

#else  // non-x86-64 build or flags missing: tier unavailable.

namespace otclean::linalg::simd::detail {
const SimdOps* GetAvx2Ops() { return nullptr; }
}  // namespace otclean::linalg::simd::detail

#endif
