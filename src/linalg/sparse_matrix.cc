#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/simd.h"

namespace otclean::linalg {

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double threshold) {
  SparseMatrix out(dense.rows(), dense.cols());
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense(r, c);
      if (std::fabs(v) > threshold) {
        out.col_index_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = out.values_.size();
  }
  return out;
}

namespace {

/// The ONE truncated-Gibbs streaming loop: tiles the cost provider,
/// computes l = −C/ε and k = e^l per entry, keeps the entry iff
/// k ≥ cutoff, and stores `store_log ? l : k`. The linear and log
/// kernels sharing this loop — same tiling, same keep test — is what
/// makes their kept-sets identical by construction (the invariant
/// CheckTruncatedKernelSupport and the shared plan sparsity pattern rest
/// on), rather than by two hand-synchronized copies.
void StreamTruncatedGibbs(const CostProvider& cost, double epsilon,
                          double cutoff, bool store_log,
                          std::vector<size_t>& col_index,
                          std::vector<double>& values,
                          std::vector<size_t>& row_ptr) {
  const size_t rows = cost.rows();
  const size_t cols = cost.cols();
  std::vector<double> tile(std::min(cols, kCostStreamTileCols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c0 = 0; c0 < cols; c0 += tile.size()) {
      const size_t c1 = std::min(cols, c0 + tile.size());
      cost.Fill(r, c0, c1, tile.data());
      for (size_t c = c0; c < c1; ++c) {
        const double l = -tile[c - c0] / epsilon;
        const double k = std::exp(l);
        if (k >= cutoff) {
          col_index.push_back(c);
          values.push_back(store_log ? l : k);
        }
      }
    }
    row_ptr[r + 1] = values.size();
  }
}

}  // namespace

SparseMatrix SparseMatrix::GibbsKernel(const Matrix& cost, double epsilon,
                                       double cutoff) {
  return GibbsKernel(MatrixCostProvider(cost), epsilon, cutoff);
}

SparseMatrix SparseMatrix::GibbsKernel(const CostProvider& cost,
                                       double epsilon, double cutoff) {
  assert(epsilon > 0.0);
  SparseMatrix out(cost.rows(), cost.cols());
  StreamTruncatedGibbs(cost, epsilon, cutoff, /*store_log=*/false,
                       out.col_index_, out.values_, out.row_ptr_);
  return out;
}

SparseMatrix SparseMatrix::LogGibbsKernel(const Matrix& cost, double epsilon,
                                          double cutoff) {
  return LogGibbsKernel(MatrixCostProvider(cost), epsilon, cutoff);
}

SparseMatrix SparseMatrix::LogGibbsKernel(const CostProvider& cost,
                                          double epsilon, double cutoff) {
  assert(epsilon > 0.0);
  SparseMatrix out(cost.rows(), cost.cols());
  StreamTruncatedGibbs(cost, epsilon, cutoff, /*store_log=*/true,
                       out.col_index_, out.values_, out.row_ptr_);
  return out;
}

Vector SparseMatrix::MatVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_);
  const double* xdata = x.begin();
  for (size_t r = 0; r < rows_; ++r) {
    const size_t k0 = row_ptr_[r];
    y[r] = simd::GatherDot(values_.data() + k0, col_index_.data() + k0, xdata,
                           row_ptr_[r + 1] - k0);
  }
  return y;
}

Vector SparseMatrix::TransposeMatVec(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_index_[k]] += values_[k] * xr;
    }
  }
  return y;
}

Vector SparseMatrix::RowSums() const {
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const size_t k0 = row_ptr_[r];
    y[r] = simd::Sum(values_.data() + k0, row_ptr_[r + 1] - k0);
  }
  return y;
}

Vector SparseMatrix::ColSums() const {
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_index_[k]] += values_[k];
    }
  }
  return y;
}

SparseMatrix SparseMatrix::ScaleRowsCols(const Vector& u,
                                         const Vector& v) const {
  assert(u.size() == rows_ && v.size() == cols_);
  SparseMatrix out = *this;
  const double* vdata = v.begin();
  for (size_t r = 0; r < rows_; ++r) {
    const size_t k0 = row_ptr_[r];
    simd::GatherScaledHadamard(u[r], values_.data() + k0,
                               col_index_.data() + k0, vdata,
                               out.values_.data() + k0, row_ptr_[r + 1] - k0);
  }
  return out;
}

double SparseMatrix::FrobeniusDotDense(const Matrix& dense) const {
  assert(dense.rows() == rows_ && dense.cols() == cols_);
  double s = 0.0;
  const double* ddata = dense.data().data();
  for (size_t r = 0; r < rows_; ++r) {
    const size_t k0 = row_ptr_[r];
    s += simd::GatherDot(values_.data() + k0, col_index_.data() + k0,
                         ddata + r * cols_, row_ptr_[r + 1] - k0);
  }
  return s;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_index_[k]) = values_[k];
    }
  }
  return out;
}

}  // namespace otclean::linalg
