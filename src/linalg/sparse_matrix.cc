#include "linalg/sparse_matrix.h"

#include <cassert>
#include <cmath>

namespace otclean::linalg {

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double threshold) {
  SparseMatrix out(dense.rows(), dense.cols());
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense(r, c);
      if (std::fabs(v) > threshold) {
        out.col_index_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = out.values_.size();
  }
  return out;
}

SparseMatrix SparseMatrix::GibbsKernel(const Matrix& cost, double epsilon,
                                       double cutoff) {
  assert(epsilon > 0.0);
  SparseMatrix out(cost.rows(), cost.cols());
  for (size_t r = 0; r < cost.rows(); ++r) {
    for (size_t c = 0; c < cost.cols(); ++c) {
      const double k = std::exp(-cost(r, c) / epsilon);
      if (k >= cutoff) {
        out.col_index_.push_back(c);
        out.values_.push_back(k);
      }
    }
    out.row_ptr_[r + 1] = out.values_.size();
  }
  return out;
}

Vector SparseMatrix::MatVec(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_index_[k]];
    }
    y[r] = s;
  }
  return y;
}

Vector SparseMatrix::TransposeMatVec(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_index_[k]] += values_[k] * xr;
    }
  }
  return y;
}

Vector SparseMatrix::RowSums() const {
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += values_[k];
    y[r] = s;
  }
  return y;
}

Vector SparseMatrix::ColSums() const {
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_index_[k]] += values_[k];
    }
  }
  return y;
}

SparseMatrix SparseMatrix::ScaleRowsCols(const Vector& u,
                                         const Vector& v) const {
  assert(u.size() == rows_ && v.size() == cols_);
  SparseMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    const double ur = u[r];
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.values_[k] = ur * values_[k] * v[col_index_[k]];
    }
  }
  return out;
}

double SparseMatrix::FrobeniusDotDense(const Matrix& dense) const {
  assert(dense.rows() == rows_ && dense.cols() == cols_);
  double s = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * dense(r, col_index_[k]);
    }
  }
  return s;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_index_[k]) = values_[k];
    }
  }
  return out;
}

}  // namespace otclean::linalg
