#include "linalg/thread_pool.h"

namespace otclean::linalg {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(size_t num_chunks, void (*chunk_fn)(void*, size_t),
                           void* ctx) {
  if (num_chunks == 0) return;
  if (num_chunks == 1 || num_threads_ <= 1) {
    for (size_t c = 0; c < num_chunks; ++c) chunk_fn(ctx, c);
    return;
  }
  if (workers_.empty()) {
    // Lazy start on the first dispatch that can actually use a worker:
    // solves whose every loop stays below the parallel grain never pay
    // for thread creation. Only the (serialized) dispatcher mutates
    // workers_, so no lock is needed here.
    workers_.reserve(num_threads_ - 1);
    for (size_t t = 1; t < num_threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain stragglers of the previous dispatch before touching job state:
    // a worker still waking for the old generation reads chunk_fn_ /
    // num_chunks_ under this mutex, so once active_workers_ is 0 and we
    // hold the lock, no worker can observe a half-written job.
    done_.wait(lock, [this] { return active_workers_ == 0; });
    chunk_fn_ = chunk_fn;
    ctx_ = ctx;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  wake_.notify_all();
  // The dispatching thread is a full participant — with W workers the pool
  // provides W+1 lanes, matching the spawn path's "caller runs chunk 0".
  for (;;) {
    const size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) break;
    chunk_fn(ctx, c);
    done_chunks_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this, num_chunks] {
    return done_chunks_.load(std::memory_order_acquire) == num_chunks;
  });
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    void (*chunk_fn)(void*, size_t) = nullptr;
    void* ctx = nullptr;
    size_t num_chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this, seen_generation] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      chunk_fn = chunk_fn_;
      ctx = ctx_;
      num_chunks = num_chunks_;
      ++active_workers_;
    }
    size_t completed = 0;
    for (;;) {
      const size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      chunk_fn(ctx, c);
      ++completed;
    }
    if (completed > 0) {
      done_chunks_.fetch_add(completed, std::memory_order_acq_rel);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    // Signals both conditions the dispatcher can wait on: all chunks done
    // (end of this dispatch) and active-count drained (start of the next).
    done_.notify_all();
  }
}

}  // namespace otclean::linalg
