#include "linalg/thread_pool.h"

namespace otclean::linalg {
namespace {

/// The calling thread's cooperative stop flag (see ScopedStopFlag).
thread_local const std::atomic<bool>* tls_stop_flag = nullptr;

/// Process-wide chunk instrumentation hook (see SetChunkHook).
std::atomic<ThreadPool::ChunkHook> g_chunk_hook{nullptr};
std::atomic<void*> g_chunk_hook_ctx{nullptr};

}  // namespace

ThreadPool::ScopedStopFlag::ScopedStopFlag(const std::atomic<bool>* flag)
    : previous_(tls_stop_flag) {
  tls_stop_flag = flag;
}

ThreadPool::ScopedStopFlag::~ScopedStopFlag() { tls_stop_flag = previous_; }

const std::atomic<bool>* ThreadPool::CurrentStopFlag() { return tls_stop_flag; }

void ThreadPool::SetChunkHook(ChunkHook hook, void* ctx) {
  g_chunk_hook_ctx.store(ctx, std::memory_order_release);
  g_chunk_hook.store(hook, std::memory_order_release);
}

bool ThreadPool::ChunkStopped(const Job& job) {
  if (ChunkHook hook = g_chunk_hook.load(std::memory_order_acquire)) {
    hook(g_chunk_hook_ctx.load(std::memory_order_acquire));
  }
  return job.stop != nullptr && job.stop->load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {}

ThreadPool::~ThreadPool() {
  // Swap the workers out under the lock (workers_ is guarded by mutex_),
  // join them outside it — a worker's exit path briefly re-takes mutex_.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  wake_.NotifyAll();
  for (std::thread& w : to_join) w.join();
}

ThreadPool::Job* ThreadPool::FindClaimableJobLocked() {
  for (Job* job = jobs_head_; job != nullptr; job = job->next) {
    if (job->next_chunk.load(std::memory_order_relaxed) < job->num_chunks) {
      return job;
    }
  }
  return nullptr;
}

void ThreadPool::RunChunks(size_t num_chunks, void (*chunk_fn)(void*, size_t),
                           void* ctx) {
  if (num_chunks == 0) return;
  if (num_chunks == 1 || num_threads_ <= 1) {
    Job inline_job;
    inline_job.stop = tls_stop_flag;
    for (size_t c = 0; c < num_chunks; ++c) {
      if (!ChunkStopped(inline_job)) chunk_fn(ctx, c);
    }
    return;
  }
  // The job lives on the dispatcher's stack for the duration of the
  // dispatch; it is only reachable by workers through jobs_head_, and it is
  // unlinked (under mutex_, after the last registered worker left) before
  // this frame returns.
  Job job;
  job.chunk_fn = chunk_fn;
  job.ctx = ctx;
  job.num_chunks = num_chunks;
  job.stop = tls_stop_flag;
  {
    MutexLock lock(mutex_);
    if (workers_.empty()) {
      // Lazy start on the first dispatch that can actually use a worker:
      // solves whose every loop stays below the parallel grain never pay
      // for thread creation. Guarded by mutex_ — dispatches may now race.
      workers_.reserve(num_threads_ - 1);
      for (size_t t = 1; t < num_threads_; ++t) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    }
    job.next = jobs_head_;
    jobs_head_ = &job;
  }
  wake_.NotifyAll();
  // The dispatching thread is a full participant — with W workers the pool
  // provides W+1 lanes per job, matching the spawn path's "caller runs
  // chunk 0". Under concurrent dispatch each job is guaranteed at least
  // its own dispatcher; idle workers join whichever live jobs still have
  // unclaimed chunks.
  size_t completed = 0;
  for (;;) {
    const size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) break;
    if (!ChunkStopped(job)) chunk_fn(ctx, c);
    ++completed;
  }
  MutexLock lock(mutex_);
  job.done_chunks += completed;
  // Explicit predicate loop (not the lambda-wait overload): the guarded
  // reads stay in this locked scope where TSA can see the capability.
  while (!(job.done_chunks == num_chunks && job.active_workers == 0)) {
    done_.Wait(mutex_);
  }
  Job** link = &jobs_head_;
  while (*link != &job) link = &(*link)->next;
  *link = job.next;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && (job = FindClaimableJobLocked()) == nullptr) {
        wake_.Wait(mutex_);
      }
      if (stopping_) return;
      // Registering under the mutex pins the job: its dispatcher cannot
      // unlink (and pop its stack frame) until active_workers drops back
      // to zero — also under this mutex.
      ++job->active_workers;
    }
    size_t completed = 0;
    for (;;) {
      const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job->num_chunks) break;
      if (!ChunkStopped(*job)) job->chunk_fn(job->ctx, c);
      ++completed;
    }
    bool job_finished;
    {
      MutexLock lock(mutex_);
      job->done_chunks += completed;
      --job->active_workers;
      job_finished =
          job->done_chunks == job->num_chunks && job->active_workers == 0;
    }
    // Only the transition a dispatcher can be waiting on needs a signal;
    // done_.NotifyAll wakes every dispatcher, each of which rechecks its
    // own job's predicate.
    if (job_finished) done_.NotifyAll();
  }
}

}  // namespace otclean::linalg
