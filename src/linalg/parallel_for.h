#ifndef OTCLEAN_LINALG_PARALLEL_FOR_H_
#define OTCLEAN_LINALG_PARALLEL_FOR_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace otclean::linalg {

/// Resolves a requested thread count: 0 means "use hardware concurrency"
/// (never less than 1).
inline size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Minimum per-thread work (loop indices) below which spawning threads
/// costs more than it saves; ranges smaller than this run inline.
inline constexpr size_t kMinParallelGrain = 256;

/// Minimum scalar operations per worker before threading pays for the
/// spawn/join. Callers whose loop indices carry non-unit work (e.g. one
/// matrix row of n multiplies) should derive their grain from this.
inline constexpr size_t kMinParallelWork = 2048;

/// Index grain for a loop whose every index costs ~`work_per_index` scalar
/// ops: enough indices per worker to clear kMinParallelWork.
inline size_t GrainForWork(size_t work_per_index) {
  if (work_per_index == 0) work_per_index = 1;
  const size_t grain = kMinParallelWork / work_per_index;
  return grain == 0 ? 1 : grain;
}

/// The contiguous-chunk decomposition every ParallelFor execution mode
/// (spawn-per-call, pooled, serial) derives from. Computing it in exactly
/// one place is what makes the modes bit-identical: chunk boundaries
/// depend only on (n, threads, grain), never on who runs the chunks.
struct ChunkPlan {
  size_t chunk = 0;       ///< indices per chunk (chunk c = [c·chunk, …)).
  size_t num_chunks = 0;  ///< non-empty chunks covering [0, n).
};

inline ChunkPlan PlanChunks(size_t n, size_t threads, size_t grain) {
  ChunkPlan plan;
  if (n == 0) return plan;
  if (grain == 0) grain = 1;
  // Cap workers so none gets less than `grain` indices.
  threads = std::min(threads, std::max<size_t>(1, n / grain));
  plan.chunk = threads <= 1 ? n : (n + threads - 1) / threads;
  plan.num_chunks = (n + plan.chunk - 1) / plan.chunk;
  return plan;
}

/// Runs `fn(begin, end)` over contiguous chunks of [0, n), one chunk per
/// worker. `threads` must already be resolved (>= 1); it is capped so no
/// worker gets less than `grain` indices. Chunks are disjoint, so any op
/// writing only to its own index range is deterministic regardless of the
/// thread count.
template <typename Fn>
void ParallelFor(size_t n, size_t threads, Fn&& fn,
                 size_t grain = kMinParallelGrain) {
  const ChunkPlan plan = PlanChunks(n, threads, grain);
  if (plan.num_chunks == 0) return;
  if (plan.num_chunks == 1) {
    fn(size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(plan.num_chunks - 1);
  for (size_t c = 1; c < plan.num_chunks; ++c) {
    const size_t begin = c * plan.chunk;
    const size_t end = std::min(n, begin + plan.chunk);
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(size_t{0}, std::min(n, plan.chunk));
  for (std::thread& w : workers) w.join();
}

/// Rows per reduction block. Fixed independently of the thread count so
/// that blocked reductions add the same partial sums in the same order no
/// matter how many threads run — threads=1 and threads=N are bit-identical.
inline constexpr size_t kReduceBlockRows = 256;

/// The one blocked-reduction recipe every execution mode shares: fixed
/// kReduceBlockRows-sized blocks, partials combined serially in block
/// order. `run(num_blocks, fn)` supplies the loop executor (spawned,
/// pooled, or serial); since neither the block decomposition nor the
/// accumulation depends on the executor, every mode is bit-compatible.
template <typename BlockFn, typename RunFn>
double BlockedReduceWith(size_t n, BlockFn&& block_fn, RunFn&& run) {
  if (n == 0) return 0.0;
  const size_t num_blocks = (n + kReduceBlockRows - 1) / kReduceBlockRows;
  std::vector<double> partials(num_blocks, 0.0);
  run(num_blocks, [&](size_t b_begin, size_t b_end) {
    for (size_t b = b_begin; b < b_end; ++b) {
      const size_t begin = b * kReduceBlockRows;
      const size_t end = std::min(n, begin + kReduceBlockRows);
      partials[b] = block_fn(begin, end);
    }
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

/// Sums `block_fn(begin, end)` over fixed-size blocks of [0, n). The block
/// decomposition and the final (serial, block-ordered) accumulation do not
/// depend on `threads`, so the result is bit-compatible across thread
/// counts.
template <typename BlockFn>
double BlockedReduce(size_t n, size_t threads, BlockFn&& block_fn) {
  return BlockedReduceWith(n, block_fn, [&](size_t blocks, auto&& fn) {
    ParallelFor(blocks, threads, fn, /*grain=*/1);
  });
}

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_PARALLEL_FOR_H_
