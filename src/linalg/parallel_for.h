#ifndef OTCLEAN_LINALG_PARALLEL_FOR_H_
#define OTCLEAN_LINALG_PARALLEL_FOR_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace otclean::linalg {

/// Resolves a requested thread count: 0 means "use hardware concurrency"
/// (never less than 1).
inline size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Minimum per-thread work (loop indices) below which spawning threads
/// costs more than it saves; ranges smaller than this run inline.
inline constexpr size_t kMinParallelGrain = 256;

/// Minimum scalar operations per worker before threading pays for the
/// spawn/join. Callers whose loop indices carry non-unit work (e.g. one
/// matrix row of n multiplies) should derive their grain from this.
inline constexpr size_t kMinParallelWork = 2048;

/// Index grain for a loop whose every index costs ~`work_per_index` scalar
/// ops: enough indices per worker to clear kMinParallelWork.
inline size_t GrainForWork(size_t work_per_index) {
  if (work_per_index == 0) work_per_index = 1;
  const size_t grain = kMinParallelWork / work_per_index;
  return grain == 0 ? 1 : grain;
}

/// Runs `fn(begin, end)` over contiguous chunks of [0, n), one chunk per
/// worker. `threads` must already be resolved (>= 1); it is capped so no
/// worker gets less than `grain` indices. Chunks are disjoint, so any op
/// writing only to its own index range is deterministic regardless of the
/// thread count.
template <typename Fn>
void ParallelFor(size_t n, size_t threads, Fn&& fn,
                 size_t grain = kMinParallelGrain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  threads = std::min(threads, std::max<size_t>(1, n / grain));
  if (threads <= 1) {
    fn(size_t{0}, n);
    return;
  }
  const size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) {
    const size_t begin = t * chunk;
    if (begin >= n) break;
    const size_t end = std::min(n, begin + chunk);
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(size_t{0}, std::min(n, chunk));
  for (std::thread& w : workers) w.join();
}

/// Rows per reduction block. Fixed independently of the thread count so
/// that blocked reductions add the same partial sums in the same order no
/// matter how many threads run — threads=1 and threads=N are bit-identical.
inline constexpr size_t kReduceBlockRows = 256;

/// Sums `block_fn(begin, end)` over fixed-size blocks of [0, n). The block
/// decomposition and the final (serial, block-ordered) accumulation do not
/// depend on `threads`, so the result is bit-compatible across thread
/// counts.
template <typename BlockFn>
double BlockedReduce(size_t n, size_t threads, BlockFn&& block_fn) {
  if (n == 0) return 0.0;
  const size_t num_blocks = (n + kReduceBlockRows - 1) / kReduceBlockRows;
  std::vector<double> partials(num_blocks, 0.0);
  ParallelFor(
      num_blocks, threads,
      [&](size_t b_begin, size_t b_end) {
        for (size_t b = b_begin; b < b_end; ++b) {
          const size_t begin = b * kReduceBlockRows;
          const size_t end = std::min(n, begin + kReduceBlockRows);
          partials[b] = block_fn(begin, end);
        }
      },
      /*grain=*/1);
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace otclean::linalg

#endif  // OTCLEAN_LINALG_PARALLEL_FOR_H_
