#ifndef OTCLEAN_LINALG_SIMD_H_
#define OTCLEAN_LINALG_SIMD_H_

#include <cstddef>
#include <vector>

namespace otclean::linalg::simd {

/// Runtime-dispatched SIMD primitives for the TransportKernel hot loops and
/// the Vector/SparseMatrix helpers they lean on.
///
/// One instruction set is selected for the whole process the first time any
/// primitive runs: the widest the CPU supports among the translation units
/// compiled in (AVX-512F > AVX2+FMA on x86-64, NEON on aarch64), else the
/// portable scalar reference. The `OTCLEAN_SIMD` environment variable
/// (`scalar`, `avx2`, `avx512`, `neon`) forces a narrower choice — an
/// unsupported request falls back to the best supported tier — and
/// `ActiveIsaName()` reports what was picked (`otclean --report` prints it).
///
/// Determinism contract:
///  - For a fixed ISA, every primitive is deterministic: reductions use a
///    fixed accumulation recipe (4 lane-wide partial accumulators over
///    blocks of 4×lanes, combined as (s0+s1)+(s2+s3), a single-accumulator
///    lane loop, a fixed-order horizontal lane sum, then a scalar tail).
///    Nothing depends on thread count — threading above this layer keeps
///    its own fixed-block reductions (see parallel_for.h).
///  - Contiguous and gather variants of the same reduction share that
///    recipe, so e.g. `GatherDot(vals, idx, x, n)` with `idx = 0..n-1` is
///    bit-identical to `Dot(vals, x, n)` — which keeps dense and
///    cutoff-zero sparse kernels in exact agreement.
///  - The elementwise primitives (Axpy, AxpyRows, Hadamard, …) and the
///    sequential gather chain perform separately rounded multiplies and
///    adds per element in a fixed order, so they are bit-identical across
///    EVERY tier, scalar included — vectorization changes only how many
///    elements move per instruction.
///  - Only the lane-accumulated reductions (Dot, Dot3, Sum, GatherDot,
///    GatherDot3) differ between tiers, and only to rounding: wider
///    accumulators reorder the sum by a few ULP (tests/simd_test.cc pins
///    the bound).
///  - The log-domain primitives below evaluate e^x with ONE shared
///    polynomial (simd_exp.h) in every tier, scalar included, so their
///    per-element values are bit-identical across tiers; the max
///    reductions are exactly associative and thus bit-identical
///    everywhere, and the exp-sum reductions differ only by the usual
///    lane-accumulator sum reordering.
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Lower-case name of an ISA ("scalar", "avx2", "avx512", "neon").
const char* IsaName(Isa isa);

/// The ISA the dispatched primitives currently run on.
Isa ActiveIsa();
const char* ActiveIsaName();

/// True when `isa` was compiled in and the CPU can run it.
bool IsaSupported(Isa isa);

/// Every supported ISA, scalar first — what tests/benches iterate over.
std::vector<Isa> SupportedIsas();

/// Forces the dispatch to `isa` (no-op returning false when unsupported).
/// For tests and benches comparing tiers; production code never calls it.
/// Not thread-safe against concurrently running primitives.
bool SetIsa(Isa isa);

// ------------------------------------------------------------ reductions --

/// Σ a[i]·b[i].
double Dot(const double* a, const double* b, size_t n);

/// Σ (a[i]·b[i])·c[i] — the dense ⟨C, u∘K∘v⟩ row kernel.
double Dot3(const double* a, const double* b, const double* c, size_t n);

/// Σ a[i].
double Sum(const double* a, size_t n);

/// Σ vals[k]·x[idx[k]] — the CSR/CSC row (column) gather kernel.
double GatherDot(const double* vals, const size_t* idx, const double* x,
                 size_t n);

/// Σ vals[k]·x[idx[k]] accumulated in strictly sequential element order —
/// the CSC transpose-apply kernel. Unlike GatherDot it never reorders the
/// sum: one rounded multiply and one rounded add per element, exactly the
/// chain AxpyRows applies to each output, so at full support the sparse
/// transpose-apply is bit-identical to the dense one. The chain is
/// latency-bound and identical in every tier (it is not dispatched) — the
/// price of that exactness is that this one gather cannot use
/// lane-parallel accumulators.
double GatherDotSequential(const double* vals, const size_t* idx,
                           const double* x, size_t n);

/// Σ (a[k]·b[k])·x[idx[k]] — the sparse transport-cost row kernel
/// (a = streamed costs, b = kernel values, x = v gathered at the support).
double GatherDot3(const double* a, const double* b, const size_t* idx,
                  const double* x, size_t n);

// ------------------------------------------- log-domain (LSE) reductions --
//
// The LogTransportKernel hot loops: a streamed log-sum-exp is one max
// reduction followed by one shifted exp-sum reduction. The exp inside is
// the shared PolyExp of simd_exp.h — the SAME polynomial in every tier,
// scalar included — so per-element values are bit-identical across tiers
// and only the sum order differs (max is exactly associative, so the max
// reductions are bit-identical everywhere). PolyExp's domain contract
// applies: elements below ~-708 (including -inf; the "impossible move"
// convention) contribute exactly 0, NaN elements flush to 0.

/// max a[i]; −inf when n = 0.
double MaxReduce(const double* a, size_t n);

/// max (a[i] + b[i]) — the dense LSE max pass over L_row + lv; −inf when
/// n = 0.
double AddMaxReduce(const double* a, const double* b, size_t n);

/// max (vals[k] + x[idx[k]]) — the CSR/CSC mirror of AddMaxReduce; −inf
/// when n = 0.
double GatherAddMaxReduce(const double* vals, const size_t* idx,
                          const double* x, size_t n);

/// Σ PolyExp(a[i] − shift).
double ExpSumShifted(const double* a, double shift, size_t n);

/// Σ PolyExp(a[i] + b[i] − shift) — the dense LSE sum pass (shift = the
/// row max, so every element is ≤ 0 and at least one is exactly 0).
double AddExpSumShifted(const double* a, const double* b, double shift,
                        size_t n);

/// Σ PolyExp(vals[k] + x[idx[k]] − shift) — the CSR/CSC mirror.
double GatherAddExpSumShifted(const double* vals, const size_t* idx,
                              const double* x, double shift, size_t n);

// ----------------------------------------- log-domain elementwise strips --
//
// The dense LogApplyTranspose runs column strips in two passes (max, then
// exp-sum) with these accumulators. Each output element sees the rows in
// ascending order with identical per-element arithmetic in every tier, so
// — like Axpy/AxpyRows — these are bit-identical across ALL tiers.

/// mx[i] = max(mx[i], a[i] + c) — one row's contribution to a column
/// strip's running max.
void AddMaxAccumulate(double c, const double* a, double* mx, size_t n);

/// acc[i] += PolyExp(a[i] + c − shift[i]) — one row's contribution to a
/// column strip's shifted exp-sum (shift = the strip's column maxima).
void AddExpSumAccumulate(double c, const double* a, const double* shift,
                         double* acc, size_t n);

/// out[i] = PolyExp(a[i] + b[i] + shift) — the log-domain ScaleToPlan /
/// TransportCost row kernel (π_ij = e^{lu_i + L_ij + lv_j}); −inf inputs
/// yield exactly 0.
void AddExpWrite(double shift, const double* a, const double* b, double* out,
                 size_t n);

// ----------------------------------------------------------- elementwise --

/// y[i] += c·a[i] (separately rounded multiply and add per element —
/// bit-identical in every tier).
void Axpy(double c, const double* a, double* y, size_t n);

/// y[i] += Σ_r coeffs[r]·base[r·row_stride + i] for i in [0, n) — the
/// dense ApplyTranspose kernel: `num_rows` rows of a row-major matrix
/// accumulated into one output strip, rows in ascending order with the
/// same per-element mul+add chain as Axpy. Vector tiers block two rows
/// per pass (halving the y read/write traffic); the blocking never
/// changes the per-element accumulation order, so every tier — scalar's
/// plain row-at-a-time sweep included — produces bit-identical output.
/// Rows with coefficient exactly 0.0 are skipped without reading the row,
/// in every tier (zero-mass marginals stay cheap, and 0·inf/0·NaN can
/// never poison the accumulator); the skip is part of the primitive's
/// semantics, so the cross-tier bit-identity holds for any row data.
void AxpyRows(const double* coeffs, const double* base, size_t row_stride,
              size_t num_rows, double* y, size_t n);

/// out[i] = a[i]·b[i].
void Hadamard(const double* a, const double* b, double* out, size_t n);

/// out[i] = (s·a[i])·b[i] — the diag(u)·K·diag(v) row kernel.
void ScaledHadamard(double s, const double* a, const double* b, double* out,
                    size_t n);

/// out[k] = (s·vals[k])·x[idx[k]] — the CSR ScaleToPlan row kernel.
void GatherScaledHadamard(double s, const double* vals, const size_t* idx,
                          const double* x, double* out, size_t n);

// ------------------------------------------------- f32 kernel-tier lanes --
//
// Float-STORAGE variants of the kernel hot loops for the opt-in
// Precision::kFloat32 tier (see precision.h). Only the kernel operand is
// float — marginals, potentials, costs, and outputs stay double, and every
// float lane is widened to double (an exact conversion) before it enters
// any arithmetic, so each variant reuses its f64 twin's accumulation recipe
// verbatim and inherits the same determinism contract per (tier, precision).
// Halving the kernel's bytes-per-entry doubles the elements per vector load
// on exactly the loops BENCH_simd_kernel.json shows memory-bound.
//
// One deliberate asymmetry: the f32 sparse transpose-apply uses the
// lane-parallel GatherDotF32 below rather than a sequential chain, because
// the f64 GatherDotSequential exists only to make sparse-at-full-support
// bit-match the dense path — an f64-specific contract the f32 tier does not
// carry (its dense kernel rounds entries differently than its CSR mirror
// would require). Dropping the latency-bound chain is where the f32
// sparse_applyT speedup comes from; per (tier, f32) determinism still holds
// because each output column is one fixed-recipe reduction.

/// Σ a[k]·b[k] with float a.
double DotF32(const float* a, const double* b, size_t n);

/// Σ (a[i]·b[i])·c[i] with float kernel b (a = costs, c = v).
double Dot3F32(const double* a, const float* b, const double* c, size_t n);

/// Σ vals[k]·x[idx[k]] with float vals — the f32 CSR row kernel AND the
/// f32 CSC transpose-apply kernel (see the asymmetry note above).
double GatherDotF32(const float* vals, const size_t* idx, const double* x,
                    size_t n);

/// Σ (a[k]·b[k])·x[idx[k]] with float kernel b (a = support costs).
double GatherDot3F32(const double* a, const float* b, const size_t* idx,
                     const double* x, size_t n);

/// y[i] += Σ_r coeffs[r]·base[r·row_stride + i] with a float matrix —
/// the f32 dense ApplyTranspose kernel. Same two-row blocking and
/// zero-coefficient row skip as AxpyRows.
void AxpyRowsF32(const double* coeffs, const float* base, size_t row_stride,
                 size_t num_rows, double* y, size_t n);

/// out[i] = (s·a[i])·b[i] with float kernel a.
void ScaledHadamardF32(double s, const float* a, const double* b, double* out,
                       size_t n);

/// out[k] = (s·vals[k])·x[idx[k]] with float vals.
void GatherScaledHadamardF32(double s, const float* vals, const size_t* idx,
                             const double* x, double* out, size_t n);

/// max (a[i] + b[i]) with float log-kernel a; −inf when n = 0.
double AddMaxReduceF32(const float* a, const double* b, size_t n);

/// Σ PolyExp(a[i] + b[i] − shift) with float log-kernel a.
double AddExpSumShiftedF32(const float* a, const double* b, double shift,
                           size_t n);

/// max (vals[k] + x[idx[k]]) with float vals; −inf when n = 0.
double GatherAddMaxReduceF32(const float* vals, const size_t* idx,
                             const double* x, size_t n);

/// Σ PolyExp(vals[k] + x[idx[k]] − shift) with float vals.
double GatherAddExpSumShiftedF32(const float* vals, const size_t* idx,
                                 const double* x, double shift, size_t n);

/// mx[i] = max(mx[i], a[i] + c) with float log-kernel row a.
void AddMaxAccumulateF32(double c, const float* a, double* mx, size_t n);

/// acc[i] += PolyExp(a[i] + c − shift[i]) with float log-kernel row a.
void AddExpSumAccumulateF32(double c, const float* a, const double* shift,
                            double* acc, size_t n);

/// out[i] = PolyExp(a[i] + b[i] + shift) with float log-kernel row a.
void AddExpWriteF32(double shift, const float* a, const double* b,
                    double* out, size_t n);

namespace detail {

/// The dispatch table one ISA translation unit fills in.
struct SimdOps {
  double (*dot)(const double*, const double*, size_t);
  double (*dot3)(const double*, const double*, const double*, size_t);
  double (*sum)(const double*, size_t);
  double (*gather_dot)(const double*, const size_t*, const double*, size_t);
  double (*gather_dot3)(const double*, const double*, const size_t*,
                        const double*, size_t);
  void (*axpy)(double, const double*, double*, size_t);
  void (*axpy_rows)(const double*, const double*, size_t, size_t, double*,
                    size_t);
  void (*hadamard)(const double*, const double*, double*, size_t);
  void (*scaled_hadamard)(double, const double*, const double*, double*,
                          size_t);
  void (*gather_scaled_hadamard)(double, const double*, const size_t*,
                                 const double*, double*, size_t);
  double (*max_reduce)(const double*, size_t);
  double (*add_max_reduce)(const double*, const double*, size_t);
  double (*gather_add_max_reduce)(const double*, const size_t*, const double*,
                                  size_t);
  double (*exp_sum_shifted)(const double*, double, size_t);
  double (*add_exp_sum_shifted)(const double*, const double*, double, size_t);
  double (*gather_add_exp_sum_shifted)(const double*, const size_t*,
                                       const double*, double, size_t);
  void (*add_max_accumulate)(double, const double*, double*, size_t);
  void (*add_exp_sum_accumulate)(double, const double*, const double*,
                                 double*, size_t);
  void (*add_exp_write)(double, const double*, const double*, double*,
                        size_t);
  // f32 kernel-tier lanes (float storage, double accumulation).
  double (*dot_f32)(const float*, const double*, size_t);
  double (*dot3_f32)(const double*, const float*, const double*, size_t);
  double (*gather_dot_f32)(const float*, const size_t*, const double*, size_t);
  double (*gather_dot3_f32)(const double*, const float*, const size_t*,
                            const double*, size_t);
  void (*axpy_rows_f32)(const double*, const float*, size_t, size_t, double*,
                        size_t);
  void (*scaled_hadamard_f32)(double, const float*, const double*, double*,
                              size_t);
  void (*gather_scaled_hadamard_f32)(double, const float*, const size_t*,
                                     const double*, double*, size_t);
  double (*add_max_reduce_f32)(const float*, const double*, size_t);
  double (*add_exp_sum_shifted_f32)(const float*, const double*, double,
                                    size_t);
  double (*gather_add_max_reduce_f32)(const float*, const size_t*,
                                      const double*, size_t);
  double (*gather_add_exp_sum_shifted_f32)(const float*, const size_t*,
                                           const double*, double, size_t);
  void (*add_max_accumulate_f32)(double, const float*, double*, size_t);
  void (*add_exp_sum_accumulate_f32)(double, const float*, const double*,
                                     double*, size_t);
  void (*add_exp_write_f32)(double, const float*, const double*, double*,
                            size_t);
};

/// Per-ISA tables; null when the TU was compiled without that ISA (wrong
/// architecture or missing compiler flags). CPU support is checked
/// separately at dispatch time.
const SimdOps* GetScalarOps();
const SimdOps* GetAvx2Ops();
const SimdOps* GetAvx512Ops();
const SimdOps* GetNeonOps();

}  // namespace detail

}  // namespace otclean::linalg::simd

#endif  // OTCLEAN_LINALG_SIMD_H_
