#include "fairness/metrics.h"

#include <array>
#include <cmath>

namespace otclean::fairness {

namespace {
Status ValidateInputs(const FairnessInputs& inputs) {
  if (inputs.table == nullptr) {
    return Status::InvalidArgument("fairness: table is null");
  }
  if (inputs.scores.size() != inputs.table->num_rows()) {
    return Status::InvalidArgument("fairness: scores/table size mismatch");
  }
  if (inputs.table->schema().column(inputs.sensitive_col).cardinality() != 2) {
    return Status::InvalidArgument("fairness: sensitive column must be binary");
  }
  return Status::OK();
}
}  // namespace

Result<double> LogRod(const FairnessInputs& inputs) {
  OTCLEAN_RETURN_NOT_OK(ValidateInputs(inputs));
  const dataset::Table& t = *inputs.table;

  const prob::Domain adm_dom = t.schema().ToDomain(inputs.admissible_cols);
  const size_t num_strata = adm_dom.TotalSize();
  // Per (stratum, group): score sum and count. Using mean scores rather
  // than thresholded predictions keeps P(Ŷ=1 | S, a) away from the 0/1
  // boundary, where the odds-ratio estimator degenerates on thin strata.
  std::vector<std::array<double, 2>> score_sum(num_strata, {0.0, 0.0});
  std::vector<std::array<double, 2>> count(num_strata, {0.0, 0.0});

  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int s = t.Value(r, inputs.sensitive_col);
    if (s == dataset::kMissing) continue;
    size_t a = 0;
    if (!t.EncodeRow(r, inputs.admissible_cols, adm_dom, &a)) continue;
    score_sum[a][static_cast<size_t>(s)] += inputs.scores[r];
    count[a][static_cast<size_t>(s)] += 1.0;
  }

  // Population-weighted mean of per-stratum odds ratios over strata that
  // contain both groups.
  double ratio_sum = 0.0;
  double weight_sum = 0.0;
  constexpr double kClamp = 1e-3;
  for (size_t a = 0; a < num_strata; ++a) {
    if (count[a][0] <= 0.0 || count[a][1] <= 0.0) continue;
    double m0 = score_sum[a][0] / count[a][0];  // P(Ŷ=1 | S=0, a)
    double m1 = score_sum[a][1] / count[a][1];  // P(Ŷ=1 | S=1, a)
    m0 = std::min(1.0 - kClamp, std::max(kClamp, m0));
    m1 = std::min(1.0 - kClamp, std::max(kClamp, m1));
    const double ratio = (m0 * (1.0 - m1)) / ((1.0 - m0) * m1);
    const double w = count[a][0] + count[a][1];
    ratio_sum += w * ratio;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    return Status::InvalidArgument(
        "LogRod: no admissible stratum contains both groups");
  }
  return std::log(ratio_sum / weight_sum);
}

Result<double> EqualityOfOddsGap(const FairnessInputs& inputs,
                                 size_t label_col) {
  OTCLEAN_RETURN_NOT_OK(ValidateInputs(inputs));
  const dataset::Table& t = *inputs.table;
  // [s][y][yhat]
  double counts[2][2][2] = {};
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int s = t.Value(r, inputs.sensitive_col);
    const int y = t.Value(r, label_col);
    if (s == dataset::kMissing || y == dataset::kMissing) continue;
    const int yhat = inputs.scores[r] >= inputs.threshold ? 1 : 0;
    counts[s][y][yhat] += 1.0;
  }
  auto rate = [&](int s, int y) {
    const double denom = counts[s][y][0] + counts[s][y][1];
    return denom > 0.0 ? counts[s][y][1] / denom : 0.0;
  };
  const double tpr_gap = std::fabs(rate(0, 1) - rate(1, 1));
  const double fpr_gap = std::fabs(rate(0, 0) - rate(1, 0));
  return 0.5 * (tpr_gap + fpr_gap);
}

Result<double> DemographicParityGap(const FairnessInputs& inputs) {
  OTCLEAN_RETURN_NOT_OK(ValidateInputs(inputs));
  const dataset::Table& t = *inputs.table;
  double pos[2] = {0.0, 0.0};
  double tot[2] = {0.0, 0.0};
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int s = t.Value(r, inputs.sensitive_col);
    if (s == dataset::kMissing) continue;
    tot[s] += 1.0;
    if (inputs.scores[r] >= inputs.threshold) pos[s] += 1.0;
  }
  const double r0 = tot[0] > 0.0 ? pos[0] / tot[0] : 0.0;
  const double r1 = tot[1] > 0.0 ? pos[1] / tot[1] : 0.0;
  return std::fabs(r0 - r1);
}

}  // namespace otclean::fairness
