#ifndef OTCLEAN_FAIRNESS_MAXSAT_H_
#define OTCLEAN_FAIRNESS_MAXSAT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace otclean::fairness {

/// A weighted clause: positive literal +v / negative literal −v for
/// variable ids starting at 1.
struct Clause {
  std::vector<int> literals;
  double weight = 1.0;
};

/// A weighted partial MaxSAT instance: hard clauses must all hold; soft
/// clauses contribute their weight when satisfied.
struct MaxSatProblem {
  size_t num_vars = 0;
  std::vector<Clause> hard;
  std::vector<Clause> soft;
};

struct MaxSatOptions {
  size_t max_flips = 200000;
  size_t restarts = 3;
  /// WalkSAT noise: probability of a random (rather than greedy) flip.
  double noise = 0.25;
  uint64_t seed = 2024;
};

struct MaxSatResult {
  std::vector<bool> assignment;  ///< index 0 unused; [1..num_vars].
  double satisfied_soft_weight = 0.0;
  double total_soft_weight = 0.0;
  bool hard_satisfied = false;
  size_t flips = 0;
};

/// WalkSAT-style stochastic local search for weighted partial MaxSAT.
/// `initial` (if non-empty) seeds the first restart's assignment — useful
/// when a hard-feasible assignment is known by construction, as in the
/// Capuchin MVD encoding.
Result<MaxSatResult> SolveMaxSat(const MaxSatProblem& problem,
                                 const MaxSatOptions& options = {},
                                 const std::vector<bool>& initial = {});

}  // namespace otclean::fairness

#endif  // OTCLEAN_FAIRNESS_MAXSAT_H_
