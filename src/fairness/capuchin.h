#ifndef OTCLEAN_FAIRNESS_CAPUCHIN_H_
#define OTCLEAN_FAIRNESS_CAPUCHIN_H_

#include "common/random.h"
#include "common/result.h"
#include "core/ci_constraint.h"
#include "dataset/table.h"
#include "prob/independence.h"
#include "prob/joint.h"

namespace otclean::fairness {

/// Capuchin-style database-repair baselines (Salimi et al., SIGMOD 2019)
/// for a CI constraint σ : X ⟂ Y | Z. Both methods construct a
/// CI-consistent target distribution Q over the constraint attributes
/// U = X∪Y∪Z and materialize a repaired table of the same size by keeping
/// each row's X and Z and resampling its Y attributes from Q(Y | X, Z)
/// (= Q(Y | Z) for CI-consistent Q).
enum class CapuchinMethod {
  /// Cap(IC): the target is the product of the *initial* distribution's
  /// conditional marginals, Q(x,y|z) = P(x|z)·P(y|z).
  kIndependentCoupling,
  /// Cap(MF): each z-slice of the joint is replaced by its rank-one
  /// Frobenius-norm non-negative factorization.
  kMatrixFactorization,
};

struct CapuchinOptions {
  CapuchinMethod method = CapuchinMethod::kIndependentCoupling;
  /// NMF iteration budget (Cap(MF) only).
  size_t nmf_max_iterations = 500;
  uint64_t seed = 99;
};

/// Builds the CI-consistent Capuchin target distribution Q for `p` under
/// `ci` with the selected method: Cap(IC) is the I-projection onto the CI
/// manifold (product of conditional marginals); Cap(MF) replaces each
/// z-slice by its rank-one Frobenius NMF (consuming `rng`, Cap(MF) only).
/// This is the shared target-construction step — CapuchinRepair resamples
/// from it directly, and the repair layer (core/repair.h) wraps it in a
/// TransportPlan so fairness baselines report through the same plan-based
/// machinery as the OT solvers.
Result<prob::JointDistribution> CapuchinTarget(
    const prob::JointDistribution& p, const prob::CiSpec& ci,
    CapuchinMethod method, size_t nmf_max_iterations, Rng& rng);

/// Repairs `table` to satisfy `constraint` with the selected Capuchin
/// method. The output has the same schema and row count.
Result<dataset::Table> CapuchinRepair(const dataset::Table& table,
                                      const core::CiConstraint& constraint,
                                      const CapuchinOptions& options = {});

}  // namespace otclean::fairness

#endif  // OTCLEAN_FAIRNESS_CAPUCHIN_H_
