#include "fairness/cap_maxsat.h"

#include <cassert>

#include "prob/independence.h"

namespace otclean::fairness {

Result<CapMaxSatReport> CapMaxSatRepair(const dataset::Table& table,
                                        const core::CiConstraint& constraint,
                                        const CapMaxSatOptions& options) {
  const dataset::Schema& schema = table.schema();
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> u_cols,
                           constraint.ResolveColumns(schema));
  const prob::Domain u_dom = schema.ToDomain(u_cols);
  const prob::CiSpec spec = constraint.SpecInProjectedDomain();

  const size_t dx = u_dom.Project(spec.x).TotalSize();
  const size_t dy = u_dom.Project(spec.y).TotalSize();
  const size_t dz = spec.z.empty() ? 1 : u_dom.Project(spec.z).TotalSize();

  // Tuple counts per (x, y, z).
  std::vector<double> counts(dx * dy * dz, 0.0);
  auto cell_of = [&](size_t xi, size_t yi, size_t zi) {
    return (zi * dx + xi) * dy + yi;
  };
  std::vector<size_t> row_cell(table.num_rows(), SIZE_MAX);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    size_t u_cell = 0;
    if (!table.EncodeRow(r, u_cols, u_dom, &u_cell)) continue;
    const size_t xi = u_dom.ProjectIndex(u_cell, spec.x);
    const size_t yi = u_dom.ProjectIndex(u_cell, spec.y);
    const size_t zi = spec.z.empty() ? 0 : u_dom.ProjectIndex(u_cell, spec.z);
    const size_t c = cell_of(xi, yi, zi);
    row_cell[r] = c;
    counts[c] += 1.0;
  }

  // Variable layout (1-based): a_{x,z} first, then b_{y,z}, then t_{x,y,z}.
  auto var_a = [&](size_t xi, size_t zi) { return 1 + zi * dx + xi; };
  auto var_b = [&](size_t yi, size_t zi) { return 1 + dx * dz + zi * dy + yi; };
  auto var_t = [&](size_t xi, size_t yi, size_t zi) {
    return 1 + dx * dz + dy * dz + cell_of(xi, yi, zi);
  };

  MaxSatProblem problem;
  problem.num_vars = dx * dz + dy * dz + dx * dy * dz;
  for (size_t zi = 0; zi < dz; ++zi) {
    for (size_t xi = 0; xi < dx; ++xi) {
      for (size_t yi = 0; yi < dy; ++yi) {
        const int t = static_cast<int>(var_t(xi, yi, zi));
        const int a = static_cast<int>(var_a(xi, zi));
        const int b = static_cast<int>(var_b(yi, zi));
        problem.hard.push_back({{-t, a}, 1.0});
        problem.hard.push_back({{-t, b}, 1.0});
        problem.hard.push_back({{-a, -b, t}, 1.0});

        const double count = counts[cell_of(xi, yi, zi)];
        if (count > 0.0) {
          problem.soft.push_back({{t}, count});
        } else {
          problem.soft.push_back({{-t}, 1.0});
        }
      }
    }
  }

  // Hard-feasible initial assignment: the closure of the observed relation
  // (t = a ∧ b with a, b read off the data).
  std::vector<bool> initial(problem.num_vars + 1, false);
  for (size_t zi = 0; zi < dz; ++zi) {
    for (size_t xi = 0; xi < dx; ++xi) {
      for (size_t yi = 0; yi < dy; ++yi) {
        if (counts[cell_of(xi, yi, zi)] > 0.0) {
          initial[var_a(xi, zi)] = true;
          initial[var_b(yi, zi)] = true;
        }
      }
    }
  }
  for (size_t zi = 0; zi < dz; ++zi) {
    for (size_t xi = 0; xi < dx; ++xi) {
      for (size_t yi = 0; yi < dy; ++yi) {
        initial[var_t(xi, yi, zi)] =
            initial[var_a(xi, zi)] && initial[var_b(yi, zi)];
      }
    }
  }

  MaxSatOptions ms = options.maxsat;
  ms.seed = options.seed;
  OTCLEAN_ASSIGN_OR_RETURN(MaxSatResult sat,
                           SolveMaxSat(problem, ms, initial));

  CapMaxSatReport report{dataset::Table(schema), 0, 0, sat.hard_satisfied};

  // Decode: keep rows whose cell survives; then insert one row per newly
  // asserted cell (with non-constraint attributes sampled from the data).
  Rng rng(options.seed ^ 0x5eedf00dull);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const size_t c = row_cell[r];
    if (c != SIZE_MAX &&
        !sat.assignment[1 + dx * dz + dy * dz + c]) {
      ++report.deleted_rows;
      continue;
    }
    OTCLEAN_RETURN_NOT_OK(report.repaired.AppendRow(table.Row(r)));
  }
  for (size_t zi = 0; zi < dz; ++zi) {
    for (size_t xi = 0; xi < dx; ++xi) {
      for (size_t yi = 0; yi < dy; ++yi) {
        const size_t c = cell_of(xi, yi, zi);
        if (counts[c] > 0.0 || !sat.assignment[1 + dx * dz + dy * dz + c]) {
          continue;
        }
        // Inserted tuple: decode U-values; remaining attributes copied from
        // a random existing row.
        std::vector<int> row =
            table.num_rows() > 0
                ? table.Row(rng.NextUint64Below(table.num_rows()))
                : std::vector<int>(schema.num_columns(), 0);
        // Rebuild the U cell index from (xi, yi, zi):
        // u_dom attribute order is X..., Y..., Z..., so the flat index is
        // ((xi * dy) + yi) with z interleaved — reconstruct via decode of
        // sub-domains.
        const std::vector<int> xv = u_dom.Project(spec.x).Decode(xi);
        const std::vector<int> yv = u_dom.Project(spec.y).Decode(yi);
        std::vector<int> zv;
        if (!spec.z.empty()) zv = u_dom.Project(spec.z).Decode(zi);
        size_t k = 0;
        for (int v : xv) row[u_cols[k++]] = v;
        for (int v : yv) row[u_cols[k++]] = v;
        for (int v : zv) row[u_cols[k++]] = v;
        OTCLEAN_RETURN_NOT_OK(report.repaired.AppendRow(row));
        ++report.inserted_rows;
      }
    }
  }
  return report;
}

}  // namespace otclean::fairness
