#include "fairness/capuchin.h"

#include <cassert>

#include "nmf/frobenius_nmf.h"
#include "prob/independence.h"

namespace otclean::fairness {

namespace {

/// Builds the Cap(MF) target: per-z-slice rank-one Frobenius NMF of the
/// joint over (X, Y).
Result<prob::JointDistribution> MatrixFactorizationTarget(
    const prob::JointDistribution& p, const prob::CiSpec& ci,
    size_t nmf_max_iterations, Rng& rng) {
  const prob::Domain& dom = p.domain();
  const size_t dx = dom.Project(ci.x).TotalSize();
  const size_t dy = dom.Project(ci.y).TotalSize();
  const size_t dz = ci.z.empty() ? 1 : dom.Project(ci.z).TotalSize();

  std::vector<linalg::Matrix> slices(dz, linalg::Matrix(dx, dy, 0.0));
  for (size_t cell = 0; cell < p.size(); ++cell) {
    const double v = p[cell];
    if (v <= 0.0) continue;
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    slices[zi](xi, yi) += v;
  }

  nmf::FrobeniusNmfOptions opts;
  opts.rank = 1;
  opts.max_iterations = nmf_max_iterations;
  std::vector<linalg::Matrix> approx(dz, linalg::Matrix(dx, dy, 0.0));
  for (size_t zi = 0; zi < dz; ++zi) {
    const double slice_mass = slices[zi].Sum();
    if (slice_mass <= 0.0) continue;
    OTCLEAN_ASSIGN_OR_RETURN(nmf::FrobeniusNmfResult r,
                             nmf::FrobeniusNmf(slices[zi], opts, rng));
    linalg::Matrix a = linalg::Matrix::OuterProduct(r.w.Col(0), r.h.Row(0));
    // Rescale so slice masses are preserved (factorization is rank-one and
    // therefore CI-consistent within the slice regardless of scale).
    const double approx_mass = a.Sum();
    if (approx_mass > 0.0) a *= slice_mass / approx_mass;
    approx[zi] = std::move(a);
  }

  prob::JointDistribution q(dom);
  const prob::JointDistribution rest = p.ConditionalOn([&] {
    std::vector<size_t> xyz = ci.x;
    xyz.insert(xyz.end(), ci.y.begin(), ci.y.end());
    xyz.insert(xyz.end(), ci.z.begin(), ci.z.end());
    return xyz;
  }());
  for (size_t cell = 0; cell < q.size(); ++cell) {
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    q[cell] = approx[zi](xi, yi) * rest[cell];
  }
  q.Normalize();
  return q;
}

}  // namespace

Result<prob::JointDistribution> CapuchinTarget(
    const prob::JointDistribution& p, const prob::CiSpec& ci,
    CapuchinMethod method, size_t nmf_max_iterations, Rng& rng) {
  if (method == CapuchinMethod::kIndependentCoupling) {
    return prob::CiProjection(p, ci);
  }
  return MatrixFactorizationTarget(p, ci, nmf_max_iterations, rng);
}

Result<dataset::Table> CapuchinRepair(const dataset::Table& table,
                                      const core::CiConstraint& constraint,
                                      const CapuchinOptions& options) {
  const dataset::Schema& schema = table.schema();
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> u_cols,
                           constraint.ResolveColumns(schema));
  const prob::Domain u_dom = schema.ToDomain(u_cols);
  const prob::JointDistribution p = table.Empirical(u_cols);
  if (p.Mass() <= 0.0) {
    return Status::InvalidArgument("CapuchinRepair: no complete rows");
  }
  const prob::CiSpec spec = constraint.SpecInProjectedDomain();

  Rng rng(options.seed);
  OTCLEAN_ASSIGN_OR_RETURN(
      prob::JointDistribution q,
      CapuchinTarget(p, spec, options.method, options.nmf_max_iterations,
                     rng));

  // Materialize: for each row, keep X (sensitive) and Z (admissible) and
  // resample the Y attributes from the target conditional Q(Y | X, Z) — for
  // a CI-consistent Q this equals Q(Y | Z), which removes exactly the
  // X→Y dependence the constraint forbids while preserving every other
  // attribute (and hence the admissible↔label relationships).
  const prob::Domain y_dom = u_dom.Project(spec.y);
  const size_t num_y_cells = y_dom.TotalSize();
  dataset::Table out(schema);
  std::vector<double> weights(num_y_cells, 0.0);
  std::vector<int> u_values(u_cols.size(), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<int> row = table.Row(r);
    bool complete = true;
    for (size_t i = 0; i < u_cols.size(); ++i) {
      u_values[i] = row[u_cols[i]];
      if (u_values[i] == dataset::kMissing) complete = false;
    }
    if (complete) {
      // Conditional over Y cells with this row's X and Z fixed.
      double total = 0.0;
      for (size_t yc = 0; yc < num_y_cells; ++yc) {
        const std::vector<int> yv = y_dom.Decode(yc);
        for (size_t i = 0; i < spec.y.size(); ++i) {
          u_values[spec.y[i]] = yv[i];
        }
        weights[yc] = q[u_dom.Encode(u_values)];
        total += weights[yc];
      }
      if (total > 0.0) {
        const std::vector<int> yv =
            y_dom.Decode(rng.NextCategorical(weights));
        for (size_t i = 0; i < spec.y.size(); ++i) {
          row[u_cols[spec.y[i]]] = yv[i];
        }
      }
    }
    OTCLEAN_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

}  // namespace otclean::fairness
