#ifndef OTCLEAN_FAIRNESS_CAP_MAXSAT_H_
#define OTCLEAN_FAIRNESS_CAP_MAXSAT_H_

#include "common/result.h"
#include "core/ci_constraint.h"
#include "dataset/table.h"
#include "fairness/maxsat.h"

namespace otclean::fairness {

/// Cap(MS): Capuchin's MaxSAT repair. A saturated CI constraint
/// X ⟂ Y | Z over the empirical distribution is equivalent to the MVD
/// Z ↠ X: within every z-slice, the set of present (x, y) pairs must be a
/// cross product {x present} × {y present}.
///
/// Encoding, per z-slice:
///   variables  a_{x,z} ("some tuple with x exists"), b_{y,z}, t_{x,y,z};
///   hard       t ↔ a ∧ b  (three clauses);
///   soft       t_{x,y,z} with weight = tuple count for observed cells,
///              ¬t_{x,y,z} with weight 1 for unobserved cells
/// so the optimum minimizes deletions (weighted by multiplicity) plus
/// insertions — Capuchin's minimal tuple add/remove repair.
struct CapMaxSatOptions {
  MaxSatOptions maxsat;
  uint64_t seed = 77;
};

struct CapMaxSatReport {
  dataset::Table repaired;
  size_t deleted_rows = 0;
  size_t inserted_rows = 0;
  bool hard_satisfied = false;
};

Result<CapMaxSatReport> CapMaxSatRepair(const dataset::Table& table,
                                        const core::CiConstraint& constraint,
                                        const CapMaxSatOptions& options = {});

}  // namespace otclean::fairness

#endif  // OTCLEAN_FAIRNESS_CAP_MAXSAT_H_
