#include "fairness/maxsat.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace otclean::fairness {

namespace {

/// Evaluation state: clause satisfaction counts with incremental updates.
class SearchState {
 public:
  SearchState(const MaxSatProblem& problem, double hard_weight)
      : problem_(problem), hard_weight_(hard_weight) {
    // Combined clause list: hard clauses carry a large synthetic weight.
    for (const auto& c : problem.hard) {
      clauses_.push_back(&c);
      weights_.push_back(hard_weight_ * std::max(1.0, c.weight));
      is_hard_.push_back(true);
    }
    for (const auto& c : problem.soft) {
      clauses_.push_back(&c);
      weights_.push_back(c.weight);
      is_hard_.push_back(false);
    }
    occurs_.assign(problem.num_vars + 1, {});
    for (size_t ci = 0; ci < clauses_.size(); ++ci) {
      for (int lit : clauses_[ci]->literals) {
        occurs_[static_cast<size_t>(std::abs(lit))].push_back(ci);
      }
    }
  }

  void Reset(const std::vector<bool>& assignment) {
    assignment_ = assignment;
    sat_count_.assign(clauses_.size(), 0);
    unsat_cost_ = 0.0;
    unsat_clauses_.clear();
    clause_pos_.assign(clauses_.size(), SIZE_MAX);
    for (size_t ci = 0; ci < clauses_.size(); ++ci) {
      int count = 0;
      for (int lit : clauses_[ci]->literals) {
        if (LiteralTrue(lit)) ++count;
      }
      sat_count_[ci] = count;
      if (count == 0) AddUnsat(ci);
    }
  }

  bool LiteralTrue(int lit) const {
    const size_t v = static_cast<size_t>(std::abs(lit));
    return lit > 0 ? assignment_[v] : !assignment_[v];
  }

  /// Cost delta (negative is good) of flipping variable v.
  double FlipDelta(size_t v) const {
    double delta = 0.0;
    for (size_t ci : occurs_[v]) {
      int lit_sign = 0;
      for (int lit : clauses_[ci]->literals) {
        if (static_cast<size_t>(std::abs(lit)) == v) {
          lit_sign = lit > 0 ? 1 : -1;
          break;
        }
      }
      const bool currently_true =
          (lit_sign > 0) ? assignment_[v] : !assignment_[v];
      if (currently_true) {
        if (sat_count_[ci] == 1) delta += weights_[ci];  // becomes unsat
      } else {
        if (sat_count_[ci] == 0) delta -= weights_[ci];  // becomes sat
      }
    }
    return delta;
  }

  void Flip(size_t v) {
    assignment_[v] = !assignment_[v];
    for (size_t ci : occurs_[v]) {
      int lit_sign = 0;
      for (int lit : clauses_[ci]->literals) {
        if (static_cast<size_t>(std::abs(lit)) == v) {
          lit_sign = lit > 0 ? 1 : -1;
          break;
        }
      }
      const bool now_true = (lit_sign > 0) ? assignment_[v] : !assignment_[v];
      if (now_true) {
        if (sat_count_[ci] == 0) RemoveUnsat(ci);
        ++sat_count_[ci];
      } else {
        --sat_count_[ci];
        if (sat_count_[ci] == 0) AddUnsat(ci);
      }
    }
  }

  double unsat_cost() const { return unsat_cost_; }
  const std::vector<size_t>& unsat_clauses() const { return unsat_clauses_; }
  const std::vector<bool>& assignment() const { return assignment_; }
  const Clause& clause(size_t ci) const { return *clauses_[ci]; }

  bool AllHardSatisfied() const {
    for (size_t ci = 0; ci < is_hard_.size(); ++ci) {
      if (is_hard_[ci] && sat_count_[ci] == 0) return false;
    }
    return true;
  }

  double SatisfiedSoftWeight() const {
    double w = 0.0;
    for (size_t ci = 0; ci < is_hard_.size(); ++ci) {
      if (!is_hard_[ci] && sat_count_[ci] > 0) w += clauses_[ci]->weight;
    }
    return w;
  }

 private:
  void AddUnsat(size_t ci) {
    clause_pos_[ci] = unsat_clauses_.size();
    unsat_clauses_.push_back(ci);
    unsat_cost_ += weights_[ci];
  }
  void RemoveUnsat(size_t ci) {
    const size_t pos = clause_pos_[ci];
    const size_t last = unsat_clauses_.back();
    unsat_clauses_[pos] = last;
    clause_pos_[last] = pos;
    unsat_clauses_.pop_back();
    clause_pos_[ci] = SIZE_MAX;
    unsat_cost_ -= weights_[ci];
  }

  const MaxSatProblem& problem_;
  double hard_weight_;
  std::vector<const Clause*> clauses_;
  std::vector<double> weights_;
  std::vector<bool> is_hard_;
  std::vector<std::vector<size_t>> occurs_;
  std::vector<bool> assignment_;
  std::vector<int> sat_count_;
  std::vector<size_t> unsat_clauses_;
  std::vector<size_t> clause_pos_;
  double unsat_cost_ = 0.0;
};

}  // namespace

Result<MaxSatResult> SolveMaxSat(const MaxSatProblem& problem,
                                 const MaxSatOptions& options,
                                 const std::vector<bool>& initial) {
  if (problem.num_vars == 0) {
    return Status::InvalidArgument("SolveMaxSat: no variables");
  }
  for (const auto* clauses : {&problem.hard, &problem.soft}) {
    for (const auto& c : *clauses) {
      if (c.literals.empty()) {
        return Status::InvalidArgument("SolveMaxSat: empty clause");
      }
      for (int lit : c.literals) {
        const size_t v = static_cast<size_t>(std::abs(lit));
        if (lit == 0 || v > problem.num_vars) {
          return Status::InvalidArgument("SolveMaxSat: bad literal");
        }
      }
    }
  }

  double total_soft = 0.0;
  for (const auto& c : problem.soft) total_soft += c.weight;
  const double hard_weight = 10.0 * (total_soft + 1.0);

  Rng rng(options.seed);
  SearchState state(problem, hard_weight);

  MaxSatResult best;
  best.total_soft_weight = total_soft;
  double best_cost = std::numeric_limits<double>::infinity();

  for (size_t restart = 0; restart < options.restarts; ++restart) {
    std::vector<bool> assignment(problem.num_vars + 1, false);
    if (restart == 0 && initial.size() == problem.num_vars + 1) {
      assignment = initial;
    } else {
      for (size_t v = 1; v <= problem.num_vars; ++v) {
        assignment[v] = rng.NextBernoulli(0.5);
      }
    }
    state.Reset(assignment);

    for (size_t flip = 0; flip < options.max_flips; ++flip) {
      if (state.unsat_cost() < best_cost) {
        best_cost = state.unsat_cost();
        best.assignment = state.assignment();
        best.hard_satisfied = state.AllHardSatisfied();
        best.satisfied_soft_weight = state.SatisfiedSoftWeight();
        best.flips = flip;
      }
      if (state.unsat_clauses().empty()) break;

      // Pick a random unsatisfied clause, then WalkSAT variable choice.
      const size_t ci = state.unsat_clauses()[rng.NextUint64Below(
          state.unsat_clauses().size())];
      const Clause& clause = state.clause(ci);
      size_t chosen = 0;
      if (rng.NextBernoulli(options.noise)) {
        const int lit =
            clause.literals[rng.NextUint64Below(clause.literals.size())];
        chosen = static_cast<size_t>(std::abs(lit));
      } else {
        double best_delta = std::numeric_limits<double>::infinity();
        for (int lit : clause.literals) {
          const size_t v = static_cast<size_t>(std::abs(lit));
          const double delta = state.FlipDelta(v);
          if (delta < best_delta) {
            best_delta = delta;
            chosen = v;
          }
        }
      }
      state.Flip(chosen);
    }
    // Final candidate of the restart.
    if (state.unsat_cost() < best_cost) {
      best_cost = state.unsat_cost();
      best.assignment = state.assignment();
      best.hard_satisfied = state.AllHardSatisfied();
      best.satisfied_soft_weight = state.SatisfiedSoftWeight();
    }
  }
  return best;
}

}  // namespace otclean::fairness
