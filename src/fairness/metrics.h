#ifndef OTCLEAN_FAIRNESS_METRICS_H_
#define OTCLEAN_FAIRNESS_METRICS_H_

#include <vector>

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::fairness {

/// Inputs for fairness metrics: per-row predictions (probabilities) from a
/// classifier scored on `table`, a binary sensitive column `sensitive_col`
/// (code 1 = protected group), and the admissible columns A.
struct FairnessInputs {
  const dataset::Table* table = nullptr;
  std::vector<double> scores;   ///< per-row P(Ŷ=1).
  size_t sensitive_col = 0;
  std::vector<size_t> admissible_cols;
  double threshold = 0.5;
};

/// log of the Ratio of Observational Discrimination (Salimi et al. 2019):
///   ROD = mean over admissible strata a of
///         [P(Ŷ=1|S=0,a)·P(Ŷ=0|S=1,a)] / [P(Ŷ=0|S=0,a)·P(Ŷ=1|S=1,a)],
/// returned as log(ROD); 0 means no observational discrimination. Strata
/// counts receive a Haldane–Anscombe 0.5 correction so empty cells do not
/// blow up the ratio.
Result<double> LogRod(const FairnessInputs& inputs);

/// Equality-of-odds gap: ½(|TPR₀−TPR₁| + |FPR₀−FPR₁|), using the label in
/// `label_col` as ground truth.
Result<double> EqualityOfOddsGap(const FairnessInputs& inputs,
                                 size_t label_col);

/// Demographic-parity gap |P(Ŷ=1|S=0) − P(Ŷ=1|S=1)|.
Result<double> DemographicParityGap(const FairnessInputs& inputs);

}  // namespace otclean::fairness

#endif  // OTCLEAN_FAIRNESS_METRICS_H_
