#ifndef OTCLEAN_DATASET_TABLE_H_
#define OTCLEAN_DATASET_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/schema.h"
#include "prob/joint.h"

namespace otclean::dataset {

/// Sentinel code for a missing value.
inline constexpr int kMissing = -1;

/// A columnar table of integer-coded categorical values. This is the
/// database `D` of the paper: a bag of tuples over a finite product domain.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Code at (row, col); kMissing if the cell is missing.
  int Value(size_t row, size_t col) const { return columns_[col][row]; }
  void SetValue(size_t row, size_t col, int code) { columns_[col][row] = code; }
  bool IsMissing(size_t row, size_t col) const {
    return columns_[col][row] == kMissing;
  }

  /// Whole column by index.
  const std::vector<int>& ColumnData(size_t col) const { return columns_[col]; }

  /// Appends a row of codes; must have num_columns() entries, each either
  /// kMissing or in range for its column.
  Status AppendRow(const std::vector<int>& codes);

  /// Row as a code vector.
  std::vector<int> Row(size_t row) const;

  /// Replaces an entire row.
  void SetRow(size_t row, const std::vector<int>& codes);

  /// Decoded label at (row, col); "?" for missing.
  std::string Label(size_t row, size_t col) const;

  /// True if any cell is missing.
  bool HasMissing() const;
  /// Number of missing cells.
  size_t CountMissing() const;

  /// Selects a subset of rows (by index) into a new table.
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Projects onto a subset of columns into a new table.
  Table SelectColumns(const std::vector<size_t>& cols) const;

  /// Empirical joint distribution over the given columns. Rows with a
  /// missing value in any selected column are skipped.
  prob::JointDistribution Empirical(const std::vector<size_t>& cols) const;

  /// Empirical joint over all columns.
  prob::JointDistribution Empirical() const;

  /// Encoded cell index of a row restricted to `cols` within
  /// schema().ToDomain(cols); returns false if any value is missing.
  bool EncodeRow(size_t row, const std::vector<size_t>& cols,
                 const prob::Domain& dom, size_t* out) const;

  /// Cell-exact equality of shape and codes (schema labels not compared) —
  /// the bit-identity check the determinism tests and benches share.
  bool SameContents(const Table& other) const {
    return num_rows_ == other.num_rows_ && columns_ == other.columns_;
  }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  /// columns_[c][r] = code of row r in column c.
  std::vector<std::vector<int>> columns_;
};

}  // namespace otclean::dataset

#endif  // OTCLEAN_DATASET_TABLE_H_
