#include "dataset/discretize.h"

#include <algorithm>
#include <cmath>

namespace otclean::dataset {

Result<Discretizer> Discretizer::Fit(const std::vector<double>& values,
                                     size_t num_bins,
                                     BinningStrategy strategy) {
  if (num_bins == 0) {
    return Status::InvalidArgument("Discretizer::Fit: num_bins must be >= 1");
  }
  std::vector<double> finite;
  finite.reserve(values.size());
  for (double v : values) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  if (finite.empty()) {
    return Status::InvalidArgument("Discretizer::Fit: no finite values");
  }
  Discretizer d;
  if (num_bins == 1) return d;

  if (strategy == BinningStrategy::kEqualWidth) {
    const auto [mn_it, mx_it] = std::minmax_element(finite.begin(), finite.end());
    const double mn = *mn_it, mx = *mx_it;
    if (mx <= mn) return d;  // constant column: single bin
    const double width = (mx - mn) / static_cast<double>(num_bins);
    for (size_t i = 1; i < num_bins; ++i) {
      d.edges_.push_back(mn + width * static_cast<double>(i));
    }
  } else {
    std::sort(finite.begin(), finite.end());
    for (size_t i = 1; i < num_bins; ++i) {
      const double q = static_cast<double>(i) / static_cast<double>(num_bins);
      const size_t pos = std::min(
          finite.size() - 1,
          static_cast<size_t>(q * static_cast<double>(finite.size())));
      const double edge = finite[pos];
      // Skip duplicate edges from heavy ties; fewer bins result.
      if (d.edges_.empty() || edge > d.edges_.back()) d.edges_.push_back(edge);
    }
  }
  return d;
}

int Discretizer::Transform(double value) const {
  if (!std::isfinite(value)) return kMissing;
  // First edge strictly greater than value determines the bin.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  return static_cast<int>(it - edges_.begin());
}

Result<DiscretizedColumn> DiscretizeColumn(const std::string& name,
                                           const std::vector<double>& values,
                                           size_t num_bins,
                                           BinningStrategy strategy) {
  OTCLEAN_ASSIGN_OR_RETURN(Discretizer disc,
                           Discretizer::Fit(values, num_bins, strategy));
  DiscretizedColumn out;
  out.column.name = name;
  for (size_t b = 0; b < disc.num_bins(); ++b) {
    out.column.categories.push_back("b" + std::to_string(b));
  }
  out.codes.reserve(values.size());
  for (double v : values) out.codes.push_back(disc.Transform(v));
  return out;
}

}  // namespace otclean::dataset
