#include "dataset/numeric.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace otclean::dataset {

Status NumericBridge::Fit(const std::vector<NumericColumn>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("NumericBridge::Fit: no columns");
  }
  const size_t n = columns[0].values.size();
  for (const auto& col : columns) {
    if (col.values.size() != n) {
      return Status::InvalidArgument(
          "NumericBridge::Fit: ragged column lengths");
    }
  }
  discretizers_.clear();
  col_min_.clear();
  col_max_.clear();
  names_.clear();
  for (const auto& col : columns) {
    OTCLEAN_ASSIGN_OR_RETURN(
        Discretizer disc,
        Discretizer::Fit(col.values, options_.bins, options_.strategy));
    discretizers_.push_back(std::move(disc));
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (double v : col.values) {
      if (!std::isfinite(v)) continue;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    col_min_.push_back(mn);
    col_max_.push_back(mx);
    names_.push_back(col.name);
  }
  fitted_ = true;
  return Status::OK();
}

Result<Table> NumericBridge::Encode(
    const std::vector<NumericColumn>& columns) const {
  if (!fitted_) {
    return Status::FailedPrecondition("NumericBridge::Encode before Fit");
  }
  if (columns.size() != discretizers_.size()) {
    return Status::InvalidArgument("NumericBridge::Encode: column mismatch");
  }
  std::vector<Column> schema_cols;
  for (size_t c = 0; c < columns.size(); ++c) {
    Column col;
    col.name = names_[c];
    for (size_t b = 0; b < discretizers_[c].num_bins(); ++b) {
      col.categories.push_back("b" + std::to_string(b));
    }
    schema_cols.push_back(std::move(col));
  }
  Table table{Schema(std::move(schema_cols))};
  const size_t n = columns[0].values.size();
  for (size_t r = 0; r < n; ++r) {
    std::vector<int> row(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      row[c] = discretizers_[c].Transform(columns[c].values[r]);
    }
    OTCLEAN_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

std::pair<double, double> NumericBridge::BinRange(size_t col, int code) const {
  const auto& edges = discretizers_[col].edges();
  const size_t b = static_cast<size_t>(code);
  const double lo = (b == 0) ? col_min_[col] : edges[b - 1];
  const double hi = (b == edges.size()) ? col_max_[col] : edges[b];
  return {lo, hi};
}

Result<std::vector<NumericColumn>> NumericBridge::Decode(
    const std::vector<NumericColumn>& original, const Table& repaired,
    Rng& rng) const {
  if (!fitted_) {
    return Status::FailedPrecondition("NumericBridge::Decode before Fit");
  }
  if (original.size() != discretizers_.size() ||
      repaired.num_columns() != discretizers_.size()) {
    return Status::InvalidArgument("NumericBridge::Decode: column mismatch");
  }
  const size_t n = repaired.num_rows();
  if (!original.empty() && original[0].values.size() != n) {
    return Status::InvalidArgument("NumericBridge::Decode: row mismatch");
  }

  std::vector<NumericColumn> out = original;
  for (size_t c = 0; c < out.size(); ++c) {
    for (size_t r = 0; r < n; ++r) {
      const int repaired_code = repaired.Value(r, c);
      if (repaired_code == kMissing) {
        out[c].values[r] = std::nan("");
        continue;
      }
      const int original_code =
          discretizers_[c].Transform(original[c].values[r]);
      if (repaired_code == original_code) continue;  // keep exact value
      const auto [lo, hi] = BinRange(c, repaired_code);
      out[c].values[r] =
          (hi > lo) ? lo + rng.NextDouble() * (hi - lo) : lo;
    }
  }
  return out;
}

}  // namespace otclean::dataset
