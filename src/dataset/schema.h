#ifndef OTCLEAN_DATASET_SCHEMA_H_
#define OTCLEAN_DATASET_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "prob/domain.h"

namespace otclean::dataset {

/// One categorical column: a name plus the ordered list of category labels.
/// Values are stored as integer codes into `categories`; code -1 denotes a
/// missing value.
struct Column {
  std::string name;
  std::vector<std::string> categories;

  size_t cardinality() const { return categories.size(); }
};

/// An ordered set of categorical columns. Numeric source columns are turned
/// categorical by `Discretize*` (see discretize.h) before entering a Schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Code of `label` within column `col`.
  Result<int> CategoryCode(size_t col, const std::string& label) const;

  /// Adds a column; fails on duplicate name.
  Status AddColumn(Column column);

  /// The product domain spanned by all columns.
  prob::Domain ToDomain() const;

  /// The product domain spanned by a subset of columns (in that order).
  prob::Domain ToDomain(const std::vector<size_t>& cols) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace otclean::dataset

#endif  // OTCLEAN_DATASET_SCHEMA_H_
