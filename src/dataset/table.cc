#include "dataset/table.h"

#include <cassert>

namespace otclean::dataset {

Table::Table(Schema schema)
    : schema_(std::move(schema)), columns_(schema_.num_columns()) {}

Status Table::AppendRow(const std::vector<int>& codes) {
  if (codes.size() != schema_.num_columns()) {
    return Status::InvalidArgument("Table::AppendRow: wrong arity");
  }
  for (size_t c = 0; c < codes.size(); ++c) {
    if (codes[c] != kMissing &&
        (codes[c] < 0 ||
         static_cast<size_t>(codes[c]) >= schema_.column(c).cardinality())) {
      return Status::OutOfRange("Table::AppendRow: code out of range for '" +
                                schema_.column(c).name + "'");
    }
  }
  for (size_t c = 0; c < codes.size(); ++c) columns_[c].push_back(codes[c]);
  ++num_rows_;
  return Status::OK();
}

std::vector<int> Table::Row(size_t row) const {
  std::vector<int> out(num_columns());
  for (size_t c = 0; c < out.size(); ++c) out[c] = columns_[c][row];
  return out;
}

void Table::SetRow(size_t row, const std::vector<int>& codes) {
  assert(codes.size() == num_columns());
  for (size_t c = 0; c < codes.size(); ++c) columns_[c][row] = codes[c];
}

std::string Table::Label(size_t row, size_t col) const {
  const int code = columns_[col][row];
  if (code == kMissing) return "?";
  return schema_.column(col).categories[static_cast<size_t>(code)];
}

bool Table::HasMissing() const {
  for (const auto& col : columns_) {
    for (int v : col) {
      if (v == kMissing) return true;
    }
  }
  return false;
}

size_t Table::CountMissing() const {
  size_t n = 0;
  for (const auto& col : columns_) {
    for (int v : col) {
      if (v == kMissing) ++n;
    }
  }
  return n;
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out(schema_);
  out.num_rows_ = rows.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(rows.size());
    for (size_t r : rows) {
      assert(r < num_rows_);
      out.columns_[c].push_back(columns_[c][r]);
    }
  }
  return out;
}

Table Table::SelectColumns(const std::vector<size_t>& cols) const {
  std::vector<Column> sub_cols;
  sub_cols.reserve(cols.size());
  for (size_t c : cols) sub_cols.push_back(schema_.column(c));
  Table out{Schema(std::move(sub_cols))};
  out.num_rows_ = num_rows_;
  for (size_t i = 0; i < cols.size(); ++i) out.columns_[i] = columns_[cols[i]];
  return out;
}

bool Table::EncodeRow(size_t row, const std::vector<size_t>& cols,
                      const prob::Domain& dom, size_t* out) const {
  size_t index = 0;
  for (size_t i = 0; i < cols.size(); ++i) {
    const int v = columns_[cols[i]][row];
    if (v == kMissing) return false;
    index = index * dom.Cardinality(i) + static_cast<size_t>(v);
  }
  *out = index;
  return true;
}

prob::JointDistribution Table::Empirical(
    const std::vector<size_t>& cols) const {
  const prob::Domain dom = schema_.ToDomain(cols);
  std::vector<double> counts(dom.TotalSize(), 0.0);
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t cell = 0;
    if (EncodeRow(r, cols, dom, &cell)) counts[cell] += 1.0;
  }
  return prob::JointDistribution::FromCounts(dom, counts);
}

prob::JointDistribution Table::Empirical() const {
  std::vector<size_t> cols(num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  return Empirical(cols);
}

}  // namespace otclean::dataset
