#ifndef OTCLEAN_DATASET_CSV_H_
#define OTCLEAN_DATASET_CSV_H_

#include <string>

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::dataset {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// Tokens treated as missing values (after whitespace stripping).
  std::vector<std::string> missing_tokens = {"", "?", "NA", "nan", "NULL"};
  /// Whether the first line carries column names.
  bool has_header = true;
};

/// Reads a categorical CSV: every column becomes a categorical Column whose
/// categories are the distinct tokens in first-appearance order.
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadCsv).
Result<Table> ParseCsv(const std::string& content,
                       const CsvOptions& options = {});

/// Writes a table as CSV with a header row; missing cells become "?".
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Serializes a table to a CSV string.
std::string ToCsvString(const Table& table, const CsvOptions& options = {});

}  // namespace otclean::dataset

#endif  // OTCLEAN_DATASET_CSV_H_
