#ifndef OTCLEAN_DATASET_NUMERIC_H_
#define OTCLEAN_DATASET_NUMERIC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dataset/discretize.h"
#include "dataset/table.h"

namespace otclean::dataset {

/// Column-major numeric dataset (NaN = missing) — the front door for
/// continuous data (the paper's conclusion lists the continuous extension;
/// OTClean itself operates on discrete domains, so numeric attributes are
/// binned on the way in and reconstituted on the way out).
struct NumericColumn {
  std::string name;
  std::vector<double> values;
};

/// Bidirectional bridge between numeric data and the categorical tables
/// the cleaners operate on:
///   Fit      — learns per-column bin edges (equal-width or quantile),
///   Encode   — numeric rows -> categorical Table of bin codes,
///   Decode   — repaired Table -> numeric rows, sampling a value uniformly
///              within the repaired bin (cells whose bin is unchanged keep
///              their original value exactly).
class NumericBridge {
 public:
  struct Options {
    size_t bins = 5;
    BinningStrategy strategy = BinningStrategy::kQuantile;
  };

  NumericBridge() : NumericBridge(Options()) {}
  explicit NumericBridge(Options options) : options_(options) {}

  /// Learns bin edges from the data. All columns must share one length.
  Status Fit(const std::vector<NumericColumn>& columns);

  bool fitted() const { return fitted_; }
  size_t num_columns() const { return discretizers_.size(); }

  /// Encodes the (fitted) numeric columns into a categorical table.
  Result<Table> Encode(const std::vector<NumericColumn>& columns) const;

  /// Reconstructs numeric columns from a repaired table: where the
  /// repaired bin equals the original bin the original value is kept;
  /// otherwise a value is drawn uniformly from the repaired bin's range.
  Result<std::vector<NumericColumn>> Decode(
      const std::vector<NumericColumn>& original, const Table& repaired,
      Rng& rng) const;

 private:
  /// Sampling range of bin `code` for column `col`: interior bins span
  /// their two edges; edge bins span towards the observed min/max.
  std::pair<double, double> BinRange(size_t col, int code) const;

  Options options_;
  bool fitted_ = false;
  std::vector<Discretizer> discretizers_;
  std::vector<double> col_min_;
  std::vector<double> col_max_;
  std::vector<std::string> names_;
};

}  // namespace otclean::dataset

#endif  // OTCLEAN_DATASET_NUMERIC_H_
