#include "dataset/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace otclean::dataset {

namespace {
bool IsMissingToken(const std::string& token, const CsvOptions& options) {
  return std::find(options.missing_tokens.begin(),
                   options.missing_tokens.end(),
                   token) != options.missing_tokens.end();
}
}  // namespace

Result<Table> ParseCsv(const std::string& content, const CsvOptions& options) {
  std::istringstream in(content);
  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = SplitString(line, options.delimiter);
    for (auto& f : fields) f = std::string(StripWhitespace(f));
    if (first && options.has_header) {
      header = std::move(fields);
      first = false;
      continue;
    }
    first = false;
    rows.push_back(std::move(fields));
  }
  if (rows.empty() && header.empty()) {
    return Status::InvalidArgument("ParseCsv: empty input");
  }
  const size_t ncols = header.empty() ? rows[0].size() : header.size();
  if (header.empty()) {
    for (size_t i = 0; i < ncols; ++i) header.push_back("c" + std::to_string(i));
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != ncols) {
      return Status::InvalidArgument("ParseCsv: row " + std::to_string(r) +
                                     " has " + std::to_string(rows[r].size()) +
                                     " fields, expected " +
                                     std::to_string(ncols));
    }
  }

  // First pass: build category dictionaries in first-appearance order.
  std::vector<Column> columns(ncols);
  std::vector<std::unordered_map<std::string, int>> dicts(ncols);
  for (size_t c = 0; c < ncols; ++c) columns[c].name = header[c];
  for (const auto& row : rows) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& tok = row[c];
      if (IsMissingToken(tok, options)) continue;
      if (dicts[c].emplace(tok, static_cast<int>(columns[c].categories.size()))
              .second) {
        columns[c].categories.push_back(tok);
      }
    }
  }
  // Columns that are entirely missing still need one category to keep the
  // domain well-formed.
  for (auto& col : columns) {
    if (col.categories.empty()) col.categories.push_back("<none>");
  }

  Table table{Schema(std::move(columns))};
  for (const auto& row : rows) {
    std::vector<int> codes(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& tok = row[c];
      codes[c] = IsMissingToken(tok, options) ? kMissing : dicts[c].at(tok);
    }
    OTCLEAN_RETURN_NOT_OK(table.AppendRow(codes));
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("ReadCsv: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

std::string ToCsvString(const Table& table, const CsvOptions& options) {
  std::ostringstream os;
  const auto& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) os << options.delimiter;
    os << schema.column(c).name;
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      os << table.Label(r, c);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("WriteCsv: cannot open '" + path + "'");
  out << ToCsvString(table, options);
  if (!out) return Status::IoError("WriteCsv: write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace otclean::dataset
