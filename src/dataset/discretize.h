#ifndef OTCLEAN_DATASET_DISCRETIZE_H_
#define OTCLEAN_DATASET_DISCRETIZE_H_

#include <vector>

#include "common/result.h"
#include "dataset/table.h"

namespace otclean::dataset {

/// Binning strategies for turning a numeric column categorical.
enum class BinningStrategy {
  /// Equal-width bins between min and max.
  kEqualWidth,
  /// Equal-frequency (quantile) bins.
  kQuantile,
};

/// Maps raw numeric values into `num_bins` categories. NaN maps to missing.
/// Returned table column categories are labeled "b0", "b1", …
///
/// This is the front door for the paper's numeric datasets (Boston): OTClean
/// operates on discrete domains, so numeric attributes are binned first.
class Discretizer {
 public:
  /// Learns bin edges from data.
  static Result<Discretizer> Fit(const std::vector<double>& values,
                                 size_t num_bins, BinningStrategy strategy);

  /// Bin index (code) for a value; values outside the fitted range clamp to
  /// the first/last bin. NaN -> kMissing.
  int Transform(double value) const;

  /// All interior bin edges (size num_bins - 1).
  const std::vector<double>& edges() const { return edges_; }
  size_t num_bins() const { return edges_.size() + 1; }

 private:
  std::vector<double> edges_;
};

/// Builds a categorical column from numeric data: fits a Discretizer and
/// produces codes plus a Column with bin labels.
struct DiscretizedColumn {
  Column column;
  std::vector<int> codes;
};
Result<DiscretizedColumn> DiscretizeColumn(const std::string& name,
                                           const std::vector<double>& values,
                                           size_t num_bins,
                                           BinningStrategy strategy);

}  // namespace otclean::dataset

#endif  // OTCLEAN_DATASET_DISCRETIZE_H_
