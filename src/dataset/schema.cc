#include "dataset/schema.h"

#include <cassert>
#include <sstream>

namespace otclean::dataset {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("Schema: no column named '" + name + "'");
}

Result<int> Schema::CategoryCode(size_t col, const std::string& label) const {
  if (col >= columns_.size()) {
    return Status::OutOfRange("Schema::CategoryCode: column out of range");
  }
  const auto& cats = columns_[col].categories;
  for (size_t i = 0; i < cats.size(); ++i) {
    if (cats[i] == label) return static_cast<int>(i);
  }
  return Status::NotFound("Schema: column '" + columns_[col].name +
                          "' has no category '" + label + "'");
}

Status Schema::AddColumn(Column column) {
  for (const auto& c : columns_) {
    if (c.name == column.name) {
      return Status::AlreadyExists("Schema: duplicate column '" + column.name +
                                   "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

prob::Domain Schema::ToDomain() const {
  std::vector<std::string> names;
  std::vector<size_t> cards;
  names.reserve(columns_.size());
  cards.reserve(columns_.size());
  for (const auto& c : columns_) {
    names.push_back(c.name);
    cards.push_back(c.cardinality());
  }
  // Schema construction already validated names and cardinalities; assert
  // in every build mode instead of dereferencing unchecked under NDEBUG.
  prob::Domain domain;
  OTCLEAN_CHECK_OK_AND_ASSIGN(
      domain, prob::Domain::Make(std::move(names), std::move(cards)));
  return domain;
}

prob::Domain Schema::ToDomain(const std::vector<size_t>& cols) const {
  std::vector<std::string> names;
  std::vector<size_t> cards;
  for (size_t c : cols) {
    assert(c < columns_.size());
    names.push_back(columns_[c].name);
    cards.push_back(columns_[c].cardinality());
  }
  prob::Domain domain;
  OTCLEAN_CHECK_OK_AND_ASSIGN(
      domain, prob::Domain::Make(std::move(names), std::move(cards)));
  return domain;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "Schema{";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << "(" << columns_[i].cardinality() << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace otclean::dataset
