#include "core/ci_constraint.h"

#include <set>
#include <sstream>

namespace otclean::core {

std::vector<std::string> CiConstraint::AllAttrs() const {
  std::vector<std::string> all = x_;
  all.insert(all.end(), y_.begin(), y_.end());
  all.insert(all.end(), z_.begin(), z_.end());
  return all;
}

Result<std::vector<size_t>> CiConstraint::ResolveColumns(
    const dataset::Schema& schema) const {
  if (x_.empty() || y_.empty()) {
    return Status::InvalidArgument(
        "CiConstraint: X and Y must both be non-empty");
  }
  std::set<std::string> seen;
  std::vector<size_t> cols;
  for (const auto& name : AllAttrs()) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          "CiConstraint: attribute '" + name +
          "' appears in more than one of X, Y, Z");
    }
    OTCLEAN_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
    cols.push_back(idx);
  }
  return cols;
}

prob::CiSpec CiConstraint::SpecInProjectedDomain() const {
  prob::CiSpec spec;
  size_t pos = 0;
  for (size_t i = 0; i < x_.size(); ++i) spec.x.push_back(pos++);
  for (size_t i = 0; i < y_.size(); ++i) spec.y.push_back(pos++);
  for (size_t i = 0; i < z_.size(); ++i) spec.z.push_back(pos++);
  return spec;
}

Result<bool> CiConstraint::IsSaturatedFor(
    const dataset::Schema& schema) const {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> cols, ResolveColumns(schema));
  return cols.size() == schema.num_columns();
}

std::string CiConstraint::ToString() const {
  std::ostringstream os;
  auto join = [&os](const std::vector<std::string>& v) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ",";
      os << v[i];
    }
  };
  os << "(";
  join(x_);
  os << " _||_ ";
  join(y_);
  if (!z_.empty()) {
    os << " | ";
    join(z_);
  }
  os << ")";
  return os.str();
}

}  // namespace otclean::core
