#ifndef OTCLEAN_CORE_QCLP_CLEANER_H_
#define OTCLEAN_CORE_QCLP_CLEANER_H_

#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "ot/cost.h"
#include "ot/plan.h"
#include "prob/independence.h"
#include "prob/joint.h"

namespace otclean::linalg {
class ThreadPool;
}  // namespace otclean::linalg

namespace otclean::core {

/// Options for the QCLP-based exact cleaner (Section 4.1).
struct QclpOptions {
  size_t max_outer_iterations = 50;
  /// Convergence threshold on the total-variation change of Q.
  double outer_tolerance = 1e-7;
  /// Pivot budget per LP solve.
  size_t lp_max_iterations = 200000;
  /// Restrict plan columns to the active domain (rows always are).
  bool restrict_columns_to_active = false;
  /// The QCLP path solves LPs and never iterates Sinkhorn, so a log-domain
  /// request cannot be honored. Setting this produces a loud
  /// InvalidArgument instead of a silent no-op (PR 5 precedent for
  /// silently-ignored options).
  bool log_domain = false;
  /// Worker threads for the LP pricing scans (the O(m·n)-per-pivot part of
  /// each outer step). 0 = hardware concurrency, 1 = serial; chunk-local
  /// minima merge deterministically, so results are identical across
  /// thread counts.
  size_t num_threads = 0;
  /// Optional externally owned worker pool, shareable across sequential
  /// and concurrent solves alike; must outlive the call. When null and
  /// the resolved `num_threads` exceeds 1, QclpClean creates one pool per
  /// solve and reuses it across all outer iterations.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Cooperative stop signals, polled at every outer alternation and at
  /// every LP pivot inside it.
  const CancellationToken* cancel_token = nullptr;
  Deadline deadline = Deadline::Infinite();
};

struct QclpResult {
  ot::TransportPlan plan;
  prob::JointDistribution target;
  std::vector<double> objective_trace;
  size_t outer_iterations = 0;
  size_t total_lp_pivots = 0;
  bool converged = false;
  double target_cmi = 0.0;
  double transport_cost = 0.0;
  /// Working-set footprint of the largest LP solved (the revised simplex's
  /// basis inverse + scratch), in bytes — the memory-scaling quantity of
  /// Figs. 13/14. With the column-oracle engine this is O((m + Σ_k d_k)²)
  /// instead of the dense tableau's O((m + n)·(m·n)).
  size_t peak_tableau_bytes = 0;
};

/// Solves the QCLP formulation of the optimal data cleaner (Eq. 7–10) with
/// the paper's alternating linearization: the quadratic independence
/// constraints Q(x,y,z)·Q(z) = Q(x,z)·Q(y,z) are linearized by fixing one
/// conditional factor at its previous estimate — alternating between
/// pinning Q(y|z) and Q(x|z) — and each step solves a linear program.
///
/// The LP is never materialized: costs stream through a
/// linalg::CostProvider and a structure-aware column oracle prices each of
/// the m·n plan variables in O(1) for the revised simplex
/// (lp/revised_simplex.h), so the per-solve memory is O((m + rows)²)
/// rather than a dense tableau.
///
/// Requires a *saturated* constraint spec: `ci.x ∪ ci.y ∪ ci.z` must cover
/// every attribute of `p_data`'s domain (use the saturation wrapper in
/// repair.h for unsaturated constraints, or QclpCleanMulti which accepts
/// general specs).
Result<QclpResult> QclpClean(const prob::JointDistribution& p_data,
                             const prob::CiSpec& ci,
                             const ot::CostFunction& cost,
                             const QclpOptions& options);

/// Multi-constraint QCLP: simultaneously enforces every CI spec in `cis`
/// by linearizing each constraint's independence surface per alternation
/// (one block of marginal rows per constraint) and projecting the column
/// marginal onto the intersection with prob::MultiCiProjection. Specs need
/// not be saturated. With a single saturated spec this coincides with
/// QclpClean, which is a thin wrapper over this entry point.
Result<QclpResult> QclpCleanMulti(const prob::JointDistribution& p_data,
                                  const std::vector<prob::CiSpec>& cis,
                                  const ot::CostFunction& cost,
                                  const QclpOptions& options);

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_QCLP_CLEANER_H_
