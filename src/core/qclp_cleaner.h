#ifndef OTCLEAN_CORE_QCLP_CLEANER_H_
#define OTCLEAN_CORE_QCLP_CLEANER_H_

#include <vector>

#include "common/result.h"
#include "ot/cost.h"
#include "ot/plan.h"
#include "prob/independence.h"
#include "prob/joint.h"

namespace otclean::linalg {
class ThreadPool;
}  // namespace otclean::linalg

namespace otclean::core {

/// Options for the QCLP-based exact cleaner (Section 4.1).
struct QclpOptions {
  size_t max_outer_iterations = 50;
  /// Convergence threshold on the total-variation change of Q.
  double outer_tolerance = 1e-7;
  /// Pivot budget per LP solve.
  size_t lp_max_iterations = 200000;
  /// Restrict plan columns to the active domain (rows always are).
  bool restrict_columns_to_active = false;
  /// Accepted for option-surface symmetry with FastOtCleanOptions (the
  /// CLI's --log-domain sets both): the QCLP path solves LPs, never
  /// iterates Sinkhorn, so this flag has no effect here.
  bool log_domain = false;
  /// Worker threads for assembling the linearized-constraint rows (the
  /// O(m·n²) part of each outer step). 0 = hardware concurrency,
  /// 1 = serial; each constraint row is built by exactly one worker, so
  /// results are identical across thread counts.
  size_t num_threads = 0;
  /// Optional externally owned worker pool, shareable across sequential
  /// and concurrent solves alike; must outlive the call. When null and
  /// the resolved `num_threads` exceeds 1, QclpClean creates one pool per
  /// solve and reuses it across all outer iterations.
  linalg::ThreadPool* thread_pool = nullptr;
};

struct QclpResult {
  ot::TransportPlan plan;
  prob::JointDistribution target;
  std::vector<double> objective_trace;
  size_t outer_iterations = 0;
  size_t total_lp_pivots = 0;
  bool converged = false;
  double target_cmi = 0.0;
  double transport_cost = 0.0;
  /// Dense-tableau footprint of the largest LP solved, in bytes — the
  /// memory-scaling quantity of Figs. 13/14.
  size_t peak_tableau_bytes = 0;
};

/// Solves the QCLP formulation of the optimal data cleaner (Eq. 7–10) with
/// the paper's alternating linearization: the quadratic independence
/// constraints Q(x,y,z)·Q(z) = Q(x,z)·Q(y,z) are linearized by fixing one
/// conditional factor at its previous estimate — alternating between
/// pinning Q(y|z) and Q(x|z) — and each step solves a linear program with
/// the two-phase simplex.
///
/// Requires a *saturated* constraint spec: `ci.x ∪ ci.y ∪ ci.z` must cover
/// every attribute of `p_data`'s domain (use the saturation wrapper in
/// repair.h for unsaturated constraints).
Result<QclpResult> QclpClean(const prob::JointDistribution& p_data,
                             const prob::CiSpec& ci,
                             const ot::CostFunction& cost,
                             const QclpOptions& options);

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_QCLP_CLEANER_H_
