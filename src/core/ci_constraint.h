#ifndef OTCLEAN_CORE_CI_CONSTRAINT_H_
#define OTCLEAN_CORE_CI_CONSTRAINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/schema.h"
#include "prob/independence.h"

namespace otclean::core {

/// A conditional-independence constraint σ : X ⟂ Y | Z named over table
/// columns. Z may be empty (marginal independence, as in Example 3.2).
class CiConstraint {
 public:
  CiConstraint() = default;
  CiConstraint(std::vector<std::string> x, std::vector<std::string> y,
               std::vector<std::string> z = {})
      : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {}

  const std::vector<std::string>& x() const { return x_; }
  const std::vector<std::string>& y() const { return y_; }
  const std::vector<std::string>& z() const { return z_; }

  /// All constraint attributes U = X ∪ Y ∪ Z, in X,Y,Z order.
  std::vector<std::string> AllAttrs() const;

  /// Column positions of U within `schema` (X, then Y, then Z). Fails if a
  /// name is unknown or repeated across the three sets.
  Result<std::vector<size_t>> ResolveColumns(
      const dataset::Schema& schema) const;

  /// The CI position-spec *within the projected U-domain* (X at positions
  /// [0,|X|), Y next, Z last) — the layout produced by
  /// `schema.ToDomain(ResolveColumns(schema))`.
  prob::CiSpec SpecInProjectedDomain() const;

  /// σ is saturated for `schema` iff U covers every column.
  Result<bool> IsSaturatedFor(const dataset::Schema& schema) const;

  std::string ToString() const;

 private:
  std::vector<std::string> x_;
  std::vector<std::string> y_;
  std::vector<std::string> z_;
};

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_CI_CONSTRAINT_H_
