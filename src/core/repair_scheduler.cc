#include "core/repair_scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/timer.h"
#include "linalg/parallel_for.h"

namespace otclean::core {

uint64_t DeriveJobSeed(uint64_t base_seed, uint64_t job_id) {
  // The SplitMix64 finalizer (the same mixer Rng seeds through) over the
  // (base_seed, id) pair. id+1 keeps job 0 from collapsing to the bare
  // base seed, so even the first job's stream is decorrelated from a
  // standalone RepairTable run with the same options.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (job_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

RepairScheduler::RepairScheduler(RepairSchedulerOptions options)
    : options_(options) {
  if (options_.thread_pool != nullptr) {
    pool_ = options_.thread_pool;
  } else if (linalg::ResolveThreadCount(options_.pool_threads) > 1) {
    owned_pool_.emplace(options_.pool_threads);
    pool_ = &*owned_pool_;
  }
  if (options_.solve_cache != nullptr) {
    cache_ = options_.solve_cache;
  } else if (options_.cache_bytes > 0) {
    owned_cache_.emplace(options_.cache_bytes);
    cache_ = &*owned_cache_;
  }
}

Result<RepairReport> RepairScheduler::RunOne(const RepairJob& job,
                                             size_t batch_index) {
  if (job.table == nullptr) {
    return Status::InvalidArgument("RepairScheduler: job " +
                                   std::to_string(batch_index) +
                                   " has no table");
  }
  if (job.constraints.empty()) {
    return Status::InvalidArgument("RepairScheduler: job " +
                                   std::to_string(batch_index) +
                                   " has no constraints");
  }
  if (job.options.fast.thread_pool != nullptr ||
      job.options.qclp.thread_pool != nullptr) {
    // Loud instead of silent: the scheduler's whole point is that every
    // job dispatches on ITS shared pool. A job arriving with its own pool
    // is a misconfiguration — honoring it would defeat the bounded-thread
    // model, overriding it would silently ignore the caller's setup.
    return Status::InvalidArgument(
        "RepairScheduler: job " + std::to_string(batch_index) +
        " carries its own options thread_pool; jobs must leave it null — "
        "the scheduler dispatches every job on its one shared pool "
        "(RepairSchedulerOptions::thread_pool/pool_threads)");
  }
  if (job.options.fast.solve_cache != nullptr) {
    // Same policy as thread_pool: the scheduler's cache is THE cache.
    return Status::InvalidArgument(
        "RepairScheduler: job " + std::to_string(batch_index) +
        " carries its own options solve_cache; jobs must leave it null — "
        "the scheduler injects its one shared cache "
        "(RepairSchedulerOptions::cache_bytes/solve_cache)");
  }
  RepairOptions opts = job.options;
  const uint64_t id = job.id == kAutoJobId ? batch_index : job.id;
  opts.seed = DeriveJobSeed(job.options.seed, id);
  // All executors dispatch on the one shared pool; the solve's chunk
  // decomposition stays governed by opts.fast/qclp.num_threads, so per-job
  // results do not depend on the pool's width or on concurrent neighbours.
  opts.fast.thread_pool = pool_;
  opts.qclp.thread_pool = pool_;
  opts.fast.solve_cache = cache_;
  if (pool_ == nullptr) {
    // A width-1 pool resolution means the scheduler's contract is "solves
    // run serial, executors are the only concurrency". Left at N>1, each
    // executor's solve would spawn a private pool — exactly the N-fold
    // oversubscription the scheduler exists to prevent. Forcing serial
    // solves is result-preserving: kernel results are bit-compatible
    // across thread counts (pinned by thread_pool_test).
    opts.fast.num_threads = 1;
    opts.qclp.num_threads = 1;
  }
  if (job.constraints.size() == 1) {
    return RepairTable(*job.table, job.constraints.front(), opts, job.cost);
  }
  return RepairTableMulti(*job.table, job.constraints, opts, job.cost);
}

BatchReport RepairScheduler::Run(const std::vector<RepairJob>& jobs) {
  BatchReport report;
  if (jobs.empty()) return report;

  const SolveCacheStats cache_before =
      cache_ != nullptr ? cache_->Stats() : SolveCacheStats{};

  std::vector<std::optional<Result<RepairReport>>> slots(jobs.size());
  std::atomic<size_t> next_job{0};
  auto executor = [&] {
    for (;;) {
      const size_t i = next_job.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      slots[i].emplace(RunOne(jobs[i], i));
    }
  };

  WallTimer timer;
  const size_t executors = std::min(
      linalg::ResolveThreadCount(options_.max_concurrent_jobs), jobs.size());
  if (executors <= 1) {
    executor();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(executors - 1);
    for (size_t t = 1; t < executors; ++t) threads.emplace_back(executor);
    executor();
    for (std::thread& t : threads) t.join();
  }
  report.wall_seconds = timer.ElapsedSeconds();
  report.jobs_per_second =
      static_cast<double>(jobs.size()) /
      (report.wall_seconds > 0.0 ? report.wall_seconds : 1e-12);

  report.jobs.reserve(jobs.size());
  for (auto& slot : slots) {
    Result<RepairReport>& r = *slot;
    if (r.ok()) {
      ++report.completed_jobs;
      report.total_sinkhorn_iterations += r->total_sinkhorn_iterations;
      report.peak_plan_bytes =
          std::max(report.peak_plan_bytes, r->plan_memory_bytes);
    } else {
      ++report.failed_jobs;
    }
    report.jobs.push_back(std::move(r));
  }
  if (cache_ != nullptr) {
    report.cache = DeltaStats(cache_before, cache_->Stats());
  }
  return report;
}

}  // namespace otclean::core
