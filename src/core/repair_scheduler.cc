#include "core/repair_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "core/fault_injector.h"
#include "linalg/parallel_for.h"

namespace otclean::core {

uint64_t DeriveJobSeed(uint64_t base_seed, uint64_t job_id) {
  // The SplitMix64 finalizer (the same mixer Rng seeds through) over the
  // (base_seed, id) pair. id+1 keeps job 0 from collapsing to the bare
  // base seed, so even the first job's stream is decorrelated from a
  // standalone RepairTable run with the same options.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (job_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

RepairScheduler::RepairScheduler(RepairSchedulerOptions options)
    : options_(options) {
  if (options_.thread_pool != nullptr) {
    pool_ = options_.thread_pool;
  } else if (linalg::ResolveThreadCount(options_.pool_threads) > 1) {
    owned_pool_.emplace(options_.pool_threads);
    pool_ = &*owned_pool_;
  }
  if (options_.solve_cache != nullptr) {
    cache_ = options_.solve_cache;
  } else if (options_.cache_bytes > 0) {
    owned_cache_.emplace(options_.cache_bytes);
    cache_ = &*owned_cache_;
  }
  if (cache_ != nullptr && options_.fault_injector != nullptr) {
    cache_->set_fault_injector(options_.fault_injector);
  }
}

Status RepairScheduler::ValidateJob(const RepairJob& job) const {
  if (job.table == nullptr) {
    return Status::InvalidArgument("RepairScheduler: job has no table");
  }
  if (job.constraints.empty()) {
    return Status::InvalidArgument("RepairScheduler: job has no constraints");
  }
  if (job.options.fast.thread_pool != nullptr ||
      job.options.qclp.thread_pool != nullptr) {
    // Loud instead of silent: the scheduler's whole point is that every
    // job dispatches on ITS shared pool. A job arriving with its own pool
    // is a misconfiguration — honoring it would defeat the bounded-thread
    // model, overriding it would silently ignore the caller's setup.
    return Status::InvalidArgument(
        "RepairScheduler: job carries its own options thread_pool; jobs "
        "must leave it null — the scheduler dispatches every job on its one "
        "shared pool (RepairSchedulerOptions::thread_pool/pool_threads)");
  }
  if (job.options.fast.solve_cache != nullptr) {
    // Same policy as thread_pool: the scheduler's cache is THE cache.
    return Status::InvalidArgument(
        "RepairScheduler: job carries its own options solve_cache; jobs "
        "must leave it null — the scheduler injects its one shared cache "
        "(RepairSchedulerOptions::cache_bytes/solve_cache)");
  }
  if (job.options.fast.cancel_token != nullptr ||
      job.options.qclp.cancel_token != nullptr ||
      job.options.fairness.cancel_token != nullptr) {
    // Same policy again: cancellation of scheduled jobs goes through
    // Cancel(ticket) on the scheduler-owned token. A job-supplied token
    // would leave two parties able to stop one solve, with no way to tell
    // a caller cancel from a scheduler drain in the result. Checked on
    // every solver family's options — the scheduler wires its token into
    // whichever one the job's solver reads.
    return Status::InvalidArgument(
        "RepairScheduler: job carries its own options cancel_token; "
        "scheduled jobs must leave it null — cancellation goes through "
        "RepairScheduler::Cancel(ticket) on the scheduler-owned token");
  }
  if (!job.options.fast.deadline.infinite() ||
      !job.options.qclp.deadline.infinite() ||
      !job.options.fairness.deadline.infinite()) {
    return Status::InvalidArgument(
        "RepairScheduler: job carries its own options deadline; scheduled "
        "jobs must leave it infinite and set RepairJob::deadline_seconds "
        "instead — the scheduler starts the clock at Submit so queue wait "
        "counts against the budget");
  }
  if (options_.fault_injector != nullptr &&
      job.options.fast.fault_injector != nullptr) {
    return Status::InvalidArgument(
        "RepairScheduler: job carries its own options fault_injector while "
        "the scheduler already has one "
        "(RepairSchedulerOptions::fault_injector); jobs must leave it null "
        "— two harnesses double-counting visits would make the Nth-visit "
        "arming meaningless");
  }
  if (job.deadline_seconds.has_value()) {
    const double d = *job.deadline_seconds;
    if (std::isnan(d) || d <= 0.0) {
      return Status::InvalidArgument(
          "RepairScheduler: job deadline_seconds = " + std::to_string(d) +
          "; an explicit deadline must be finite and > 0 (leave it unset "
          "to inherit default_deadline_seconds, or to run without one)");
    }
  }
  const double default_deadline = options_.default_deadline_seconds;
  if (std::isnan(default_deadline) || default_deadline < 0.0) {
    return Status::InvalidArgument(
        "RepairScheduler: default_deadline_seconds = " +
        std::to_string(default_deadline) +
        " must be >= 0 and finite (0 = no default deadline)");
  }
  return Status::OK();
}

Result<JobTicket> RepairScheduler::Submit(const RepairJob& job) {
  OTCLEAN_RETURN_NOT_OK(ValidateJob(job));
  auto pending = std::make_shared<PendingJob>();
  pending->job = job;
  const double deadline_seconds =
      job.deadline_seconds.value_or(options_.default_deadline_seconds);
  // The clock starts here, at admission: a job stuck behind a full batch
  // burns its budget waiting and fails at dequeue instead of starting a
  // solve the caller gave up on long ago.
  pending->deadline = deadline_seconds > 0.0
                          ? Deadline::After(deadline_seconds)
                          : Deadline::Infinite();
  JobTicket ticket;
  {
    MutexLock lock(mu_);
    if (draining_) {
      return Status::FailedPrecondition(
          "RepairScheduler::Submit after DrainAndStop: the scheduler is "
          "stopped for good; construct a new one to serve more jobs");
    }
    if (options_.max_queued_jobs > 0 &&
        queue_.size() >= options_.max_queued_jobs) {
      // Admission control: fail fast while the caller can still shed load
      // upstream — an unbounded queue just converts overload into
      // unbounded latency and memory.
      return Status::ResourceExhausted(
          "RepairScheduler::Submit: pending queue full (" +
          std::to_string(queue_.size()) + " queued, bound " +
          std::to_string(options_.max_queued_jobs) +
          "); retry later or raise RepairSchedulerOptions::max_queued_jobs");
    }
    ticket = next_ticket_++;
    pending->seed_id = job.id == kAutoJobId ? ticket : job.id;
    tickets_.emplace(ticket, pending);
    queue_.push_back(pending);
    if (executors_.empty()) {
      const size_t executors =
          linalg::ResolveThreadCount(options_.max_concurrent_jobs);
      executors_.reserve(executors);
      for (size_t t = 0; t < executors; ++t) {
        executors_.emplace_back([this] { ExecutorLoop(); });
      }
    }
  }
  cv_work_.NotifyOne();
  return ticket;
}

Result<RepairReport> RepairScheduler::Wait(JobTicket ticket) {
  MutexLock lock(mu_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Status::NotFound("RepairScheduler::Wait: ticket " +
                            std::to_string(ticket) +
                            " is unknown or already consumed");
  }
  std::shared_ptr<PendingJob> pending = it->second;
  while (!pending->done) cv_done_.Wait(mu_);
  tickets_.erase(ticket);
  return std::move(*pending->result);
}

Status RepairScheduler::Cancel(JobTicket ticket) {
  std::shared_ptr<PendingJob> pending;
  {
    MutexLock lock(mu_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      return Status::NotFound("RepairScheduler::Cancel: ticket " +
                              std::to_string(ticket) +
                              " is unknown or already consumed");
    }
    pending = it->second;
  }
  // Cooperative and idempotent: a queued job observes the token at dequeue,
  // an in-flight solve at its next checkpoint, a completed job not at all
  // (its result is already fixed — that race is inherent to cancellation).
  pending->token.Cancel();
  return Status::OK();
}

void RepairScheduler::DrainAndStop() {
  // Joining the executor threads declared (and justified) in
  // repair_scheduler.h, not spawning kernel workers.
  // otclean-lint: allow(raw-thread)
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    if (draining_ && executors_.empty()) return;  // idempotent
    draining_ = true;
    for (const std::shared_ptr<PendingJob>& pending : queue_) {
      pending->result.emplace(Status::Cancelled(
          "RepairScheduler::DrainAndStop: job was still queued when the "
          "scheduler stopped"));
      pending->done = true;
    }
    queue_.clear();
    to_join.swap(executors_);
  }
  cv_work_.NotifyAll();
  cv_done_.NotifyAll();
  // otclean-lint: allow(raw-thread)
  for (std::thread& t : to_join) t.join();
}

void RepairScheduler::ExecutorLoop() {
  for (;;) {
    std::shared_ptr<PendingJob> pending;
    {
      MutexLock lock(mu_);
      while (!draining_ && queue_.empty()) cv_work_.Wait(mu_);
      if (queue_.empty()) return;  // draining and nothing left to start
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    // Admission happened a while ago: re-check the stop conditions before
    // spending a solve on a job whose caller cancelled it in the queue or
    // whose deadline burned down while it waited.
    Status admitted = CheckStop(&pending->token, pending->deadline,
                                "RepairScheduler: job dequeued");
    Result<RepairReport> result =
        admitted.ok() ? RunOne(*pending) : Result<RepairReport>(admitted);
    {
      MutexLock lock(mu_);
      pending->result.emplace(std::move(result));
      pending->done = true;
    }
    cv_done_.NotifyAll();
  }
}

Result<RepairReport> RepairScheduler::RunOne(PendingJob& pending) {
  const RepairJob& job = pending.job;
  RepairOptions opts = job.options;
  opts.seed = DeriveJobSeed(job.options.seed, pending.seed_id);
  // All executors dispatch on the one shared pool; the solve's chunk
  // decomposition stays governed by opts.fast/qclp.num_threads, so per-job
  // results do not depend on the pool's width or on concurrent neighbours.
  opts.fast.thread_pool = pool_;
  opts.qclp.thread_pool = pool_;
  opts.fast.solve_cache = cache_;
  // One token, one deadline, wired into every solver family: whichever
  // path the job's Solver dispatches to polls the same scheduler-owned
  // stop signals.
  opts.fast.cancel_token = &pending.token;
  opts.fast.deadline = pending.deadline;
  opts.qclp.cancel_token = &pending.token;
  opts.qclp.deadline = pending.deadline;
  opts.fairness.cancel_token = &pending.token;
  opts.fairness.deadline = pending.deadline;
  if (opts.fast.fault_injector == nullptr) {
    opts.fast.fault_injector = options_.fault_injector;
  }
  if (pool_ == nullptr) {
    // A width-1 pool resolution means the scheduler's contract is "solves
    // run serial, executors are the only concurrency". Left at N>1, each
    // executor's solve would spawn a private pool — exactly the N-fold
    // oversubscription the scheduler exists to prevent. Forcing serial
    // solves is result-preserving: kernel results are bit-compatible
    // across thread counts (pinned by thread_pool_test).
    opts.fast.num_threads = 1;
    opts.qclp.num_threads = 1;
  }
  if (job.constraints.size() == 1) {
    return RepairTable(*job.table, job.constraints.front(), opts, job.cost);
  }
  return RepairTableMulti(*job.table, job.constraints, opts, job.cost);
}

BatchReport RepairScheduler::Run(const std::vector<RepairJob>& jobs) {
  BatchReport report;
  if (jobs.empty()) return report;

  const SolveCacheStats cache_before =
      cache_ != nullptr ? cache_->Stats() : SolveCacheStats{};

  WallTimer timer;
  std::vector<std::optional<Result<RepairReport>>> slots(jobs.size());
  // Submit everything, Wait in order. On a bounded queue, Run applies
  // backpressure — waiting out the oldest outstanding job frees a slot —
  // instead of surfacing kResourceExhausted for a batch the caller handed
  // over whole; admission control is for *competing* submitters.
  std::deque<std::pair<size_t, JobTicket>> outstanding;
  for (size_t i = 0; i < jobs.size(); ++i) {
    RepairJob job = jobs[i];
    if (job.id == kAutoJobId) job.id = i;  // batch-position seeds, as ever
    for (;;) {
      Result<JobTicket> ticket = Submit(job);
      if (ticket.ok()) {
        outstanding.emplace_back(i, *ticket);
        break;
      }
      if (ticket.status().code() == StatusCode::kResourceExhausted &&
          !outstanding.empty()) {
        slots[outstanding.front().first].emplace(
            Wait(outstanding.front().second));
        outstanding.pop_front();
        continue;
      }
      slots[i].emplace(ticket.status());
      break;
    }
  }
  for (const auto& [index, ticket] : outstanding) {
    slots[index].emplace(Wait(ticket));
  }
  report.wall_seconds = timer.ElapsedSeconds();
  report.jobs_per_second =
      static_cast<double>(jobs.size()) /
      (report.wall_seconds > 0.0 ? report.wall_seconds : 1e-12);

  report.jobs.reserve(jobs.size());
  for (auto& slot : slots) {
    Result<RepairReport>& r = *slot;
    if (r.ok()) {
      ++report.completed_jobs;
      if (r->retry_attempts > 0) ++report.retried_jobs;
      report.total_sinkhorn_iterations += r->total_sinkhorn_iterations;
      report.peak_plan_bytes =
          std::max(report.peak_plan_bytes, r->plan_memory_bytes);
    } else {
      ++report.failed_jobs;
      if (r.status().code() == StatusCode::kCancelled) {
        ++report.cancelled_jobs;
      } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
        ++report.deadline_exceeded_jobs;
      }
    }
    report.jobs.push_back(std::move(r));
  }
  if (cache_ != nullptr) {
    report.cache = DeltaStats(cache_before, cache_->Stats());
  }
  return report;
}

}  // namespace otclean::core
