#ifndef OTCLEAN_CORE_FAST_OTCLEAN_H_
#define OTCLEAN_CORE_FAST_OTCLEAN_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "ot/cost.h"
#include "ot/plan.h"
#include "ot/sinkhorn.h"
#include "prob/independence.h"
#include "prob/joint.h"

namespace otclean::core {

class FaultInjector;
class SolveCache;

/// Options for FastOTClean (Algorithm 2) — the relaxed-OT + Sinkhorn +
/// KL-NMF alternating solver of Section 4.2, with the Section 5
/// optimizations.
struct FastOtCleanOptions {
  /// Entropic regularization ε (the kernel is K = e^{−C/ε}; smaller is
  /// sharper, cf. Fig. 1).
  double epsilon = 0.1;
  /// Marginal-relaxation coefficient λ of the relaxed OT objective (Eq. 11).
  double lambda = 50.0;
  /// CI-enforcement strength in [0,1]; 1 projects the target exactly onto
  /// the CI set each outer step (the μ→∞ limit of Eq. 11), smaller values
  /// blend the projection with the raw target marginal.
  double ci_strength = 1.0;
  size_t max_outer_iterations = 300;
  /// Outer convergence threshold: total-variation change of Q.
  double outer_tolerance = 1e-8;
  /// Sinkhorn sub-solver budget per outer step.
  size_t max_sinkhorn_iterations = 5000;
  double sinkhorn_tolerance = 1e-9;
  /// Section 5: reuse scaling vectors across outer steps.
  bool warm_start = true;
  /// Section 5: initialize Q by the CI projection (NMF) of P_D instead of a
  /// random distribution.
  bool nmf_init = true;
  /// Restrict plan *columns* to the active domain too (plan rows are always
  /// restricted to cells with P_D > 0). Keeping the full column support lets
  /// the cleaner move mass to unseen tuples (as in Example 3.4).
  bool restrict_columns_to_active = false;
  /// Use the iterative Lee–Seung KL-NMF in the inner loop instead of the
  /// closed-form rank-one projection (they coincide at convergence; the
  /// closed form is the default because it is exact and faster).
  bool iterative_nmf = false;
  size_t nmf_max_iterations = 200;
  /// When > 0, run the inner Sinkhorn on a *sparse* truncated kernel:
  /// entries of K = e^{−C/ε} below this cutoff are dropped (the sparse
  /// transport-plan representation of Section 6.5). Cuts memory and time on
  /// plans where most moves are effectively forbidden; 0 keeps the dense
  /// kernel. The plan stays CSR end to end — `FastOtCleanResult::plan` is
  /// CSR-backed and repair sampling walks only the stored nonzeros. Errors
  /// (InvalidArgument) if the cutoff empties a kernel row that carries
  /// source mass, since that mass could never be transported.
  double kernel_truncation = 0.0;
  /// Run the inner Sinkhorn on log-potentials over a LogTransportKernel
  /// (streamed log-sum-exp) instead of linear scalings — stable at small
  /// ε or under huge-penalty costs where e^{−C/ε} leaves the double
  /// range. Composes with `kernel_truncation`: the truncated log kernel
  /// stores −C/ε at the kept entries and the solve stays O(nnz). Costs
  /// roughly one (SIMD'd) exp per kernel entry per iteration instead of
  /// a multiply.
  bool log_domain = false;
  /// Worker threads for the inner Sinkhorn kernels (row-blocked). 0 =
  /// hardware concurrency, 1 = serial; results are identical across thread
  /// counts.
  size_t num_threads = 0;
  /// Optional externally owned worker pool; must outlive the call. One
  /// pool may serve sequential solves *and* concurrent ones (the
  /// RepairScheduler runs every executor's repairs off a single shared
  /// pool) — each solve's chunk decomposition depends only on its own
  /// (n, num_threads, grain), so per-solve results are bit-identical no
  /// matter what else shares the pool. When null and the resolved
  /// `num_threads` exceeds 1, one pool is created per solve and reused by
  /// every Sinkhorn iteration and outer step (threads start once per
  /// repair, not once per kernel call). Pooled and serial results are
  /// bit-identical.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Optional cross-request solve cache (core/solve_cache.h): a repeated
  /// (cost fingerprint, domain, active cells, ε, truncation, domain mode)
  /// reuses the previously built kernel storage — bit-identical to
  /// rebuilding — instead of re-streaming costs. Requires the cost to be
  /// fingerprintable (CostFunction::Fingerprint() != 0); unfingerprintable
  /// costs silently bypass the cache. Borrowed; must outlive the call.
  /// The RepairScheduler injects its per-batch cache here — scheduled
  /// jobs must leave it null, exactly like `thread_pool`.
  SolveCache* solve_cache = nullptr;
  /// With `solve_cache` set, also seed the *first* outer step from the
  /// converged potentials of the previous run under the same key (the
  /// paper's Section-5 warm start, lifted across requests), and store this
  /// run's converged potentials back. Off by default: warm-started runs
  /// meet the same tolerances but are not bit-identical to cold ones, and
  /// with concurrent jobs the store's contents depend on arrival order.
  /// Only takes effect when `warm_start` is also on; stored potentials
  /// whose sizes mismatch the problem fall back to a cold start.
  bool cache_warm_start = false;
  /// ε-annealing for the FIRST inner solve (ot::EpsilonSchedule): run a
  /// short sequence of larger-ε stages and seed the outer loop's warm
  /// potentials from them, instead of cold-starting the sharp final ε.
  /// Later outer steps are already warm via `warm_start`. Skipped when a
  /// cross-request cached warm start is available (that is warmer still)
  /// or when `warm_start` is off (the stage potentials would be thrown
  /// away). Stage kernels share the solve cache under per-ε keys.
  ot::EpsilonSchedule epsilon_schedule;
  /// Storage precision of the inner Sinkhorn kernel
  /// (ot::SinkhornOptions::precision): kFloat32 halves kernel memory
  /// traffic; all accumulation stays double, outputs stay double, and
  /// the truncated kept-set is decided in double so support checks and
  /// plan structure match the f64 tier exactly.
  linalg::Precision precision = linalg::Precision::kFloat64;
  /// Optional cooperative cancellation (common/cancellation.h; borrowed,
  /// must outlive the call). Checked at each outer step and forwarded into
  /// every inner Sinkhorn solve (per-iteration checks there), so a fired
  /// token aborts the repair with kCancelled within one engine iteration.
  /// Scheduled jobs must leave it null — the RepairScheduler owns one
  /// token per job and injects it here, exactly like `thread_pool`.
  const CancellationToken* cancel_token = nullptr;
  /// Optional monotonic wall deadline, polled at the same granularity;
  /// expiry aborts with kDeadlineExceeded. Infinite by default.
  Deadline deadline;
  /// Optional fault-injection harness (core/fault_injector.h; borrowed).
  /// Consulted only at its named sites — null (the default) costs nothing
  /// and is the production configuration.
  FaultInjector* fault_injector = nullptr;
};

/// Outcome of a FastOTClean run.
struct FastOtCleanResult {
  /// The probabilistic data cleaner π(v, v′). CSR-backed (plan.IsSparse())
  /// when `kernel_truncation > 0`, dense otherwise.
  ot::TransportPlan plan;
  /// Final CI-consistent target distribution Q over the full domain.
  prob::JointDistribution target;
  /// Relaxed objective value per outer iteration (transport cost term) —
  /// the convergence trace of Fig. 10b.
  std::vector<double> objective_trace;
  size_t outer_iterations = 0;
  /// Total inner Sinkhorn iterations across all outer steps (Fig. 11b).
  size_t total_sinkhorn_iterations = 0;
  bool converged = false;
  /// CMI of the target w.r.t. the constraint (should be ~0).
  double target_cmi = 0.0;
  /// Final transport cost ⟨C, π⟩.
  double transport_cost = 0.0;
  /// Nonzeros of the (possibly truncated) kernel used by the last inner
  /// solve; rows×cols of the plan when the dense path ran.
  size_t kernel_nnz = 0;
  /// Solve-cache activity of this run (all zero when no cache was
  /// configured or the cost was unfingerprintable). A run performs at
  /// most one kernel lookup, so hits + misses ≤ 1; kept as counts so
  /// callers (RepairScheduler, reports) can sum across runs.
  size_t cache_kernel_hits = 0;
  size_t cache_kernel_misses = 0;
  /// True when the first outer step was seeded from cached potentials.
  bool cache_warm_started = false;
  /// Iterations saved vs. the key's cold baseline (0 unless warm-started
  /// and actually faster).
  size_t cache_warm_iterations_saved = 0;
  /// ε-annealing stage records (empty unless `epsilon_schedule` ran).
  /// Stage iterations are NOT counted in `total_sinkhorn_iterations` —
  /// that stays comparable with unannealed runs; report both to see the
  /// trade.
  std::vector<ot::EpsilonAnnealStage> anneal_stages;
};

/// FastOTClean: computes a probabilistic data cleaner for `p_data` under
/// the CI spec `ci` (positions within p_data's domain) and cost `cost`.
///
/// `p_data` must be a normalized distribution (typically the empirical
/// distribution of the dataset, restricted to the constraint attributes
/// under the saturation optimization).
Result<FastOtCleanResult> FastOtClean(const prob::JointDistribution& p_data,
                                      const prob::CiSpec& ci,
                                      const ot::CostFunction& cost,
                                      const FastOtCleanOptions& options,
                                      Rng& rng);

/// Multi-constraint FastOTClean (the paper's stated extension): enforces
/// *all* the given CI specs simultaneously by replacing the inner rank-one
/// projection with cyclic I-projections onto each constraint (IPF-style).
/// `target_cmi` in the result is the largest residual CMI across the
/// constraints. `options.iterative_nmf` is ignored in multi-constraint
/// mode.
Result<FastOtCleanResult> FastOtCleanMulti(
    const prob::JointDistribution& p_data,
    const std::vector<prob::CiSpec>& cis, const ot::CostFunction& cost,
    const FastOtCleanOptions& options, Rng& rng);

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_FAST_OTCLEAN_H_
