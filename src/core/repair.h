#ifndef OTCLEAN_CORE_REPAIR_H_
#define OTCLEAN_CORE_REPAIR_H_

#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "core/ci_constraint.h"
#include "core/fast_otclean.h"
#include "core/qclp_cleaner.h"
#include "dataset/table.h"
#include "fairness/maxsat.h"
#include "ot/cost.h"

namespace otclean::core {

/// Which optimizer computes the repair.
enum class Solver {
  kFastOtClean,  ///< Section 4.2 (Sinkhorn + KL-NMF); scales to large domains.
  kQclp,         ///< Section 4.1 (alternating LP); exact but small domains only.
  /// Capuchin baselines (Salimi et al., SIGMOD 2019 — Section 6's
  /// comparison points), run through the same fit/plan/apply machinery as
  /// the OT solvers so their reports and scheduling are uniform.
  kCapuchinIC,  ///< Cap(IC): independent-coupling target, plan-based resample.
  kCapuchinMF,  ///< Cap(MF): per-slice rank-1 NMF target, plan-based resample.
  kCapMaxSat,   ///< Cap(MS): MaxSAT tuple add/remove repair (no plan).
};

/// Knobs for the fairness-baseline solvers (kCapuchinIC / kCapuchinMF /
/// kCapMaxSat). Kept separate from FastOtCleanOptions/QclpOptions so each
/// solver family owns its cooperative-stop wiring, mirroring how the
/// scheduler threads per-job deadlines into whichever solver a job picked.
struct FairnessOptions {
  /// NMF iteration budget (kCapuchinMF only).
  size_t nmf_max_iterations = 500;
  /// WalkSAT budget/noise (kCapMaxSat only). The MaxSAT seed is overridden
  /// by RepairOptions::seed so one knob seeds every solver.
  fairness::MaxSatOptions maxsat;
  /// Cooperative stop signals, checked at the fairness solvers'
  /// coarse-grained boundaries (target build, repair materialization).
  const CancellationToken* cancel_token = nullptr;
  Deadline deadline = Deadline::Infinite();
};

/// Opt-in graceful degradation for the FastOTClean solver: when an attempt
/// fails retryably — the solve errors with kNotConverged, collapses to
/// "plan lost all mass" (the deterministic endpoint of NaN scalings in the
/// linear domain), or returns unconverged — the repair is retried with a
/// progressively safer configuration instead of hard-failing: the first
/// fallback switches the inner Sinkhorn to the log domain (immune to the
/// under/overflow that kills linear scalings at small ε), subsequent ones
/// double ε (dropping an ε-annealing schedule once it no longer brackets
/// the loosened target). Every fallback taken is recorded in
/// RepairReport::{termination, retry_attempts, recovery}. Non-retryable
/// errors (InvalidArgument, kCancelled, kDeadlineExceeded,
/// kResourceExhausted, ...) always propagate immediately.
struct RetryOptions {
  /// Total solve attempts (first try included). 1 — the default — means no
  /// retry; 0 is InvalidArgument (validated loudly, never a silent no-op).
  size_t max_attempts = 1;
  /// Sleep between attempts, in seconds (the cancel token / deadline are
  /// re-checked before each retry, so backoff never outlives a stop).
  double backoff_seconds = 0.0;
};

/// End-to-end repair configuration.
struct RepairOptions {
  Solver solver = Solver::kFastOtClean;
  FastOtCleanOptions fast;
  QclpOptions qclp;
  FairnessOptions fairness;
  /// Graceful-degradation policy (FastOTClean only; every other solver
  /// runs a single attempt — their failure modes are not scaling blow-ups).
  RetryOptions retry;
  /// Section 5 unsaturated-constraint optimization: clean only the marginal
  /// over the constraint attributes U = X∪Y∪Z and carry the remaining
  /// attributes along unchanged. When false, the *naive* method cleans the
  /// full joint over every column (exponentially larger plan — Fig. 11a).
  bool use_saturation = true;
  /// true: sample repairs from π(v′|v) (the probabilistic cleaner);
  /// false: deterministic MAP repairs.
  bool sample_repair = true;
  uint64_t seed = 42;
};

/// Summary of one repair run.
struct RepairReport {
  dataset::Table repaired;
  double initial_cmi = 0.0;  ///< CMI of the input empirical distribution.
  double final_cmi = 0.0;    ///< CMI of the repaired empirical distribution.
  double target_cmi = 0.0;   ///< CMI of the cleaner's target distribution Q.
  double transport_cost = 0.0;
  size_t outer_iterations = 0;
  size_t total_sinkhorn_iterations = 0;
  bool converged = false;
  /// Plan storage diagnostics: CSR-backed plans (kernel_truncation > 0)
  /// report their structural nonzeros; dense plans report rows×cols.
  bool plan_sparse = false;
  size_t plan_nnz = 0;
  size_t plan_memory_bytes = 0;
  /// Nonzeros of the (possibly truncated) Gibbs kernel the solver iterated
  /// on (FastOTClean only; 0 for QCLP, which solves LPs instead).
  size_t kernel_nnz = 0;
  /// Instruction set the kernel primitives dispatched on ("scalar",
  /// "avx2", "avx512", "neon" — see linalg/simd.h; override with the
  /// OTCLEAN_SIMD environment variable).
  const char* simd_isa = "";
  /// Iteration domain of the inner Sinkhorn solves: "linear" (scaling
  /// vectors over K = e^{−C/ε}) or "log" (log-potentials over a
  /// LogTransportKernel; FastOtCleanOptions::log_domain / the CLI's
  /// --log-domain). "n/a" for the QCLP solver, which iterates LPs.
  const char* sinkhorn_domain = "linear";
  /// Cross-request solve-cache activity of the fit (core/solve_cache.h;
  /// all zero/false when no cache was configured or the cost was
  /// unfingerprintable).
  size_t cache_kernel_hits = 0;
  size_t cache_kernel_misses = 0;
  bool cache_warm_started = false;
  size_t cache_warm_iterations_saved = 0;
  /// Storage precision of the Gibbs kernel the solver iterated on ("f64"
  /// or "f32"; FastOtCleanOptions::precision / the CLI's --precision).
  /// "n/a" for the QCLP solver.
  const char* precision = "f64";
  /// ε-annealing stage records of the fit, in stage order (empty unless
  /// FastOtCleanOptions::epsilon_schedule ran). Stage iterations are not
  /// counted in `total_sinkhorn_iterations`.
  std::vector<ot::EpsilonAnnealStage> anneal_stages;
  /// How the repair terminated: "ok" (first attempt), or "retried-ok" when
  /// RetryOptions fallbacks recovered a converged solve after at least one
  /// retryable failure. Failed repairs never produce a report — their
  /// reason lives in the returned Status code (kCancelled,
  /// kDeadlineExceeded, kResourceExhausted, ...).
  const char* termination = "ok";
  /// Fallback attempts taken beyond the first try (0 without retries).
  size_t retry_attempts = 0;
  /// Human-readable fallback trail, e.g. "attempt 2: log-domain after
  /// Internal: ... plan lost all mass". Empty when no fallback ran.
  std::string recovery;
};

/// A fitted probabilistic data cleaner: learns the transport plan from one
/// table's empirical distribution and can then repair that table — or any
/// stream of new tuples over the same schema (Section 1's streaming use
/// case).
class OtCleanRepairer {
 public:
  OtCleanRepairer(CiConstraint constraint, RepairOptions options = {})
      : constraint_(std::move(constraint)), options_(std::move(options)) {}

  /// Learns the plan from `table`. `cost` (over the cleaned sub-domain; see
  /// CleanedDomain()) may be null, in which case the paper's C1 cost
  /// (stddev-normalized Euclidean) is built from the empirical distribution.
  Status Fit(const dataset::Table& table, const ot::CostFunction* cost = nullptr);

  /// True once Fit has succeeded.
  bool fitted() const { return fitted_; }

  /// The domain the plan acts on: the U = X∪Y∪Z sub-domain under
  /// saturation, the full table domain otherwise.
  const prob::Domain& CleanedDomain() const { return domain_; }

  /// The learned plan.
  const ot::TransportPlan& plan() const { return plan_; }
  /// The CI-consistent target distribution.
  const prob::JointDistribution& target() const { return target_; }

  /// Repairs a single row (vector of codes over the full table schema);
  /// rows with missing constraint attributes pass through unchanged.
  std::vector<int> RepairRow(const std::vector<int>& row, Rng& rng) const;

  /// Repairs every row of `table` (same schema as the fitted table).
  Result<dataset::Table> Apply(const dataset::Table& table, Rng& rng) const;

  /// Diagnostics of the underlying solve.
  const RepairReport& fit_report() const { return fit_report_; }

 private:
  CiConstraint constraint_;
  RepairOptions options_;
  bool fitted_ = false;
  std::vector<size_t> cleaned_cols_;  ///< table columns the plan acts on.
  prob::Domain domain_;
  ot::TransportPlan plan_;
  prob::JointDistribution target_;
  RepairReport fit_report_;  ///< `repaired` left empty; filled by Repair().
};

/// One-shot convenience: fit on `table` and repair it.
Result<RepairReport> RepairTable(const dataset::Table& table,
                                 const CiConstraint& constraint,
                                 const RepairOptions& options = {},
                                 const ot::CostFunction* cost = nullptr);

/// CMI of `table`'s empirical distribution w.r.t. `constraint` — the
/// "degree of inconsistency" δ_σ reported in Table 2.
Result<double> TableCmi(const dataset::Table& table,
                        const CiConstraint& constraint);

/// Multi-constraint repair (the paper's stated extension): enforces every
/// constraint simultaneously over the union of their attributes, using
/// cyclic I-projections inside FastOTClean. `initial_cmi` / `final_cmi`
/// report the *largest* CMI across the constraints. Constraints may overlap
/// but each must be individually well-formed for the table's schema.
/// Supported solvers: `Solver::kFastOtClean` (cyclic I-projections inside
/// the Sinkhorn alternation) and `Solver::kQclp` (QclpCleanMulti's
/// per-constraint linearization blocks). Unsupported option combinations
/// are InvalidArgument errors rather than silently solving something else:
/// the fairness baselines are single-constraint by construction, and
/// `options.use_saturation` must stay true (the multi-constraint cleaner
/// always operates on the union of the constraint attributes; there is no
/// naive full-joint mode).
Result<RepairReport> RepairTableMulti(
    const dataset::Table& table, const std::vector<CiConstraint>& constraints,
    const RepairOptions& options = {}, const ot::CostFunction* cost = nullptr);

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_REPAIR_H_
