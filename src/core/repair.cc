#include "core/repair.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <new>
#include <optional>
#include <thread>

#include "fairness/cap_maxsat.h"
#include "fairness/capuchin.h"
#include "linalg/simd.h"
#include "linalg/sparse_matrix.h"

namespace otclean::core {
namespace {

/// The one place plan-storage diagnostics and the active SIMD tier flow
/// into a RepairReport — shared by every entry point (single-constraint
/// Fit, multi-constraint, both solvers) so the fields cannot diverge.
void PopulatePlanReport(const ot::TransportPlan& plan, RepairReport& report) {
  report.plan_sparse = plan.IsSparse();
  report.plan_nnz = plan.Nnz();
  report.plan_memory_bytes = plan.MemoryBytes();
  report.simd_isa = linalg::simd::ActiveIsaName();
}

/// Populates every solve-diagnostic field of `report` from a *successful*
/// FastOTClean run. `sinkhorn_domain` is derived here, after the solve, so
/// no path can report a domain for Sinkhorn iterations that never ran.
void PopulateFastSolveReport(const FastOtCleanResult& r,
                             const FastOtCleanOptions& fast,
                             RepairReport& report) {
  report.target_cmi = r.target_cmi;
  report.transport_cost = r.transport_cost;
  report.outer_iterations = r.outer_iterations;
  report.total_sinkhorn_iterations = r.total_sinkhorn_iterations;
  report.converged = r.converged;
  report.kernel_nnz = r.kernel_nnz;
  report.sinkhorn_domain = fast.log_domain ? "log" : "linear";
  report.precision =
      fast.precision == linalg::Precision::kFloat32 ? "f32" : "f64";
  report.anneal_stages = r.anneal_stages;
  report.cache_kernel_hits = r.cache_kernel_hits;
  report.cache_kernel_misses = r.cache_kernel_misses;
  report.cache_warm_started = r.cache_warm_started;
  report.cache_warm_iterations_saved = r.cache_warm_iterations_saved;
  PopulatePlanReport(r.plan, report);
}

/// QCLP counterpart of PopulateFastSolveReport, shared by the
/// single-constraint Fit and RepairTableMulti: the Sinkhorn-only counters
/// stay at their zero defaults and the domain/precision strings read "n/a"
/// so no QCLP path can masquerade as a Sinkhorn run.
void PopulateQclpSolveReport(const QclpResult& r, RepairReport& report) {
  report.target_cmi = r.target_cmi;
  report.transport_cost = r.transport_cost;
  report.outer_iterations = r.outer_iterations;
  report.converged = r.converged;
  report.sinkhorn_domain = "n/a";
  report.precision = "n/a";
  PopulatePlanReport(r.plan, report);
}

/// The Capuchin resampling coupling as a CSR TransportPlan: every active
/// cell keeps its non-Y coordinates and redistributes its mass over the Y
/// cells of its slice proportionally to the target q — exactly the "keep X
/// and Z, resample Y from Q(Y|X,Z)" semantics of fairness::CapuchinRepair,
/// expressed as a plan so the baselines flow through the same
/// SampleRepair/MapRepair apply path and report the same plan diagnostics
/// as the OT solvers. Rows whose slice carries no target mass get an empty
/// CSR row and therefore pass through unrepaired, matching the legacy
/// resampler's total == 0 branch.
struct CapuchinPlanResult {
  ot::TransportPlan plan;
  double transport_cost = 0.0;
};

CapuchinPlanResult BuildCapuchinPlan(const prob::JointDistribution& p,
                                     const prob::JointDistribution& q,
                                     const prob::CiSpec& spec,
                                     const ot::CostFunction& cost) {
  const prob::Domain& dom = p.domain();
  std::vector<size_t> row_cells;
  for (size_t cell = 0; cell < p.size(); ++cell) {
    if (p[cell] > 0.0) row_cells.push_back(cell);
  }
  std::vector<size_t> col_cells;
  std::vector<size_t> col_of(dom.TotalSize(), dom.TotalSize());
  for (size_t cell = 0; cell < q.size(); ++cell) {
    if (q[cell] > 0.0) {
      col_of[cell] = col_cells.size();
      col_cells.push_back(cell);
    }
  }
  const prob::Domain y_dom = dom.Project(spec.y);
  const size_t num_y = y_dom.TotalSize();

  std::vector<size_t> row_ptr{0};
  std::vector<size_t> col_index;
  std::vector<double> values;
  double transport_cost = 0.0;
  std::vector<size_t> slice_cells(num_y);
  for (size_t cell : row_cells) {
    const double mass = p[cell];
    const std::vector<int> src = dom.Decode(cell);
    std::vector<int> coords = src;
    double slice = 0.0;
    for (size_t yc = 0; yc < num_y; ++yc) {
      const std::vector<int> yv = y_dom.Decode(yc);
      for (size_t i = 0; i < spec.y.size(); ++i) coords[spec.y[i]] = yv[i];
      slice_cells[yc] = dom.Encode(coords);
      slice += q[slice_cells[yc]];
    }
    if (slice <= 0.0) {
      row_ptr.push_back(col_index.size());
      continue;
    }
    for (size_t yc = 0; yc < num_y; ++yc) {
      const double qv = q[slice_cells[yc]];
      if (qv <= 0.0) continue;
      const double v = mass * qv / slice;
      col_index.push_back(col_of[slice_cells[yc]]);
      values.push_back(v);
      if (slice_cells[yc] != cell) {
        transport_cost += v * cost.Cost(src, dom.Decode(slice_cells[yc]));
      }
    }
    row_ptr.push_back(col_index.size());
  }

  const size_t rows = row_cells.size();
  const size_t cols = col_cells.size();
  CapuchinPlanResult out;
  out.transport_cost = transport_cost;
  out.plan = ot::TransportPlan(
      dom, std::move(row_cells), std::move(col_cells),
      linalg::SparseMatrix::FromParts(rows, cols, std::move(row_ptr),
                                      std::move(col_index),
                                      std::move(values)));
  return out;
}

/// A failure the RetryOptions fallbacks can plausibly fix: an explicit
/// non-convergence, or the deterministic endpoint of NaN/underflowed
/// scalings in the linear domain — every row scaling clamps to 0, the plan
/// drains, and FastOTClean reports Internal "plan lost all mass".
bool RetryableFailure(const Status& s) {
  if (s.code() == StatusCode::kNotConverged) return true;
  return s.code() == StatusCode::kInternal &&
         s.message().find("plan lost all mass") != std::string::npos;
}

/// Applies the next fallback tier to `opts` and appends a note to
/// `recovery`: linear → log domain first (fixes scaling under/overflow
/// outright), then ε doubling (smooths a kernel too sharp to converge). An
/// ε-annealing schedule that no longer brackets the loosened ε is dropped
/// — it would otherwise fail validation loudly mid-recovery.
void ApplyFallback(RepairOptions& opts, size_t attempt,
                   const Status& failure, std::string& recovery) {
  std::string note;
  if (!opts.fast.log_domain) {
    opts.fast.log_domain = true;
    note = "log-domain";
  } else {
    opts.fast.epsilon *= 2.0;
    note = "epsilon x2 -> " + std::to_string(opts.fast.epsilon);
    if (opts.fast.epsilon_schedule.enabled() &&
        opts.fast.epsilon_schedule.initial_epsilon <= opts.fast.epsilon) {
      opts.fast.epsilon_schedule = ot::EpsilonSchedule{};
      note += " (schedule dropped)";
    }
  }
  if (!recovery.empty()) recovery += "; ";
  recovery += "attempt " + std::to_string(attempt + 2) + ": " + note +
              " after " +
              (failure.ok() ? std::string("non-convergence")
                            : failure.ToString());
}

/// One repair attempt with the allocation-failure boundary: a
/// std::bad_alloc from anywhere inside the solve (kernel storages, plans —
/// or FaultSite::kAlloc) unwinds to here and becomes kResourceExhausted,
/// so an overloaded process sheds the request instead of crashing.
Result<RepairReport> GuardedAttempt(
    const std::function<Result<RepairReport>(const RepairOptions&)>& attempt,
    const RepairOptions& opts) {
  try {
    return attempt(opts);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "repair: allocation failed (std::bad_alloc) while building the "
        "solve");
  }
}

/// The retry driver shared by RepairTable and RepairTableMulti. Runs up to
/// retry.max_attempts attempts, each through GuardedAttempt; retryable
/// failures (RetryableFailure, or an unconverged-but-ok result) trigger
/// the next fallback tier. A converged result from a fallback terminates
/// as "retried-ok"; if every fallback still fails, the best
/// ok-but-unconverged result seen (if any) is returned rather than the
/// final error — degradation never makes the outcome worse than attempt 1.
Result<RepairReport> RunWithRetries(
    const RepairOptions& options,
    const std::function<Result<RepairReport>(const RepairOptions&)>&
        attempt_fn) {
  if (options.retry.max_attempts == 0) {
    return Status::InvalidArgument(
        "repair: RetryOptions::max_attempts = 0 — the first try counts as "
        "an attempt, so at least 1 is required (1 = no retry)");
  }
  if (!(options.retry.backoff_seconds >= 0.0)) {
    return Status::InvalidArgument(
        "repair: RetryOptions::backoff_seconds must be >= 0 and finite");
  }
  // The fallbacks reconfigure FastOTClean knobs; every other solver
  // (QCLP, the fairness baselines) runs one attempt.
  const size_t max_attempts = options.solver == Solver::kFastOtClean
                                  ? options.retry.max_attempts
                                  : 1;
  RepairOptions opts = options;
  std::string recovery;
  std::optional<RepairReport> best;  // floor: best ok-but-unconverged result
  for (size_t attempt = 0;; ++attempt) {
    Result<RepairReport> r = GuardedAttempt(attempt_fn, opts);
    if (r.ok() && r->converged) {
      RepairReport report = std::move(r).value();
      report.retry_attempts = attempt;
      report.termination = attempt > 0 ? "retried-ok" : "ok";
      report.recovery = recovery;
      return report;
    }
    const bool retryable = r.ok() || RetryableFailure(r.status());
    if (attempt + 1 >= max_attempts || !retryable) {
      if (r.ok()) {
        RepairReport report = std::move(r).value();
        report.retry_attempts = attempt;
        report.recovery = recovery;
        return report;
      }
      if (best.has_value()) {
        best->recovery = recovery + "; fallback failed (" +
                         r.status().ToString() +
                         "), keeping earlier unconverged result";
        return std::move(*best);
      }
      return r.status();
    }
    if (r.ok()) {
      r->retry_attempts = attempt;
      best = std::move(r).value();
    }
    ApplyFallback(opts, attempt, r.ok() ? Status::OK() : r.status(),
                  recovery);
    // Backoff must never outlive a stop: re-check before sleeping and
    // before the next attempt.
    OTCLEAN_RETURN_NOT_OK(CheckStop(options.fast.cancel_token,
                                    options.fast.deadline, "repair retry"));
    if (options.retry.backoff_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.retry.backoff_seconds));
    }
  }
}

}  // namespace

Status OtCleanRepairer::Fit(const dataset::Table& table,
                            const ot::CostFunction* cost) {
  const dataset::Schema& schema = table.schema();
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> u_cols,
                           constraint_.ResolveColumns(schema));

  if (options_.use_saturation) {
    cleaned_cols_ = u_cols;
  } else {
    // Naive mode: clean the full joint; put U first so the CI spec is easy
    // to position, then the remaining columns.
    cleaned_cols_ = u_cols;
    std::vector<bool> in_u(schema.num_columns(), false);
    for (size_t c : u_cols) in_u[c] = true;
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (!in_u[c]) cleaned_cols_.push_back(c);
    }
  }
  domain_ = schema.ToDomain(cleaned_cols_);

  prob::JointDistribution p = table.Empirical(cleaned_cols_);
  if (p.Mass() <= 0.0) {
    return Status::InvalidArgument(
        "OtCleanRepairer::Fit: no complete rows over the constraint "
        "attributes");
  }

  const prob::CiSpec spec = constraint_.SpecInProjectedDomain();
  fit_report_ = RepairReport{};
  fit_report_.initial_cmi = prob::ConditionalMutualInformation(p, spec);

  // Default cost: the paper's C1 (stddev-normalized Euclidean).
  std::unique_ptr<ot::CostFunction> default_cost;
  if (cost == nullptr) {
    default_cost = std::make_unique<ot::EuclideanCost>(
        ot::InverseStddevWeights(domain_, p.probs()));
    cost = default_cost.get();
  }

  Rng rng(options_.seed);
  if (options_.solver == Solver::kFastOtClean) {
    OTCLEAN_ASSIGN_OR_RETURN(FastOtCleanResult r,
                             FastOtClean(p, spec, *cost, options_.fast, rng));
    PopulateFastSolveReport(r, options_.fast, fit_report_);
    plan_ = std::move(r.plan);
    target_ = std::move(r.target);
  } else if (options_.solver == Solver::kQclp) {
    OTCLEAN_ASSIGN_OR_RETURN(QclpResult r,
                             QclpClean(p, spec, *cost, options_.qclp));
    PopulateQclpSolveReport(r, fit_report_);
    plan_ = std::move(r.plan);
    target_ = std::move(r.target);
  } else if (options_.solver == Solver::kCapMaxSat) {
    return Status::InvalidArgument(
        "OtCleanRepairer::Fit: Solver::kCapMaxSat repairs by inserting and "
        "deleting whole tuples and has no row-level transport plan; use "
        "RepairTable, which dispatches it directly");
  } else {  // kCapuchinIC / kCapuchinMF
    if (!options_.use_saturation) {
      return Status::InvalidArgument(
          "OtCleanRepairer::Fit: use_saturation = false (naive full-joint "
          "cleaning) is not supported by the Capuchin solvers — they repair "
          "over the constraint attributes only");
    }
    OTCLEAN_RETURN_NOT_OK(CheckStop(options_.fairness.cancel_token,
                                    options_.fairness.deadline,
                                    "OtCleanRepairer::Fit: Capuchin target"));
    const auto method = options_.solver == Solver::kCapuchinIC
                            ? fairness::CapuchinMethod::kIndependentCoupling
                            : fairness::CapuchinMethod::kMatrixFactorization;
    OTCLEAN_ASSIGN_OR_RETURN(
        prob::JointDistribution q,
        fairness::CapuchinTarget(p, spec, method,
                                 options_.fairness.nmf_max_iterations, rng));
    OTCLEAN_RETURN_NOT_OK(CheckStop(options_.fairness.cancel_token,
                                    options_.fairness.deadline,
                                    "OtCleanRepairer::Fit: Capuchin plan"));
    CapuchinPlanResult built = BuildCapuchinPlan(p, q, spec, *cost);
    fit_report_.target_cmi = prob::ConditionalMutualInformation(q, spec);
    fit_report_.transport_cost = built.transport_cost;
    fit_report_.outer_iterations = 1;
    fit_report_.converged = true;
    fit_report_.sinkhorn_domain = "n/a";
    fit_report_.precision = "n/a";
    PopulatePlanReport(built.plan, fit_report_);
    plan_ = std::move(built.plan);
    target_ = std::move(q);
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<int> OtCleanRepairer::RepairRow(const std::vector<int>& row,
                                            Rng& rng) const {
  assert(fitted_);
  // Encode the cleaned columns; missing values pass through unrepaired.
  size_t cell = 0;
  for (size_t i = 0; i < cleaned_cols_.size(); ++i) {
    const int v = row[cleaned_cols_[i]];
    if (v == dataset::kMissing) return row;
    cell = cell * domain_.Cardinality(i) + static_cast<size_t>(v);
  }
  const size_t repaired_cell = options_.sample_repair
                                   ? plan_.SampleRepair(cell, rng)
                                   : plan_.MapRepair(cell);
  if (repaired_cell == cell) return row;
  std::vector<int> out = row;
  const std::vector<int> values = domain_.Decode(repaired_cell);
  for (size_t i = 0; i < cleaned_cols_.size(); ++i) {
    out[cleaned_cols_[i]] = values[i];
  }
  return out;
}

Result<dataset::Table> OtCleanRepairer::Apply(const dataset::Table& table,
                                              Rng& rng) const {
  if (!fitted_) {
    return Status::FailedPrecondition("OtCleanRepairer::Apply before Fit");
  }
  dataset::Table out(table.schema());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    OTCLEAN_RETURN_NOT_OK(out.AppendRow(RepairRow(table.Row(r), rng)));
  }
  return out;
}

namespace {

/// One fit+apply attempt of the single-constraint repair (the pre-retry
/// RepairTable body, verbatim).
Result<RepairReport> RepairTableOnce(const dataset::Table& table,
                                     const CiConstraint& constraint,
                                     const RepairOptions& options,
                                     const ot::CostFunction* cost) {
  if (options.solver == Solver::kCapMaxSat) {
    // Cap(MS) is a tuple add/remove repair with no plan to fit; it
    // dispatches straight to the MaxSAT repairer and reports through the
    // same RepairReport. RepairOptions::seed seeds both the WalkSAT search
    // and the insertion sampling, so one knob seeds every solver.
    OTCLEAN_RETURN_NOT_OK(CheckStop(options.fairness.cancel_token,
                                    options.fairness.deadline,
                                    "RepairTable: Cap(MS)"));
    fairness::CapMaxSatOptions cms;
    cms.maxsat = options.fairness.maxsat;
    cms.maxsat.seed = options.seed;
    cms.seed = options.seed;
    RepairReport report;
    OTCLEAN_ASSIGN_OR_RETURN(report.initial_cmi, TableCmi(table, constraint));
    OTCLEAN_ASSIGN_OR_RETURN(
        fairness::CapMaxSatReport r,
        fairness::CapMaxSatRepair(table, constraint, cms));
    OTCLEAN_ASSIGN_OR_RETURN(report.final_cmi,
                             TableCmi(r.repaired, constraint));
    // The repaired empirical distribution *is* the target of a tuple-level
    // repair.
    report.target_cmi = report.final_cmi;
    report.converged = r.hard_satisfied;
    report.sinkhorn_domain = "n/a";
    report.precision = "n/a";
    PopulatePlanReport(ot::TransportPlan(), report);  // simd_isa, empty plan
    report.repaired = std::move(r.repaired);
    return report;
  }
  OtCleanRepairer repairer(constraint, options);
  OTCLEAN_RETURN_NOT_OK(repairer.Fit(table, cost));
  Rng rng(options.seed ^ 0xabcdef12345ull);
  OTCLEAN_ASSIGN_OR_RETURN(dataset::Table repaired,
                           repairer.Apply(table, rng));
  RepairReport report = repairer.fit_report();
  OTCLEAN_ASSIGN_OR_RETURN(report.final_cmi, TableCmi(repaired, constraint));
  report.repaired = std::move(repaired);
  return report;
}

}  // namespace

Result<RepairReport> RepairTable(const dataset::Table& table,
                                 const CiConstraint& constraint,
                                 const RepairOptions& options,
                                 const ot::CostFunction* cost) {
  return RunWithRetries(options, [&](const RepairOptions& opts) {
    return RepairTableOnce(table, constraint, opts, cost);
  });
}

Result<double> TableCmi(const dataset::Table& table,
                        const CiConstraint& constraint) {
  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                           constraint.ResolveColumns(table.schema()));
  const prob::JointDistribution p = table.Empirical(cols);
  return prob::ConditionalMutualInformation(
      p, constraint.SpecInProjectedDomain());
}

namespace {

/// One attempt of the multi-constraint repair (the pre-retry
/// RepairTableMulti body, verbatim).
Result<RepairReport> RepairTableMultiOnce(
    const dataset::Table& table, const std::vector<CiConstraint>& constraints,
    const RepairOptions& options, const ot::CostFunction* cost) {
  if (constraints.empty()) {
    return Status::InvalidArgument("RepairTableMulti: no constraints");
  }
  if (options.solver != Solver::kFastOtClean &&
      options.solver != Solver::kQclp) {
    return Status::InvalidArgument(
        "RepairTableMulti: multi-constraint repair supports "
        "Solver::kFastOtClean and Solver::kQclp; the fairness baselines "
        "(Capuchin) are single-constraint — call RepairTable per "
        "constraint");
  }
  if (!options.use_saturation) {
    return Status::InvalidArgument(
        "RepairTableMulti: options.use_saturation = false (naive full-joint "
        "cleaning) is not supported in multi-constraint mode; the cleaner "
        "always operates on the union of the constraint attributes");
  }
  const dataset::Schema& schema = table.schema();

  // Union of constraint attributes, in first-appearance order. The
  // per-constraint resolutions are kept: specs below are built from these
  // already-validated indices, never by re-looking names up.
  std::vector<size_t> u_cols;
  std::vector<std::vector<size_t>> resolved_cols;
  for (const auto& constraint : constraints) {
    OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                             constraint.ResolveColumns(schema));
    for (size_t c : cols) {
      if (std::find(u_cols.begin(), u_cols.end(), c) == u_cols.end()) {
        u_cols.push_back(c);
      }
    }
    resolved_cols.push_back(std::move(cols));
  }
  const prob::Domain domain = schema.ToDomain(u_cols);

  // Position each constraint's spec within the union domain. ResolveColumns
  // returns the constraint's columns in X,Y,Z order, so the resolved vector
  // splits by the X/Y/Z sizes.
  auto position_of = [&](size_t col) -> size_t {
    return static_cast<size_t>(
        std::find(u_cols.begin(), u_cols.end(), col) - u_cols.begin());
  };
  std::vector<prob::CiSpec> specs;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const std::vector<size_t>& cols = resolved_cols[i];
    const size_t nx = constraints[i].x().size();
    const size_t ny = constraints[i].y().size();
    prob::CiSpec spec;
    for (size_t j = 0; j < cols.size(); ++j) {
      (j < nx ? spec.x : j < nx + ny ? spec.y : spec.z)
          .push_back(position_of(cols[j]));
    }
    specs.push_back(std::move(spec));
  }

  prob::JointDistribution p = table.Empirical(u_cols);
  if (p.Mass() <= 0.0) {
    return Status::InvalidArgument("RepairTableMulti: no complete rows");
  }

  RepairReport report;
  report.initial_cmi = prob::MaxCmi(p, specs);

  std::unique_ptr<ot::CostFunction> default_cost;
  if (cost == nullptr) {
    default_cost = std::make_unique<ot::EuclideanCost>(
        ot::InverseStddevWeights(domain, p.probs()));
    cost = default_cost.get();
  }

  ot::TransportPlan plan;
  if (options.solver == Solver::kFastOtClean) {
    Rng rng(options.seed);
    OTCLEAN_ASSIGN_OR_RETURN(
        FastOtCleanResult r,
        FastOtCleanMulti(p, specs, *cost, options.fast, rng));
    PopulateFastSolveReport(r, options.fast, report);
    plan = std::move(r.plan);
  } else {
    // The QCLP engine enforces every spec simultaneously — one
    // linearization block per constraint, column marginal projected onto
    // the intersection with cyclic I-projections.
    OTCLEAN_ASSIGN_OR_RETURN(QclpResult r,
                             QclpCleanMulti(p, specs, *cost, options.qclp));
    PopulateQclpSolveReport(r, report);
    plan = std::move(r.plan);
  }

  // Apply the cleaner row by row over the union columns.
  Rng apply_rng(options.seed ^ 0xfeedbeefull);
  dataset::Table repaired(schema);
  for (size_t row_idx = 0; row_idx < table.num_rows(); ++row_idx) {
    std::vector<int> row = table.Row(row_idx);
    size_t cell = 0;
    bool complete = true;
    for (size_t i = 0; i < u_cols.size(); ++i) {
      const int v = row[u_cols[i]];
      if (v == dataset::kMissing) {
        complete = false;
        break;
      }
      cell = cell * domain.Cardinality(i) + static_cast<size_t>(v);
    }
    if (complete) {
      const size_t repaired_cell = options.sample_repair
                                       ? plan.SampleRepair(cell, apply_rng)
                                       : plan.MapRepair(cell);
      if (repaired_cell != cell) {
        const std::vector<int> values = domain.Decode(repaired_cell);
        for (size_t i = 0; i < u_cols.size(); ++i) {
          row[u_cols[i]] = values[i];
        }
      }
    }
    OTCLEAN_RETURN_NOT_OK(repaired.AppendRow(row));
  }

  const prob::JointDistribution p_after = repaired.Empirical(u_cols);
  report.final_cmi = prob::MaxCmi(p_after, specs);
  report.repaired = std::move(repaired);
  return report;
}

}  // namespace

Result<RepairReport> RepairTableMulti(
    const dataset::Table& table, const std::vector<CiConstraint>& constraints,
    const RepairOptions& options, const ot::CostFunction* cost) {
  return RunWithRetries(options, [&](const RepairOptions& opts) {
    return RepairTableMultiOnce(table, constraints, opts, cost);
  });
}

}  // namespace otclean::core
