#include "core/solve_cache.h"

#include "common/hash.h"
#include "core/fault_injector.h"
#include "linalg/simd.h"
#include "linalg/transport_kernel_f32.h"

namespace otclean::core {

namespace {

size_t MatrixBytes(const std::shared_ptr<const linalg::Matrix>& m) {
  return m ? m->size() * sizeof(double) : 0;
}

size_t WarmBytes(const std::optional<CachedWarmStart>& w) {
  if (!w) return 0;
  return (w->u.size() + w->v.size()) * sizeof(double);
}

}  // namespace

SolveCacheKey MakeSolveCacheKey(uint64_t cost_fingerprint, size_t rows,
                                size_t cols, double epsilon, double truncation,
                                bool log_domain, uint64_t salt,
                                linalg::Precision precision) {
  SolveCacheKey key;
  if (cost_fingerprint == 0) return key;  // invalid: caching disabled
  key.rows = rows;
  key.cols = cols;
  key.epsilon = epsilon;
  key.truncation = truncation;
  key.log_domain = log_domain;
  key.sparse = truncation > 0.0;
  key.simd_isa = static_cast<uint8_t>(linalg::simd::ActiveIsa());
  key.precision = static_cast<uint8_t>(precision);
  uint64_t h = HashMix(kHashSeed, cost_fingerprint);
  h = HashMix(h, salt);
  h = HashMix(h, key.rows);
  h = HashMix(h, key.cols);
  h = HashMixDouble(h, key.epsilon);
  h = HashMixDouble(h, key.truncation);
  h = HashMix(h, (key.log_domain ? 2u : 0u) | (key.sparse ? 1u : 0u));
  h = HashMix(h, key.simd_isa);
  h = HashMix(h, key.precision);
  key.content = h == 0 ? 1 : h;
  return key;
}

size_t CachedKernel::MemoryBytes() const {
  size_t bytes = MatrixBytes(dense) + MatrixBytes(dense_cost);
  if (sparse) bytes += sparse->MemoryBytes();
  if (dense_f32) bytes += dense_f32->MemoryBytes();
  if (sparse_f32) bytes += sparse_f32->MemoryBytes();
  if (support_costs) bytes += support_costs->size() * sizeof(double);
  return bytes;
}

bool CachedKernel::InUse() const {
  // use_count > 1 ⇒ a handle lives outside the cache's own entry. Racy in
  // general, but we only read it under the cache mutex, and every external
  // handle was created under that same mutex — a transient over-count
  // (solve just finished) merely delays eviction one round.
  return (dense && dense.use_count() > 1) ||
         (sparse && sparse.use_count() > 1) ||
         (dense_f32 && dense_f32.use_count() > 1) ||
         (sparse_f32 && sparse_f32.use_count() > 1) ||
         (support_costs && support_costs.use_count() > 1) ||
         (dense_cost && dense_cost.use_count() > 1);
}

SolveCacheStats DeltaStats(const SolveCacheStats& before,
                           const SolveCacheStats& after) {
  SolveCacheStats d = after;
  d.kernel_hits -= before.kernel_hits;
  d.kernel_misses -= before.kernel_misses;
  d.warm_hits -= before.warm_hits;
  d.warm_misses -= before.warm_misses;
  d.insertions -= before.insertions;
  d.evictions -= before.evictions;
  d.warm_iterations_saved -= before.warm_iterations_saved;
  d.table_hits -= before.table_hits;
  d.table_misses -= before.table_misses;
  // entries / bytes_cached / bytes_pinned are gauges: keep `after`.
  return d;
}

void SolveCache::Touch(Lru::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void SolveCache::Recharge(Lru::iterator it) {
  bytes_cached_ -= it->bytes;
  it->bytes = it->kernel.MemoryBytes() + WarmBytes(it->warm);
  bytes_cached_ += it->bytes;
}

void SolveCache::EnforceBudget() {
  if (byte_budget_ == 0) return;
  auto it = lru_.end();
  while (bytes_cached_ > byte_budget_ && it != lru_.begin()) {
    --it;
    if (it->kernel.InUse()) continue;  // pinned: counted, not evictable
    bytes_cached_ -= it->bytes;
    index_.erase(it->key);
    it = lru_.erase(it);
    ++counters_.evictions;
  }
}

SolveCache::Lru::iterator SolveCache::FindOrCreate(const SolveCacheKey& key) {
  auto found = index_.find(key);
  if (found != index_.end()) {
    Touch(found->second);
    return found->second;
  }
  lru_.push_front(Entry{key, {}, std::nullopt, 0});
  index_.emplace(key, lru_.begin());
  return lru_.begin();
}

std::optional<CachedKernel> SolveCache::FindKernel(const SolveCacheKey& key) {
  if (!key.valid()) return std::nullopt;
  MutexLock lock(mu_);
  auto found = index_.find(key);
  if (found == index_.end() || found->second->kernel.empty()) {
    ++counters_.kernel_misses;
    return std::nullopt;
  }
  ++counters_.kernel_hits;
  Touch(found->second);
  return found->second->kernel;
}

CachedKernel SolveCache::InsertKernel(const SolveCacheKey& key,
                                      CachedKernel kernel) {
  if (!key.valid() || kernel.empty()) return kernel;
  // FaultSite::kCacheInsert: the insert fails before FindOrCreate so no
  // entry — not even an empty shell — is created; the caller keeps its
  // private kernel and the request degrades to uncached, never corrupt.
  if (fault_injector_ != nullptr &&
      fault_injector_->ShouldFire(FaultSite::kCacheInsert)) {
    return kernel;
  }
  MutexLock lock(mu_);
  auto it = FindOrCreate(key);
  if (!it->kernel.empty()) return it->kernel;  // lost the race: share theirs
  it->kernel = std::move(kernel);
  ++counters_.insertions;
  Recharge(it);
  // Copy the handle out *before* enforcing the budget: the copy pins the
  // fresh entry (the caller is about to solve on it), and keeps the return
  // safe even if eviction removes the entry itself.
  CachedKernel resident = it->kernel;
  EnforceBudget();
  return resident;
}

std::optional<CachedWarmStart> SolveCache::FindWarmStart(
    const SolveCacheKey& key) {
  if (!key.valid()) return std::nullopt;
  MutexLock lock(mu_);
  auto found = index_.find(key);
  if (found == index_.end() || !found->second->warm) {
    ++counters_.warm_misses;
    return std::nullopt;
  }
  ++counters_.warm_hits;
  Touch(found->second);
  return found->second->warm;
}

void SolveCache::StoreWarmStart(const SolveCacheKey& key,
                                const linalg::Vector& u,
                                const linalg::Vector& v,
                                size_t solve_iterations) {
  if (!key.valid()) return;
  MutexLock lock(mu_);
  auto it = FindOrCreate(key);
  const size_t baseline =
      it->warm ? it->warm->cold_iterations : solve_iterations;
  it->warm = CachedWarmStart{u, v, baseline};
  Recharge(it);
  EnforceBudget();
}

void SolveCache::RecordWarmSavings(size_t iterations) {
  MutexLock lock(mu_);
  counters_.warm_iterations_saved += iterations;
}

void SolveCache::RecordTableLookup(bool hit) {
  MutexLock lock(mu_);
  if (hit) {
    ++counters_.table_hits;
  } else {
    ++counters_.table_misses;
  }
}

SolveCacheStats SolveCache::Stats() const {
  MutexLock lock(mu_);
  SolveCacheStats s = counters_;
  s.entries = lru_.size();
  s.bytes_cached = bytes_cached_;
  s.bytes_pinned = 0;
  for (const Entry& e : lru_) {
    if (e.kernel.InUse()) s.bytes_pinned += e.bytes;
  }
  return s;
}

}  // namespace otclean::core
