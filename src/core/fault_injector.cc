#include "core/fault_injector.h"

#include <chrono>
#include <thread>

#include "linalg/thread_pool.h"

namespace otclean::core {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kKernelNan:
      return "kernel-nan";
    case FaultSite::kWorkerDelay:
      return "worker-delay";
    case FaultSite::kCacheInsert:
      return "cache-insert";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultSite site, size_t nth, bool sticky) {
  SiteArm& arm = arms_[static_cast<size_t>(site)];
  arm.armed = true;
  arm.nth = nth;
  arm.sticky = sticky;
}

bool FaultInjector::ShouldFire(FaultSite site) {
  const size_t i = static_cast<size_t>(site);
  const size_t n = hits_[i].fetch_add(1, std::memory_order_relaxed) + 1;
  const SiteArm& arm = arms_[i];
  if (!arm.armed) return false;
  return arm.sticky ? n >= arm.nth : n == arm.nth;
}

size_t FaultInjector::hits(FaultSite site) const {
  return hits_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
}

Status FaultInjector::Parse(const std::string& spec, FaultInjector* out) {
  if (spec.empty()) {
    return Status::InvalidArgument(
        "FaultInjector: empty spec — the grammar is site@N[+][,site@N[+]...] "
        "(e.g. alloc@2,cache-insert@1+); unset the variable to disarm");
  }
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string arm = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (arm.empty()) {
      // "a@1,,b@2" or a trailing comma: almost certainly a typo'd spec;
      // skipping it would silently disarm the intended site.
      return Status::InvalidArgument(
          "FaultInjector: empty arm in spec \"" + spec +
          "\" (stray or trailing comma)");
    }
    const size_t at = arm.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          "FaultInjector: arm \"" + arm +
          "\" has no \"@N\" — the grammar is site@N or site@N+ (e.g. "
          "alloc@2,cache-insert@1+)");
    }
    const std::string name = arm.substr(0, at);
    std::string count = arm.substr(at + 1);
    bool sticky = false;
    if (!count.empty() && count.back() == '+') {
      sticky = true;
      count.pop_back();
    }
    FaultSite site;
    if (name == "alloc") {
      site = FaultSite::kAlloc;
    } else if (name == "kernel-nan") {
      site = FaultSite::kKernelNan;
    } else if (name == "worker-delay") {
      site = FaultSite::kWorkerDelay;
    } else if (name == "cache-insert") {
      site = FaultSite::kCacheInsert;
    } else {
      return Status::InvalidArgument(
          "FaultInjector: unknown site \"" + name +
          "\" (sites: alloc, kernel-nan, worker-delay, cache-insert)");
    }
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("FaultInjector: arm \"" + arm +
                                     "\" needs a positive visit index N");
    }
    const unsigned long nth = std::stoul(count);
    if (nth == 0) {
      return Status::InvalidArgument(
          "FaultInjector: arm \"" + arm +
          "\" has N = 0; visit indices are 1-based");
    }
    out->Arm(site, static_cast<size_t>(nth), sticky);
  }
  return Status::OK();
}

namespace {

void PoolDelayHook(void* ctx) {
  auto* injector = static_cast<FaultInjector*>(ctx);
  if (injector->ShouldFire(FaultSite::kWorkerDelay)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(injector->worker_delay_millis()));
  }
}

}  // namespace

void FaultInjector::InstallPoolDelayHook(size_t delay_millis) {
  delay_millis_ = delay_millis;
  linalg::ThreadPool::SetChunkHook(&PoolDelayHook, this);
}

void FaultInjector::ClearPoolDelayHook() {
  linalg::ThreadPool::SetChunkHook(nullptr, nullptr);
}

}  // namespace otclean::core
