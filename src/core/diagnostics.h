#ifndef OTCLEAN_CORE_DIAGNOSTICS_H_
#define OTCLEAN_CORE_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/ci_constraint.h"
#include "dataset/table.h"

namespace otclean::core {

/// Per-attribute summary of what a repair changed.
struct AttributeChange {
  std::string name;
  size_t changed_cells = 0;
  double changed_fraction = 0.0;
  /// Total variation distance between the attribute's marginal before and
  /// after the repair.
  double marginal_tv = 0.0;
};

/// Side-by-side diagnostics of a repair: which attributes moved, how far
/// the joint distribution drifted, and how much of the constraint
/// violation was removed. This is the post-repair report a practitioner
/// inspects before trusting a cleaned dataset.
struct RepairDiagnostics {
  size_t rows = 0;
  size_t changed_rows = 0;
  double changed_row_fraction = 0.0;
  std::vector<AttributeChange> attributes;
  /// CMI before/after over the constraint attributes.
  double cmi_before = 0.0;
  double cmi_after = 0.0;
  /// Total variation between the empirical joints over the constraint
  /// attributes.
  double constraint_tv = 0.0;
};

/// Compares `before` and `after` (same schema, same row order) under
/// `constraint`.
Result<RepairDiagnostics> DiagnoseRepair(const dataset::Table& before,
                                         const dataset::Table& after,
                                         const CiConstraint& constraint);

/// Renders the diagnostics as a compact human-readable report.
std::string FormatDiagnostics(const RepairDiagnostics& diagnostics);

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_DIAGNOSTICS_H_
