#include "core/diagnostics.h"

#include <sstream>

#include "core/repair.h"
#include "prob/independence.h"

namespace otclean::core {

Result<RepairDiagnostics> DiagnoseRepair(const dataset::Table& before,
                                         const dataset::Table& after,
                                         const CiConstraint& constraint) {
  if (before.num_rows() != after.num_rows() ||
      before.num_columns() != after.num_columns()) {
    return Status::InvalidArgument(
        "DiagnoseRepair: tables must have identical shape");
  }
  const dataset::Schema& schema = before.schema();

  RepairDiagnostics diag;
  diag.rows = before.num_rows();

  for (size_t r = 0; r < before.num_rows(); ++r) {
    if (before.Row(r) != after.Row(r)) ++diag.changed_rows;
  }
  diag.changed_row_fraction =
      diag.rows > 0 ? static_cast<double>(diag.changed_rows) / diag.rows : 0.0;

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    AttributeChange change;
    change.name = schema.column(c).name;
    for (size_t r = 0; r < before.num_rows(); ++r) {
      if (before.Value(r, c) != after.Value(r, c)) ++change.changed_cells;
    }
    change.changed_fraction =
        diag.rows > 0 ? static_cast<double>(change.changed_cells) / diag.rows
                      : 0.0;
    const auto pb = before.Empirical({c});
    const auto pa = after.Empirical({c});
    change.marginal_tv = pb.TotalVariation(pa);
    diag.attributes.push_back(std::move(change));
  }

  OTCLEAN_ASSIGN_OR_RETURN(std::vector<size_t> u_cols,
                           constraint.ResolveColumns(schema));
  const auto p_before = before.Empirical(u_cols);
  const auto p_after = after.Empirical(u_cols);
  const prob::CiSpec spec = constraint.SpecInProjectedDomain();
  diag.cmi_before = prob::ConditionalMutualInformation(p_before, spec);
  diag.cmi_after = prob::ConditionalMutualInformation(p_after, spec);
  diag.constraint_tv = p_before.TotalVariation(p_after);
  return diag;
}

std::string FormatDiagnostics(const RepairDiagnostics& diagnostics) {
  std::ostringstream os;
  os << "repair diagnostics\n";
  os << "  rows changed: " << diagnostics.changed_rows << " / "
     << diagnostics.rows << " ("
     << static_cast<int>(diagnostics.changed_row_fraction * 100.0 + 0.5)
     << "%)\n";
  os << "  constraint CMI: " << diagnostics.cmi_before << " -> "
     << diagnostics.cmi_after << "\n";
  os << "  constraint-attrs TV distance: " << diagnostics.constraint_tv
     << "\n";
  os << "  per-attribute changes:\n";
  for (const auto& attr : diagnostics.attributes) {
    if (attr.changed_cells == 0) continue;
    os << "    " << attr.name << ": " << attr.changed_cells << " cells ("
       << static_cast<int>(attr.changed_fraction * 100.0 + 0.5)
       << "%), marginal TV " << attr.marginal_tv << "\n";
  }
  return os.str();
}

}  // namespace otclean::core
