#include "core/qclp_cleaner.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"
#include "lp/simplex.h"

namespace otclean::core {

namespace {

/// Per-column-cell projections onto the X/Y/Z sub-domains.
struct CellProjection {
  std::vector<size_t> x;   ///< X-cell index per column
  std::vector<size_t> y;   ///< Y-cell index per column
  std::vector<size_t> z;   ///< Z-cell index per column
  size_t dx = 1, dy = 1, dz = 1;
};

CellProjection ProjectCells(const prob::Domain& dom,
                            const std::vector<size_t>& cells,
                            const prob::CiSpec& ci) {
  CellProjection out;
  out.dx = dom.Project(ci.x).TotalSize();
  out.dy = dom.Project(ci.y).TotalSize();
  out.dz = ci.z.empty() ? 1 : dom.Project(ci.z).TotalSize();
  out.x.reserve(cells.size());
  out.y.reserve(cells.size());
  out.z.reserve(cells.size());
  for (size_t c : cells) {
    out.x.push_back(dom.ProjectIndex(c, ci.x));
    out.y.push_back(dom.ProjectIndex(c, ci.y));
    out.z.push_back(ci.z.empty() ? 0 : dom.ProjectIndex(c, ci.z));
  }
  return out;
}

}  // namespace

Result<QclpResult> QclpClean(const prob::JointDistribution& p_data,
                             const prob::CiSpec& ci,
                             const ot::CostFunction& cost,
                             const QclpOptions& options) {
  const prob::Domain& dom = p_data.domain();
  if (ci.x.size() + ci.y.size() + ci.z.size() != dom.num_attrs()) {
    return Status::InvalidArgument(
        "QclpClean: requires a saturated constraint over the input domain");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument("QclpClean: p_data must be normalized");
  }

  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("QclpClean: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }
  const size_t m = row_cells.size();
  const size_t n = col_cells.size();

  linalg::Vector p(m);
  for (size_t i = 0; i < m; ++i) p[i] = p_data[row_cells[i]];

  const linalg::Matrix cost_matrix =
      ot::BuildCostMatrix(dom, row_cells, col_cells, cost);
  const CellProjection proj = ProjectCells(dom, col_cells, ci);

  // Current CI-consistent estimate of the target distribution.
  prob::JointDistribution q = prob::CiProjection(p_data, ci);

  QclpResult result;
  linalg::Matrix plan(m, n, 0.0);

  // One worker pool reused by every outer iteration's constraint-row
  // assembly (the O(m·n²) step) instead of spawning threads per iteration.
  const size_t threads = linalg::ResolveThreadCount(options.num_threads);
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    // Conditionals of the previous estimate, used to linearize the
    // independence constraints. pin_y == true pins Q(y|z); else pins Q(x|z).
    const bool pin_y = (outer % 2 == 0);

    // Marginals of q over (z) and (y,z) / (x,z).
    std::vector<double> qz(proj.dz, 0.0);
    std::vector<double> qyz(proj.dy * proj.dz, 0.0);
    std::vector<double> qxz(proj.dx * proj.dz, 0.0);
    for (size_t cell = 0; cell < q.size(); ++cell) {
      const double v = q[cell];
      if (v <= 0.0) continue;
      const size_t xz = dom.ProjectIndex(cell, ci.x);
      const size_t yz = dom.ProjectIndex(cell, ci.y);
      const size_t zz = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
      qz[zz] += v;
      qyz[yz * proj.dz + zz] += v;
      qxz[xz * proj.dz + zz] += v;
    }

    // LP: variables π̃_ij, i in [0,m), j in [0,n).
    //  - m row-marginal constraints Σ_j π̃_ij = p_i
    //  - n linearized independence constraints, one per column cell:
    //    pin_y:  Q̃(x,y,z) − Qprev(y|z)·Q̃(x,·,z) = 0
    //    else :  Q̃(x,y,z) − Qprev(x|z)·Q̃(·,y,z) = 0
    //    where Q̃(cell) = Σ_i π̃_{i,cell}.
    const size_t num_vars = m * n;
    const size_t num_rows = m + n;
    lp::LpProblem lp;
    lp.a = linalg::Matrix(num_rows, num_vars, 0.0);
    lp.b = linalg::Vector(num_rows, 0.0);
    lp.c = linalg::Vector(num_vars, 0.0);
    result.peak_tableau_bytes =
        std::max(result.peak_tableau_bytes,
                 (num_rows) * (num_vars + num_rows + 1) * sizeof(double));

    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        lp.a(i, i * n + j) = 1.0;
        lp.c[i * n + j] = cost_matrix(i, j);
      }
      lp.b[i] = p[i];
    }
    // Each j writes only tableau row m+j, so the O(m·n²) assembly
    // parallelizes over disjoint rows.
    linalg::ParallelFor(
        n, threads,
        [&](size_t j_begin, size_t j_end) {
          for (size_t j = j_begin; j < j_end; ++j) {
            const size_t row = m + j;
            const double factor =
                pin_y
                    ? (qz[proj.z[j]] > 0.0
                           ? qyz[proj.y[j] * proj.dz + proj.z[j]] /
                                 qz[proj.z[j]]
                           : 0.0)
                    : (qz[proj.z[j]] > 0.0
                           ? qxz[proj.x[j] * proj.dz + proj.z[j]] /
                                 qz[proj.z[j]]
                           : 0.0);
            for (size_t i = 0; i < m; ++i) {
              // + Q̃(x,y,z) term.
              lp.a(row, i * n + j) += 1.0;
              // − factor · Σ over cells sharing the pinned slice.
              for (size_t j2 = 0; j2 < n; ++j2) {
                const bool same_slice =
                    pin_y ? (proj.x[j2] == proj.x[j] &&
                             proj.z[j2] == proj.z[j])
                          : (proj.y[j2] == proj.y[j] &&
                             proj.z[j2] == proj.z[j]);
                if (same_slice) lp.a(row, i * n + j2) -= factor;
              }
            }
            lp.b[row] = 0.0;
          }
        },
        // Each j costs O(m·n) scalar ops, so derive the grain from that —
        // small domains stay inline, large ones get full parallelism.
        linalg::GrainForWork(m * n), pool);

    lp::SimplexOptions lp_opts;
    lp_opts.max_iterations = options.lp_max_iterations;
    OTCLEAN_ASSIGN_OR_RETURN(lp::LpSolution sol, lp::SolveSimplex(lp, lp_opts));
    result.total_lp_pivots += sol.iterations;
    result.objective_trace.push_back(sol.objective);

    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const double v = sol.x[i * n + j];
        plan(i, j) = (v > 0.0) ? v : 0.0;
      }
    }

    // New target estimate: the plan's column marginal projected onto the CI
    // set (it satisfies the linearized constraints; the projection removes
    // residual linearization slack).
    linalg::Vector col_mass = plan.ColSums();
    prob::JointDistribution t(dom);
    for (size_t j = 0; j < n; ++j) t[col_cells[j]] = col_mass[j];
    t.Normalize();
    prob::JointDistribution q_new = prob::CiProjection(t, ci);

    const double delta = q.TotalVariation(q_new);
    q = std::move(q_new);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan = ot::TransportPlan(dom, row_cells, col_cells, plan);
  result.target = q;
  result.target_cmi = prob::ConditionalMutualInformation(q, ci);
  result.transport_cost = cost_matrix.FrobeniusDot(plan);
  return result;
}

}  // namespace otclean::core
