#include "core/qclp_cleaner.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "linalg/parallel_for.h"
#include "linalg/thread_pool.h"
#include "lp/revised_simplex.h"
#include "ot/sinkhorn.h"

namespace otclean::core {

namespace {

/// One CI constraint's contribution to the LP: a block of d = dx·dy·dz
/// marginal-consistency rows starting at `offset`, linearized around the
/// current target estimate. All per-column projections are precomputed so
/// pricing touches O(1) state per column.
struct ConstraintBlock {
  size_t dx = 1, dy = 1, dz = 1;
  size_t d = 1;       ///< marginal size dx·dy·dz
  size_t offset = 0;  ///< absolute LP row of this block's first marginal cell
  std::vector<size_t> jx, jy, jz;  ///< per column cell: projected indices
  std::vector<size_t> vj;          ///< per column cell: marginal cell index
  /// Current linearization factors: pin_y → Q(y|z) indexed [y·dz + z]
  /// (size dy·dz); pin_x → Q(x|z) indexed [x·dz + z] (size dx·dz).
  std::vector<double> factor;
};

/// Implicit LP of one alternation, priced column-by-column. Column (i, j)
/// of A is e_i (the row-marginal constraint) plus, per constraint block,
/// +1 at j's marginal row and −factor at every marginal row of j's pinned
/// slice — so yᵀA_(i,j) = y_i + Σ_k (y_row(j) − G_k[slice(j)]) where each
/// G_k is an O(d_k) precompute per pricing call. That makes the full scan
/// O(m·n) with streamed costs instead of O(m·n·rows) against a tableau.
class QclpColumnOracle final : public lp::ColumnOracle {
 public:
  QclpColumnOracle(const linalg::CostProvider& cost, size_t m, size_t n,
                   std::vector<ConstraintBlock>* blocks, size_t num_rows,
                   size_t threads, linalg::ThreadPool* pool)
      : cost_(&cost),
        m_(m),
        n_(n),
        blocks_(blocks),
        num_rows_(num_rows),
        threads_(threads),
        pool_(pool) {}

  void SetLinearization(bool pin_y) { pin_y_ = pin_y; }

  size_t num_rows() const override { return num_rows_; }
  size_t num_cols() const override { return m_ * n_; }

  double Cost(size_t col) const override {
    return cost_->At(col / n_, col % n_);
  }

  void Column(size_t col,
              std::vector<std::pair<size_t, double>>& out) const override {
    const size_t i = col / n_;
    const size_t j = col % n_;
    out.clear();
    out.emplace_back(i, 1.0);
    for (const ConstraintBlock& b : *blocks_) {
      if (pin_y_) {
        for (size_t y = 0; y < b.dy; ++y) {
          const size_t v = (b.jx[j] * b.dy + y) * b.dz + b.jz[j];
          const double coef =
              (y == b.jy[j] ? 1.0 : 0.0) - b.factor[y * b.dz + b.jz[j]];
          if (coef != 0.0) out.emplace_back(b.offset + v, coef);
        }
      } else {
        for (size_t x = 0; x < b.dx; ++x) {
          const size_t v = (x * b.dy + b.jy[j]) * b.dz + b.jz[j];
          const double coef =
              (x == b.jx[j] ? 1.0 : 0.0) - b.factor[x * b.dz + b.jz[j]];
          if (coef != 0.0) out.emplace_back(b.offset + v, coef);
        }
      }
    }
  }

  size_t PriceEntering(const std::vector<double>& y, double tol,
                       bool phase1) const override {
    // Per-block slice aggregates G[slice] = Σ factor·y over the slice's
    // marginal rows, then per-column duals w_j — O(Σ d_k + n·K) total.
    std::vector<double> w(n_, 0.0);
    for (const ConstraintBlock& b : *blocks_) {
      const size_t slices = (pin_y_ ? b.dx : b.dy) * b.dz;
      std::vector<double> g(slices, 0.0);
      for (size_t v = 0; v < b.d; ++v) {
        const size_t x = v / (b.dy * b.dz);
        const size_t yy = (v / b.dz) % b.dy;
        const size_t z = v % b.dz;
        if (pin_y_) {
          g[x * b.dz + z] += b.factor[yy * b.dz + z] * y[b.offset + v];
        } else {
          g[yy * b.dz + z] += b.factor[x * b.dz + z] * y[b.offset + v];
        }
      }
      for (size_t j = 0; j < n_; ++j) {
        const size_t slice =
            pin_y_ ? b.jx[j] * b.dz + b.jz[j] : b.jy[j] * b.dz + b.jz[j];
        w[j] += y[b.offset + b.vj[j]] - g[slice];
      }
    }

    // Pooled scan over the m×n grid, costs streamed tile-by-tile.
    // Chunk-local minima merge in chunk order with strict comparisons, so
    // the entering column is identical for any thread count.
    struct Candidate {
      double reduced;
      size_t col;
    };
    const size_t none = m_ * n_;
    const size_t grain = linalg::GrainForWork(n_);
    const linalg::ChunkPlan plan = linalg::PlanChunks(m_, threads_, grain);
    std::vector<Candidate> best(std::max<size_t>(plan.num_chunks, 1),
                                Candidate{-tol, none});
    linalg::ParallelFor(
        m_, threads_,
        [&](size_t begin, size_t end) {
          Candidate local{-tol, none};
          std::vector<double> tile(
              std::min<size_t>(n_, linalg::kCostStreamTileCols));
          for (size_t i = begin; i < end; ++i) {
            for (size_t c0 = 0; c0 < n_; c0 += linalg::kCostStreamTileCols) {
              const size_t c1 = std::min(n_, c0 + linalg::kCostStreamTileCols);
              cost_->Fill(i, c0, c1, tile.data());
              for (size_t j = c0; j < c1; ++j) {
                const double reduced =
                    (phase1 ? 0.0 : tile[j - c0]) - y[i] - w[j];
                if (reduced < local.reduced) {
                  local = Candidate{reduced, i * n_ + j};
                }
              }
            }
          }
          best[begin / plan.chunk] = local;
        },
        grain, pool_);
    Candidate out{-tol, none};
    for (const Candidate& c : best) {
      if (c.reduced < out.reduced) out = c;
    }
    return out.col;
  }

 private:
  const linalg::CostProvider* cost_;
  size_t m_, n_;
  std::vector<ConstraintBlock>* blocks_;
  size_t num_rows_;
  size_t threads_;
  linalg::ThreadPool* pool_;
  bool pin_y_ = true;
};

}  // namespace

Result<QclpResult> QclpCleanMulti(const prob::JointDistribution& p_data,
                                  const std::vector<prob::CiSpec>& cis,
                                  const ot::CostFunction& cost,
                                  const QclpOptions& options) {
  const prob::Domain& dom = p_data.domain();
  if (options.log_domain) {
    return Status::InvalidArgument(
        "QclpClean: log_domain=true is not supported — the QCLP path solves "
        "LPs and never iterates Sinkhorn; unset log_domain for solver=kQclp");
  }
  if (cis.empty()) {
    return Status::InvalidArgument(
        "QclpCleanMulti: at least one CI constraint is required");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument("QclpClean: p_data must be normalized");
  }

  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("QclpClean: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }
  const size_t m = row_cells.size();
  const size_t n = col_cells.size();

  linalg::Vector p(m);
  for (size_t i = 0; i < m; ++i) p[i] = p_data[row_cells[i]];

  // Costs stream through the provider — pricing and the final transport
  // cost pull tiles; no dense m×n cost matrix is materialized.
  const ot::FunctionCostProvider provider(dom, row_cells, col_cells, cost);
  Status finite = ot::ValidateFiniteCosts("QclpClean", provider);
  if (!finite.ok()) return finite;

  // One block of linearized marginal-consistency rows per constraint.
  std::vector<ConstraintBlock> blocks(cis.size());
  size_t num_rows = m;
  for (size_t k = 0; k < cis.size(); ++k) {
    const prob::CiSpec& ci = cis[k];
    ConstraintBlock& b = blocks[k];
    b.dx = dom.Project(ci.x).TotalSize();
    b.dy = dom.Project(ci.y).TotalSize();
    b.dz = ci.z.empty() ? 1 : dom.Project(ci.z).TotalSize();
    b.d = b.dx * b.dy * b.dz;
    b.offset = num_rows;
    num_rows += b.d;
    b.jx.reserve(n);
    b.jy.reserve(n);
    b.jz.reserve(n);
    b.vj.reserve(n);
    for (size_t c : col_cells) {
      const size_t x = dom.ProjectIndex(c, ci.x);
      const size_t y = dom.ProjectIndex(c, ci.y);
      const size_t z = ci.z.empty() ? 0 : dom.ProjectIndex(c, ci.z);
      b.jx.push_back(x);
      b.jy.push_back(y);
      b.jz.push_back(z);
      b.vj.push_back((x * b.dy + y) * b.dz + z);
    }
  }

  const size_t threads =
      std::max<size_t>(1, linalg::ResolveThreadCount(options.num_threads));
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);
  QclpColumnOracle oracle(provider, m, n, &blocks, num_rows, threads, pool);

  linalg::Vector b_rhs(num_rows, 0.0);
  for (size_t i = 0; i < m; ++i) b_rhs[i] = p[i];

  // Current CI-consistent estimate of the target distribution.
  prob::JointDistribution q = prob::MultiCiProjection(p_data, cis);

  QclpResult result;
  linalg::Matrix plan(m, n, 0.0);

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    Status stop = CheckStop(options.cancel_token, options.deadline,
                            "QclpClean: outer alternation");
    if (!stop.ok()) return stop;

    // Linearize each constraint around the previous estimate: pin_y pins
    // Q(y|z) and constrains the (x,·,z) slices; else the mirror image.
    const bool pin_y = (outer % 2 == 0);
    for (size_t k = 0; k < cis.size(); ++k) {
      const prob::CiSpec& ci = cis[k];
      ConstraintBlock& b = blocks[k];
      std::vector<double> qz(b.dz, 0.0);
      std::vector<double> qyz(b.dy * b.dz, 0.0);
      std::vector<double> qxz(b.dx * b.dz, 0.0);
      for (size_t cell = 0; cell < q.size(); ++cell) {
        const double v = q[cell];
        if (v <= 0.0) continue;
        const size_t x = dom.ProjectIndex(cell, ci.x);
        const size_t y = dom.ProjectIndex(cell, ci.y);
        const size_t z = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
        qz[z] += v;
        qyz[y * b.dz + z] += v;
        qxz[x * b.dz + z] += v;
      }
      if (pin_y) {
        b.factor.assign(b.dy * b.dz, 0.0);
        for (size_t y = 0; y < b.dy; ++y) {
          for (size_t z = 0; z < b.dz; ++z) {
            b.factor[y * b.dz + z] =
                qz[z] > 0.0 ? qyz[y * b.dz + z] / qz[z] : 0.0;
          }
        }
      } else {
        b.factor.assign(b.dx * b.dz, 0.0);
        for (size_t x = 0; x < b.dx; ++x) {
          for (size_t z = 0; z < b.dz; ++z) {
            b.factor[x * b.dz + z] =
                qz[z] > 0.0 ? qxz[x * b.dz + z] / qz[z] : 0.0;
          }
        }
      }
    }
    oracle.SetLinearization(pin_y);

    lp::RevisedSimplexOptions lp_opts;
    lp_opts.max_iterations = options.lp_max_iterations;
    lp_opts.cancel_token = options.cancel_token;
    lp_opts.deadline = options.deadline;
    OTCLEAN_ASSIGN_OR_RETURN(lp::RevisedSimplexResult sol,
                             lp::SolveRevisedSimplex(oracle, b_rhs, lp_opts));
    result.total_lp_pivots += sol.iterations;
    result.objective_trace.push_back(sol.objective);
    result.peak_tableau_bytes =
        std::max(result.peak_tableau_bytes,
                 sol.working_set_bytes + n * sizeof(double));

    std::fill(plan.data().begin(), plan.data().end(), 0.0);
    for (const auto& [col, value] : sol.basic) {
      plan(col / n, col % n) = value;
    }

    // New target estimate: the plan's column marginal projected onto the CI
    // intersection (it satisfies the linearized constraints; the projection
    // removes residual linearization slack).
    linalg::Vector col_mass = plan.ColSums();
    prob::JointDistribution t(dom);
    for (size_t j = 0; j < n; ++j) t[col_cells[j]] = col_mass[j];
    t.Normalize();
    prob::JointDistribution q_new = prob::MultiCiProjection(t, cis);

    const double delta = q.TotalVariation(q_new);
    q = std::move(q_new);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan = ot::TransportPlan(dom, row_cells, col_cells, plan);
  result.target = q;
  result.target_cmi = prob::MaxCmi(q, cis);
  // Streamed plan·cost dot product — tiles, never a dense cost matrix.
  double transport_cost = 0.0;
  std::vector<double> tile(std::min<size_t>(n, linalg::kCostStreamTileCols));
  for (size_t i = 0; i < m; ++i) {
    for (size_t c0 = 0; c0 < n; c0 += linalg::kCostStreamTileCols) {
      const size_t c1 = std::min(n, c0 + linalg::kCostStreamTileCols);
      provider.Fill(i, c0, c1, tile.data());
      for (size_t j = c0; j < c1; ++j) {
        transport_cost += tile[j - c0] * plan(i, j);
      }
    }
  }
  result.transport_cost = transport_cost;
  return result;
}

Result<QclpResult> QclpClean(const prob::JointDistribution& p_data,
                             const prob::CiSpec& ci,
                             const ot::CostFunction& cost,
                             const QclpOptions& options) {
  const prob::Domain& dom = p_data.domain();
  if (ci.x.size() + ci.y.size() + ci.z.size() != dom.num_attrs()) {
    return Status::InvalidArgument(
        "QclpClean: requires a saturated constraint over the input domain");
  }
  return QclpCleanMulti(p_data, {ci}, cost, options);
}

}  // namespace otclean::core
