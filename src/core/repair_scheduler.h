#ifndef OTCLEAN_CORE_REPAIR_SCHEDULER_H_
#define OTCLEAN_CORE_REPAIR_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "core/ci_constraint.h"
#include "core/repair.h"
#include "core/solve_cache.h"
#include "dataset/table.h"
#include "linalg/thread_pool.h"
#include "ot/cost.h"

namespace otclean::core {

/// Sentinel for RepairJob::id: derive the job's stable id from its position
/// in the batch handed to RepairScheduler::Run.
inline constexpr uint64_t kAutoJobId = ~uint64_t{0};

/// One entry of a repair batch. `table` (and `cost`, when set) must outlive
/// the Run call; the scheduler never copies the data.
struct RepairJob {
  const dataset::Table* table = nullptr;
  /// One constraint runs the single-constraint repair path; several run
  /// RepairTableMulti over their union.
  std::vector<CiConstraint> constraints;
  /// Per-job solver configuration. `options.{fast,qclp}.thread_pool` must
  /// stay null — the scheduler dispatches every job on its one shared pool
  /// and rejects jobs that bring their own (InvalidArgument). When the
  /// scheduler's pool resolves to width 1, per-job `num_threads` is forced
  /// to 1 as well (executors are then the only concurrency; results are
  /// unchanged — kernels are bit-compatible across thread counts).
  RepairOptions options;
  /// Optional cost over the cleaned sub-domain (see OtCleanRepairer::Fit);
  /// null builds the paper's C1 cost per job.
  const ot::CostFunction* cost = nullptr;
  /// Stable id mixed into the per-job seed (see DeriveJobSeed). Defaults to
  /// the job's position in the batch (Run) or its ticket number (standalone
  /// Submit); set it explicitly when the same logical job must keep its
  /// seed across batches that order jobs differently.
  uint64_t id = kAutoJobId;
  /// Free-form label echoed in CLI/bench summaries; no semantic meaning.
  std::string name;
  /// Wall-clock budget in seconds, measured from Submit — queue wait counts
  /// against it, so an admission-starved job times out rather than running
  /// arbitrarily late. Unset inherits
  /// RepairSchedulerOptions::default_deadline_seconds; an explicit value
  /// must be finite and > 0 (zero or negative is InvalidArgument, loudly,
  /// never a silent "no deadline"). Exceeding it fails the job with
  /// kDeadlineExceeded; completed work is never altered retroactively.
  std::optional<double> deadline_seconds;
};

/// Aggregate outcome of one batch.
struct BatchReport {
  /// Per-job outcomes, in batch order (never reordered by completion).
  std::vector<Result<RepairReport>> jobs;
  size_t completed_jobs = 0;  ///< jobs whose Result is ok().
  size_t failed_jobs = 0;     ///< all non-ok jobs, cancelled/deadlined included.
  /// Termination-reason sub-counts. `cancelled_jobs` and
  /// `deadline_exceeded_jobs` partition the kCancelled / kDeadlineExceeded
  /// slices of `failed_jobs`; `retried_jobs` counts *successful* jobs that
  /// needed at least one RetryOptions fallback (termination "retried-ok").
  size_t cancelled_jobs = 0;
  size_t deadline_exceeded_jobs = 0;
  size_t retried_jobs = 0;
  double wall_seconds = 0.0;
  /// Batch throughput: total jobs / wall_seconds.
  double jobs_per_second = 0.0;
  /// Summed over successful jobs.
  size_t total_sinkhorn_iterations = 0;
  /// Largest single plan held by any successful job.
  size_t peak_plan_bytes = 0;
  /// Shared solve-cache activity attributable to this batch: counters are
  /// the delta over the Run call (the cache may outlive many batches),
  /// gauges (entries / bytes_cached / bytes_pinned) are end-of-batch
  /// values. All zero when the scheduler runs cache-less.
  SolveCacheStats cache;
};

struct RepairSchedulerOptions {
  /// Executor threads running whole repair jobs concurrently; 0 = hardware
  /// concurrency. Each executor drives solves on the one shared kernel
  /// pool, so a machine is never oversubscribed N-fold by N jobs.
  size_t max_concurrent_jobs = 0;
  /// Lanes of the shared kernel pool (0 = hardware concurrency). Ignored
  /// when `thread_pool` is supplied.
  size_t pool_threads = 0;
  /// Optional externally owned pool shared with other work in the process;
  /// must outlive the scheduler. When null the scheduler owns one pool for
  /// its lifetime.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Byte budget of the scheduler-owned cross-request SolveCache. 0 — the
  /// default — runs cache-less (identical to pre-cache behavior); > 0
  /// creates one cache for the scheduler's lifetime, shared by every job
  /// of every batch, with strict LRU eviction at this budget. Ignored
  /// when `solve_cache` is supplied. (For an *unlimited* owned cache
  /// there is deliberately no spelling — pass your own SolveCache(0).)
  size_t cache_bytes = 0;
  /// Optional externally owned cache shared with other work in the
  /// process; must outlive the scheduler.
  SolveCache* solve_cache = nullptr;
  /// Admission control: upper bound on jobs *waiting* in the pending queue
  /// (in-flight jobs are not counted — they are bounded by
  /// max_concurrent_jobs already). Submit beyond the bound fails fast with
  /// kResourceExhausted instead of growing the queue without limit. 0 — the
  /// default — leaves the queue unbounded.
  size_t max_queued_jobs = 0;
  /// Deadline applied to jobs that do not set RepairJob::deadline_seconds,
  /// in seconds from their Submit. 0 — the default — means no default
  /// deadline; negative or NaN values are InvalidArgument (reported on the
  /// first Submit, the scheduler's earliest fallible call).
  double default_deadline_seconds = 0.0;
  /// Optional fault-injection harness (core/fault_injector.h) threaded
  /// through the scheduler's shared cache and into every job that does not
  /// carry its own; must outlive the scheduler. Null costs nothing.
  FaultInjector* fault_injector = nullptr;
};

/// The per-job seed: `base_seed` (the job's RepairOptions::seed) mixed with
/// the job's stable id through a SplitMix64-style finalizer. Distinct ids
/// decorrelate jobs that share a base seed, and the derivation depends only
/// on (base_seed, id) — never on executor assignment or completion order —
/// so batch results are reproducible run to run and identical however the
/// batch is sharded.
uint64_t DeriveJobSeed(uint64_t base_seed, uint64_t job_id);

/// Opaque handle to one submitted job; consumed by Wait.
using JobTicket = uint64_t;

/// Serves many repairs off one process: shards submitted RepairJobs across
/// a bounded set of executor threads that all dispatch kernel work on one
/// shared linalg::ThreadPool. Per-job results are bit-identical to running
/// the same jobs sequentially (same derived seeds, and a solve's chunk
/// decomposition never depends on what else shares the pool — cancellation
/// and deadlines can only *abort* a solve, never reshape it).
///
/// Two layers of API:
///  - Submit/Wait/Cancel — the serving surface: admission control
///    (max_queued_jobs), per-job deadlines measured from Submit, and
///    cooperative cancellation of queued or in-flight jobs. The scheduler
///    owns each job's CancellationToken; jobs must arrive with every
///    solver family's cancel_token null and deadline infinite
///    (`options.{fast,qclp,fairness}` alike — InvalidArgument otherwise,
///    the same loud-conflict policy as job-supplied pools and caches). The
///    scheduler wires its token and the Submit-anchored deadline into all
///    three, so kQclp and the fairness baselines honor Cancel and
///    deadline_seconds exactly like FastOTClean jobs.
///  - Run — the batch convenience, reimplemented over Submit/Wait: blocks
///    until every job completed, keeps results in batch order, and applies
///    backpressure (waiting out earlier jobs) instead of failing when a
///    batch overflows a bounded queue.
///
/// The scheduler is reusable across batches. DrainAndStop() (also run by
/// the destructor) finishes in-flight jobs, fails still-queued ones with
/// kCancelled, and stops the executors for good — Submit afterwards is
/// FailedPrecondition. Run itself must not be called concurrently from
/// several threads on the same scheduler; Submit/Wait/Cancel may be.
class RepairScheduler {
 public:
  explicit RepairScheduler(RepairSchedulerOptions options = {});
  ~RepairScheduler() { DrainAndStop(); }

  RepairScheduler(const RepairScheduler&) = delete;
  RepairScheduler& operator=(const RepairScheduler&) = delete;

  /// Admits one job. Validates loudly (null table, empty constraints,
  /// job-supplied pool/cache/token/deadline conflicts, non-positive
  /// explicit deadline → InvalidArgument), fails fast with
  /// kResourceExhausted when the pending queue is at max_queued_jobs, and
  /// with FailedPrecondition after DrainAndStop. The job's deadline clock
  /// starts now, in this call.
  Result<JobTicket> Submit(const RepairJob& job) OTCLEAN_EXCLUDES(mu_);

  /// Blocks until the ticket's job completed (ok, failed, cancelled or
  /// deadline-exceeded) and returns its result, consuming the ticket —
  /// a second Wait on it is NotFound.
  Result<RepairReport> Wait(JobTicket ticket) OTCLEAN_EXCLUDES(mu_);

  /// Requests cooperative cancellation: a still-queued job fails with
  /// kCancelled at dequeue; an in-flight solve aborts at its next
  /// iteration/outer-step/chunk checkpoint. Idempotent; a job that already
  /// completed keeps its result (Cancel still returns OK — the race is
  /// inherent). NotFound for unknown or already-consumed tickets.
  Status Cancel(JobTicket ticket) OTCLEAN_EXCLUDES(mu_);

  /// Lifecycle shutdown: lets in-flight jobs finish, fails every
  /// still-queued job with kCancelled, then joins the executors. Results
  /// remain collectable via Wait; further Submits are FailedPrecondition.
  /// Idempotent.
  void DrainAndStop() OTCLEAN_EXCLUDES(mu_);

  /// Runs every job; blocks until the whole batch completed. Per-job
  /// failures (bad options, infeasible solves, deadlines) land in the
  /// corresponding Result slot — one bad job never aborts its batch.
  BatchReport Run(const std::vector<RepairJob>& jobs) OTCLEAN_EXCLUDES(mu_);

  /// The pool every executor's solves dispatch on (null when the resolved
  /// pool width is 1 — solves run serial, executors still shard).
  /// EXCLUDES(mu_) documents lock-free polling as part of the contract:
  /// pool_/cache_ are fixed at construction, so accessors never need —
  /// and must never wait on — the scheduler mutex, even mid-batch.
  linalg::ThreadPool* shared_pool() OTCLEAN_EXCLUDES(mu_) { return pool_; }

  /// The cross-request cache every job solves through (null when the
  /// scheduler runs cache-less). Exposed so callers can fold their own
  /// lookups (the CLI's table cache) into its stats, and safe to poll
  /// (e.g. shared_cache()->Stats()) while a batch is running.
  SolveCache* shared_cache() OTCLEAN_EXCLUDES(mu_) { return cache_; }

 private:
  /// One admitted job: the copied RepairJob plus the scheduler-owned
  /// cancellation token, the deadline resolved at Submit, and the result
  /// slot the executor fills. Shared between the ticket map, the queue and
  /// the running executor, so a drained queue or consumed ticket never
  /// invalidates what another party still holds.
  struct PendingJob {
    RepairJob job;
    uint64_t seed_id = 0;
    CancellationToken token;
    Deadline deadline;
    /// done/result are guarded by the scheduler's mu_ (TSA cannot name a
    /// sibling object's mutex from a shared heap node, so the discipline
    /// is documented here and enforced on the scheduler's own fields).
    bool done = false;
    std::optional<Result<RepairReport>> result;
  };

  Status ValidateJob(const RepairJob& job) const;
  Result<RepairReport> RunOne(PendingJob& pending);
  void ExecutorLoop() OTCLEAN_EXCLUDES(mu_);

  RepairSchedulerOptions options_;
  std::optional<linalg::ThreadPool> owned_pool_;
  linalg::ThreadPool* pool_ = nullptr;
  std::optional<SolveCache> owned_cache_;
  SolveCache* cache_ = nullptr;

  Mutex mu_;
  CondVar cv_work_;  ///< executors: queue gained work / stop
  CondVar cv_done_;  ///< waiters: some job completed
  std::deque<std::shared_ptr<PendingJob>> queue_ OTCLEAN_GUARDED_BY(mu_);
  std::unordered_map<JobTicket, std::shared_ptr<PendingJob>> tickets_
      OTCLEAN_GUARDED_BY(mu_);
  /// Lazily started at first Submit; swapped out under mu_ and joined
  /// lock-free by DrainAndStop. Executors run whole repair jobs, not kernel
  /// chunks; per-chunk work inside each job still goes through the shared
  /// linalg::ThreadPool, so the bit-identity contract is untouched.
  // otclean-lint: allow(raw-thread) — see above.
  std::vector<std::thread> executors_ OTCLEAN_GUARDED_BY(mu_);
  JobTicket next_ticket_ OTCLEAN_GUARDED_BY(mu_) = 1;
  bool draining_ OTCLEAN_GUARDED_BY(mu_) = false;
};

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_REPAIR_SCHEDULER_H_
