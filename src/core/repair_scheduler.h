#ifndef OTCLEAN_CORE_REPAIR_SCHEDULER_H_
#define OTCLEAN_CORE_REPAIR_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/ci_constraint.h"
#include "core/repair.h"
#include "core/solve_cache.h"
#include "dataset/table.h"
#include "linalg/thread_pool.h"
#include "ot/cost.h"

namespace otclean::core {

/// Sentinel for RepairJob::id: derive the job's stable id from its position
/// in the batch handed to RepairScheduler::Run.
inline constexpr uint64_t kAutoJobId = ~uint64_t{0};

/// One entry of a repair batch. `table` (and `cost`, when set) must outlive
/// the Run call; the scheduler never copies the data.
struct RepairJob {
  const dataset::Table* table = nullptr;
  /// One constraint runs the single-constraint repair path; several run
  /// RepairTableMulti over their union.
  std::vector<CiConstraint> constraints;
  /// Per-job solver configuration. `options.{fast,qclp}.thread_pool` must
  /// stay null — the scheduler dispatches every job on its one shared pool
  /// and rejects jobs that bring their own (InvalidArgument). When the
  /// scheduler's pool resolves to width 1, per-job `num_threads` is forced
  /// to 1 as well (executors are then the only concurrency; results are
  /// unchanged — kernels are bit-compatible across thread counts).
  RepairOptions options;
  /// Optional cost over the cleaned sub-domain (see OtCleanRepairer::Fit);
  /// null builds the paper's C1 cost per job.
  const ot::CostFunction* cost = nullptr;
  /// Stable id mixed into the per-job seed (see DeriveJobSeed). Defaults to
  /// the job's position in the batch; set it explicitly when the same
  /// logical job must keep its seed across batches that order jobs
  /// differently.
  uint64_t id = kAutoJobId;
  /// Free-form label echoed in CLI/bench summaries; no semantic meaning.
  std::string name;
};

/// Aggregate outcome of one batch.
struct BatchReport {
  /// Per-job outcomes, in batch order (never reordered by completion).
  std::vector<Result<RepairReport>> jobs;
  size_t completed_jobs = 0;  ///< jobs whose Result is ok().
  size_t failed_jobs = 0;
  double wall_seconds = 0.0;
  /// Batch throughput: total jobs / wall_seconds.
  double jobs_per_second = 0.0;
  /// Summed over successful jobs.
  size_t total_sinkhorn_iterations = 0;
  /// Largest single plan held by any successful job.
  size_t peak_plan_bytes = 0;
  /// Shared solve-cache activity attributable to this batch: counters are
  /// the delta over the Run call (the cache may outlive many batches),
  /// gauges (entries / bytes_cached / bytes_pinned) are end-of-batch
  /// values. All zero when the scheduler runs cache-less.
  SolveCacheStats cache;
};

struct RepairSchedulerOptions {
  /// Executor threads running whole repair jobs concurrently; 0 = hardware
  /// concurrency. Each executor drives solves on the one shared kernel
  /// pool, so a machine is never oversubscribed N-fold by N jobs.
  size_t max_concurrent_jobs = 0;
  /// Lanes of the shared kernel pool (0 = hardware concurrency). Ignored
  /// when `thread_pool` is supplied.
  size_t pool_threads = 0;
  /// Optional externally owned pool shared with other work in the process;
  /// must outlive the scheduler. When null the scheduler owns one pool for
  /// its lifetime.
  linalg::ThreadPool* thread_pool = nullptr;
  /// Byte budget of the scheduler-owned cross-request SolveCache. 0 — the
  /// default — runs cache-less (identical to pre-cache behavior); > 0
  /// creates one cache for the scheduler's lifetime, shared by every job
  /// of every batch, with strict LRU eviction at this budget. Ignored
  /// when `solve_cache` is supplied. (For an *unlimited* owned cache
  /// there is deliberately no spelling — pass your own SolveCache(0).)
  size_t cache_bytes = 0;
  /// Optional externally owned cache shared with other work in the
  /// process; must outlive the scheduler.
  SolveCache* solve_cache = nullptr;
};

/// The per-job seed: `base_seed` (the job's RepairOptions::seed) mixed with
/// the job's stable id through a SplitMix64-style finalizer. Distinct ids
/// decorrelate jobs that share a base seed, and the derivation depends only
/// on (base_seed, id) — never on executor assignment or completion order —
/// so batch results are reproducible run to run and identical however the
/// batch is sharded.
uint64_t DeriveJobSeed(uint64_t base_seed, uint64_t job_id);

/// Serves many repairs off one process: shards a batch of RepairJobs across
/// a bounded set of executor threads that all dispatch kernel work on one
/// shared linalg::ThreadPool. Per-job results are bit-identical to running
/// the same jobs sequentially (same derived seeds, and a solve's chunk
/// decomposition never depends on what else shares the pool).
///
/// The scheduler is reusable: construct once (the pool persists), Run any
/// number of batches. Run itself must not be called concurrently from
/// several threads on the same scheduler — batch the work instead.
class RepairScheduler {
 public:
  explicit RepairScheduler(RepairSchedulerOptions options = {});

  /// Runs every job; blocks until the whole batch completed. Per-job
  /// failures (bad options, infeasible solves) land in the corresponding
  /// Result slot — one bad job never aborts its batch.
  BatchReport Run(const std::vector<RepairJob>& jobs);

  /// The pool every executor's solves dispatch on (null when the resolved
  /// pool width is 1 — solves run serial, executors still shard).
  linalg::ThreadPool* shared_pool() { return pool_; }

  /// The cross-request cache every job solves through (null when the
  /// scheduler runs cache-less). Exposed so callers can fold their own
  /// lookups (the CLI's table cache) into its stats.
  SolveCache* shared_cache() { return cache_; }

 private:
  Result<RepairReport> RunOne(const RepairJob& job, size_t batch_index);

  RepairSchedulerOptions options_;
  std::optional<linalg::ThreadPool> owned_pool_;
  linalg::ThreadPool* pool_ = nullptr;
  std::optional<SolveCache> owned_cache_;
  SolveCache* cache_ = nullptr;
};

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_REPAIR_SCHEDULER_H_
