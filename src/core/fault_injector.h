#ifndef OTCLEAN_CORE_FAULT_INJECTOR_H_
#define OTCLEAN_CORE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"

namespace otclean::core {

/// The failure edges the injector can force. Each site is visited by
/// exactly one layer of the stack, so "fire at the Nth visit" is a
/// deterministic statement about that layer's call sequence.
enum class FaultSite {
  /// FastOTClean's kernel-allocation checkpoint throws std::bad_alloc —
  /// caught at the repair boundary and surfaced as kResourceExhausted.
  kAlloc = 0,
  /// The solve's cost view poisons entry (0,0) with NaN *after* input
  /// validation, so the NaN reaches the kernel build like a real numeric
  /// blow-up would. Visited once per FastOTClean solve.
  kKernelNan,
  /// A ThreadPool participant sleeps before executing a chunk (install
  /// via InstallPoolDelayHook). Not a failure by itself — compose with a
  /// deadline to force kDeadlineExceeded mid-dispatch.
  kWorkerDelay,
  /// SolveCache::InsertKernel fails to store: the solve proceeds on its
  /// privately-built kernel and the cache ends the request with no entry —
  /// never a partial one.
  kCacheInsert,
};

inline constexpr size_t kNumFaultSites = 4;

const char* FaultSiteName(FaultSite site);

/// A deterministic fault-injection harness. Tests (and the CLI, via the
/// OTCLEAN_FAULTS environment variable) arm sites to fire at the Nth
/// visit; the stack consults the injector only where an options struct or
/// setter explicitly carries it, so un-instrumented runs pay nothing.
///
/// Spec grammar (OTCLEAN_FAULTS and Parse):
///   spec  := arm ("," arm)*
///   arm   := site "@" N ["+"]            N >= 1, 1-based visit index
///   site  := "alloc" | "kernel-nan" | "worker-delay" | "cache-insert"
/// `site@N` fires exactly at the Nth visit; `site@N+` fires at every visit
/// from the Nth on (sticky). Example: OTCLEAN_FAULTS="alloc@2,cache-insert@1+"
///
/// Thread safety: visit counters are atomic (kWorkerDelay is hit from pool
/// workers concurrently); arming is not — arm before dispatching work.
/// Under the TSA regime (common/thread_annotations.h) this class carries
/// no capability: `hits_` is lock-free by design (ShouldFire sits on the
/// pool's per-chunk hot path, where a mutex would serialize the workers it
/// instruments), and `arms_`/`delay_millis_` are frozen before any
/// concurrent reader exists — dispatching instrumented work publishes them
/// via the thread-creation / SetChunkHook release edge. Arm/ShouldFire
/// overlapping is a misuse TSan would flag, not a supported schedule.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site` to fire at the `nth` visit (1-based); every visit from
  /// the nth on when `sticky`.
  void Arm(FaultSite site, size_t nth, bool sticky = false);

  /// Records a visit to `site` and returns whether the fault fires there.
  bool ShouldFire(FaultSite site);

  /// Visits recorded so far at `site`.
  size_t hits(FaultSite site) const;

  /// Parses the OTCLEAN_FAULTS grammar into `out` (arms accumulate onto
  /// whatever is already armed). InvalidArgument on malformed specs.
  static Status Parse(const std::string& spec, FaultInjector* out);

  /// Installs the process-wide ThreadPool chunk hook servicing
  /// kWorkerDelay: each firing visit sleeps `delay_millis`. The injector
  /// must outlive the hook; uninstall with ClearPoolDelayHook once the
  /// instrumented work has drained.
  void InstallPoolDelayHook(size_t delay_millis = 25);
  static void ClearPoolDelayHook();

  /// Sleep applied per firing kWorkerDelay visit (set by
  /// InstallPoolDelayHook).
  size_t worker_delay_millis() const { return delay_millis_; }

 private:
  struct SiteArm {
    bool armed = false;
    size_t nth = 0;
    bool sticky = false;
  };

  /// Written by Arm/Parse strictly before instrumented work is dispatched;
  /// read concurrently (and lock-free) by ShouldFire afterwards.
  SiteArm arms_[kNumFaultSites];
  std::atomic<size_t> hits_[kNumFaultSites] = {};
  /// Same freeze-then-read contract as arms_ (set by InstallPoolDelayHook,
  /// read by pool workers through the chunk hook).
  size_t delay_millis_ = 25;
};

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_FAULT_INJECTOR_H_
