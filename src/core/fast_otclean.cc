#include "core/fast_otclean.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "linalg/thread_pool.h"
#include "linalg/transport_kernel.h"
#include "nmf/kl_nmf.h"

namespace otclean::core {

namespace {

/// Holds whichever kernel storage the truncation option selects, built
/// ONCE per repair — cost and ε are invariant across the outer loop, so
/// each outer step only reruns the (warm-started) scaling loop.
///
/// The truncated path is cost-free in the O(rows×cols) sense: the kernel
/// is built by streaming the CostProvider tile-by-tile, and every ⟨C, π⟩
/// evaluation gathers cost entries only at the kernel's support — the
/// dense cost matrix is materialized exclusively for the dense path.
struct OuterLoopKernel {
  std::optional<linalg::DenseTransportKernel> dense;
  std::optional<linalg::SparseTransportKernel> sparse;
  /// Sparse path only: C gathered once at the kernel's support (O(nnz)),
  /// so the outer loop's repeated ⟨C, π⟩ evaluations never re-invoke the
  /// cost function.
  std::vector<double> support_costs;
  /// Dense path only (empty when sparse): the materialized cost, used for
  /// the zero-copy TransportCost fast path.
  linalg::Matrix cost_matrix;

  OuterLoopKernel(const linalg::CostProvider& cost,
                  const FastOtCleanOptions& options,
                  linalg::ThreadPool* pool) {
    if (options.kernel_truncation > 0.0) {
      sparse.emplace(linalg::SparseTransportKernel::FromCost(
          cost, options.epsilon, options.kernel_truncation,
          options.num_threads, pool));
      support_costs = sparse->GatherSupportCosts(cost);
    } else {
      cost_matrix = linalg::MaterializeCostMatrix(cost);
      dense.emplace(linalg::DenseTransportKernel::FromCost(
          cost_matrix, options.epsilon, options.num_threads, pool));
    }
  }

  /// Truncation must not strand source mass: every active-domain row needs
  /// at least one surviving kernel entry. (Columns may legitimately go
  /// empty — the relaxed target marginal simply never reaches them.)
  Status CheckSupport(const linalg::Vector& p, const char* where) const {
    if (!sparse) return Status::OK();
    return ot::CheckTruncatedKernelSupport(sparse->kernel(), &p,
                                           /*q=*/nullptr, where);
  }

  const linalg::TransportKernel& get() const {
    return sparse ? static_cast<const linalg::TransportKernel&>(*sparse)
                  : *dense;
  }

  /// ⟨C, π⟩ at the current potentials: in-memory cost rows on the dense
  /// path, the cached O(nnz) support costs on the sparse one.
  double TransportCost(const linalg::Vector& u, const linalg::Vector& v) const {
    return sparse ? sparse->SupportTransportCost(support_costs, u, v)
                  : dense->TransportCost(cost_matrix, u, v);
  }

  /// Materializes the final plan from the converged scaling vectors and
  /// stores ⟨C, π⟩ in `transport_cost`. The sparse path stays CSR end to
  /// end — TransportPlan keeps the CSR backing, so no dense rows×cols
  /// plan is ever allocated on a truncated solve.
  ot::TransportPlan MaterializePlan(const prob::Domain& dom,
                                    const std::vector<size_t>& row_cells,
                                    const std::vector<size_t>& col_cells,
                                    const linalg::Vector& u,
                                    const linalg::Vector& v,
                                    double& transport_cost) const {
    transport_cost = TransportCost(u, v);
    if (sparse) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               sparse->ScaleToPlanSparse(u, v));
    }
    return ot::TransportPlan(dom, row_cells, col_cells,
                             dense->ScaleToPlan(u, v));
  }
};

/// Expands a marginal over `cells` into a dense distribution over `dom`.
prob::JointDistribution ExpandToDomain(const prob::Domain& dom,
                                       const std::vector<size_t>& cells,
                                       const linalg::Vector& mass) {
  prob::JointDistribution out(dom);
  for (size_t i = 0; i < cells.size(); ++i) out[cells[i]] = mass[i];
  return out;
}

/// CI projection computed by per-z-slice iterative Lee–Seung rank-one NMF,
/// used when options.iterative_nmf is set. Produces the same distribution
/// as prob::CiProjection at convergence.
prob::JointDistribution IterativeNmfProjection(
    const prob::JointDistribution& t, const prob::CiSpec& ci,
    size_t nmf_max_iterations, Rng& rng) {
  const prob::Domain& dom = t.domain();
  // Slice layout: for each z cell, matrix A_z of size d_X × d_Y where
  // (x, y) aggregates all cells with those X/Y/Z projections. For a
  // saturated constraint every cell maps uniquely to (x, y, z).
  const prob::Domain dom_x = dom.Project(ci.x);
  const prob::Domain dom_y = dom.Project(ci.y);
  const prob::Domain dom_z =
      ci.z.empty() ? prob::Domain::FromCardinalities({1}) : dom.Project(ci.z);
  const size_t dx = dom_x.TotalSize();
  const size_t dy = dom_y.TotalSize();
  const size_t dz = ci.z.empty() ? 1 : dom_z.TotalSize();

  // Aggregate P(x, y, z) and the conditional of any remaining attributes.
  std::vector<linalg::Matrix> slices(dz, linalg::Matrix(dx, dy, 0.0));
  for (size_t cell = 0; cell < t.size(); ++cell) {
    const double p = t[cell];
    if (p <= 0.0) continue;
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    slices[zi](xi, yi) += p;
  }

  // Factorize each slice: A_z ≈ W_z · H_zᵀ (Algorithm 2 lines 8–12).
  std::vector<linalg::Matrix> approx(dz, linalg::Matrix(dx, dy, 0.0));
  nmf::KlNmfOptions nmf_opts;
  nmf_opts.rank = 1;
  nmf_opts.max_iterations = nmf_max_iterations;
  for (size_t zi = 0; zi < dz; ++zi) {
    if (slices[zi].Sum() <= 0.0) continue;
    auto r = nmf::KlNmf(slices[zi], nmf_opts, rng);
    if (r.ok()) {
      approx[zi] =
          linalg::Matrix::OuterProduct(r->w.Col(0), r->h.Row(0));
    } else {
      approx[zi] = slices[zi];
    }
  }

  // Reassemble q over the full domain, carrying P(rest | x,y,z) along.
  std::vector<size_t> xyz = ci.x;
  xyz.insert(xyz.end(), ci.y.begin(), ci.y.end());
  xyz.insert(xyz.end(), ci.z.begin(), ci.z.end());
  const prob::JointDistribution rest_given_xyz = t.ConditionalOn(xyz);
  prob::JointDistribution q(dom);
  for (size_t cell = 0; cell < q.size(); ++cell) {
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    q[cell] = approx[zi](xi, yi) * rest_given_xyz[cell];
  }
  q.Normalize();
  return q;
}

}  // namespace

Result<FastOtCleanResult> FastOtClean(const prob::JointDistribution& p_data,
                                      const prob::CiSpec& ci,
                                      const ot::CostFunction& cost,
                                      const FastOtCleanOptions& options,
                                      Rng& rng) {
  if (!options.iterative_nmf) {
    // The closed-form single-constraint projection is the one-spec case of
    // the cyclic multi-constraint projection.
    return FastOtCleanMulti(p_data, {ci}, cost, options, rng);
  }
  const prob::Domain& dom = p_data.domain();
  if (dom.TotalSize() == 0) {
    return Status::InvalidArgument("FastOtClean: empty domain");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument("FastOtClean: p_data must be normalized");
  }
  if (options.ci_strength < 0.0 || options.ci_strength > 1.0) {
    return Status::InvalidArgument("FastOtClean: ci_strength must be in [0,1]");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("FastOtClean: epsilon must be positive");
  }
  if (options.max_outer_iterations == 0) {
    return Status::InvalidArgument(
        "FastOtClean: max_outer_iterations must be > 0");
  }

  // Active-domain restriction (Section 5, default optimization 1).
  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("FastOtClean: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }

  linalg::Vector p(row_cells.size());
  for (size_t i = 0; i < row_cells.size(); ++i) p[i] = p_data[row_cells[i]];

  const ot::FunctionCostProvider cost_view(dom, row_cells, col_cells, cost);

  // Initial target distribution Q (Section 5, default optimization 2).
  prob::JointDistribution q(dom);
  if (options.nmf_init) {
    q = prob::CiProjection(p_data, ci);
  } else {
    for (size_t i = 0; i < q.size(); ++i) q[i] = rng.NextDouble();
    q.Normalize();
    q = prob::CiProjection(q, ci);  // random but feasible start
  }

  ot::SinkhornOptions sink;
  sink.epsilon = options.epsilon;
  sink.lambda = options.lambda;
  sink.relaxed = true;
  sink.max_iterations = options.max_sinkhorn_iterations;
  sink.tolerance = options.sinkhorn_tolerance;
  sink.num_threads = options.num_threads;

  // One worker pool for the whole repair: every Sinkhorn iteration of
  // every outer step dispatches on it instead of spawning threads anew.
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  const OuterLoopKernel kernel_storage(cost_view, options, pool);
  OTCLEAN_RETURN_NOT_OK(kernel_storage.CheckSupport(p, "FastOtClean"));
  const linalg::TransportKernel& kernel = kernel_storage.get();

  FastOtCleanResult result;
  result.kernel_nnz = kernel.nnz();
  linalg::Vector warm_u, warm_v, ktu;

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    // --- Outer step A: transport plan against the current Q (Sinkhorn). ---
    linalg::Vector q_cols(col_cells.size());
    for (size_t j = 0; j < col_cells.size(); ++j) q_cols[j] = q[col_cells[j]];

    const linalg::Vector* wu =
        (options.warm_start && warm_u.size() == p.size()) ? &warm_u : nullptr;
    const linalg::Vector* wv =
        (options.warm_start && warm_v.size() == q_cols.size()) ? &warm_v
                                                               : nullptr;
    OTCLEAN_ASSIGN_OR_RETURN(
        ot::SinkhornScaling sr,
        ot::RunSinkhornScaling(kernel, p, q_cols, sink, wu, wv));
    warm_u = std::move(sr.u);
    warm_v = std::move(sr.v);
    result.total_sinkhorn_iterations += sr.iterations;
    result.objective_trace.push_back(
        kernel_storage.TransportCost(warm_u, warm_v));

    // --- Outer step B: rebuild Q from the plan's target marginal via the
    // per-slice rank-one KL factorization (Algorithm 2 lines 8–13). ---
    // Column marginal of diag(u)·K·diag(v) without materializing the
    // plan: (Kᵀu) ∘ v.
    kernel.ApplyTranspose(warm_u, ktu);
    linalg::Vector target_mass = ktu.CwiseProduct(warm_v);
    const double total = target_mass.Sum();
    if (total <= 0.0) {
      return Status::Internal("FastOtClean: plan lost all mass");
    }
    target_mass /= total;
    prob::JointDistribution t = ExpandToDomain(dom, col_cells, target_mass);
    prob::JointDistribution q_proj =
        options.iterative_nmf
            ? IterativeNmfProjection(t, ci, options.nmf_max_iterations, rng)
            : prob::CiProjection(t, ci);

    if (options.ci_strength < 1.0) {
      // Soft enforcement: blend projection with the raw marginal (finite μ).
      for (size_t i = 0; i < q_proj.size(); ++i) {
        q_proj[i] =
            options.ci_strength * q_proj[i] +
            (1.0 - options.ci_strength) * t[i];
      }
      q_proj.Normalize();
    }

    const double delta = q.TotalVariation(q_proj);
    q = std::move(q_proj);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan =
      kernel_storage.MaterializePlan(dom, row_cells, col_cells, warm_u,
                                     warm_v, result.transport_cost);
  result.target = q;
  result.target_cmi = prob::ConditionalMutualInformation(q, ci);
  return result;
}

Result<FastOtCleanResult> FastOtCleanMulti(
    const prob::JointDistribution& p_data,
    const std::vector<prob::CiSpec>& cis, const ot::CostFunction& cost,
    const FastOtCleanOptions& options, Rng& rng) {
  const prob::Domain& dom = p_data.domain();
  if (dom.TotalSize() == 0) {
    return Status::InvalidArgument("FastOtCleanMulti: empty domain");
  }
  if (cis.empty()) {
    return Status::InvalidArgument("FastOtCleanMulti: no constraints");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: p_data must be normalized");
  }
  if (options.ci_strength < 0.0 || options.ci_strength > 1.0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: ci_strength must be in [0,1]");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: epsilon must be positive");
  }
  if (options.max_outer_iterations == 0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: max_outer_iterations must be > 0");
  }

  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("FastOtCleanMulti: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }

  linalg::Vector p(row_cells.size());
  for (size_t i = 0; i < row_cells.size(); ++i) p[i] = p_data[row_cells[i]];

  const ot::FunctionCostProvider cost_view(dom, row_cells, col_cells, cost);

  prob::JointDistribution q(dom);
  if (options.nmf_init) {
    q = prob::MultiCiProjection(p_data, cis);
  } else {
    for (size_t i = 0; i < q.size(); ++i) q[i] = rng.NextDouble();
    q.Normalize();
    q = prob::MultiCiProjection(q, cis);
  }

  ot::SinkhornOptions sink;
  sink.epsilon = options.epsilon;
  sink.lambda = options.lambda;
  sink.relaxed = true;
  sink.max_iterations = options.max_sinkhorn_iterations;
  sink.tolerance = options.sinkhorn_tolerance;
  sink.num_threads = options.num_threads;

  // One worker pool for the whole repair: every Sinkhorn iteration of
  // every outer step dispatches on it instead of spawning threads anew.
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  const OuterLoopKernel kernel_storage(cost_view, options, pool);
  OTCLEAN_RETURN_NOT_OK(kernel_storage.CheckSupport(p, "FastOtCleanMulti"));
  const linalg::TransportKernel& kernel = kernel_storage.get();

  FastOtCleanResult result;
  result.kernel_nnz = kernel.nnz();
  linalg::Vector warm_u, warm_v, ktu;

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    linalg::Vector q_cols(col_cells.size());
    for (size_t j = 0; j < col_cells.size(); ++j) q_cols[j] = q[col_cells[j]];

    const linalg::Vector* wu =
        (options.warm_start && warm_u.size() == p.size()) ? &warm_u : nullptr;
    const linalg::Vector* wv =
        (options.warm_start && warm_v.size() == q_cols.size()) ? &warm_v
                                                               : nullptr;
    OTCLEAN_ASSIGN_OR_RETURN(
        ot::SinkhornScaling sr,
        ot::RunSinkhornScaling(kernel, p, q_cols, sink, wu, wv));
    warm_u = std::move(sr.u);
    warm_v = std::move(sr.v);
    result.total_sinkhorn_iterations += sr.iterations;
    result.objective_trace.push_back(
        kernel_storage.TransportCost(warm_u, warm_v));

    // Column marginal of diag(u)·K·diag(v): (Kᵀu) ∘ v.
    kernel.ApplyTranspose(warm_u, ktu);
    linalg::Vector target_mass = ktu.CwiseProduct(warm_v);

    const double total = target_mass.Sum();
    if (total <= 0.0) {
      return Status::Internal("FastOtCleanMulti: plan lost all mass");
    }
    target_mass /= total;
    prob::JointDistribution t = ExpandToDomain(dom, col_cells, target_mass);
    prob::JointDistribution q_proj = prob::MultiCiProjection(t, cis);

    if (options.ci_strength < 1.0) {
      for (size_t i = 0; i < q_proj.size(); ++i) {
        q_proj[i] = options.ci_strength * q_proj[i] +
                    (1.0 - options.ci_strength) * t[i];
      }
      q_proj.Normalize();
    }

    const double delta = q.TotalVariation(q_proj);
    q = std::move(q_proj);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan =
      kernel_storage.MaterializePlan(dom, row_cells, col_cells, warm_u,
                                     warm_v, result.transport_cost);
  result.target = q;
  result.target_cmi = prob::MaxCmi(q, cis);
  return result;
}

}  // namespace otclean::core
