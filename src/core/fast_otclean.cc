#include "core/fast_otclean.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "common/hash.h"
#include "core/fault_injector.h"
#include "core/solve_cache.h"
#include "linalg/log_transport_kernel.h"
#include "linalg/simd_exp.h"
#include "linalg/thread_pool.h"
#include "linalg/transport_kernel.h"
#include "linalg/transport_kernel_f32.h"
#include "nmf/kl_nmf.h"

namespace otclean::core {

namespace {

/// Holds whichever kernel storage the truncation × domain options select,
/// built ONCE per repair — cost and ε are invariant across the outer
/// loop, so each outer step only reruns the (warm-started) scaling loop.
/// Four storages plug in behind one surface: dense/CSR × linear/log. In
/// log-domain mode the "potentials" threaded through the outer loop (and
/// its warm starts) are LOG-potentials; the struct is the only place that
/// needs to know.
///
/// The truncated paths are cost-free in the O(rows×cols) sense: the
/// kernel is built by streaming the CostProvider tile-by-tile, and every
/// ⟨C, π⟩ evaluation gathers cost entries only at the kernel's support —
/// the dense cost matrix is materialized exclusively for the dense
/// linear path (the dense log kernel streams the provider straight into
/// L = −C/ε).
struct OuterLoopKernel {
  std::optional<linalg::DenseTransportKernel> dense;
  std::optional<linalg::SparseTransportKernel> sparse;
  std::optional<linalg::DenseLogTransportKernel> log_dense;
  std::optional<linalg::SparseLogTransportKernel> log_sparse;
  /// f32 storage tier (options.precision == kFloat32): same four shapes,
  /// float-held kernel values, double accumulation. Exactly one of the
  /// eight is engaged.
  std::optional<linalg::DenseTransportKernelF32> dense_f32;
  std::optional<linalg::SparseTransportKernelF32> sparse_f32;
  std::optional<linalg::DenseLogTransportKernelF32> log_dense_f32;
  std::optional<linalg::SparseLogTransportKernelF32> log_sparse_f32;
  /// Sparse paths only: C gathered once at the kernel's support (O(nnz)),
  /// so the outer loop's repeated ⟨C, π⟩ evaluations never re-invoke the
  /// cost function. shared_ptr-held so the solve cache can hand one
  /// gather to every job sharing the kernel.
  std::shared_ptr<const std::vector<double>> support_costs;
  /// Dense linear path only (null otherwise): the materialized cost,
  /// used for the zero-copy TransportCost fast path (shared like the
  /// kernel).
  std::shared_ptr<const linalg::Matrix> cost_matrix;
  /// Dense log path only: borrowed provider for streamed ⟨C, π⟩.
  const linalg::CostProvider* cost_provider = nullptr;
  /// True when every storage came out of the solve cache (nothing was
  /// streamed or exponentiated for this repair).
  bool kernel_hit = false;

  /// `cache` (nullable) with an invalid `key` is a silent no-op, so the
  /// uncached construction path is unchanged. A hit adopts the cached
  /// storages — the same bytes the miss built, hence bit-identical
  /// arithmetic; a miss builds and publishes them.
  OuterLoopKernel(const linalg::CostProvider& cost,
                  const FastOtCleanOptions& options, linalg::ThreadPool* pool,
                  SolveCache* cache, const SolveCacheKey& key) {
    const bool truncated = options.kernel_truncation > 0.0;
    const bool f32 = options.precision == linalg::Precision::kFloat32;
    std::optional<CachedKernel> hit;
    if (cache != nullptr) hit = cache->FindKernel(key);
    if (options.log_domain && truncated) {
      if (f32) {
        if (hit && hit->sparse_f32) {
          kernel_hit = true;
          log_sparse_f32.emplace(linalg::SparseLogTransportKernelF32(
              hit->sparse_f32, options.num_threads, pool));
          support_costs = hit->support_costs;
        } else {
          log_sparse_f32.emplace(linalg::SparseLogTransportKernelF32::FromCost(
              cost, options.epsilon, options.kernel_truncation,
              options.num_threads, pool));
        }
        if (!support_costs) {
          support_costs = std::make_shared<const std::vector<double>>(
              log_sparse_f32->GatherSupportCosts(cost));
        }
      } else if (hit && hit->sparse) {
        kernel_hit = true;
        log_sparse.emplace(linalg::SparseLogTransportKernel(
            hit->sparse, options.num_threads, pool));
        support_costs = hit->support_costs;
      } else {
        log_sparse.emplace(linalg::SparseLogTransportKernel::FromCost(
            cost, options.epsilon, options.kernel_truncation,
            options.num_threads, pool));
      }
      if (!support_costs && log_sparse) {
        support_costs = std::make_shared<const std::vector<double>>(
            log_sparse->GatherSupportCosts(cost));
      }
    } else if (options.log_domain) {
      if (f32) {
        if (hit && hit->dense_f32) {
          kernel_hit = true;
          log_dense_f32.emplace(linalg::DenseLogTransportKernelF32(
              hit->dense_f32, options.num_threads, pool));
        } else {
          log_dense_f32.emplace(linalg::DenseLogTransportKernelF32::FromCost(
              cost, options.epsilon, options.num_threads, pool));
        }
      } else if (hit && hit->dense) {
        kernel_hit = true;
        log_dense.emplace(linalg::DenseLogTransportKernel(
            hit->dense, options.num_threads, pool));
      } else {
        log_dense.emplace(linalg::DenseLogTransportKernel::FromCost(
            cost, options.epsilon, options.num_threads, pool));
      }
      cost_provider = &cost;
    } else if (truncated) {
      if (f32) {
        if (hit && hit->sparse_f32) {
          kernel_hit = true;
          sparse_f32.emplace(linalg::SparseTransportKernelF32(
              hit->sparse_f32, options.num_threads, pool));
          support_costs = hit->support_costs;
        } else {
          sparse_f32.emplace(linalg::SparseTransportKernelF32::FromCost(
              cost, options.epsilon, options.kernel_truncation,
              options.num_threads, pool));
        }
        if (!support_costs) {
          support_costs = std::make_shared<const std::vector<double>>(
              sparse_f32->GatherSupportCosts(cost));
        }
      } else if (hit && hit->sparse) {
        kernel_hit = true;
        sparse.emplace(linalg::SparseTransportKernel(
            hit->sparse, options.num_threads, pool));
        support_costs = hit->support_costs;
      } else {
        sparse.emplace(linalg::SparseTransportKernel::FromCost(
            cost, options.epsilon, options.kernel_truncation,
            options.num_threads, pool));
      }
      if (!support_costs && sparse) {
        support_costs = std::make_shared<const std::vector<double>>(
            sparse->GatherSupportCosts(cost));
      }
    } else {
      // Dense linear: both tiers keep the materialized cost around for the
      // zero-copy ⟨C, π⟩ path (the f32 tier only narrows the *kernel*).
      if (f32) {
        if (hit && hit->dense_f32 && hit->dense_cost) {
          kernel_hit = true;
          cost_matrix = hit->dense_cost;
          dense_f32.emplace(linalg::DenseTransportKernelF32(
              hit->dense_f32, options.num_threads, pool));
        } else {
          cost_matrix = std::make_shared<const linalg::Matrix>(
              linalg::MaterializeCostMatrix(cost));
          dense_f32.emplace(linalg::DenseTransportKernelF32::FromCost(
              *cost_matrix, options.epsilon, options.num_threads, pool));
        }
      } else if (hit && hit->dense && hit->dense_cost) {
        kernel_hit = true;
        cost_matrix = hit->dense_cost;
        dense.emplace(linalg::DenseTransportKernel(hit->dense,
                                                   options.num_threads, pool));
      } else {
        cost_matrix = std::make_shared<const linalg::Matrix>(
            linalg::MaterializeCostMatrix(cost));
        dense.emplace(linalg::DenseTransportKernel::FromCost(
            *cost_matrix, options.epsilon, options.num_threads, pool));
      }
    }
    if (cache != nullptr && !kernel_hit) {
      CachedKernel built;
      if (dense) {
        built.dense = dense->shared_kernel();
        built.dense_cost = cost_matrix;
      } else if (dense_f32) {
        built.dense_f32 = dense_f32->shared_storage();
        built.dense_cost = cost_matrix;
      } else if (log_dense) {
        built.dense = log_dense->shared_log_kernel();
      } else if (log_dense_f32) {
        built.dense_f32 = log_dense_f32->shared_storage();
      } else if (sparse) {
        built.sparse = sparse->shared_storage();
        built.support_costs = support_costs;
      } else if (sparse_f32) {
        built.sparse_f32 = sparse_f32->shared_storage();
        built.support_costs = support_costs;
      } else if (log_sparse) {
        built.sparse = log_sparse->shared_storage();
        built.support_costs = support_costs;
      } else {
        built.sparse_f32 = log_sparse_f32->shared_storage();
        built.support_costs = support_costs;
      }
      cache->InsertKernel(key, std::move(built));
    }
  }

  /// Whichever linear-domain kernel is engaged (null in log mode): the
  /// engine loop and marginals only need the abstract interface, so the
  /// f64/f32 split collapses here.
  const linalg::TransportKernel* linear_kernel() const {
    if (dense) return &*dense;
    if (sparse) return &*sparse;
    if (dense_f32) return &*dense_f32;
    if (sparse_f32) return &*sparse_f32;
    return nullptr;
  }

  const linalg::LogTransportKernel* log_kernel() const {
    if (log_dense) return &*log_dense;
    if (log_sparse) return &*log_sparse;
    if (log_dense_f32) return &*log_dense_f32;
    if (log_sparse_f32) return &*log_sparse_f32;
    return nullptr;
  }

  bool log_domain() const { return log_kernel() != nullptr; }

  size_t nnz() const {
    const linalg::LogTransportKernel* lk = log_kernel();
    return lk != nullptr ? lk->nnz() : linear_kernel()->nnz();
  }

  /// Truncation must not strand source mass: every active-domain row needs
  /// at least one surviving kernel entry. (Columns may legitimately go
  /// empty — the relaxed target marginal simply never reaches them.) The
  /// linear and log kernels share one kept-set, so one guard serves both;
  /// f32 shares the f64 kept-set too (decided in double), so all four
  /// sparse shapes funnel into the same check.
  Status CheckSupport(const linalg::Vector& p, const char* where) const {
    if (sparse) {
      return ot::CheckTruncatedKernelSupport(sparse->kernel(), &p,
                                             /*q=*/nullptr, where);
    }
    if (log_sparse) {
      return ot::CheckTruncatedKernelSupport(log_sparse->log_kernel(), &p,
                                             /*q=*/nullptr, where);
    }
    if (sparse_f32) {
      return ot::CheckTruncatedKernelSupport(*sparse_f32->shared_storage(), &p,
                                             /*q=*/nullptr, where);
    }
    if (log_sparse_f32) {
      return ot::CheckTruncatedKernelSupport(*log_sparse_f32->shared_storage(),
                                             &p, /*q=*/nullptr, where);
    }
    return Status::OK();
  }

  /// One inner Sinkhorn solve against the current column marginal. The
  /// returned (and warm-start) u/v vectors are linear scalings on the
  /// linear paths and log-potentials on the log paths — opaque to the
  /// outer loop, which only threads them back in.
  Result<ot::SinkhornScaling> Solve(const linalg::Vector& p,
                                    const linalg::Vector& q_cols,
                                    const ot::SinkhornOptions& sink,
                                    const linalg::Vector* warm_u,
                                    const linalg::Vector* warm_v) const {
    if (const linalg::LogTransportKernel* lk = log_kernel()) {
      OTCLEAN_ASSIGN_OR_RETURN(
          ot::SinkhornLogScaling s,
          ot::RunSinkhornLogScaling(*lk, p, q_cols, sink, warm_u, warm_v));
      ot::SinkhornScaling out;
      out.u = std::move(s.lu);
      out.v = std::move(s.lv);
      out.iterations = s.iterations;
      out.converged = s.converged;
      return out;
    }
    return ot::RunSinkhornScaling(*linear_kernel(), p, q_cols, sink, warm_u,
                                  warm_v);
  }

  /// Column marginal of the plan at the current potentials, without
  /// materializing it: (Kᵀu) ∘ v linearly, e^{logsumexp + lv} in log mode
  /// (exact 0 where either factor is −inf). `scratch` is reused across
  /// outer steps.
  void ColumnMarginal(const linalg::Vector& u, const linalg::Vector& v,
                      linalg::Vector& scratch,
                      linalg::Vector& target_mass) const {
    if (const linalg::LogTransportKernel* lk = log_kernel()) {
      lk->LogApplyTranspose(u, scratch);
      if (target_mass.size() != scratch.size()) {
        target_mass = linalg::Vector(scratch.size());
      }
      for (size_t j = 0; j < scratch.size(); ++j) {
        target_mass[j] = linalg::simd::PolyExp(scratch[j] + v[j]);
      }
      return;
    }
    linear_kernel()->ApplyTranspose(u, scratch);
    target_mass = scratch.CwiseProduct(v);
  }

  /// ⟨C, π⟩ at the current potentials: in-memory cost rows on the dense
  /// linear path, the cached O(nnz) support costs on the sparse ones, the
  /// streamed provider on the dense log path.
  double TransportCost(const linalg::Vector& u, const linalg::Vector& v) const {
    if (sparse) return sparse->SupportTransportCost(*support_costs, u, v);
    if (sparse_f32) {
      return sparse_f32->SupportTransportCost(*support_costs, u, v);
    }
    if (log_sparse) {
      return log_sparse->SupportTransportCost(*support_costs, u, v);
    }
    if (log_sparse_f32) {
      return log_sparse_f32->SupportTransportCost(*support_costs, u, v);
    }
    if (log_dense) return log_dense->TransportCost(*cost_provider, u, v);
    if (log_dense_f32) {
      return log_dense_f32->TransportCost(*cost_provider, u, v);
    }
    if (dense_f32) return dense_f32->TransportCost(*cost_matrix, u, v);
    return dense->TransportCost(*cost_matrix, u, v);
  }

  /// Materializes the final plan from the converged potentials and stores
  /// ⟨C, π⟩ in `transport_cost`. The sparse paths stay CSR end to end —
  /// TransportPlan keeps the CSR backing, so no dense rows×cols plan is
  /// ever allocated on a truncated solve, log-domain included.
  ot::TransportPlan MaterializePlan(const prob::Domain& dom,
                                    const std::vector<size_t>& row_cells,
                                    const std::vector<size_t>& col_cells,
                                    const linalg::Vector& u,
                                    const linalg::Vector& v,
                                    double& transport_cost) const {
    transport_cost = TransportCost(u, v);
    if (sparse) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               sparse->ScaleToPlanSparse(u, v));
    }
    if (sparse_f32) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               sparse_f32->ScaleToPlanSparse(u, v));
    }
    if (log_sparse) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               log_sparse->ScaleToPlanSparse(u, v));
    }
    if (log_sparse_f32) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               log_sparse_f32->ScaleToPlanSparse(u, v));
    }
    if (const linalg::LogTransportKernel* lk = log_kernel()) {
      return ot::TransportPlan(dom, row_cells, col_cells,
                               lk->ScaleToPlan(u, v));
    }
    return ot::TransportPlan(dom, row_cells, col_cells,
                             linear_kernel()->ScaleToPlan(u, v));
  }
};


/// FaultSite::kAlloc checkpoint: models the outer-loop kernel allocation
/// failing. Thrown rather than returned so the unwind path — cache pins
/// released, pool and caller state intact — is exercised exactly as a real
/// std::bad_alloc from the kernel storages would be; the repair boundary
/// (core/repair.cc) converts it to kResourceExhausted.
void MaybeInjectAllocFailure(FaultInjector* injector) {
  if (injector != nullptr && injector->ShouldFire(FaultSite::kAlloc)) {
    throw std::bad_alloc();
  }
}

/// FaultSite::kKernelNan: a cost view that poisons *every* entry with NaN,
/// modelling a kernel build whose arithmetic blew up wholesale. Installed
/// *after* ValidateFiniteCosts, so the NaN reaches the kernel build the way
/// a runtime numeric blow-up would instead of being rejected at the door.
/// (A single poisoned cell would not do: the scaling loop's per-iteration
/// clamping quarantines an isolated NaN by zeroing its row, and the solve
/// limps to a wrong-but-finite answer — the failure under test is the
/// deterministic endpoint where the plan loses all mass.) AsMatrix() stays
/// null so no dense fast path can bypass the poison.
class NanPoisonedCostView final : public linalg::CostProvider {
 public:
  explicit NanPoisonedCostView(const linalg::CostProvider& inner)
      : inner_(inner) {}

  size_t rows() const override { return inner_.rows(); }
  size_t cols() const override { return inner_.cols(); }

  double At(size_t, size_t) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }

  void Fill(size_t, size_t c0, size_t c1, double* out) const override {
    for (size_t k = 0; k < c1 - c0; ++k) {
      out[k] = std::numeric_limits<double>::quiet_NaN();
    }
  }

  void Gather(size_t, const size_t*, size_t n, double* out) const override {
    for (size_t k = 0; k < n; ++k) {
      out[k] = std::numeric_limits<double>::quiet_NaN();
    }
  }

 private:
  const linalg::CostProvider& inner_;
};

/// Stable identity of a FastOTClean solve's restricted cost stream. The
/// cost fingerprint alone is not enough: the kernel's values depend on
/// which tuples the active-domain restriction decodes at each row/column,
/// so the domain shape and both cell lists are folded in. This combined
/// fingerprint seeds both the outer kernel's cache key and (as
/// `cache_cost_fingerprint`) the ε-annealing stages' per-ε keys, so stage
/// kernels from different repairs of the same table share cache entries.
/// 0 when the cost is unfingerprintable (caching off).
uint64_t FastCostFingerprint(const ot::CostFunction& cost,
                             const prob::Domain& dom,
                             const std::vector<size_t>& row_cells,
                             const std::vector<size_t>& col_cells) {
  const uint64_t fp = cost.Fingerprint();
  if (fp == 0) return 0;
  uint64_t h = HashMix(kHashSeed, 0xFA57u);
  h = HashMix(h, fp);
  h = HashMix(h, dom.num_attrs());
  for (size_t c : dom.cardinalities()) h = HashMix(h, c);
  h = HashMix(h, row_cells.size());
  for (size_t c : row_cells) h = HashMix(h, c);
  h = HashMix(h, col_cells.size());
  for (size_t c : col_cells) h = HashMix(h, c);
  return h == 0 ? 1 : h;
}

/// Cache key for a FastOTClean solve's outer-loop kernel. Invalid key
/// (caching off) when the cost is unfingerprintable.
SolveCacheKey MakeFastCacheKey(uint64_t fast_fingerprint,
                               const std::vector<size_t>& row_cells,
                               const std::vector<size_t>& col_cells,
                               const FastOtCleanOptions& options) {
  if (fast_fingerprint == 0) return SolveCacheKey{};
  return MakeSolveCacheKey(fast_fingerprint, row_cells.size(),
                           col_cells.size(), options.epsilon,
                           options.kernel_truncation, options.log_domain,
                           /*salt=*/0, options.precision);
}

/// The warm-start store speaks linear-domain potentials regardless of the
/// solve's domain mode (one canonical representation per key namespace);
/// the log paths lift on fetch and exponentiate on store.
void LiftWarmToLog(linalg::Vector& w) {
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = w[i] > 0.0 ? std::log(w[i])
                      : -std::numeric_limits<double>::infinity();
  }
}

linalg::Vector WarmToLinear(const linalg::Vector& w, bool log_domain) {
  if (!log_domain) return w;
  linalg::Vector out(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    out[i] = std::isfinite(w[i]) ? std::exp(w[i]) : 0.0;
  }
  return out;
}

/// ε-annealing for the first inner solve: when the schedule is enabled,
/// the caller's warm_start plumbing is on, and no (warmer) cached warm
/// start was fetched, runs the larger-ε stage sequence against the
/// *initial* column marginal and leaves the rescaled potentials in
/// warm_u/warm_v (lifted to log-potentials on the log paths, matching the
/// outer loop's representation). Later outer steps stay warm off the
/// previous step as usual. Stage kernels share `options.solve_cache`
/// under per-ε keys seeded by `fast_fingerprint`.
Status MaybeAnnealFirstSolve(const linalg::CostProvider& cost_view,
                             const linalg::Vector& p,
                             const prob::JointDistribution& q,
                             const std::vector<size_t>& col_cells,
                             const FastOtCleanOptions& options,
                             const ot::SinkhornOptions& sink,
                             uint64_t fast_fingerprint, bool log_domain,
                             linalg::ThreadPool* pool, linalg::Vector& warm_u,
                             linalg::Vector& warm_v,
                             FastOtCleanResult& result) {
  if (!options.epsilon_schedule.enabled() || !options.warm_start ||
      result.cache_warm_started) {
    return Status::OK();
  }
  linalg::Vector q_cols(col_cells.size());
  for (size_t j = 0; j < col_cells.size(); ++j) q_cols[j] = q[col_cells[j]];
  ot::SinkhornOptions anneal = sink;
  anneal.epsilon_schedule = options.epsilon_schedule;
  anneal.solve_cache = options.solve_cache;
  anneal.cache_cost_fingerprint = fast_fingerprint;
  OTCLEAN_ASSIGN_OR_RETURN(
      ot::EpsilonAnnealWarmStart aw,
      ot::RunSinkhornAnnealed(cost_view, p, q_cols, anneal,
                              /*sparse=*/options.kernel_truncation > 0.0,
                              options.kernel_truncation, pool));
  warm_u = std::move(aw.u);
  warm_v = std::move(aw.v);
  if (log_domain) {
    LiftWarmToLog(warm_u);
    LiftWarmToLog(warm_v);
  }
  result.anneal_stages = std::move(aw.stages);
  return Status::OK();
}

/// Cross-request warm start (fetch side): seeds the outer loop's warm
/// vectors from the cache when enabled, sizes match, and the caller's own
/// warm_start plumbing will pick them up. Returns the stored cold
/// baseline via `cold_iterations`.
bool FetchCachedWarmStart(SolveCache* cache, const SolveCacheKey& key,
                          const FastOtCleanOptions& options, size_t rows,
                          size_t cols, bool log_domain, linalg::Vector& warm_u,
                          linalg::Vector& warm_v, size_t& cold_iterations) {
  if (cache == nullptr || !key.valid()) return false;
  if (!options.warm_start || !options.cache_warm_start) return false;
  auto stored = cache->FindWarmStart(key);
  if (!stored) return false;
  if (stored->u.size() != rows || stored->v.size() != cols) return false;
  warm_u = std::move(stored->u);
  warm_v = std::move(stored->v);
  if (log_domain) {
    LiftWarmToLog(warm_u);
    LiftWarmToLog(warm_v);
  }
  cold_iterations = stored->cold_iterations;
  return true;
}

/// Store side: persists the converged potentials (linear domain) and
/// credits iteration savings against the key's cold baseline.
void StoreCachedWarmStart(SolveCache* cache, const SolveCacheKey& key,
                          const FastOtCleanOptions& options, bool log_domain,
                          const linalg::Vector& warm_u,
                          const linalg::Vector& warm_v,
                          size_t cold_iterations, FastOtCleanResult& result) {
  if (cache == nullptr || !key.valid()) return;
  if (!options.warm_start || !options.cache_warm_start || !result.converged) {
    return;
  }
  cache->StoreWarmStart(key, WarmToLinear(warm_u, log_domain),
                        WarmToLinear(warm_v, log_domain),
                        result.total_sinkhorn_iterations);
  if (result.cache_warm_started &&
      cold_iterations > result.total_sinkhorn_iterations) {
    result.cache_warm_iterations_saved =
        cold_iterations - result.total_sinkhorn_iterations;
    cache->RecordWarmSavings(result.cache_warm_iterations_saved);
  }
}

/// Expands a marginal over `cells` into a dense distribution over `dom`.
prob::JointDistribution ExpandToDomain(const prob::Domain& dom,
                                       const std::vector<size_t>& cells,
                                       const linalg::Vector& mass) {
  prob::JointDistribution out(dom);
  for (size_t i = 0; i < cells.size(); ++i) out[cells[i]] = mass[i];
  return out;
}

/// CI projection computed by per-z-slice iterative Lee–Seung rank-one NMF,
/// used when options.iterative_nmf is set. Produces the same distribution
/// as prob::CiProjection at convergence.
prob::JointDistribution IterativeNmfProjection(
    const prob::JointDistribution& t, const prob::CiSpec& ci,
    size_t nmf_max_iterations, Rng& rng) {
  const prob::Domain& dom = t.domain();
  // Slice layout: for each z cell, matrix A_z of size d_X × d_Y where
  // (x, y) aggregates all cells with those X/Y/Z projections. For a
  // saturated constraint every cell maps uniquely to (x, y, z).
  const prob::Domain dom_x = dom.Project(ci.x);
  const prob::Domain dom_y = dom.Project(ci.y);
  const prob::Domain dom_z =
      ci.z.empty() ? prob::Domain::FromCardinalities({1}) : dom.Project(ci.z);
  const size_t dx = dom_x.TotalSize();
  const size_t dy = dom_y.TotalSize();
  const size_t dz = ci.z.empty() ? 1 : dom_z.TotalSize();

  // Aggregate P(x, y, z) and the conditional of any remaining attributes.
  std::vector<linalg::Matrix> slices(dz, linalg::Matrix(dx, dy, 0.0));
  for (size_t cell = 0; cell < t.size(); ++cell) {
    const double p = t[cell];
    if (p <= 0.0) continue;
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    slices[zi](xi, yi) += p;
  }

  // Factorize each slice: A_z ≈ W_z · H_zᵀ (Algorithm 2 lines 8–12).
  std::vector<linalg::Matrix> approx(dz, linalg::Matrix(dx, dy, 0.0));
  nmf::KlNmfOptions nmf_opts;
  nmf_opts.rank = 1;
  nmf_opts.max_iterations = nmf_max_iterations;
  for (size_t zi = 0; zi < dz; ++zi) {
    if (slices[zi].Sum() <= 0.0) continue;
    auto r = nmf::KlNmf(slices[zi], nmf_opts, rng);
    if (r.ok()) {
      approx[zi] =
          linalg::Matrix::OuterProduct(r->w.Col(0), r->h.Row(0));
    } else {
      approx[zi] = slices[zi];
    }
  }

  // Reassemble q over the full domain, carrying P(rest | x,y,z) along.
  std::vector<size_t> xyz = ci.x;
  xyz.insert(xyz.end(), ci.y.begin(), ci.y.end());
  xyz.insert(xyz.end(), ci.z.begin(), ci.z.end());
  const prob::JointDistribution rest_given_xyz = t.ConditionalOn(xyz);
  prob::JointDistribution q(dom);
  for (size_t cell = 0; cell < q.size(); ++cell) {
    const size_t xi = dom.ProjectIndex(cell, ci.x);
    const size_t yi = dom.ProjectIndex(cell, ci.y);
    const size_t zi = ci.z.empty() ? 0 : dom.ProjectIndex(cell, ci.z);
    q[cell] = approx[zi](xi, yi) * rest_given_xyz[cell];
  }
  q.Normalize();
  return q;
}

}  // namespace

Result<FastOtCleanResult> FastOtClean(const prob::JointDistribution& p_data,
                                      const prob::CiSpec& ci,
                                      const ot::CostFunction& cost,
                                      const FastOtCleanOptions& options,
                                      Rng& rng) {
  if (!options.iterative_nmf) {
    // The closed-form single-constraint projection is the one-spec case of
    // the cyclic multi-constraint projection.
    return FastOtCleanMulti(p_data, {ci}, cost, options, rng);
  }
  const prob::Domain& dom = p_data.domain();
  if (dom.TotalSize() == 0) {
    return Status::InvalidArgument("FastOtClean: empty domain");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument("FastOtClean: p_data must be normalized");
  }
  if (options.ci_strength < 0.0 || options.ci_strength > 1.0) {
    return Status::InvalidArgument("FastOtClean: ci_strength must be in [0,1]");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("FastOtClean: epsilon must be positive");
  }
  if (options.max_outer_iterations == 0) {
    return Status::InvalidArgument(
        "FastOtClean: max_outer_iterations must be > 0");
  }

  // Active-domain restriction (Section 5, default optimization 1).
  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("FastOtClean: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }

  linalg::Vector p(row_cells.size());
  for (size_t i = 0; i < row_cells.size(); ++i) p[i] = p_data[row_cells[i]];

  const ot::FunctionCostProvider cost_view(dom, row_cells, col_cells, cost);
  // The same finite-cost guard RunSinkhorn/RunSinkhornSparse apply: a NaN
  // or ±inf from a user cost function would otherwise be silently
  // truncated away (NaN >= cutoff is false) or flushed to 0 by the log
  // kernels — and NaN kernel entries void the SIMD max-reduction
  // contract. One extra streaming pass per repair; the iterations
  // dominate.
  OTCLEAN_RETURN_NOT_OK(ot::ValidateFiniteCosts("FastOtClean", cost_view));
  OTCLEAN_RETURN_NOT_OK(
      CheckStop(options.cancel_token, options.deadline, "FastOtClean"));

  // Fault sites, exactly as in FastOtCleanMulti below.
  const bool poison_kernel =
      options.fault_injector != nullptr &&
      options.fault_injector->ShouldFire(FaultSite::kKernelNan);
  const NanPoisonedCostView poisoned_view(cost_view);
  const linalg::CostProvider& build_view =
      poison_kernel ? static_cast<const linalg::CostProvider&>(poisoned_view)
                    : static_cast<const linalg::CostProvider&>(cost_view);

  // Initial target distribution Q (Section 5, default optimization 2).
  prob::JointDistribution q(dom);
  if (options.nmf_init) {
    q = prob::CiProjection(p_data, ci);
  } else {
    for (size_t i = 0; i < q.size(); ++i) q[i] = rng.NextDouble();
    q.Normalize();
    q = prob::CiProjection(q, ci);  // random but feasible start
  }

  ot::SinkhornOptions sink;
  sink.epsilon = options.epsilon;
  sink.lambda = options.lambda;
  sink.relaxed = true;
  sink.max_iterations = options.max_sinkhorn_iterations;
  sink.tolerance = options.sinkhorn_tolerance;
  sink.log_domain = options.log_domain;
  sink.num_threads = options.num_threads;
  sink.precision = options.precision;
  sink.cancel_token = options.cancel_token;
  sink.deadline = options.deadline;

  // One worker pool for the whole repair: every Sinkhorn iteration of
  // every outer step dispatches on it instead of spawning threads anew.
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  const uint64_t fast_fp =
      options.solve_cache != nullptr && !poison_kernel
          ? FastCostFingerprint(cost, dom, row_cells, col_cells)
          : 0;
  const SolveCacheKey cache_key =
      MakeFastCacheKey(fast_fp, row_cells, col_cells, options);
  MaybeInjectAllocFailure(options.fault_injector);
  const OuterLoopKernel kernel_storage(build_view, options, pool,
                                       options.solve_cache, cache_key);
  OTCLEAN_RETURN_NOT_OK(kernel_storage.CheckSupport(p, "FastOtClean"));

  FastOtCleanResult result;
  result.kernel_nnz = kernel_storage.nnz();
  if (options.solve_cache != nullptr && cache_key.valid()) {
    result.cache_kernel_hits = kernel_storage.kernel_hit ? 1 : 0;
    result.cache_kernel_misses = kernel_storage.kernel_hit ? 0 : 1;
  }
  linalg::Vector warm_u, warm_v, ktu;
  size_t warm_cold_baseline = 0;
  result.cache_warm_started = FetchCachedWarmStart(
      options.solve_cache, cache_key, options, p.size(), col_cells.size(),
      kernel_storage.log_domain(), warm_u, warm_v, warm_cold_baseline);
  OTCLEAN_RETURN_NOT_OK(MaybeAnnealFirstSolve(
      build_view, p, q, col_cells, options, sink, fast_fp,
      kernel_storage.log_domain(), pool, warm_u, warm_v, result));

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    OTCLEAN_RETURN_NOT_OK(
        CheckStop(options.cancel_token, options.deadline, "FastOtClean"));
    // --- Outer step A: transport plan against the current Q (Sinkhorn). ---
    linalg::Vector q_cols(col_cells.size());
    for (size_t j = 0; j < col_cells.size(); ++j) q_cols[j] = q[col_cells[j]];

    const linalg::Vector* wu =
        (options.warm_start && warm_u.size() == p.size()) ? &warm_u : nullptr;
    const linalg::Vector* wv =
        (options.warm_start && warm_v.size() == q_cols.size()) ? &warm_v
                                                               : nullptr;
    OTCLEAN_ASSIGN_OR_RETURN(ot::SinkhornScaling sr,
                             kernel_storage.Solve(p, q_cols, sink, wu, wv));
    warm_u = std::move(sr.u);
    warm_v = std::move(sr.v);
    result.total_sinkhorn_iterations += sr.iterations;
    result.objective_trace.push_back(
        kernel_storage.TransportCost(warm_u, warm_v));

    // --- Outer step B: rebuild Q from the plan's target marginal via the
    // per-slice rank-one KL factorization (Algorithm 2 lines 8–13). ---
    // Column marginal of the plan without materializing it.
    linalg::Vector target_mass;
    kernel_storage.ColumnMarginal(warm_u, warm_v, ktu, target_mass);
    const double total = target_mass.Sum();
    if (total <= 0.0) {
      return Status::Internal("FastOtClean: plan lost all mass");
    }
    target_mass /= total;
    prob::JointDistribution t = ExpandToDomain(dom, col_cells, target_mass);
    prob::JointDistribution q_proj =
        options.iterative_nmf
            ? IterativeNmfProjection(t, ci, options.nmf_max_iterations, rng)
            : prob::CiProjection(t, ci);

    if (options.ci_strength < 1.0) {
      // Soft enforcement: blend projection with the raw marginal (finite μ).
      for (size_t i = 0; i < q_proj.size(); ++i) {
        q_proj[i] =
            options.ci_strength * q_proj[i] +
            (1.0 - options.ci_strength) * t[i];
      }
      q_proj.Normalize();
    }

    const double delta = q.TotalVariation(q_proj);
    q = std::move(q_proj);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan =
      kernel_storage.MaterializePlan(dom, row_cells, col_cells, warm_u,
                                     warm_v, result.transport_cost);
  result.target = q;
  result.target_cmi = prob::ConditionalMutualInformation(q, ci);
  StoreCachedWarmStart(options.solve_cache, cache_key, options,
                       kernel_storage.log_domain(), warm_u, warm_v,
                       warm_cold_baseline, result);
  return result;
}

Result<FastOtCleanResult> FastOtCleanMulti(
    const prob::JointDistribution& p_data,
    const std::vector<prob::CiSpec>& cis, const ot::CostFunction& cost,
    const FastOtCleanOptions& options, Rng& rng) {
  const prob::Domain& dom = p_data.domain();
  if (dom.TotalSize() == 0) {
    return Status::InvalidArgument("FastOtCleanMulti: empty domain");
  }
  if (cis.empty()) {
    return Status::InvalidArgument("FastOtCleanMulti: no constraints");
  }
  if (std::fabs(p_data.Mass() - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: p_data must be normalized");
  }
  if (options.ci_strength < 0.0 || options.ci_strength > 1.0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: ci_strength must be in [0,1]");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: epsilon must be positive");
  }
  if (options.max_outer_iterations == 0) {
    return Status::InvalidArgument(
        "FastOtCleanMulti: max_outer_iterations must be > 0");
  }

  std::vector<size_t> row_cells;
  for (size_t i = 0; i < p_data.size(); ++i) {
    if (p_data[i] > 0.0) row_cells.push_back(i);
  }
  if (row_cells.empty()) {
    return Status::InvalidArgument("FastOtCleanMulti: p_data carries no mass");
  }
  std::vector<size_t> col_cells;
  if (options.restrict_columns_to_active) {
    col_cells = row_cells;
  } else {
    col_cells.resize(dom.TotalSize());
    for (size_t i = 0; i < col_cells.size(); ++i) col_cells[i] = i;
  }

  linalg::Vector p(row_cells.size());
  for (size_t i = 0; i < row_cells.size(); ++i) p[i] = p_data[row_cells[i]];

  const ot::FunctionCostProvider cost_view(dom, row_cells, col_cells, cost);
  // Same finite-cost guard as the single-constraint path above.
  OTCLEAN_RETURN_NOT_OK(
      ot::ValidateFiniteCosts("FastOtCleanMulti", cost_view));
  OTCLEAN_RETURN_NOT_OK(
      CheckStop(options.cancel_token, options.deadline, "FastOtCleanMulti"));

  // kKernelNan fires here — past validation, so the NaN reaches the kernel
  // build exactly like a runtime numeric blow-up would. A poisoned solve
  // bypasses the cache entirely (fast_fp stays 0 below): a poisoned kernel
  // must never be published under the clean cost's key.
  const bool poison_kernel =
      options.fault_injector != nullptr &&
      options.fault_injector->ShouldFire(FaultSite::kKernelNan);
  const NanPoisonedCostView poisoned_view(cost_view);
  const linalg::CostProvider& build_view =
      poison_kernel ? static_cast<const linalg::CostProvider&>(poisoned_view)
                    : static_cast<const linalg::CostProvider&>(cost_view);

  prob::JointDistribution q(dom);
  if (options.nmf_init) {
    q = prob::MultiCiProjection(p_data, cis);
  } else {
    for (size_t i = 0; i < q.size(); ++i) q[i] = rng.NextDouble();
    q.Normalize();
    q = prob::MultiCiProjection(q, cis);
  }

  ot::SinkhornOptions sink;
  sink.epsilon = options.epsilon;
  sink.lambda = options.lambda;
  sink.relaxed = true;
  sink.max_iterations = options.max_sinkhorn_iterations;
  sink.tolerance = options.sinkhorn_tolerance;
  sink.log_domain = options.log_domain;
  sink.num_threads = options.num_threads;
  sink.precision = options.precision;
  sink.cancel_token = options.cancel_token;
  sink.deadline = options.deadline;

  // One worker pool for the whole repair: every Sinkhorn iteration of
  // every outer step dispatches on it instead of spawning threads anew.
  std::optional<linalg::ThreadPool> owned_pool;
  linalg::ThreadPool* pool = linalg::ResolveSolvePool(
      options.thread_pool, options.num_threads, owned_pool);

  const uint64_t fast_fp =
      options.solve_cache != nullptr && !poison_kernel
          ? FastCostFingerprint(cost, dom, row_cells, col_cells)
          : 0;
  const SolveCacheKey cache_key =
      MakeFastCacheKey(fast_fp, row_cells, col_cells, options);
  MaybeInjectAllocFailure(options.fault_injector);
  const OuterLoopKernel kernel_storage(build_view, options, pool,
                                       options.solve_cache, cache_key);
  OTCLEAN_RETURN_NOT_OK(kernel_storage.CheckSupport(p, "FastOtCleanMulti"));

  FastOtCleanResult result;
  result.kernel_nnz = kernel_storage.nnz();
  if (options.solve_cache != nullptr && cache_key.valid()) {
    result.cache_kernel_hits = kernel_storage.kernel_hit ? 1 : 0;
    result.cache_kernel_misses = kernel_storage.kernel_hit ? 0 : 1;
  }
  linalg::Vector warm_u, warm_v, ktu;
  size_t warm_cold_baseline = 0;
  result.cache_warm_started = FetchCachedWarmStart(
      options.solve_cache, cache_key, options, p.size(), col_cells.size(),
      kernel_storage.log_domain(), warm_u, warm_v, warm_cold_baseline);
  OTCLEAN_RETURN_NOT_OK(MaybeAnnealFirstSolve(
      build_view, p, q, col_cells, options, sink, fast_fp,
      kernel_storage.log_domain(), pool, warm_u, warm_v, result));

  for (size_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    OTCLEAN_RETURN_NOT_OK(CheckStop(options.cancel_token, options.deadline,
                                    "FastOtCleanMulti"));
    linalg::Vector q_cols(col_cells.size());
    for (size_t j = 0; j < col_cells.size(); ++j) q_cols[j] = q[col_cells[j]];

    const linalg::Vector* wu =
        (options.warm_start && warm_u.size() == p.size()) ? &warm_u : nullptr;
    const linalg::Vector* wv =
        (options.warm_start && warm_v.size() == q_cols.size()) ? &warm_v
                                                               : nullptr;
    OTCLEAN_ASSIGN_OR_RETURN(ot::SinkhornScaling sr,
                             kernel_storage.Solve(p, q_cols, sink, wu, wv));
    warm_u = std::move(sr.u);
    warm_v = std::move(sr.v);
    result.total_sinkhorn_iterations += sr.iterations;
    result.objective_trace.push_back(
        kernel_storage.TransportCost(warm_u, warm_v));

    // Column marginal of the plan without materializing it.
    linalg::Vector target_mass;
    kernel_storage.ColumnMarginal(warm_u, warm_v, ktu, target_mass);

    const double total = target_mass.Sum();
    if (total <= 0.0) {
      return Status::Internal("FastOtCleanMulti: plan lost all mass");
    }
    target_mass /= total;
    prob::JointDistribution t = ExpandToDomain(dom, col_cells, target_mass);
    prob::JointDistribution q_proj = prob::MultiCiProjection(t, cis);

    if (options.ci_strength < 1.0) {
      for (size_t i = 0; i < q_proj.size(); ++i) {
        q_proj[i] = options.ci_strength * q_proj[i] +
                    (1.0 - options.ci_strength) * t[i];
      }
      q_proj.Normalize();
    }

    const double delta = q.TotalVariation(q_proj);
    q = std::move(q_proj);
    result.outer_iterations = outer + 1;
    if (delta <= options.outer_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.plan =
      kernel_storage.MaterializePlan(dom, row_cells, col_cells, warm_u,
                                     warm_v, result.transport_cost);
  result.target = q;
  result.target_cmi = prob::MaxCmi(q, cis);
  StoreCachedWarmStart(options.solve_cache, cache_key, options,
                       kernel_storage.log_domain(), warm_u, warm_v,
                       warm_cold_baseline, result);
  return result;
}

}  // namespace otclean::core
