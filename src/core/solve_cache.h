#ifndef OTCLEAN_CORE_SOLVE_CACHE_H_
#define OTCLEAN_CORE_SOLVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "linalg/matrix.h"
#include "linalg/precision.h"
#include "linalg/transport_kernel.h"
#include "linalg/vector.h"

namespace otclean::linalg {
struct DenseKernelStorageF32;
struct SparseKernelStorageF32;
}  // namespace otclean::linalg

namespace otclean::core {

class FaultInjector;

/// Identity of a solve's immutable inputs — everything that determines the
/// built Gibbs kernel bit-for-bit. `content` is a stable FNV-1a hash of the
/// cost fingerprint (CostFunction::Fingerprint plus any caller salt, e.g.
/// the active-cell lists a FastOTClean solve restricts the domain to);
/// the remaining fields are kept verbatim so a hash collision can never
/// alias two solves with different dimensions, ε, truncation, domain
/// (log vs linear), SIMD tier or precision — equality checks every field.
///
/// The SIMD tier is part of the key because the scaling loop's results are
/// only bit-identical *within* one instruction set; a cache shared across
/// dispatch tiers (tests force-overriding the ISA) must not mix them.
/// The storage precision (linalg/precision.h) is part of the key for the
/// same reason — an f32 kernel is a different artifact than its f64 twin,
/// and the bit-identity contract holds per (tier, precision).
struct SolveCacheKey {
  uint64_t content = 0;  ///< 0 = invalid ("don't cache this solve")
  uint64_t rows = 0;
  uint64_t cols = 0;
  double epsilon = 0.0;
  double truncation = 0.0;
  bool log_domain = false;
  bool sparse = false;
  uint8_t simd_isa = 0;
  uint8_t precision = 0;  ///< static_cast of linalg::Precision

  bool valid() const { return content != 0; }
  bool operator==(const SolveCacheKey& o) const {
    return content == o.content && rows == o.rows && cols == o.cols &&
           epsilon == o.epsilon && truncation == o.truncation &&
           log_domain == o.log_domain && sparse == o.sparse &&
           simd_isa == o.simd_isa && precision == o.precision;
  }
};

/// Builds a key from the solve inputs. A zero `cost_fingerprint` yields an
/// invalid key (content 0), which every cache operation treats as a no-op —
/// the path for unfingerprintable costs (LambdaCost). `salt` folds in any
/// extra caller identity (FastOTClean hashes the domain shape and active
/// cells into it). `truncation > 0` marks the kernel sparse; the SIMD tier
/// is read from the runtime dispatcher; `precision` is the storage tier
/// the solve iterates on.
SolveCacheKey MakeSolveCacheKey(
    uint64_t cost_fingerprint, size_t rows, size_t cols, double epsilon,
    double truncation, bool log_domain, uint64_t salt = 0,
    linalg::Precision precision = linalg::Precision::kFloat64);

/// Shared handles to one solve's immutable built artifacts. Exactly one of
/// `dense`/`sparse`/`dense_f32`/`sparse_f32` is set (the kernel
/// K = e^{−C/ε}, or its log L = −C/ε — the key's log_domain flag says
/// which; the key's precision flag picks the f32 pair); the others are
/// optional companions the same solve would otherwise rebuild:
/// `support_costs` is the GatherSupportCosts cache aligned with the sparse
/// kernel's values, `dense_cost` the materialized cost matrix of the dense
/// path. Everything is shared_ptr-held and immutable, so a hit hands out
/// the very same storage the miss built — arithmetic over it is
/// bit-identical by construction.
struct CachedKernel {
  std::shared_ptr<const linalg::Matrix> dense;
  std::shared_ptr<const linalg::SparseKernelStorage> sparse;
  std::shared_ptr<const linalg::DenseKernelStorageF32> dense_f32;
  std::shared_ptr<const linalg::SparseKernelStorageF32> sparse_f32;
  std::shared_ptr<const std::vector<double>> support_costs;
  std::shared_ptr<const linalg::Matrix> dense_cost;

  bool empty() const {
    return !dense && !sparse && !dense_f32 && !sparse_f32;
  }
  /// Approximate heap footprint of all held storages.
  size_t MemoryBytes() const;
  /// True when any handle is also held outside the cache (a solve is
  /// running on it). Pinned entries are charged to the budget but never
  /// evicted — eviction would not free the memory anyway.
  bool InUse() const;
};

/// Converged potentials persisted per key (linear domain; the log path
/// lifts them via log — the existing warm_u/warm_v plumbing).
/// `cold_iterations` is the iteration count of the *first* (cold) solve
/// under this key, kept as the baseline that later warm-started solves are
/// measured against.
struct CachedWarmStart {
  linalg::Vector u;
  linalg::Vector v;
  size_t cold_iterations = 0;
};

/// Counters (monotonic) and gauges for a cache. `bytes_pinned` is the
/// portion of `bytes_cached` currently in use by running solves;
/// `warm_iterations_saved` accumulates max(0, cold baseline − warm run)
/// as reported by callers via RecordWarmSavings. `table_*` fold in the
/// CLI batch table cache (a lookup cache that predates this one) so
/// `--report` has one place for all cross-request reuse.
struct SolveCacheStats {
  size_t kernel_hits = 0;
  size_t kernel_misses = 0;
  size_t warm_hits = 0;
  size_t warm_misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
  size_t entries = 0;       ///< gauge
  size_t bytes_cached = 0;  ///< gauge
  size_t bytes_pinned = 0;  ///< gauge
  size_t warm_iterations_saved = 0;
  size_t table_hits = 0;
  size_t table_misses = 0;
};

/// after − before for the monotonic counters; gauges keep `after`'s value.
/// RepairScheduler uses this to report per-batch activity on a cache that
/// outlives the batch.
SolveCacheStats DeltaStats(const SolveCacheStats& before,
                           const SolveCacheStats& after);

/// Process-wide, thread-safe, memory-budgeted LRU over solve artifacts —
/// the cross-request complement of the paper's Section-5 warm starts.
/// Two tiers of reuse per key: shared immutable kernel storages
/// (CachedKernel) and converged potentials (CachedWarmStart); both live in
/// one LRU entry so they age together.
///
/// All RAM held here is evictable cache (kivaloo's design rule): a strict
/// LRU walk drops entries until the byte budget holds, skipping only
/// entries whose storages are pinned by running solves (those are counted
/// against the budget but eviction wouldn't free them). Budget 0 means
/// unlimited.
///
/// Thread safety: every operation takes one internal mutex; the returned
/// handles are immutable shared_ptrs, safe to use lock-free afterwards.
/// The discipline is TSA-enforced (common/thread_annotations.h): every
/// mutable field is `OTCLEAN_GUARDED_BY(mu_)`, the public surface is
/// `OTCLEAN_EXCLUDES(mu_)`, and the `Locked`-style private helpers are
/// `OTCLEAN_REQUIRES(mu_)` — dropping the lock from any method is a
/// compile error under clang's `-Wthread-safety` CI leg.
class SolveCache {
 public:
  explicit SolveCache(size_t byte_budget = 0)
      : byte_budget_(byte_budget) {}

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Kernel tier. FindKernel returns the shared storages on a hit
  /// (bumping the entry to most-recently-used) and counts a miss
  /// otherwise; invalid keys are silent misses that touch no counter.
  std::optional<CachedKernel> FindKernel(const SolveCacheKey& key)
      OTCLEAN_EXCLUDES(mu_);

  /// Inserts the artifacts a miss just built. On an insert race (another
  /// thread populated the key first) the resident entry wins and is
  /// returned, so concurrent solves of one key converge on shared storage
  /// either way. Returns `kernel` unchanged for invalid keys.
  CachedKernel InsertKernel(const SolveCacheKey& key, CachedKernel kernel)
      OTCLEAN_EXCLUDES(mu_);

  /// Warm-start tier: potentials from the last converged solve under this
  /// key, or nullopt (counted as a warm miss) when none are stored.
  std::optional<CachedWarmStart> FindWarmStart(const SolveCacheKey& key)
      OTCLEAN_EXCLUDES(mu_);

  /// Persists converged potentials. The first store under a key also
  /// records `solve_iterations` as the cold baseline; later stores refresh
  /// the potentials but keep the baseline, so savings are always measured
  /// against the original cold start.
  void StoreWarmStart(const SolveCacheKey& key, const linalg::Vector& u,
                      const linalg::Vector& v, size_t solve_iterations)
      OTCLEAN_EXCLUDES(mu_);

  /// Caller-reported iteration savings of a warm-started solve.
  void RecordWarmSavings(size_t iterations) OTCLEAN_EXCLUDES(mu_);

  /// Folds a CLI table-cache lookup into the stats.
  void RecordTableLookup(bool hit) OTCLEAN_EXCLUDES(mu_);

  /// Safe to poll from any thread at any time — including while a batch is
  /// mid-flight on the same cache (solve_cache_test pins that race under
  /// TSan). EXCLUDES(mu_): callers must not already hold the cache mutex
  /// (they cannot — it is private — but the annotation keeps the method
  /// itself honest about taking the lock).
  SolveCacheStats Stats() const OTCLEAN_EXCLUDES(mu_);

  size_t byte_budget() const { return byte_budget_; }

  /// Fault-injection hook (core/fault_injector.h): when set, InsertKernel
  /// consults FaultSite::kCacheInsert and a firing visit makes the insert
  /// fail *atomically* — no entry is created or modified, no counter
  /// moves, and the caller's freshly built kernel is returned so the solve
  /// proceeds uncached. Null (the default) costs nothing. Borrowed; set
  /// before dispatching instrumented work.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }

 private:
  struct Entry {
    SolveCacheKey key;
    CachedKernel kernel;
    std::optional<CachedWarmStart> warm;
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const SolveCacheKey& k) const {
      return static_cast<size_t>(k.content);
    }
  };
  using Lru = std::list<Entry>;

  /// Moves the entry to the LRU front.
  void Touch(Lru::iterator it) OTCLEAN_REQUIRES(mu_);
  /// Recomputes an entry's byte charge after mutation.
  void Recharge(Lru::iterator it) OTCLEAN_REQUIRES(mu_);
  /// Evicts from the LRU tail (skipping pinned entries) until the budget
  /// holds.
  void EnforceBudget() OTCLEAN_REQUIRES(mu_);
  Lru::iterator FindOrCreate(const SolveCacheKey& key) OTCLEAN_REQUIRES(mu_);

  const size_t byte_budget_;

  mutable Mutex mu_;
  Lru lru_ OTCLEAN_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<SolveCacheKey, Lru::iterator, KeyHash> index_
      OTCLEAN_GUARDED_BY(mu_);
  size_t bytes_cached_ OTCLEAN_GUARDED_BY(mu_) = 0;
  /// Gauges unused; filled on Stats() read.
  SolveCacheStats counters_ OTCLEAN_GUARDED_BY(mu_);
  /// Deliberately NOT guarded by mu_: InsertKernel consults it before
  /// taking the lock, under the "set before dispatching instrumented
  /// work, never while solves are running" contract of set_fault_injector.
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace otclean::core

#endif  // OTCLEAN_CORE_SOLVE_CACHE_H_
