#include "nmf/frobenius_nmf.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace otclean::nmf {

namespace {
linalg::Matrix MatMul(const linalg::Matrix& a, const linalg::Matrix& b) {
  assert(a.cols() == b.rows());
  linalg::Matrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

double SquaredError(const linalg::Matrix& a, const linalg::Matrix& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return s;
}
}  // namespace

Result<FrobeniusNmfResult> FrobeniusNmf(const linalg::Matrix& a,
                                        const FrobeniusNmfOptions& options,
                                        Rng& rng) {
  if (options.rank == 0) {
    return Status::InvalidArgument("FrobeniusNmf: rank must be >= 1");
  }
  for (double v : a.data()) {
    if (v < 0.0) return Status::InvalidArgument("FrobeniusNmf: negative entry");
  }
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t r = options.rank;
  constexpr double kFloor = 1e-12;

  FrobeniusNmfResult result;
  result.w = linalg::Matrix(m, r);
  result.h = linalg::Matrix(r, n);
  for (double& v : result.w.data()) v = 0.5 + rng.NextDouble();
  for (double& v : result.h.data()) v = 0.5 + rng.NextDouble();

  double prev = std::numeric_limits<double>::infinity();
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // H ← H .* (WᵀA) ./ (WᵀW H).
    const linalg::Matrix wt = result.w.Transposed();
    const linalg::Matrix wta = MatMul(wt, a);
    const linalg::Matrix wtwh = MatMul(MatMul(wt, result.w), result.h);
    for (size_t i = 0; i < result.h.data().size(); ++i) {
      result.h.data()[i] *= wta.data()[i] / (wtwh.data()[i] + kFloor);
    }
    // W ← W .* (A Hᵀ) ./ (W H Hᵀ).
    const linalg::Matrix ht = result.h.Transposed();
    const linalg::Matrix aht = MatMul(a, ht);
    const linalg::Matrix whht = MatMul(result.w, MatMul(result.h, ht));
    for (size_t i = 0; i < result.w.data().size(); ++i) {
      result.w.data()[i] *= aht.data()[i] / (whht.data()[i] + kFloor);
    }

    result.iterations = it + 1;
    const double err = SquaredError(a, MatMul(result.w, result.h));
    if (std::isfinite(prev) &&
        std::fabs(prev - err) <= options.tolerance * (1.0 + prev)) {
      result.error = err;
      return result;
    }
    prev = err;
  }
  result.error = prev;
  return result;
}

}  // namespace otclean::nmf
