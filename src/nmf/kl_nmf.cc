#include "nmf/kl_nmf.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace otclean::nmf {

namespace {
linalg::Matrix MatMul(const linalg::Matrix& a, const linalg::Matrix& b) {
  assert(a.cols() == b.rows());
  linalg::Matrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}
}  // namespace

double GeneralizedKl(const linalg::Matrix& a, const linalg::Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double d = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    const double av = a.data()[i];
    const double bv = b.data()[i];
    if (av > 0.0) {
      if (bv <= 0.0) return std::numeric_limits<double>::infinity();
      d += av * std::log(av / bv) - av + bv;
    } else {
      d += bv;
    }
  }
  return d;
}

KlNmfResult KlNmfRank1(const linalg::Matrix& a) {
  KlNmfResult result;
  const double total = a.Sum();
  result.w = linalg::Matrix(a.rows(), 1, 0.0);
  result.h = linalg::Matrix(1, a.cols(), 0.0);
  const linalg::Vector rows = a.RowSums();
  const linalg::Vector cols = a.ColSums();
  for (size_t i = 0; i < a.rows(); ++i) result.w(i, 0) = rows[i];
  if (total > 0.0) {
    for (size_t j = 0; j < a.cols(); ++j) result.h(0, j) = cols[j] / total;
  }
  result.divergence =
      GeneralizedKl(a, linalg::Matrix::OuterProduct(
                           result.w.Col(0), result.h.Row(0)));
  result.iterations = 1;
  return result;
}

Result<KlNmfResult> KlNmf(const linalg::Matrix& a, const KlNmfOptions& options,
                          Rng& rng) {
  if (options.rank == 0) {
    return Status::InvalidArgument("KlNmf: rank must be >= 1");
  }
  for (double v : a.data()) {
    if (v < 0.0) return Status::InvalidArgument("KlNmf: negative entry");
  }

  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t r = options.rank;

  KlNmfResult result;
  result.w = linalg::Matrix(m, r);
  result.h = linalg::Matrix(r, n);
  const double scale = std::max(a.Sum() / std::max<size_t>(1, m * n), 1e-6);
  for (double& v : result.w.data()) v = scale * (0.5 + rng.NextDouble());
  for (double& v : result.h.data()) v = 0.5 + rng.NextDouble();

  double prev = std::numeric_limits<double>::infinity();
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // Ratio matrix R = A ./ (WH) with 0/0 := 0.
    linalg::Matrix wh = MatMul(result.w, result.h);
    linalg::Matrix ratio(m, n);
    for (size_t i = 0; i < wh.data().size(); ++i) {
      const double denom = wh.data()[i];
      ratio.data()[i] = (denom > 0.0) ? a.data()[i] / denom : 0.0;
    }

    // W update: W_ik *= (R Hᵀ)_ik / Σ_j H_kj.
    const linalg::Vector h_rowsums = result.h.RowSums();
    for (size_t i = 0; i < m; ++i) {
      for (size_t k = 0; k < r; ++k) {
        double num = 0.0;
        for (size_t j = 0; j < n; ++j) num += ratio(i, j) * result.h(k, j);
        const double denom = h_rowsums[k];
        result.w(i, k) *= (denom > 0.0) ? num / denom : 0.0;
      }
    }

    // Refresh ratio with updated W.
    wh = MatMul(result.w, result.h);
    for (size_t i = 0; i < wh.data().size(); ++i) {
      const double denom = wh.data()[i];
      ratio.data()[i] = (denom > 0.0) ? a.data()[i] / denom : 0.0;
    }

    // H update: H_kj *= (Wᵀ R)_kj / Σ_i W_ik.
    const linalg::Vector w_colsums = result.w.ColSums();
    for (size_t k = 0; k < r; ++k) {
      for (size_t j = 0; j < n; ++j) {
        double num = 0.0;
        for (size_t i = 0; i < m; ++i) num += result.w(i, k) * ratio(i, j);
        const double denom = w_colsums[k];
        result.h(k, j) *= (denom > 0.0) ? num / denom : 0.0;
      }
    }

    result.iterations = it + 1;
    const double obj = GeneralizedKl(a, MatMul(result.w, result.h));
    if (std::isfinite(prev) &&
        std::fabs(prev - obj) <= options.tolerance * (1.0 + std::fabs(prev))) {
      result.divergence = obj;
      return result;
    }
    prev = obj;
  }
  result.divergence = prev;
  return result;
}

}  // namespace otclean::nmf
