#ifndef OTCLEAN_NMF_FROBENIUS_NMF_H_
#define OTCLEAN_NMF_FROBENIUS_NMF_H_

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace otclean::nmf {

/// Non-negative matrix factorization minimizing ‖A − WH‖²_F with Lee–Seung
/// multiplicative updates — the factorization used by the Capuchin Cap(MF)
/// baseline, which repairs each z-slice by a Euclidean-norm rank-one
/// factorization.
struct FrobeniusNmfOptions {
  size_t rank = 1;
  size_t max_iterations = 500;
  double tolerance = 1e-12;
};

struct FrobeniusNmfResult {
  linalg::Matrix w;
  linalg::Matrix h;
  double error = 0.0;  ///< final ‖A − WH‖²_F.
  size_t iterations = 0;
};

Result<FrobeniusNmfResult> FrobeniusNmf(const linalg::Matrix& a,
                                        const FrobeniusNmfOptions& options,
                                        Rng& rng);

}  // namespace otclean::nmf

#endif  // OTCLEAN_NMF_FROBENIUS_NMF_H_
