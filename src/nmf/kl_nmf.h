#ifndef OTCLEAN_NMF_KL_NMF_H_
#define OTCLEAN_NMF_KL_NMF_H_

#include "common/random.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace otclean::nmf {

/// Non-negative matrix factorization A ≈ W·H minimizing the generalized KL
/// divergence D(A ‖ WH) = Σ a log(a/b) − a + b, via Lee–Seung
/// multiplicative updates — the inner loop of FastOTClean (Algorithm 2,
/// lines 8–12).
struct KlNmfOptions {
  size_t rank = 1;
  size_t max_iterations = 500;
  /// Stop when the objective improves by less than this (relative).
  double tolerance = 1e-10;
};

struct KlNmfResult {
  linalg::Matrix w;  ///< m × rank
  linalg::Matrix h;  ///< rank × n
  double divergence = 0.0;
  size_t iterations = 0;
};

/// Factorizes a non-negative matrix. `rng` seeds the random initialization.
Result<KlNmfResult> KlNmf(const linalg::Matrix& a, const KlNmfOptions& options,
                          Rng& rng);

/// Rank-one special case in closed form: for KL, the optimal rank-one
/// factorization of A is the outer product of its row-sum and (normalized)
/// column-sum vectors. This is why the inner loop of Algorithm 2 projects
/// each z-slice onto the product of its marginals.
KlNmfResult KlNmfRank1(const linalg::Matrix& a);

/// Generalized KL divergence D(A ‖ B) with the 0-handling conventions
/// above. Returns +inf if some a_ij > 0 has b_ij == 0.
double GeneralizedKl(const linalg::Matrix& a, const linalg::Matrix& b);

}  // namespace otclean::nmf

#endif  // OTCLEAN_NMF_KL_NMF_H_
