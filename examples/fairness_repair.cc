// Fairness example: train a classifier on a COMPAS-style dataset before and
// after enforcing the interventional-fairness CI constraint
// (race _||_ {age-cat, priors-count} | charge-degree) with OTClean,
// and compare AUC and log-ROD — the Section 6.2 workflow.

#include <cmath>
#include <cstdio>
#include <memory>

#include "otclean/otclean.h"

using namespace otclean;

int main() {
  auto bundle_r = datagen::MakeCompas(3000, 42);
  if (!bundle_r.ok()) {
    std::printf("datagen failed: %s\n", bundle_r.status().ToString().c_str());
    return 1;
  }
  const auto& bundle = *bundle_r;
  const auto& table = bundle.table;
  const auto& schema = table.schema();
  const size_t label = schema.ColumnIndex(bundle.label_col).value();
  const size_t sensitive = schema.ColumnIndex(bundle.sensitive_col).value();

  std::vector<size_t> admissible, features;
  for (const auto& name : bundle.admissible_cols) {
    admissible.push_back(schema.ColumnIndex(name).value());
  }
  features = admissible;
  for (const auto& name : bundle.inadmissible_cols) {
    features.push_back(schema.ColumnIndex(name).value());
  }

  const auto factory = [] { return std::make_unique<ml::LogisticRegression>(); };
  ml::CrossValidationOptions cv;
  cv.num_folds = 5;

  auto evaluate = [&](const ml::TrainTransform& transform, const char* tag) {
    const auto r =
        ml::CrossValidate(table, label, features, factory, cv, transform);
    if (!r.ok()) {
      std::printf("%s: failed (%s)\n", tag, r.status().ToString().c_str());
      return;
    }
    fairness::FairnessInputs in;
    in.table = &table;
    in.scores = r->oof_scores;
    in.sensitive_col = sensitive;
    in.admissible_cols = admissible;
    const double rod = fairness::LogRod(in).value_or(0.0);
    const double dp = fairness::DemographicParityGap(in).value_or(0.0);
    std::printf("%-12s AUC=%.3f  |log ROD|=%.3f  DP gap=%.3f\n", tag,
                r->mean_auc, std::fabs(rod), dp);
  };

  evaluate(nullptr, "No repair");

  core::RepairOptions repair;
  repair.fast.epsilon = 0.08;
  evaluate(
      [&](const dataset::Table& train) -> Result<dataset::Table> {
        OTCLEAN_ASSIGN_OR_RETURN(
            core::RepairReport rep,
            core::RepairTable(train, bundle.constraint, repair));
        return rep.repaired;
      },
      "OTClean");

  evaluate(
      [&](const dataset::Table& train) -> Result<dataset::Table> {
        fairness::CapuchinOptions cap;
        cap.method = fairness::CapuchinMethod::kIndependentCoupling;
        return fairness::CapuchinRepair(train, bundle.constraint, cap);
      },
      "Cap(IC)");

  return 0;
}
