// Streaming example: fit the probabilistic cleaner once, then repair tuples
// one at a time as they arrive — the tuple-level use case the introduction
// highlights for retraining pipelines and streams.

#include <cstdio>

#include "otclean/otclean.h"

using namespace otclean;

int main() {
  // Historical batch with a planted violation of x _||_ y | z0.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 2000;
  gen.num_z_attrs = 1;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 5;
  const auto history = datagen::MakeScalingDataset(gen).value();

  const core::CiConstraint sigma({"x"}, {"y"}, {"z0"});
  core::OtCleanRepairer repairer(sigma);
  if (auto s = repairer.Fit(history); !s.ok()) {
    std::printf("fit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("fitted cleaner on %zu rows (plan %zux%zu, CMI %.4f)\n",
              history.num_rows(), repairer.plan().row_cells().size(),
              repairer.plan().col_cells().size(),
              repairer.fit_report().initial_cmi);

  // A "stream" of new tuples, repaired one by one.
  gen.seed = 6;
  gen.num_rows = 10;
  const auto stream = datagen::MakeScalingDataset(gen).value();
  Rng rng(9);
  std::printf("streaming repairs (x,y,z0) -> (x',y',z0'):\n");
  for (size_t r = 0; r < stream.num_rows(); ++r) {
    const auto row = stream.Row(r);
    const auto fixed = repairer.RepairRow(row, rng);
    std::printf("  (%d,%d,%d) -> (%d,%d,%d)%s\n", row[0], row[1], row[2],
                fixed[0], fixed[1], fixed[2],
                row == fixed ? "" : "   [updated]");
  }
  return 0;
}
