// Streaming example: fit the probabilistic cleaner once, then repair tuples
// one at a time as they arrive — the tuple-level use case the introduction
// highlights for retraining pipelines and streams.

#include <cstdio>

#include "otclean/otclean.h"

using namespace otclean;

int main() {
  // Historical batch with a planted violation of x _||_ y | z0.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 2000;
  gen.num_z_attrs = 1;
  gen.z_card = 3;
  gen.violation = 0.6;
  gen.seed = 5;
  const auto history = datagen::MakeScalingDataset(gen).value();

  const core::CiConstraint sigma({"x"}, {"y"}, {"z0"});
  core::RepairOptions options;
  // Truncated sparse kernel: the fitted plan stays CSR end to end, so a
  // long-lived streaming cleaner holds only the plan's nonzeros in memory.
  options.fast.kernel_truncation = 1e-8;
  core::OtCleanRepairer repairer(sigma, options);
  if (auto s = repairer.Fit(history); !s.ok()) {
    std::printf("fit failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const ot::TransportPlan& plan = repairer.plan();
  std::printf(
      "fitted cleaner on %zu rows (plan %zux%zu, CMI %.4f)\n"
      "plan storage: %s, %zu of %zu entries (%.1f KiB)\n",
      history.num_rows(), plan.row_cells().size(), plan.col_cells().size(),
      repairer.fit_report().initial_cmi,
      plan.IsSparse() ? "sparse (CSR)" : "dense", plan.Nnz(),
      plan.row_cells().size() * plan.col_cells().size(),
      static_cast<double>(plan.MemoryBytes()) / 1024.0);

  // A "stream" of new tuples, repaired one by one.
  gen.seed = 6;
  gen.num_rows = 10;
  const auto stream = datagen::MakeScalingDataset(gen).value();
  Rng rng(9);
  std::printf("streaming repairs (x,y,z0) -> (x',y',z0'):\n");
  for (size_t r = 0; r < stream.num_rows(); ++r) {
    const auto row = stream.Row(r);
    const auto fixed = repairer.RepairRow(row, rng);
    std::printf("  (%d,%d,%d) -> (%d,%d,%d)%s\n", row[0], row[1], row[2],
                fixed[0], fixed[1], fixed[2],
                row == fixed ? "" : "   [updated]");
  }
  return 0;
}
