// Data-cleaning example: inject non-random attribute noise into a
// Car-style dataset (breaking doors _||_ class | {buying,safety,persons}),
// then compare models trained on clean / dirty / OTClean-repaired data —
// the Section 6.3 workflow behind Figure 6.

#include <cstdio>
#include <memory>

#include "otclean/otclean.h"

using namespace otclean;

int main() {
  auto bundle_r = datagen::MakeCar(2000, 11);
  if (!bundle_r.ok()) {
    std::printf("datagen failed: %s\n", bundle_r.status().ToString().c_str());
    return 1;
  }
  const auto& bundle = *bundle_r;
  const auto& clean = bundle.table;
  const auto& schema = clean.schema();
  const size_t label = schema.ColumnIndex(bundle.label_col).value();
  const auto features = ml::AllFeaturesExcept(schema, label);

  // Hold out half the (clean) data as the test set.
  std::vector<size_t> train_rows, test_rows;
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    (r % 2 == 0 ? train_rows : test_rows).push_back(r);
  }
  const auto train_clean = clean.SelectRows(train_rows);
  const auto test = clean.SelectRows(test_rows);

  const auto factory = [] { return std::make_unique<ml::RandomForest>(); };
  auto report = [&](const dataset::Table& train, const char* tag) {
    const auto r = ml::TrainAndEvaluate(train, test, label, features, factory);
    std::printf("%-10s AUC=%.3f  F1=%.3f\n", tag, r->auc, r->f1);
  };

  std::printf("error rate 60%%, noise on 'doors' driven by 'class':\n");
  cleaning::AttributeNoiseOptions noise;
  noise.target_col = schema.ColumnIndex("doors").value();
  noise.driver_col = label;
  noise.rate = 0.6;
  noise.seed = 12;
  const auto train_dirty =
      cleaning::InjectAttributeNoise(train_clean, noise).value();

  report(train_clean, "Clean");
  report(train_dirty, "Dirty");

  const auto repaired =
      core::RepairTable(train_dirty, bundle.constraint).value();
  std::printf("(OTClean: CMI %.4f -> %.4f)\n", repaired.initial_cmi,
              repaired.final_cmi);
  report(repaired.repaired, "OTClean");
  return 0;
}
