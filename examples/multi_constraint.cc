// Multi-constraint example: enforcing two conditional-independence
// constraints simultaneously (the extension the paper's conclusion calls
// out), using cyclic I-projections inside FastOTClean.

#include <cstdio>

#include "otclean/otclean.h"

using namespace otclean;

int main() {
  // Dataset where (a) x and y are strongly dependent inside every (z0, z1)
  // slice and (b) the extra attribute w0 is marginally correlated with x —
  // two genuinely violated constraints over overlapping attribute sets.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 3000;
  gen.num_z_attrs = 2;
  gen.z_card = 2;
  gen.num_w_attrs = 1;
  gen.w_card = 2;
  gen.violation = 0.7;
  gen.seed = 19;
  const auto table = datagen::MakeScalingDataset(gen).value();

  const core::CiConstraint c1({"x"}, {"y"}, {"z0", "z1"});
  const core::CiConstraint c2({"x"}, {"w0"});
  std::printf("before: CMI(%s) = %.4f, CMI(%s) = %.4f\n",
              c1.ToString().c_str(), core::TableCmi(table, c1).value(),
              c2.ToString().c_str(), core::TableCmi(table, c2).value());

  core::RepairOptions options;
  options.fast.epsilon = 0.08;
  const auto report = core::RepairTableMulti(table, {c1, c2}, options);
  if (!report.ok()) {
    std::printf("repair failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("after:  CMI(%s) = %.4f, CMI(%s) = %.4f\n",
              c1.ToString().c_str(),
              core::TableCmi(report->repaired, c1).value(),
              c2.ToString().c_str(),
              core::TableCmi(report->repaired, c2).value());
  std::printf("target max-CMI %.2e, transport cost %.4f, %zu outer "
              "iterations\n",
              report->target_cmi, report->transport_cost,
              report->outer_iterations);
  return 0;
}
