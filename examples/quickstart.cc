// Quickstart: repair a tiny dataset that violates a conditional
// independence constraint, mirroring Examples 3.2–3.4 of the OTClean paper.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "otclean/otclean.h"

using namespace otclean;  // example code only; library code never does this

int main() {
  // --- 1. Build the bag D2 = {(1,0,0), (1,0,1), (1,1,0), (1,1,0)}. -------
  std::vector<dataset::Column> cols = {{"x", {"0", "1"}},
                                       {"y", {"0", "1"}},
                                       {"z", {"0", "1"}}};
  dataset::Table d2{dataset::Schema(cols)};
  (void)d2.AppendRow({1, 0, 0});
  (void)d2.AppendRow({1, 0, 1});
  (void)d2.AppendRow({1, 1, 0});
  (void)d2.AppendRow({1, 1, 0});

  // --- 2. The constraint sigma : Y _||_ Z (marginal independence). -------
  const core::CiConstraint sigma({"y"}, {"z"});
  const double before = core::TableCmi(d2, sigma).value();
  std::printf("CMI before repair: %.4f nats\n", before);

  // --- 3. Repair with FastOTClean (default solver). ----------------------
  core::RepairOptions options;
  options.fast.epsilon = 0.02;  // sharp entropic regularization
  options.seed = 7;
  // Plain (unit) Euclidean cost over the constraint attributes {y, z}, so
  // the transport cost is comparable with Example 3.4's numbers.
  const ot::EuclideanCost cost(2);
  const auto report = core::RepairTable(d2, sigma, options, &cost);
  if (!report.ok()) {
    std::printf("repair failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("CMI of cleaner's target Q: %.2e nats\n", report->target_cmi);
  std::printf(
      "transport cost: %.4f (Example 3.4's repair costs 0.25; the exact\n"
      "optimum, which our QCLP solver finds, is 4/21 ~= 0.19)\n",
      report->transport_cost);
  std::printf("repaired rows:\n");
  for (size_t r = 0; r < report->repaired.num_rows(); ++r) {
    std::printf("  (%s, %s, %s)\n", report->repaired.Label(r, 0).c_str(),
                report->repaired.Label(r, 1).c_str(),
                report->repaired.Label(r, 2).c_str());
  }
  return 0;
}
