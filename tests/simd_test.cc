#include "linalg/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "linalg/thread_pool.h"
#include "linalg/transport_kernel.h"
#include "linalg/transport_kernel_f32.h"
#include "ot/sinkhorn.h"

namespace otclean::linalg::simd {
namespace {

// Sizes chosen to hit every code path of the 4×lanes main loop, the
// single-vector loop, and the scalar tail, for every lane width in play
// (scalar=1, NEON=2, AVX2=4, AVX-512=8): empty, single element, just
// below/at/above each block boundary, and sizes not divisible by any lane
// width.
const size_t kSizes[] = {0,  1,  2,  3,  5,  7,  8,  9,  13, 15, 16,  17,
                         23, 31, 32, 33, 63, 64, 65, 100, 127, 257, 1000};

struct TestData {
  std::vector<double> a, b, c, x;
  std::vector<size_t> idx;          // random in-bounds gather indices
  std::vector<size_t> identity;     // 0..n-1
};

TestData MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  TestData d;
  d.a.resize(n);
  d.b.resize(n);
  d.c.resize(n);
  d.idx.resize(n);
  d.identity.resize(n);
  const size_t domain = std::max<size_t>(1, 2 * n);
  d.x.resize(domain);
  for (double& v : d.a) v = rng.NextDouble() * 2.0 - 0.5;
  for (double& v : d.b) v = rng.NextDouble() * 3.0;
  for (double& v : d.c) v = rng.NextDouble() - 0.5;
  for (double& v : d.x) v = rng.NextDouble() * 2.0;
  for (size_t i = 0; i < n; ++i) {
    d.idx[i] = static_cast<size_t>(
        rng.NextInt(0, static_cast<int64_t>(domain) - 1));
    d.identity[i] = i;
  }
  return d;
}

/// Tolerance for comparing one accumulation order against another: a few
/// ULP per reorder step, scaled by the magnitude of the terms.
double ReduceTol(double magnitude, size_t n) {
  return (static_cast<double>(n) + 8.0) * 4e-16 * std::max(magnitude, 1.0);
}

class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : saved_(ActiveIsa()) { SetIsa(isa); }
  ~ScopedIsa() { SetIsa(saved_); }

 private:
  Isa saved_;
};

std::vector<Isa> VectorIsas() {
  std::vector<Isa> out;
  for (Isa isa : SupportedIsas()) {
    if (isa != Isa::kScalar) out.push_back(isa);
  }
  return out;
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(IsaSupported(Isa::kScalar));
  const auto supported = SupportedIsas();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), Isa::kScalar);
  EXPECT_TRUE(IsaSupported(ActiveIsa()));
  EXPECT_STRNE(ActiveIsaName(), "unknown");
}

TEST(SimdDispatchTest, SetIsaRoundTrips) {
  const Isa original = ActiveIsa();
  for (Isa isa : SupportedIsas()) {
    EXPECT_TRUE(SetIsa(isa));
    EXPECT_EQ(ActiveIsa(), isa);
  }
  EXPECT_TRUE(SetIsa(original));
}

// ------------------------------------------- scalar vs vector agreement --

TEST(SimdUlpTest, ReductionsMatchScalarWithinUlps) {
  for (const size_t n : kSizes) {
    const TestData d = MakeData(n, 42 + n);
    ScopedIsa scoped(Isa::kScalar);
    const double ref_dot = Dot(d.a.data(), d.b.data(), n);
    const double ref_dot3 = Dot3(d.a.data(), d.b.data(), d.c.data(), n);
    const double ref_sum = Sum(d.a.data(), n);
    const double ref_gdot = GatherDot(d.a.data(), d.idx.data(), d.x.data(), n);
    const double ref_gdot3 =
        GatherDot3(d.a.data(), d.b.data(), d.idx.data(), d.x.data(), n);
    for (Isa isa : VectorIsas()) {
      SetIsa(isa);
      const double tol = ReduceTol(3.0 * n, n);
      EXPECT_NEAR(Dot(d.a.data(), d.b.data(), n), ref_dot, tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(Dot3(d.a.data(), d.b.data(), d.c.data(), n), ref_dot3, tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(Sum(d.a.data(), n), ref_sum, tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(GatherDot(d.a.data(), d.idx.data(), d.x.data(), n), ref_gdot,
                  tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(
          GatherDot3(d.a.data(), d.b.data(), d.idx.data(), d.x.data(), n),
          ref_gdot3, tol)
          << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdExactTest, ElementwisePrimitivesAreBitIdenticalAcrossTiers) {
  // Axpy, AxpyRows, and the Hadamard family perform separately rounded
  // multiplies and adds per element in a fixed order, so every tier must
  // agree bit for bit — the contract the dense/sparse kernel exactness
  // rests on.
  for (const size_t n : kSizes) {
    const TestData d = MakeData(n, 77 + n);
    // AxpyRows over an uneven row count exercises the pairing and the
    // trailing row. 3 rows × n columns, stored contiguously.
    const size_t num_rows = 3;
    std::vector<double> rows(num_rows * n);
    std::vector<double> coeffs{1.7, 0.0, -0.3};
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = 0.01 * (i % 89) - 0.2;
    std::vector<double> ref_axpy(d.c), ref_rows(n, 0.5), ref_had(n),
        ref_shad(n), ref_gshad(n);
    {
      ScopedIsa scoped(Isa::kScalar);
      Axpy(1.7, d.a.data(), ref_axpy.data(), n);
      AxpyRows(coeffs.data(), rows.data(), n, num_rows, ref_rows.data(), n);
      Hadamard(d.a.data(), d.b.data(), ref_had.data(), n);
      ScaledHadamard(2.5, d.a.data(), d.b.data(), ref_shad.data(), n);
      GatherScaledHadamard(2.5, d.a.data(), d.idx.data(), d.x.data(),
                           ref_gshad.data(), n);
    }
    for (Isa isa : VectorIsas()) {
      ScopedIsa scoped(isa);
      std::vector<double> axpy(d.c), out_rows(n, 0.5), had(n), shad(n),
          gshad(n);
      Axpy(1.7, d.a.data(), axpy.data(), n);
      AxpyRows(coeffs.data(), rows.data(), n, num_rows, out_rows.data(), n);
      Hadamard(d.a.data(), d.b.data(), had.data(), n);
      ScaledHadamard(2.5, d.a.data(), d.b.data(), shad.data(), n);
      GatherScaledHadamard(2.5, d.a.data(), d.idx.data(), d.x.data(),
                           gshad.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(axpy[i], ref_axpy[i]) << IsaName(isa) << " i=" << i;
        EXPECT_EQ(out_rows[i], ref_rows[i]) << IsaName(isa) << " i=" << i;
        EXPECT_EQ(had[i], ref_had[i]) << IsaName(isa) << " i=" << i;
        EXPECT_EQ(shad[i], ref_shad[i]) << IsaName(isa) << " i=" << i;
        EXPECT_EQ(gshad[i], ref_gshad[i]) << IsaName(isa) << " i=" << i;
      }
    }
  }
}

TEST(SimdExactTest, AxpyRowsSkipsZeroCoefficientRowsInEveryTier) {
  // A zero-coefficient row is never read, in any tier — so 0·inf can't
  // poison the output and mixed pairs stay bit-identical across tiers.
  const size_t n = 13;
  std::vector<double> rows(2 * n, std::numeric_limits<double>::infinity());
  for (size_t i = n; i < 2 * n; ++i) rows[i] = 0.25 * (i - n);
  const std::vector<double> coeffs{0.0, 2.0};  // inf row masked off
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    std::vector<double> y(n, 1.0);
    AxpyRows(coeffs.data(), rows.data(), n, coeffs.size(), y.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[i], 1.0 + 2.0 * (0.25 * i)) << IsaName(isa) << " i=" << i;
    }
  }
}

TEST(SimdExactTest, SequentialGatherMatchesAxpyRowsChain) {
  // GatherDotSequential over a full-support CSC column (ascending row
  // indices) must equal the value AxpyRows accumulates into that column —
  // the dense/sparse ApplyTranspose agreement, distilled.
  for (const size_t m : {1ul, 2ul, 3ul, 7ul, 64ul, 129ul}) {
    const size_t n = 5;  // columns
    std::vector<double> k(m * n), u(m);
    for (size_t i = 0; i < k.size(); ++i) k[i] = 0.3 + 0.001 * (i % 53);
    for (size_t r = 0; r < m; ++r) u[r] = 0.05 + 0.01 * (r % 17);
    // CSC of column j at full support: values k[r*n+j], row indices 0..m-1.
    std::vector<size_t> row_idx(m);
    for (size_t r = 0; r < m; ++r) row_idx[r] = r;
    for (Isa isa : SupportedIsas()) {
      ScopedIsa scoped(isa);
      std::vector<double> y(n, 0.0);
      AxpyRows(u.data(), k.data(), n, m, y.data(), n);
      for (size_t j = 0; j < n; ++j) {
        std::vector<double> col(m);
        for (size_t r = 0; r < m; ++r) col[r] = k[r * n + j];
        EXPECT_EQ(GatherDotSequential(col.data(), row_idx.data(), u.data(), m),
                  y[j])
            << IsaName(isa) << " m=" << m << " j=" << j;
      }
    }
  }
}

// ----------------------------------------- contiguous / gather mirroring --

TEST(SimdMirrorTest, GatherWithIdentityIndicesIsBitIdenticalToContiguous) {
  // The determinism contract of simd.h: per ISA, GatherDot over idx=0..n-1
  // IS Dot, bit for bit — this is what keeps cutoff-zero sparse kernels in
  // exact agreement with dense ones.
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    for (const size_t n : kSizes) {
      const TestData d = MakeData(n, 1234 + n);
      EXPECT_EQ(GatherDot(d.a.data(), d.identity.data(), d.b.data(), n),
                Dot(d.a.data(), d.b.data(), n))
          << IsaName(isa) << " n=" << n;
      EXPECT_EQ(GatherDot3(d.a.data(), d.b.data(), d.identity.data(),
                           d.c.data(), n),
                Dot3(d.a.data(), d.b.data(), d.c.data(), n))
          << IsaName(isa) << " n=" << n;
      std::vector<double> gathered(n), contiguous(n);
      GatherScaledHadamard(1.9, d.a.data(), d.identity.data(), d.b.data(),
                           gathered.data(), n);
      ScaledHadamard(1.9, d.a.data(), d.b.data(), contiguous.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(gathered[i], contiguous[i]) << IsaName(isa) << " i=" << i;
      }
    }
  }
}

TEST(SimdMirrorTest, RepeatedAndPermutedGatherIndices) {
  // Gathers must handle arbitrary index patterns: duplicates, reversals,
  // and single-element rows.
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    const std::vector<double> x{1.0, 2.0, 4.0, 8.0};
    const std::vector<double> vals{0.5, 0.5, 0.5, 0.5, 0.5};
    const std::vector<size_t> dup{3, 3, 3, 3, 3};
    EXPECT_DOUBLE_EQ(GatherDot(vals.data(), dup.data(), x.data(), 5), 20.0)
        << IsaName(isa);
    const std::vector<size_t> rev{3, 2, 1, 0};
    EXPECT_DOUBLE_EQ(GatherDot(vals.data(), rev.data(), x.data(), 4), 7.5)
        << IsaName(isa);
    const std::vector<size_t> one{2};
    EXPECT_DOUBLE_EQ(GatherDot(vals.data(), one.data(), x.data(), 1), 2.0)
        << IsaName(isa);
    EXPECT_EQ(GatherDot(vals.data(), rev.data(), x.data(), 0), 0.0)
        << IsaName(isa);
  }
}

TEST(SimdMirrorTest, EmptyInputsAreZeroOrNoop) {
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    EXPECT_EQ(Dot(nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(Sum(nullptr, 0), 0.0);
    EXPECT_EQ(GatherDot(nullptr, nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(GatherDotSequential(nullptr, nullptr, nullptr, 0), 0.0);
    double sentinel = 42.0;
    Axpy(2.0, nullptr, &sentinel, 0);
    AxpyRows(nullptr, nullptr, 1, 0, &sentinel, 0);
    EXPECT_EQ(sentinel, 42.0);
  }
}

// ------------------------------------------------------ exact sums check --

TEST(SimdExactTest, IntegerValuedSumsAreExactInEveryTier) {
  // Sums of small integers are exactly representable, so every tier must
  // return the same value regardless of accumulation order.
  std::vector<double> a(1003);
  std::iota(a.begin(), a.end(), 1.0);
  const double expected = 1003.0 * 1004.0 / 2.0;
  std::vector<double> ones(1003, 1.0);
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    EXPECT_EQ(Sum(a.data(), a.size()), expected) << IsaName(isa);
    EXPECT_EQ(Dot(a.data(), ones.data(), a.size()), expected) << IsaName(isa);
  }
}

// ------------------------------------------------------------- f32 tier --

TEST(SimdF32Test, F32LaneRecipesMatchScalarWithinUlps) {
  // The float-storage reductions widen every lane to double before it
  // enters an accumulator, so they obey the same ULP envelope as the f64
  // recipes — per tier, against the scalar reference.
  for (const size_t n : kSizes) {
    const TestData d = MakeData(n, 91 + n);
    std::vector<float> kf(n);
    for (size_t i = 0; i < n; ++i) kf[i] = static_cast<float>(d.b[i]);
    ScopedIsa scoped(Isa::kScalar);
    const double ref_dot = DotF32(kf.data(), d.a.data(), n);
    const double ref_dot3 = Dot3F32(d.a.data(), kf.data(), d.c.data(), n);
    const double ref_gdot =
        GatherDotF32(kf.data(), d.idx.data(), d.x.data(), n);
    const double ref_gdot3 =
        GatherDot3F32(d.a.data(), kf.data(), d.idx.data(), d.x.data(), n);
    for (Isa isa : VectorIsas()) {
      SetIsa(isa);
      const double tol = ReduceTol(3.0 * n, n);
      EXPECT_NEAR(DotF32(kf.data(), d.a.data(), n), ref_dot, tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(Dot3F32(d.a.data(), kf.data(), d.c.data(), n), ref_dot3,
                  tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(GatherDotF32(kf.data(), d.idx.data(), d.x.data(), n),
                  ref_gdot, tol)
          << IsaName(isa) << " n=" << n;
      EXPECT_NEAR(
          GatherDot3F32(d.a.data(), kf.data(), d.idx.data(), d.x.data(), n),
          ref_gdot3, tol)
          << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdF32Test, F32ElementwiseRecipesAreBitIdenticalAcrossTiers) {
  // Elementwise f32 recipes have no reduction-order freedom: each output
  // element is the same widen-multiply sequence in every tier.
  for (const size_t n : kSizes) {
    const TestData d = MakeData(n, 17 + n);
    std::vector<float> kf(n);
    for (size_t i = 0; i < n; ++i) kf[i] = static_cast<float>(d.b[i]);
    std::vector<double> ref(n), out(n);
    {
      ScopedIsa scoped(Isa::kScalar);
      ScaledHadamardF32(1.7, kf.data(), d.a.data(), ref.data(), n);
    }
    for (Isa isa : VectorIsas()) {
      ScopedIsa scoped(isa);
      ScaledHadamardF32(1.7, kf.data(), d.a.data(), out.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], ref[i]) << IsaName(isa) << " n=" << n << " i=" << i;
      }
    }
  }
}

namespace {

struct SolveProblem {
  Matrix cost{24, 24};
  Vector p{24}, q{24};

  SolveProblem() {
    Rng rng(5);
    for (double& c : cost.data()) c = rng.NextDouble();
    for (size_t i = 0; i < 24; ++i) {
      p[i] = 0.2 + rng.NextDouble();
      q[i] = 0.2 + rng.NextDouble();
    }
    p.Normalize();
    q.Normalize();
  }
};

struct SolveOut {
  std::vector<double> u, v;
  size_t iterations = 0;
};

}  // namespace

TEST(SimdF32Test, F32SolveBitIdenticalAcrossThreadCountsAndPools) {
  // The per-(tier, precision) determinism contract, f32 edition: serial,
  // spawned-pool, and shared-pool solves agree bit for bit, on the dense
  // and truncated-sparse paths, linear and log domain.
  const SolveProblem prob;
  ot::SinkhornOptions base;
  base.epsilon = 0.08;
  base.tolerance = 1e-10;
  base.precision = Precision::kFloat32;

  for (const bool log_domain : {false, true}) {
    for (const bool sparse : {false, true}) {
      auto run = [&](size_t threads, ThreadPool* pool) {
        ot::SinkhornOptions o = base;
        o.log_domain = log_domain;
        o.num_threads = threads;
        o.thread_pool = pool;
        SolveOut out;
        if (sparse) {
          o.relaxed = true;  // truncation under-serves columns legitimately
          auto r = ot::RunSinkhornSparse(prob.cost, prob.p, prob.q, o,
                                         /*kernel_cutoff=*/1e-4);
          EXPECT_TRUE(r.ok()) << r.status().ToString();
          if (r.ok()) out = {r->u.data(), r->v.data(), r->iterations};
        } else {
          auto r = ot::RunSinkhorn(prob.cost, prob.p, prob.q, o);
          EXPECT_TRUE(r.ok()) << r.status().ToString();
          if (r.ok()) out = {r->u.data(), r->v.data(), r->iterations};
        }
        return out;
      };
      ThreadPool pool(4);
      const SolveOut serial = run(1, nullptr);
      const SolveOut spawned = run(4, nullptr);
      const SolveOut pooled = run(4, &pool);
      EXPECT_EQ(serial.iterations, spawned.iterations)
          << "log=" << log_domain << " sparse=" << sparse;
      EXPECT_TRUE(serial.u == spawned.u && serial.v == spawned.v)
          << "spawned pool diverges: log=" << log_domain
          << " sparse=" << sparse;
      EXPECT_TRUE(serial.u == pooled.u && serial.v == pooled.v)
          << "shared pool diverges: log=" << log_domain
          << " sparse=" << sparse;
    }
  }
}

TEST(SimdF32Test, F32PlanAgreesWithF64WithinKernelRounding) {
  // The accuracy envelope of the f32 tier: kernel entries carry ≤ 2⁻²⁴
  // relative rounding, so plans and costs track the f64 tier to ~1e-5 —
  // close enough for repair decisions, far outside the bit-identity
  // contract (which holds only within a precision).
  const SolveProblem prob;
  ot::SinkhornOptions f64;
  f64.epsilon = 0.08;
  f64.tolerance = 1e-10;
  f64.num_threads = 1;
  ot::SinkhornOptions f32 = f64;
  f32.precision = Precision::kFloat32;

  const auto rd = ot::RunSinkhorn(prob.cost, prob.p, prob.q, f64).value();
  const auto rf = ot::RunSinkhorn(prob.cost, prob.p, prob.q, f32).value();
  EXPECT_TRUE(rd.converged);
  EXPECT_TRUE(rf.converged);
  EXPECT_NEAR(rf.transport_cost, rd.transport_cost,
              1e-5 * (1.0 + std::fabs(rd.transport_cost)));
  double max_diff = 0.0;
  for (size_t i = 0; i < rd.plan.data().size(); ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(rd.plan.data()[i] - rf.plan.data()[i]));
  }
  EXPECT_LT(max_diff, 1e-5);

  // Truncated path: f32 and f64 share the kept-set by contract (the
  // cutoff decision is made in double), so the sparse plans align
  // entry-for-entry.
  ot::SinkhornOptions sf64 = f64;
  sf64.relaxed = true;
  ot::SinkhornOptions sf32 = f32;
  sf32.relaxed = true;
  const auto sd =
      ot::RunSinkhornSparse(prob.cost, prob.p, prob.q, sf64, 1e-4).value();
  const auto sf =
      ot::RunSinkhornSparse(prob.cost, prob.p, prob.q, sf32, 1e-4).value();
  ASSERT_EQ(sd.plan.values().size(), sf.plan.values().size());
  double sparse_diff = 0.0;
  for (size_t i = 0; i < sd.plan.values().size(); ++i) {
    sparse_diff = std::max(
        sparse_diff, std::fabs(sd.plan.values()[i] - sf.plan.values()[i]));
  }
  EXPECT_LT(sparse_diff, 1e-5);
}

}  // namespace
}  // namespace otclean::linalg::simd
