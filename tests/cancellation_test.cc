#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/repair.h"
#include "core/repair_scheduler.h"
#include "core/solve_cache.h"
#include "datagen/synthetic.h"

namespace otclean::core {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

dataset::Table MakeViolatingTable(uint64_t seed, size_t rows = 400,
                                  size_t num_z_attrs = 1, size_t z_card = 2) {
  datagen::ScalingDatasetOptions opts;
  opts.num_rows = rows;
  opts.num_z_attrs = num_z_attrs;
  opts.z_card = z_card;
  opts.violation = 0.7;
  opts.seed = seed;
  return datagen::MakeScalingDataset(opts).value();
}

CiConstraint XyGivenZ() { return CiConstraint({"x"}, {"y"}, {"z0"}); }

/// A solve sized to run for minutes if nobody stops it: an 864-cell domain
/// (the constraint spans all three z attrs) and tolerances no iterate will
/// ever meet, so only the iteration budget — or a stop signal — ends it.
struct HeavySolve {
  dataset::Table table =
      MakeViolatingTable(31, /*rows=*/2000, /*num_z_attrs=*/3, /*z_card=*/6);
  CiConstraint constraint{{"x"}, {"y"}, {"z0", "z1", "z2"}};
  RepairOptions options;

  HeavySolve() {
    options.fast.max_outer_iterations = 100000;
    options.fast.outer_tolerance = 0.0;
    options.fast.max_sinkhorn_iterations = 5000;
    options.fast.sinkhorn_tolerance = 0.0;
  }
};

// ------------------------------------------------------------- stop paths --

TEST(CancellationTest, PreCancelledTokenAbortsBeforeAnyWork) {
  const dataset::Table table = MakeViolatingTable(30);
  CancellationToken token;
  token.Cancel();
  RepairOptions opts;
  opts.fast.cancel_token = &token;
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_NE(r.status().message().find("cancelled"), std::string::npos);
}

TEST(CancellationTest, PreExpiredDeadlineAbortsBeforeAnyWork) {
  const dataset::Table table = MakeViolatingTable(30);
  RepairOptions opts;
  opts.fast.deadline = Deadline::After(0.0);  // born expired
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, CrossThreadCancelStopsALargeSolvePromptly) {
  HeavySolve heavy;
  CancellationToken token;
  heavy.options.fast.cancel_token = &token;

  Result<RepairReport> result = Status::Internal("never ran");
  std::thread solver([&] {
    result = RepairTable(heavy.table, heavy.constraint, heavy.options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const Clock::time_point cancelled_at = Clock::now();
  token.Cancel();
  solver.join();

  // Cooperative checks run per scaling iteration, so the abort lands within
  // a few iterations — the generous bound absorbs sanitizer slowdowns while
  // still being orders of magnitude below the full iteration budget.
  EXPECT_LT(SecondsSince(cancelled_at), 10.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, DeadlineExpiresMidSolveWithDeadlineExceeded) {
  HeavySolve heavy;
  heavy.options.fast.deadline = Deadline::After(0.2);
  const Clock::time_point t0 = Clock::now();
  const Result<RepairReport> r =
      RepairTable(heavy.table, heavy.constraint, heavy.options);
  EXPECT_LT(SecondsSince(t0), 10.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------- cache non-corruption --

TEST(CancellationTest, MidSolveCancelLeavesTheCacheUncorrupted) {
  // The cancelled solve may have published its (complete, deterministic)
  // kernel, but never a partial entry and never a pin that outlives it: a
  // later identical request on the disturbed cache must repair
  // bit-identically to one on a fresh cache.
  const dataset::Table table =
      MakeViolatingTable(32, /*rows=*/800, /*num_z_attrs=*/3, /*z_card=*/6);
  const CiConstraint wide({"x"}, {"y"}, {"z0", "z1", "z2"});
  RepairOptions opts;
  opts.fast.max_outer_iterations = 3;
  opts.fast.max_sinkhorn_iterations = 500;
  opts.fast.sinkhorn_tolerance = 0.0;
  opts.fast.outer_tolerance = 0.0;

  SolveCache cache;
  CancellationToken token;
  RepairOptions cancelled_opts = opts;
  cancelled_opts.fast.solve_cache = &cache;
  cancelled_opts.fast.cancel_token = &token;

  Result<RepairReport> interrupted = Status::Internal("never ran");
  std::thread solver(
      [&] { interrupted = RepairTable(table, wide, cancelled_opts); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  solver.join();
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);

  // Consistency: every pin released, at most the one complete kernel entry.
  const SolveCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.bytes_pinned, 0u);
  EXPECT_LE(stats.entries, 1u);
  EXPECT_LE(stats.insertions, 1u);

  RepairOptions warm_opts = opts;
  warm_opts.fast.solve_cache = &cache;
  const Result<RepairReport> warm = RepairTable(table, wide, warm_opts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(cache.Stats().bytes_pinned, 0u);

  SolveCache fresh;
  RepairOptions cold_opts = opts;
  cold_opts.fast.solve_cache = &fresh;
  const Result<RepairReport> cold = RepairTable(table, wide, cold_opts);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  EXPECT_TRUE(warm->repaired.SameContents(cold->repaired));
  EXPECT_EQ(warm->transport_cost, cold->transport_cost);
  EXPECT_EQ(warm->total_sinkhorn_iterations, cold->total_sinkhorn_iterations);
}

// -------------------------------------------------------- batch isolation --

TEST(CancellationTest, DeadlinedJobLeavesItsSevenSiblingsBitIdentical) {
  const dataset::Table t1 = MakeViolatingTable(33);
  const dataset::Table t2 = MakeViolatingTable(34, /*rows=*/500);
  std::vector<RepairJob> jobs(8);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].table = (i % 2 == 0) ? &t1 : &t2;
    jobs[i].constraints = {XyGivenZ()};
    jobs[i].options.seed = 100 + i;
    if (i % 3 == 0) jobs[i].options.fast.log_domain = true;
  }

  RepairSchedulerOptions opts;
  opts.max_concurrent_jobs = 4;
  opts.pool_threads = 2;
  const BatchReport undisturbed = RepairScheduler(opts).Run(jobs);
  ASSERT_EQ(undisturbed.completed_jobs, jobs.size());

  std::vector<RepairJob> disturbed_jobs = jobs;
  disturbed_jobs[3].deadline_seconds = 1e-3;  // expires at the first check
  const BatchReport disturbed = RepairScheduler(opts).Run(disturbed_jobs);

  ASSERT_EQ(disturbed.jobs.size(), jobs.size());
  ASSERT_FALSE(disturbed.jobs[3].ok());
  EXPECT_EQ(disturbed.jobs[3].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(disturbed.deadline_exceeded_jobs, 1u);
  EXPECT_EQ(disturbed.failed_jobs, 1u);
  EXPECT_EQ(disturbed.completed_jobs, jobs.size() - 1);

  // Same batch index → same derived seed; a sibling that even *reads*
  // state perturbed by the dying job would drift from the undisturbed run.
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(disturbed.jobs[i].ok()) << i;
    const RepairReport& a = *undisturbed.jobs[i];
    const RepairReport& b = *disturbed.jobs[i];
    EXPECT_TRUE(a.repaired.SameContents(b.repaired)) << "job " << i;
    EXPECT_EQ(a.transport_cost, b.transport_cost) << "job " << i;
    EXPECT_EQ(a.final_cmi, b.final_cmi) << "job " << i;
    EXPECT_EQ(a.total_sinkhorn_iterations, b.total_sinkhorn_iterations)
        << "job " << i;
  }
}

}  // namespace
}  // namespace otclean::core
