#include "core/fault_injector.h"

#include <gtest/gtest.h>

#include <string>

#include "core/repair.h"
#include "core/repair_scheduler.h"
#include "core/solve_cache.h"
#include "datagen/synthetic.h"
#include "linalg/thread_pool.h"

namespace otclean::core {
namespace {

dataset::Table MakeViolatingTable(uint64_t seed, size_t rows = 300,
                                  size_t num_z_attrs = 1, size_t z_card = 2) {
  datagen::ScalingDatasetOptions opts;
  opts.num_rows = rows;
  opts.num_z_attrs = num_z_attrs;
  opts.z_card = z_card;
  opts.violation = 0.7;
  opts.seed = seed;
  return datagen::MakeScalingDataset(opts).value();
}

CiConstraint XyGivenZ() { return CiConstraint({"x"}, {"y"}, {"z0"}); }

/// Restores the process-wide pool chunk hook however the test exits.
struct ScopedPoolDelayHook {
  explicit ScopedPoolDelayHook(FaultInjector& injector, size_t millis) {
    injector.InstallPoolDelayHook(millis);
  }
  ~ScopedPoolDelayHook() { FaultInjector::ClearPoolDelayHook(); }
};

// ------------------------------------------------------------------ Parse --

TEST(FaultInjectorParseTest, AcceptsTheDocumentedGrammar) {
  FaultInjector inj;
  ASSERT_TRUE(FaultInjector::Parse("alloc@2", &inj).ok());
  EXPECT_FALSE(inj.ShouldFire(FaultSite::kAlloc));  // visit 1
  EXPECT_TRUE(inj.ShouldFire(FaultSite::kAlloc));   // visit 2: armed
  EXPECT_FALSE(inj.ShouldFire(FaultSite::kAlloc));  // visit 3: exact, not sticky
  EXPECT_EQ(inj.hits(FaultSite::kAlloc), 3u);

  FaultInjector multi;
  ASSERT_TRUE(
      FaultInjector::Parse("kernel-nan@1,cache-insert@2+", &multi).ok());
  EXPECT_TRUE(multi.ShouldFire(FaultSite::kKernelNan));
  EXPECT_FALSE(multi.ShouldFire(FaultSite::kKernelNan));
  EXPECT_FALSE(multi.ShouldFire(FaultSite::kCacheInsert));  // visit 1
  EXPECT_TRUE(multi.ShouldFire(FaultSite::kCacheInsert));   // visit 2
  EXPECT_TRUE(multi.ShouldFire(FaultSite::kCacheInsert));   // sticky
  EXPECT_FALSE(multi.ShouldFire(FaultSite::kWorkerDelay));  // never armed
}

TEST(FaultInjectorParseTest, RejectsMalformedSpecsLoudly) {
  FaultInjector inj;
  for (const char* bad : {"", "alloc", "alloc@", "alloc@0", "alloc@x",
                          "bogus@1", "alloc@1,,alloc@2", "@3", "alloc@-1"}) {
    const Status s = FaultInjector::Parse(bad, &inj);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(s.message().empty()) << bad;
  }
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    FaultInjector inj;
    ASSERT_TRUE(FaultInjector::Parse(std::string(FaultSiteName(site)) + "@1",
                                     &inj)
                    .ok())
        << FaultSiteName(site);
    EXPECT_TRUE(inj.ShouldFire(site));
  }
}

// ----------------------------------------------------------- solve faults --

TEST(FaultInjectionTest, AllocFailureSurfacesAsResourceExhausted) {
  const dataset::Table table = MakeViolatingTable(41);
  FaultInjector inj;
  inj.Arm(FaultSite::kAlloc, 1);
  RepairOptions opts;
  opts.fast.fault_injector = &inj;
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("bad_alloc"), std::string::npos);
}

TEST(FaultInjectionTest, AllocFailureIsNotRetried) {
  // kResourceExhausted is not in the retryable set: retrying an exhausted
  // process makes the exhaustion worse. The sticky arm proves no second
  // attempt ran: exactly one alloc visit fired.
  const dataset::Table table = MakeViolatingTable(41);
  FaultInjector inj;
  inj.Arm(FaultSite::kAlloc, 1, /*sticky=*/true);
  RepairOptions opts;
  opts.fast.fault_injector = &inj;
  opts.retry.max_attempts = 3;
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(inj.hits(FaultSite::kAlloc), 1u);
}

TEST(FaultInjectionTest, KernelNanFailsCleanlyWithoutRetry) {
  const dataset::Table table = MakeViolatingTable(42);
  FaultInjector inj;
  inj.Arm(FaultSite::kKernelNan, 1);
  RepairOptions opts;
  opts.fast.fault_injector = &inj;
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  // The dense linear path turns a NaN kernel entry into scalings that clamp
  // to zero and a plan with no mass — a clean Status, never a crash or a
  // silently wrong repair.
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("mass"), std::string::npos);
}

TEST(FaultInjectionTest, RetryRecoversFromTransientKernelNan) {
  const dataset::Table table = MakeViolatingTable(42);
  FaultInjector inj;
  inj.Arm(FaultSite::kKernelNan, 1);  // transient: only the first build
  RepairOptions opts;
  opts.fast.fault_injector = &inj;
  opts.retry.max_attempts = 2;
  // Loose enough that the fallback attempt actually converges (the default
  // 1e-8 outer tolerance never does on this table) — "retried-ok" is only
  // reported for a *converged* recovery.
  opts.fast.outer_tolerance = 1e-4;
  opts.fast.max_outer_iterations = 1000;
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->converged);
  EXPECT_STREQ(r->termination, "retried-ok");
  EXPECT_EQ(r->retry_attempts, 1u);
  EXPECT_NE(r->recovery.find("log-domain"), std::string::npos);
  EXPECT_STREQ(r->sinkhorn_domain, "log");

  // The recovered repair equals a straight log-domain run: the fallback
  // reconfigures, it never perturbs.
  RepairOptions log_opts = opts;
  log_opts.fast.fault_injector = nullptr;
  log_opts.retry = RetryOptions{};
  log_opts.fast.log_domain = true;
  const Result<RepairReport> direct = RepairTable(table, XyGivenZ(), log_opts);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(r->repaired.SameContents(direct->repaired));
  EXPECT_EQ(r->transport_cost, direct->transport_cost);
}

TEST(FaultInjectionTest, ZeroAttemptsAndNegativeBackoffAreInvalid) {
  const dataset::Table table = MakeViolatingTable(43);
  RepairOptions opts;
  opts.retry.max_attempts = 0;
  Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("max_attempts"), std::string::npos);

  opts.retry.max_attempts = 1;
  opts.retry.backoff_seconds = -0.5;
  r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("backoff"), std::string::npos);
}

// ----------------------------------------------------------- cache faults --

TEST(FaultInjectionTest, FailedCacheInsertLeavesCacheConsistent) {
  const dataset::Table table = MakeViolatingTable(44);
  SolveCache cache;
  FaultInjector inj;
  inj.Arm(FaultSite::kCacheInsert, 1);
  cache.set_fault_injector(&inj);

  RepairOptions opts;
  opts.fast.solve_cache = &cache;
  const Result<RepairReport> first = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cache_kernel_misses, 1u);

  // The failed insert is atomic: no kernel entry, no insertion counted, no
  // bytes pinned — the solve just ran uncached on its private kernel.
  const SolveCacheStats after_first = cache.Stats();
  EXPECT_EQ(after_first.insertions, 0u);
  EXPECT_EQ(after_first.bytes_pinned, 0u);
  EXPECT_FALSE(cache.FindKernel(MakeSolveCacheKey(0, 1, 1, 0.1, 0.0, false))
                   .has_value());

  // The cache is not poisoned: the next identical solve misses, inserts
  // (the arm was exact, not sticky), and repairs bit-identically.
  const Result<RepairReport> second = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const SolveCacheStats after_second = cache.Stats();
  EXPECT_EQ(after_second.insertions, 1u);
  EXPECT_GE(after_second.kernel_misses, 2u);
  EXPECT_TRUE(first->repaired.SameContents(second->repaired));
  EXPECT_EQ(first->transport_cost, second->transport_cost);

  // And a third run shares the now-resident kernel.
  const Result<RepairReport> third = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->cache_kernel_hits, 1u);
  EXPECT_TRUE(first->repaired.SameContents(third->repaired));
}

TEST(FaultInjectionTest, PoisonedSolveNeverPublishesToTheCache) {
  // A kernel-NaN solve bypasses the cache entirely: the poisoned kernel
  // must never become resident under the clean cost's key, where every
  // later request would share it.
  const dataset::Table table = MakeViolatingTable(44);
  SolveCache cache;
  FaultInjector inj;
  inj.Arm(FaultSite::kKernelNan, 1);
  RepairOptions opts;
  opts.fast.solve_cache = &cache;
  opts.fast.fault_injector = &inj;
  const Result<RepairReport> poisoned = RepairTable(table, XyGivenZ(), opts);
  EXPECT_FALSE(poisoned.ok());
  const SolveCacheStats s = cache.Stats();
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.entries, 0u);

  // The clean follow-up populates the cache and repairs normally.
  opts.fast.fault_injector = nullptr;
  const Result<RepairReport> clean = RepairTable(table, XyGivenZ(), opts);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(cache.Stats().insertions, 1u);
}

// ------------------------------------------------------------ pool faults --

TEST(FaultInjectionTest, WorkerDelayAloneChangesNothing) {
  // A 2*2*6^3 = 864-cell domain (the constraint must span every z attr —
  // the cleaned domain only covers constraint columns): wide enough that
  // the pooled ParallelFor actually splits into >1 chunk, so pool workers
  // — and the chunk hook — run. Small domains take the inline path.
  const dataset::Table table =
      MakeViolatingTable(45, /*rows=*/600, /*num_z_attrs=*/3, /*z_card=*/6);
  const CiConstraint wide({"x"}, {"y"}, {"z0", "z1", "z2"});
  linalg::ThreadPool pool(2);  // the chunk hook lives in the pooled path
  RepairOptions opts;
  opts.fast.num_threads = 2;
  opts.fast.thread_pool = &pool;
  // Keep the solve short: determinism doesn't need convergence, and the
  // sticky 1 ms delay below multiplies into every chunk dispatch.
  opts.fast.max_outer_iterations = 2;
  opts.fast.max_sinkhorn_iterations = 30;

  const Result<RepairReport> baseline = RepairTable(table, wide, opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FaultInjector inj;
  inj.Arm(FaultSite::kWorkerDelay, 1, /*sticky=*/true);
  ScopedPoolDelayHook hook(inj, /*millis=*/1);
  const Result<RepairReport> delayed = RepairTable(table, wide, opts);
  ASSERT_TRUE(delayed.ok()) << delayed.status().ToString();

  // Delay perturbs scheduling, never results: chunk decomposition and
  // arithmetic are independent of worker timing.
  EXPECT_TRUE(baseline->repaired.SameContents(delayed->repaired));
  EXPECT_EQ(baseline->transport_cost, delayed->transport_cost);
  EXPECT_EQ(baseline->total_sinkhorn_iterations,
            delayed->total_sinkhorn_iterations);
  EXPECT_GT(inj.hits(FaultSite::kWorkerDelay), 0u);
}

TEST(FaultInjectionTest, WorkerDelayPlusTightDeadlineExpiresCleanly) {
  const dataset::Table table = MakeViolatingTable(45, /*rows=*/500);
  FaultInjector inj;
  inj.Arm(FaultSite::kWorkerDelay, 1, /*sticky=*/true);
  ScopedPoolDelayHook hook(inj, /*millis=*/10);

  linalg::ThreadPool pool(2);
  RepairOptions opts;
  opts.fast.num_threads = 2;
  opts.fast.thread_pool = &pool;
  opts.fast.deadline = Deadline::After(0.05);
  const Result<RepairReport> r = RepairTable(table, XyGivenZ(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------------ scheduler plumbing --

TEST(FaultInjectionTest, SchedulerInjectsItsHarnessIntoJobs) {
  const dataset::Table table = MakeViolatingTable(46);
  FaultInjector inj;
  inj.Arm(FaultSite::kAlloc, 1);

  RepairSchedulerOptions sched;
  sched.max_concurrent_jobs = 1;
  sched.pool_threads = 1;
  sched.fault_injector = &inj;
  RepairScheduler scheduler(sched);

  RepairJob job;
  job.table = &table;
  job.constraints = {XyGivenZ()};
  const BatchReport report = scheduler.Run({job, job});
  ASSERT_EQ(report.jobs.size(), 2u);
  // Executor order is deterministic with one executor: the first job hits
  // the armed alloc visit, the second runs clean.
  EXPECT_EQ(report.failed_jobs, 1u);
  EXPECT_EQ(report.completed_jobs, 1u);
  size_t exhausted = 0;
  for (const auto& r : report.jobs) {
    if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    }
  }
  EXPECT_EQ(exhausted, 1u);
}

TEST(FaultInjectionTest, SchedulerRejectsConflictingJobHarness) {
  const dataset::Table table = MakeViolatingTable(46);
  FaultInjector scheduler_inj;
  FaultInjector job_inj;
  RepairSchedulerOptions sched;
  sched.max_concurrent_jobs = 1;
  sched.pool_threads = 1;
  sched.fault_injector = &scheduler_inj;
  RepairScheduler scheduler(sched);

  RepairJob job;
  job.table = &table;
  job.constraints = {XyGivenZ()};
  job.options.fast.fault_injector = &job_inj;
  const BatchReport report = scheduler.Run({job});
  ASSERT_EQ(report.jobs.size(), 1u);
  ASSERT_FALSE(report.jobs[0].ok());
  EXPECT_EQ(report.jobs[0].status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.jobs[0].status().message().find("fault_injector"),
            std::string::npos);
}

}  // namespace
}  // namespace otclean::core
