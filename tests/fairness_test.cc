#include <gtest/gtest.h>

#include <cmath>

#include "core/repair.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"
#include "fairness/cap_maxsat.h"
#include "fairness/capuchin.h"
#include "fairness/maxsat.h"
#include "fairness/metrics.h"

namespace otclean::fairness {
namespace {

/// Biased table: predictions depend on sensitive attribute s within each
/// admissible stratum a.
dataset::Table MakeBiasedTable(size_t n, uint64_t seed,
                               std::vector<double>* scores) {
  std::vector<dataset::Column> cols = {datagen::MakeColumn("s", 2),
                                       datagen::MakeColumn("a", 2),
                                       datagen::MakeColumn("y", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  Rng rng(seed);
  scores->clear();
  for (size_t i = 0; i < n; ++i) {
    const int s = rng.NextBernoulli(0.5) ? 1 : 0;
    const int a = rng.NextBernoulli(0.5) ? 1 : 0;
    const int y = rng.NextBernoulli(0.3 + 0.4 * a) ? 1 : 0;
    EXPECT_TRUE(t.AppendRow({s, a, y}).ok());
    // Biased scorer: protected group (s=1) scored lower.
    scores->push_back(0.3 + 0.4 * a - 0.25 * s + 0.1 * rng.NextDouble());
  }
  return t;
}

TEST(FairnessMetricsTest, BiasedScoresYieldNonzeroRod) {
  std::vector<double> scores;
  const auto t = MakeBiasedTable(2000, 1, &scores);
  FairnessInputs in;
  in.table = &t;
  in.scores = scores;
  in.sensitive_col = 0;
  in.admissible_cols = {1};
  const double rod = LogRod(in).value();
  EXPECT_GT(std::fabs(rod), 0.3);
}

TEST(FairnessMetricsTest, UnbiasedScoresYieldNearZeroRod) {
  std::vector<double> scores;
  const auto t = MakeBiasedTable(4000, 2, &scores);
  // Replace with s-independent scores.
  Rng rng(3);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    scores[r] = 0.3 + 0.4 * t.Value(r, 1) + 0.1 * rng.NextDouble();
  }
  FairnessInputs in;
  in.table = &t;
  in.scores = scores;
  in.sensitive_col = 0;
  in.admissible_cols = {1};
  EXPECT_NEAR(LogRod(in).value(), 0.0, 0.15);
}

TEST(FairnessMetricsTest, DemographicParityGap) {
  std::vector<double> scores;
  const auto t = MakeBiasedTable(3000, 4, &scores);
  FairnessInputs in;
  in.table = &t;
  in.scores = scores;
  in.sensitive_col = 0;
  in.admissible_cols = {1};
  const double dp = DemographicParityGap(in).value();
  EXPECT_GT(dp, 0.1);  // biased scorer
}

TEST(FairnessMetricsTest, EqualityOfOddsGap) {
  std::vector<double> scores;
  const auto t = MakeBiasedTable(3000, 5, &scores);
  FairnessInputs in;
  in.table = &t;
  in.scores = scores;
  in.sensitive_col = 0;
  in.admissible_cols = {1};
  const double eo = EqualityOfOddsGap(in, 2).value();
  EXPECT_GT(eo, 0.05);
}

TEST(FairnessMetricsTest, ValidatesInputs) {
  std::vector<double> scores;
  const auto t = MakeBiasedTable(100, 6, &scores);
  FairnessInputs in;
  in.table = &t;
  in.scores = {0.5};  // wrong size
  in.sensitive_col = 0;
  EXPECT_FALSE(LogRod(in).ok());
  in.scores = scores;
  in.sensitive_col = 9;  // out of range triggers cardinality check crash-free
  // (column 9 doesn't exist; guard is the binary-cardinality check on a
  // valid column index, so use column 1 with card 2 -> ok, and column 2.)
  in.sensitive_col = 1;
  EXPECT_TRUE(LogRod(in).ok());
}

// -------------------------------------------------------------- Capuchin --

TEST(CapuchinTest, IcRepairReducesCmi) {
  const auto bundle = datagen::MakeCompas(3000, 7).value();
  const double before = core::TableCmi(bundle.table, bundle.constraint).value();
  CapuchinOptions opts;
  opts.method = CapuchinMethod::kIndependentCoupling;
  const auto repaired = CapuchinRepair(bundle.table, bundle.constraint, opts).value();
  const double after = core::TableCmi(repaired, bundle.constraint).value();
  EXPECT_GT(before, 0.01);
  EXPECT_LT(after, before * 0.5);
  EXPECT_EQ(repaired.num_rows(), bundle.table.num_rows());
}

TEST(CapuchinTest, MfRepairReducesCmi) {
  const auto bundle = datagen::MakeCompas(3000, 8).value();
  const double before = core::TableCmi(bundle.table, bundle.constraint).value();
  CapuchinOptions opts;
  opts.method = CapuchinMethod::kMatrixFactorization;
  const auto repaired = CapuchinRepair(bundle.table, bundle.constraint, opts).value();
  const double after = core::TableCmi(repaired, bundle.constraint).value();
  EXPECT_LT(after, before * 0.5);
}

TEST(CapuchinTest, PreservesSchemaAndLabel) {
  const auto bundle = datagen::MakeCompas(500, 9).value();
  const auto repaired =
      CapuchinRepair(bundle.table, bundle.constraint).value();
  EXPECT_EQ(repaired.num_columns(), bundle.table.num_columns());
  // Label column untouched (not part of the constraint).
  const auto label = repaired.schema().ColumnIndex(bundle.label_col).value();
  for (size_t r = 0; r < repaired.num_rows(); ++r) {
    EXPECT_EQ(repaired.Value(r, label), bundle.table.Value(r, label));
  }
}

// ---------------------------------------------------------------- MaxSAT --

TEST(MaxSatTest, SatisfiableHardClauses) {
  MaxSatProblem p;
  p.num_vars = 2;
  p.hard.push_back({{1, 2}, 1.0});    // x1 or x2
  p.hard.push_back({{-1, -2}, 1.0});  // not both
  p.soft.push_back({{1}, 5.0});       // prefer x1
  const auto r = SolveMaxSat(p).value();
  EXPECT_TRUE(r.hard_satisfied);
  EXPECT_TRUE(r.assignment[1]);
  EXPECT_FALSE(r.assignment[2]);
  EXPECT_NEAR(r.satisfied_soft_weight, 5.0, 1e-9);
}

TEST(MaxSatTest, WeighsSoftClauses) {
  MaxSatProblem p;
  p.num_vars = 1;
  p.soft.push_back({{1}, 1.0});
  p.soft.push_back({{-1}, 10.0});
  const auto r = SolveMaxSat(p).value();
  EXPECT_FALSE(r.assignment[1]);
  EXPECT_NEAR(r.satisfied_soft_weight, 10.0, 1e-9);
}

TEST(MaxSatTest, RejectsMalformedInput) {
  MaxSatProblem p;
  p.num_vars = 0;
  EXPECT_FALSE(SolveMaxSat(p).ok());
  p.num_vars = 1;
  p.soft.push_back({{}, 1.0});
  EXPECT_FALSE(SolveMaxSat(p).ok());
  p.soft.clear();
  p.soft.push_back({{5}, 1.0});  // var out of range
  EXPECT_FALSE(SolveMaxSat(p).ok());
}

TEST(MaxSatTest, InitialAssignmentIsUsed) {
  // A crafted instance where the initial assignment is already optimal.
  MaxSatProblem p;
  p.num_vars = 3;
  p.hard.push_back({{-1, 2}, 1.0});
  p.soft.push_back({{1}, 2.0});
  p.soft.push_back({{2}, 2.0});
  p.soft.push_back({{-3}, 1.0});
  std::vector<bool> init = {false, true, true, false};
  const auto r = SolveMaxSat(p, MaxSatOptions(), init).value();
  EXPECT_TRUE(r.hard_satisfied);
  EXPECT_NEAR(r.satisfied_soft_weight, 5.0, 1e-9);
}

TEST(CapMaxSatTest, RepairsMvdViolation) {
  // Saturated constraint over a small violating table.
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 300;
  gen.num_z_attrs = 1;
  gen.z_card = 2;
  gen.violation = 0.8;
  gen.seed = 12;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});

  const auto report = CapMaxSatRepair(table, ci).value();
  EXPECT_TRUE(report.hard_satisfied);
  // The repaired relation's support is a per-z cross product, i.e. the MVD
  // holds *structurally* (the distributional CMI may stay nonzero since
  // MaxSAT only reasons about presence/absence).
  const auto cols = ci.ResolveColumns(table.schema()).value();
  const auto p = report.repaired.Empirical(cols);
  const auto& dom = p.domain();
  for (int z = 0; z < 2; ++z) {
    // For each z: if (x,z) present and (y,z) present then (x,y,z) present.
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        double px = 0.0, py = 0.0;
        for (int yy = 0; yy < 2; ++yy) px += p[dom.Encode({x, yy, z})];
        for (int xx = 0; xx < 2; ++xx) py += p[dom.Encode({xx, y, z})];
        if (px > 0.0 && py > 0.0) {
          EXPECT_GT(p[dom.Encode({x, y, z})], 0.0);
        }
      }
    }
  }
}

TEST(CapMaxSatTest, ConsistentInputNeedsNoEdits) {
  // A table whose support is already a cross product per z.
  std::vector<dataset::Column> cols = {datagen::MakeColumn("x", 2),
                                       datagen::MakeColumn("y", 2),
                                       datagen::MakeColumn("z", 2)};
  dataset::Table t{dataset::Schema(std::move(cols))};
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        ASSERT_TRUE(t.AppendRow({x, y, z}).ok());
      }
    }
  }
  const core::CiConstraint ci({"x"}, {"y"}, {"z"});
  const auto report = CapMaxSatRepair(t, ci).value();
  EXPECT_EQ(report.deleted_rows, 0u);
  EXPECT_EQ(report.inserted_rows, 0u);
  EXPECT_EQ(report.repaired.num_rows(), t.num_rows());
}

}  // namespace
}  // namespace otclean::fairness
