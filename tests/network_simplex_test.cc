#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/network_simplex.h"
#include "lp/transport_lp.h"

namespace otclean::lp {
namespace {

TEST(NetworkSimplexTest, TrivialSingleCell) {
  linalg::Matrix cost(1, 1, 3.0);
  linalg::Vector p(std::vector<double>{1.0});
  const auto r = SolveTransportNetwork(cost, p, p).value();
  EXPECT_NEAR(r.cost, 3.0, 1e-9);
  EXPECT_NEAR(r.plan(0, 0), 1.0, 1e-9);
}

TEST(NetworkSimplexTest, MatchesHandComputedOptimum) {
  linalg::Matrix cost(2, 2);
  cost(0, 0) = 0.0;
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = SolveTransportNetwork(cost, p, q).value();
  EXPECT_NEAR(r.cost, 0.3, 1e-9);
}

TEST(NetworkSimplexTest, MarginalsRespected) {
  Rng rng(1);
  const size_t m = 6, n = 7;
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.1 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.1 + rng.NextDouble();
  p.Normalize();
  q.Normalize();
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(rows[i], p[i], 1e-8);
  for (size_t j = 0; j < n; ++j) EXPECT_NEAR(cols[j], q[j], 1e-8);
  for (double v : r.plan.data()) EXPECT_GE(v, 0.0);
}

TEST(NetworkSimplexTest, RejectsBadInput) {
  linalg::Matrix cost(2, 2, 1.0);
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector bad(std::vector<double>{0.9, 0.9});
  EXPECT_FALSE(SolveTransportNetwork(cost, p, bad).ok());
  linalg::Vector neg(std::vector<double>{-0.5, 1.5});
  EXPECT_FALSE(SolveTransportNetwork(cost, neg, p).ok());
  linalg::Vector wrong(std::vector<double>{1.0});
  EXPECT_FALSE(SolveTransportNetwork(cost, wrong, p).ok());
}

TEST(NetworkSimplexTest, HandlesDegenerateSupplies) {
  // Some zero supplies/demands.
  linalg::Matrix cost(3, 3);
  Rng rng(2);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(std::vector<double>{0.0, 0.6, 0.4});
  linalg::Vector q(std::vector<double>{0.5, 0.0, 0.5});
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  EXPECT_NEAR(rows[0], 0.0, 1e-9);
  EXPECT_NEAR(rows[1], 0.6, 1e-8);
}

/// Property sweep: agreement with the dense two-phase simplex on random
/// instances of growing size.
class NetworkVsDense : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkVsDense, CostsAgree) {
  Rng rng(GetParam());
  const size_t m = 3 + rng.NextUint64Below(6);
  const size_t n = 3 + rng.NextUint64Below(6);
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 5.0;
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.05 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.05 + rng.NextDouble();
  p.Normalize();
  q.Normalize();

  const auto net = SolveTransportNetwork(cost, p, q).value();
  const auto dense = SolveTransport(cost, p, q).value();
  EXPECT_NEAR(net.cost, dense.cost, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkVsDense,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

TEST(NetworkSimplexTest, LargerInstanceStaysFeasible) {
  Rng rng(9);
  const size_t m = 40, n = 40;
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.02 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.02 + rng.NextDouble();
  p.Normalize();
  q.Normalize();
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(rows[i], p[i], 1e-7);
  // Optimality sanity: cost below the independent-coupling cost.
  double indep = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) indep += cost(i, j) * p[i] * q[j];
  }
  EXPECT_LE(r.cost, indep + 1e-9);
}

}  // namespace
}  // namespace otclean::lp
