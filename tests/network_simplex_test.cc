#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/cancellation.h"
#include "common/random.h"
#include "lp/network_simplex.h"
#include "lp/transport_lp.h"

namespace otclean::lp {
namespace {

TEST(NetworkSimplexTest, TrivialSingleCell) {
  linalg::Matrix cost(1, 1, 3.0);
  linalg::Vector p(std::vector<double>{1.0});
  const auto r = SolveTransportNetwork(cost, p, p).value();
  EXPECT_NEAR(r.cost, 3.0, 1e-9);
  EXPECT_NEAR(r.plan(0, 0), 1.0, 1e-9);
}

TEST(NetworkSimplexTest, MatchesHandComputedOptimum) {
  linalg::Matrix cost(2, 2);
  cost(0, 0) = 0.0;
  cost(0, 1) = 1.0;
  cost(1, 0) = 1.0;
  cost(1, 1) = 0.0;
  linalg::Vector p(std::vector<double>{0.7, 0.3});
  linalg::Vector q(std::vector<double>{0.4, 0.6});
  const auto r = SolveTransportNetwork(cost, p, q).value();
  EXPECT_NEAR(r.cost, 0.3, 1e-9);
}

TEST(NetworkSimplexTest, MarginalsRespected) {
  Rng rng(1);
  const size_t m = 6, n = 7;
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.1 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.1 + rng.NextDouble();
  p.Normalize();
  q.Normalize();
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  const auto cols = r.plan.ColSums();
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(rows[i], p[i], 1e-8);
  for (size_t j = 0; j < n; ++j) EXPECT_NEAR(cols[j], q[j], 1e-8);
  for (double v : r.plan.data()) EXPECT_GE(v, 0.0);
}

TEST(NetworkSimplexTest, RejectsBadInput) {
  linalg::Matrix cost(2, 2, 1.0);
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector bad(std::vector<double>{0.9, 0.9});
  EXPECT_FALSE(SolveTransportNetwork(cost, p, bad).ok());
  linalg::Vector neg(std::vector<double>{-0.5, 1.5});
  EXPECT_FALSE(SolveTransportNetwork(cost, neg, p).ok());
  linalg::Vector wrong(std::vector<double>{1.0});
  EXPECT_FALSE(SolveTransportNetwork(cost, wrong, p).ok());
}

TEST(NetworkSimplexTest, HandlesDegenerateSupplies) {
  // Some zero supplies/demands.
  linalg::Matrix cost(3, 3);
  Rng rng(2);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(std::vector<double>{0.0, 0.6, 0.4});
  linalg::Vector q(std::vector<double>{0.5, 0.0, 0.5});
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  EXPECT_NEAR(rows[0], 0.0, 1e-9);
  EXPECT_NEAR(rows[1], 0.6, 1e-8);
}

/// Property sweep: agreement with the dense two-phase simplex on random
/// instances of growing size.
class NetworkVsDense : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkVsDense, CostsAgree) {
  Rng rng(GetParam());
  const size_t m = 3 + rng.NextUint64Below(6);
  const size_t n = 3 + rng.NextUint64Below(6);
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble() * 5.0;
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.05 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.05 + rng.NextDouble();
  p.Normalize();
  q.Normalize();

  const auto net = SolveTransportNetwork(cost, p, q).value();
  const auto dense = SolveTransport(cost, p, q).value();
  EXPECT_NEAR(net.cost, dense.cost, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkVsDense,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

TEST(NetworkSimplexTest, LargerInstanceStaysFeasible) {
  Rng rng(9);
  const size_t m = 40, n = 40;
  linalg::Matrix cost(m, n);
  for (double& v : cost.data()) v = rng.NextDouble();
  linalg::Vector p(m), q(n);
  for (size_t i = 0; i < m; ++i) p[i] = 0.02 + rng.NextDouble();
  for (size_t j = 0; j < n; ++j) q[j] = 0.02 + rng.NextDouble();
  p.Normalize();
  q.Normalize();
  const auto r = SolveTransportNetwork(cost, p, q).value();
  const auto rows = r.plan.RowSums();
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(rows[i], p[i], 1e-7);
  // Optimality sanity: cost below the independent-coupling cost.
  double indep = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) indep += cost(i, j) * p[i] * q[j];
  }
  EXPECT_LE(r.cost, indep + 1e-9);
}

// ------------------------------------------- streaming entry points --

/// Deterministic hashed test cost. Deliberately NOT Monge/convex in the
/// column index: the northwest-corner initial basis must be far from
/// optimal so streamed solves genuinely pivot (a |i − j| cost would make
/// the monotone NW plan optimal outright).
double HashedCost(size_t r, size_t c) {
  return static_cast<double>((r * 131 + c * 71) % 17) +
         0.25 * static_cast<double>((r + 2 * c) % 5);
}

/// Streams HashedCost entry-by-entry; counts evaluations and can fire a
/// cancellation token after a fixed number of them, so a test can stop the
/// engine mid-solve at a deterministic point in its cost consumption.
class CountingCostProvider final : public linalg::CostProvider {
 public:
  CountingCostProvider(size_t m, size_t n) : m_(m), n_(n) {}
  size_t rows() const override { return m_; }
  size_t cols() const override { return n_; }
  double At(size_t r, size_t c) const override {
    const size_t k = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (token_ != nullptr && k >= cancel_after_) token_->Cancel();
    return HashedCost(r, c);
  }
  void ArmCancel(CancellationToken* token, size_t after) {
    token_ = token;
    cancel_after_ = after;
  }
  size_t calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  size_t m_, n_;
  mutable std::atomic<size_t> calls_{0};
  CancellationToken* token_ = nullptr;
  size_t cancel_after_ = 0;
};

linalg::Vector RandomMarginal(size_t n, uint64_t seed) {
  Rng rng(seed);
  linalg::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.1 + rng.NextDouble();
  v.Normalize();
  return v;
}

TEST(NetworkSimplexStreamTest, StreamedSolveMatchesDenseWrapperAndStaysBasic) {
  const size_t m = 8, n = 9;
  CountingCostProvider cost(m, n);
  const linalg::Vector p = RandomMarginal(m, 11);
  const linalg::Vector q = RandomMarginal(n, 12);
  const auto sparse = SolveTransportNetwork(cost, p, q).value();

  linalg::Matrix cm(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) cm(i, j) = HashedCost(i, j);
  }
  const auto dense = SolveTransportNetwork(cm, p, q).value();
  EXPECT_NEAR(sparse.cost, dense.cost, 1e-9);

  // A basic solution: at most m + n − 1 nonzeros, row-major sorted, and the
  // scattered entries reproduce both marginals exactly.
  EXPECT_LE(sparse.entries.size(), m + n - 1);
  std::vector<double> row_sum(m, 0.0), col_sum(n, 0.0);
  for (size_t k = 0; k < sparse.entries.size(); ++k) {
    const auto& e = sparse.entries[k];
    ASSERT_LT(e.row, m);
    ASSERT_LT(e.col, n);
    EXPECT_GT(e.value, 0.0);
    row_sum[e.row] += e.value;
    col_sum[e.col] += e.value;
    if (k > 0) {
      const auto& prev = sparse.entries[k - 1];
      EXPECT_TRUE(prev.row < e.row || (prev.row == e.row && prev.col < e.col));
    }
  }
  for (size_t i = 0; i < m; ++i) EXPECT_NEAR(row_sum[i], p[i], 1e-9);
  for (size_t j = 0; j < n; ++j) EXPECT_NEAR(col_sum[j], q[j], 1e-9);
}

TEST(NetworkSimplexStreamTest, RestrictedSolveStaysOnKeptArcs) {
  const size_t d = 3;
  CountingCostProvider cost(d, d);
  linalg::Vector u(std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3});

  // A full kept set changes nothing: the restricted engine reproduces the
  // unrestricted optimum exactly.
  std::vector<std::vector<size_t>> full(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) full[i].push_back(j);
  }
  const auto unrestricted = SolveTransportNetwork(cost, u, u).value();
  const auto same = SolveTransportNetworkRestricted(cost, full, u, u).value();
  EXPECT_NEAR(same.cost, unrestricted.cost, 1e-12);

  // Diagonal-only kept set: the only feasible plan is stay-put, its cost is
  // Σ_i u_i·C(i,i), and no entry may land off the kept arcs.
  std::vector<std::vector<size_t>> diag(d);
  double diag_cost = 0.0;
  for (size_t i = 0; i < d; ++i) {
    diag[i] = {i};
    diag_cost += u[i] * HashedCost(i, i);
  }
  const auto on = SolveTransportNetworkRestricted(cost, diag, u, u).value();
  EXPECT_NEAR(on.cost, diag_cost, 1e-12);
  EXPECT_GE(on.cost + 1e-12, unrestricted.cost);
  for (const auto& e : on.entries) EXPECT_EQ(e.row, e.col);

  // Forbidding the diagonal instead: every entry lands off-diagonal.
  std::vector<std::vector<size_t>> off(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (j != i) off[i].push_back(j);
    }
  }
  const auto moved = SolveTransportNetworkRestricted(cost, off, u, u).value();
  EXPECT_GE(moved.cost + 1e-12, unrestricted.cost);
  for (const auto& e : moved.entries) EXPECT_NE(e.row, e.col);
}

TEST(NetworkSimplexStreamTest, RestrictedInfeasibleKeptSetFailsLoudly) {
  // Column 1 has demand but no incoming kept arc: the solve must fail with
  // InvalidArgument instead of silently routing mass off-support.
  CountingCostProvider cost(2, 2);
  linalg::Vector p(std::vector<double>{0.5, 0.5});
  linalg::Vector q(std::vector<double>{0.5, 0.5});
  const std::vector<std::vector<size_t>> arcs = {{0}, {0}};
  const auto r = SolveTransportNetworkRestricted(cost, arcs, p, q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetworkSimplexStreamTest, CancelMidSolveLeavesNoPartialState) {
  const size_t m = 40, n = 40;
  const linalg::Vector p = RandomMarginal(m, 21);
  const linalg::Vector q = RandomMarginal(n, 22);

  // Undisturbed reference on a pristine provider.
  CountingCostProvider ref_cost(m, n);
  const auto ref = SolveTransportNetwork(ref_cost, p, q).value();

  // The token fires from inside the cost stream once pricing is past the
  // first pivot (the init basis needs m + n − 1 entries; one pricing scan
  // reads m·n), so the per-pivot stop check aborts a solve that is
  // genuinely underway.
  CancellationToken token;
  CountingCostProvider cancelling_cost(m, n);
  cancelling_cost.ArmCancel(&token, 2000);
  NetworkSimplexOptions opts;
  opts.cancel_token = &token;
  const auto aborted = SolveTransportNetwork(cancelling_cost, p, q, opts);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  EXPECT_GE(cancelling_cost.calls(), 2000u);

  // No partial state survives the abort: a fresh solve over the same inputs
  // is bit-identical to the undisturbed reference.
  CountingCostProvider again_cost(m, n);
  const auto again = SolveTransportNetwork(again_cost, p, q).value();
  EXPECT_EQ(again.cost, ref.cost);
  EXPECT_EQ(again.pivots, ref.pivots);
  ASSERT_EQ(again.entries.size(), ref.entries.size());
  for (size_t k = 0; k < ref.entries.size(); ++k) {
    EXPECT_EQ(again.entries[k].row, ref.entries[k].row);
    EXPECT_EQ(again.entries[k].col, ref.entries[k].col);
    EXPECT_EQ(again.entries[k].value, ref.entries[k].value);
  }
}

TEST(NetworkSimplexStreamTest, ExpiredDeadlineAbortsBeforeAnyPivot) {
  CountingCostProvider cost(4, 4);
  const linalg::Vector p = RandomMarginal(4, 31);
  const linalg::Vector q = RandomMarginal(4, 32);
  NetworkSimplexOptions opts;
  opts.deadline = Deadline::After(-1.0);
  const auto r = SolveTransportNetwork(cost, p, q, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace otclean::lp
