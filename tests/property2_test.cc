#include <gtest/gtest.h>

#include <cmath>

#include "core/repair.h"
#include "dataset/csv.h"
#include "datagen/datasets.h"
#include "datagen/synthetic.h"
#include "fairness/capuchin.h"
#include "nmf/kl_nmf.h"
#include "ot/cost.h"

namespace otclean {
namespace {

// ----------------------------------------- Cost functions: metric axioms --

struct CostCase {
  std::string name;
  std::shared_ptr<ot::CostFunction> cost;
};

class CostAxioms : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostAxioms, NonNegativeAndIdentityZero) {
  const auto& cost = *GetParam().cost;
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a(3), b(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = static_cast<int>(rng.NextUint64Below(4));
      b[i] = static_cast<int>(rng.NextUint64Below(4));
    }
    EXPECT_GE(cost.Cost(a, b), 0.0);
    EXPECT_NEAR(cost.Cost(a, a), 0.0, 1e-9);
  }
}

TEST_P(CostAxioms, Symmetric) {
  const auto& cost = *GetParam().cost;
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> a(3), b(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = static_cast<int>(rng.NextUint64Below(4));
      b[i] = static_cast<int>(rng.NextUint64Below(4));
    }
    EXPECT_NEAR(cost.Cost(a, b), cost.Cost(b, a), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Costs, CostAxioms,
    ::testing::Values(
        CostCase{"euclidean", std::make_shared<ot::EuclideanCost>(3)},
        CostCase{"hamming", std::make_shared<ot::HammingCost>()},
        CostCase{"cosine", std::make_shared<ot::CosineCost>()},
        CostCase{"weighted", std::make_shared<ot::WeightedEuclideanCost>(
                                 std::vector<double>{1.0, 2.0, 0.5})},
        CostCase{"fairness", std::make_shared<ot::FairnessCost>(
                                 std::vector<size_t>{0}, 3)}),
    [](const ::testing::TestParamInfo<CostCase>& param_info) {
      return param_info.param.name;
    });

TEST(CostAxiomsExtra, EuclideanTriangleInequality) {
  ot::EuclideanCost cost(3);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> a(3), b(3), c(3);
    for (int i = 0; i < 3; ++i) {
      a[i] = static_cast<int>(rng.NextUint64Below(5));
      b[i] = static_cast<int>(rng.NextUint64Below(5));
      c[i] = static_cast<int>(rng.NextUint64Below(5));
    }
    EXPECT_LE(cost.Cost(a, c), cost.Cost(a, b) + cost.Cost(b, c) + 1e-9);
  }
}

// --------------------------------------------------- CSV round-trip sweep --

class CsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTrip, RandomTableSurvives) {
  Rng rng(GetParam());
  const size_t ncols = 1 + rng.NextUint64Below(5);
  std::vector<dataset::Column> cols;
  for (size_t c = 0; c < ncols; ++c) {
    cols.push_back(datagen::MakeColumn("col" + std::to_string(c),
                                       1 + rng.NextUint64Below(6)));
  }
  dataset::Table t{dataset::Schema(cols)};
  const size_t nrows = 1 + rng.NextUint64Below(50);
  for (size_t r = 0; r < nrows; ++r) {
    std::vector<int> row(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row[c] = rng.NextBernoulli(0.1)
                   ? dataset::kMissing
                   : static_cast<int>(
                         rng.NextUint64Below(cols[c].cardinality()));
    }
    ASSERT_TRUE(t.AppendRow(row).ok());
  }

  const auto back = dataset::ParseCsv(dataset::ToCsvString(t)).value();
  ASSERT_EQ(back.num_rows(), t.num_rows());
  ASSERT_EQ(back.num_columns(), t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      EXPECT_EQ(back.Label(r, c), t.Label(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// ------------------------------------------------- Repair invariant sweep --

struct RepairCase {
  double violation;
  size_t z_card;
  uint64_t seed;
};

class RepairInvariants : public ::testing::TestWithParam<RepairCase> {};

TEST_P(RepairInvariants, SchemaRowsPreservedAndCmiNotWorse) {
  const auto& param = GetParam();
  datagen::ScalingDatasetOptions gen;
  gen.num_rows = 800;
  gen.num_z_attrs = 1;
  gen.z_card = param.z_card;
  gen.violation = param.violation;
  gen.seed = param.seed;
  const auto table = datagen::MakeScalingDataset(gen).value();
  const core::CiConstraint ci({"x"}, {"y"}, {"z0"});

  core::RepairOptions opts;
  opts.fast.max_outer_iterations = 60;
  const auto report = core::RepairTable(table, ci, opts).value();
  EXPECT_EQ(report.repaired.num_rows(), table.num_rows());
  EXPECT_EQ(report.repaired.num_columns(), table.num_columns());
  EXPECT_LT(report.target_cmi, 1e-6);
  // Sampling noise allowance: the repaired CMI may not be exactly 0 but
  // must not exceed the input CMI by more than noise.
  EXPECT_LT(report.final_cmi, report.initial_cmi + 0.02);
  // No missing values introduced.
  EXPECT_FALSE(report.repaired.HasMissing());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RepairInvariants,
    ::testing::Values(RepairCase{0.0, 2, 1}, RepairCase{0.3, 2, 2},
                      RepairCase{0.7, 2, 3}, RepairCase{0.5, 3, 4},
                      RepairCase{0.9, 4, 5}));

// -------------------------------------------- Capuchin invariants sweep ---

class CapuchinInvariants
    : public ::testing::TestWithParam<fairness::CapuchinMethod> {};

TEST_P(CapuchinInvariants, KeepsXAndZColumnsIntact) {
  const auto bundle = datagen::MakeCompas(1500, 11).value();
  fairness::CapuchinOptions opts;
  opts.method = GetParam();
  const auto repaired =
      fairness::CapuchinRepair(bundle.table, bundle.constraint, opts).value();
  const auto& schema = bundle.table.schema();
  // X (sensitive) and Z (admissible) untouched per row.
  std::vector<size_t> fixed_cols;
  fixed_cols.push_back(schema.ColumnIndex(bundle.sensitive_col).value());
  for (const auto& name : bundle.admissible_cols) {
    fixed_cols.push_back(schema.ColumnIndex(name).value());
  }
  for (size_t r = 0; r < bundle.table.num_rows(); ++r) {
    for (size_t c : fixed_cols) {
      EXPECT_EQ(repaired.Value(r, c), bundle.table.Value(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, CapuchinInvariants,
    ::testing::Values(fairness::CapuchinMethod::kIndependentCoupling,
                      fairness::CapuchinMethod::kMatrixFactorization));

// ------------------------------------------------- KL-NMF rank-one sweep --

class KlNmfMarginals : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KlNmfMarginals, ClosedFormPreservesMarginals) {
  Rng rng(GetParam());
  const size_t m = 2 + rng.NextUint64Below(5);
  const size_t n = 2 + rng.NextUint64Below(5);
  linalg::Matrix a(m, n);
  for (double& v : a.data()) v = rng.NextDouble();
  const auto r = nmf::KlNmfRank1(a);
  const auto wh = linalg::Matrix::OuterProduct(r.w.Col(0), r.h.Row(0));
  EXPECT_TRUE(wh.RowSums().ApproxEquals(a.RowSums(), 1e-10));
  EXPECT_TRUE(wh.ColSums().ApproxEquals(a.ColSums(), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlNmfMarginals,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace otclean
