#include <gtest/gtest.h>

#include <cmath>

#include "nmf/frobenius_nmf.h"
#include "nmf/kl_nmf.h"

namespace otclean::nmf {
namespace {

linalg::Matrix MatMul(const linalg::Matrix& a, const linalg::Matrix& b) {
  linalg::Matrix c(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
    }
  }
  return c;
}

TEST(GeneralizedKlTest, ZeroForIdenticalMatrices) {
  linalg::Matrix a(2, 2, 0.25);
  EXPECT_NEAR(GeneralizedKl(a, a), 0.0, 1e-12);
}

TEST(GeneralizedKlTest, InfWhenSupportViolated) {
  linalg::Matrix a(1, 2);
  a(0, 0) = 1.0;
  linalg::Matrix b(1, 2);
  b(0, 1) = 1.0;
  EXPECT_TRUE(std::isinf(GeneralizedKl(a, b)));
}

TEST(GeneralizedKlTest, HandlesZeroInFirstArgument) {
  linalg::Matrix a(1, 2);
  a(0, 0) = 1.0;
  linalg::Matrix b(1, 2);
  b(0, 0) = 1.0;
  b(0, 1) = 0.5;  // extra mass contributes +b
  EXPECT_NEAR(GeneralizedKl(a, b), 0.5, 1e-12);
}

TEST(KlNmfRank1Test, ClosedFormIsProductOfMarginals) {
  linalg::Matrix a(2, 3);
  a(0, 0) = 0.1;
  a(0, 1) = 0.2;
  a(0, 2) = 0.1;
  a(1, 0) = 0.2;
  a(1, 1) = 0.3;
  a(1, 2) = 0.1;
  const auto r = KlNmfRank1(a);
  const linalg::Matrix wh =
      linalg::Matrix::OuterProduct(r.w.Col(0), r.h.Row(0));
  // Marginals of the approximation match A's.
  const auto rows_a = a.RowSums();
  const auto rows_wh = wh.RowSums();
  const auto cols_a = a.ColSums();
  const auto cols_wh = wh.ColSums();
  for (size_t i = 0; i < 2; ++i) EXPECT_NEAR(rows_wh[i], rows_a[i], 1e-12);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(cols_wh[j], cols_a[j], 1e-12);
  EXPECT_NEAR(wh.Sum(), a.Sum(), 1e-12);
}

TEST(KlNmfRank1Test, ExactOnRankOneInput) {
  linalg::Vector w(std::vector<double>{0.4, 0.6});
  linalg::Vector h(std::vector<double>{0.2, 0.5, 0.3});
  const linalg::Matrix a = linalg::Matrix::OuterProduct(w, h);
  const auto r = KlNmfRank1(a);
  EXPECT_NEAR(r.divergence, 0.0, 1e-12);
}

TEST(KlNmfRank1Test, ZeroMatrix) {
  linalg::Matrix a(2, 2, 0.0);
  const auto r = KlNmfRank1(a);
  EXPECT_NEAR(r.w.Sum(), 0.0, 1e-12);
}

TEST(KlNmfTest, IterativeConvergesToClosedFormRank1) {
  linalg::Matrix a(3, 3);
  Rng rng(3);
  for (double& v : a.data()) v = 0.1 + rng.NextDouble();
  KlNmfOptions opts;
  opts.rank = 1;
  opts.max_iterations = 500;
  Rng nmf_rng(4);
  const auto iter = KlNmf(a, opts, nmf_rng).value();
  const auto closed = KlNmfRank1(a);
  EXPECT_NEAR(iter.divergence, closed.divergence, 1e-6);
}

TEST(KlNmfTest, ObjectiveDecreasesWithRank) {
  linalg::Matrix a(4, 4);
  Rng rng(5);
  for (double& v : a.data()) v = rng.NextDouble();
  Rng r1(6), r2(6);
  KlNmfOptions o1;
  o1.rank = 1;
  KlNmfOptions o2;
  o2.rank = 3;
  const double d1 = KlNmf(a, o1, r1)->divergence;
  const double d3 = KlNmf(a, o2, r2)->divergence;
  EXPECT_LE(d3, d1 + 1e-9);
}

TEST(KlNmfTest, RejectsInvalidInputs) {
  linalg::Matrix neg(1, 1);
  neg(0, 0) = -1.0;
  KlNmfOptions opts;
  Rng rng(1);
  EXPECT_FALSE(KlNmf(neg, opts, rng).ok());
  opts.rank = 0;
  linalg::Matrix ok(1, 1, 1.0);
  EXPECT_FALSE(KlNmf(ok, opts, rng).ok());
}

TEST(FrobeniusNmfTest, ExactOnRankOneInput) {
  linalg::Vector w(std::vector<double>{1.0, 2.0});
  linalg::Vector h(std::vector<double>{0.5, 1.5});
  const linalg::Matrix a = linalg::Matrix::OuterProduct(w, h);
  FrobeniusNmfOptions opts;
  opts.rank = 1;
  opts.max_iterations = 2000;
  Rng rng(7);
  const auto r = FrobeniusNmf(a, opts, rng).value();
  EXPECT_NEAR(r.error, 0.0, 1e-6);
}

TEST(FrobeniusNmfTest, ApproximationIsNonNegative) {
  linalg::Matrix a(3, 3);
  Rng rng(8);
  for (double& v : a.data()) v = rng.NextDouble();
  FrobeniusNmfOptions opts;
  opts.rank = 2;
  Rng rng2(9);
  const auto r = FrobeniusNmf(a, opts, rng2).value();
  for (double v : r.w.data()) EXPECT_GE(v, 0.0);
  for (double v : r.h.data()) EXPECT_GE(v, 0.0);
}

TEST(FrobeniusNmfTest, ErrorDecreasesOverIterations) {
  linalg::Matrix a(4, 4);
  Rng rng(10);
  for (double& v : a.data()) v = rng.NextDouble();
  FrobeniusNmfOptions fast;
  fast.rank = 1;
  fast.max_iterations = 2;
  fast.tolerance = 0.0;
  FrobeniusNmfOptions slow = fast;
  slow.max_iterations = 200;
  Rng ra(11), rb(11);
  const double e_fast = FrobeniusNmf(a, fast, ra)->error;
  const double e_slow = FrobeniusNmf(a, slow, rb)->error;
  EXPECT_LE(e_slow, e_fast + 1e-9);
}

TEST(FrobeniusNmfTest, RejectsInvalidInputs) {
  linalg::Matrix neg(1, 1);
  neg(0, 0) = -0.5;
  FrobeniusNmfOptions opts;
  Rng rng(1);
  EXPECT_FALSE(FrobeniusNmf(neg, opts, rng).ok());
  opts.rank = 0;
  linalg::Matrix ok(1, 1, 1.0);
  EXPECT_FALSE(FrobeniusNmf(ok, opts, rng).ok());
}

TEST(KlNmfTest, FactorizationReconstructionCloseForEasyMatrix) {
  // Near-rank-one matrix: reconstruction should be close elementwise.
  linalg::Vector w(std::vector<double>{0.3, 0.7});
  linalg::Vector h(std::vector<double>{0.6, 0.4});
  linalg::Matrix a = linalg::Matrix::OuterProduct(w, h);
  a(0, 0) += 0.01;
  KlNmfOptions opts;
  opts.rank = 1;
  Rng rng(12);
  const auto r = KlNmf(a, opts, rng).value();
  const linalg::Matrix wh = MatMul(r.w, r.h);
  EXPECT_TRUE(wh.ApproxEquals(a, 0.05));
}

}  // namespace
}  // namespace otclean::nmf
